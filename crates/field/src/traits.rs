//! The [`PrimeField`] trait shared by all field implementations.

use std::fmt::Debug;
use std::hash::Hash;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use rand::Rng;

/// A prime field `GF(p)` with a centered signed-integer encoding.
///
/// Implementations guarantee the canonical representative of every element is
/// in `[0, p)`. Equality and hashing are on canonical representatives.
pub trait PrimeField:
    Copy
    + Clone
    + Eq
    + PartialEq
    + Hash
    + Debug
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
{
    /// The additive identity.
    const ZERO: Self;
    /// The multiplicative identity.
    const ONE: Self;
    /// Number of bits of the modulus.
    const MODULUS_BITS: u32;

    /// The modulus `p` as a `u128`.
    fn modulus() -> u128;

    /// Construct from an unsigned integer (reduced mod `p`).
    fn from_u128(v: u128) -> Self;

    /// Construct from an unsigned 64-bit integer (reduced mod `p`).
    fn from_u64(v: u64) -> Self {
        Self::from_u128(v as u128)
    }

    /// Centered encoding of a signed integer: `v >= 0` maps to `v mod p`,
    /// `v < 0` maps to `p - (|v| mod p)`.
    fn from_i128(v: i128) -> Self {
        if v >= 0 {
            Self::from_u128(v as u128)
        } else {
            -Self::from_u128(v.unsigned_abs())
        }
    }

    /// Canonical representative in `[0, p)`.
    fn to_canonical(self) -> u128;

    /// Centered decoding: representatives in `(p/2, p)` are interpreted as
    /// negative integers. The result is in `(-p/2, p/2]`.
    fn to_centered_i128(self) -> i128 {
        let c = self.to_canonical();
        let p = Self::modulus();
        if c > p / 2 {
            -((p - c) as i128)
        } else {
            c as i128
        }
    }

    /// Multiplicative inverse. Panics on zero.
    fn inverse(self) -> Self {
        assert!(self != Self::ZERO, "inverse of zero");
        // p is prime: a^(p-2) = a^-1.
        self.pow(Self::modulus() - 2)
    }

    /// Exponentiation by square-and-multiply.
    fn pow(self, mut e: u128) -> Self {
        let mut base = self;
        let mut acc = Self::ONE;
        while e > 0 {
            if e & 1 == 1 {
                acc *= base;
            }
            base *= base;
            e >>= 1;
        }
        acc
    }

    /// A uniformly random field element.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self;

    /// `self * 2` (cheap doubling).
    fn double(self) -> Self {
        self + self
    }

    /// `self^2`.
    fn square(self) -> Self {
        self * self
    }

    /// Serialized byte width of one element (for communication accounting).
    fn byte_width() -> usize {
        Self::MODULUS_BITS.div_ceil(8) as usize
    }
}

/// Evaluate a polynomial with coefficients `coeffs` (constant term first) at
/// point `x`, by Horner's rule.
pub fn horner<F: PrimeField>(coeffs: &[F], x: F) -> F {
    let mut acc = F::ZERO;
    for &c in coeffs.iter().rev() {
        acc = acc * x + c;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::M61;

    #[test]
    fn horner_constant() {
        let c = [M61::from_u64(7)];
        assert_eq!(horner(&c, M61::from_u64(100)), M61::from_u64(7));
    }

    #[test]
    fn horner_linear() {
        // 3 + 5x at x = 2 => 13
        let c = [M61::from_u64(3), M61::from_u64(5)];
        assert_eq!(horner(&c, M61::from_u64(2)), M61::from_u64(13));
    }

    #[test]
    fn horner_empty_is_zero() {
        assert_eq!(horner::<M61>(&[], M61::from_u64(9)), M61::ZERO);
    }
}
