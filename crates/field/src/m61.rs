//! `GF(2^61 - 1)`: the Mersenne-61 prime field.
//!
//! Reduction exploits `2^61 ≡ 1 (mod p)`: a value is folded by adding its
//! high bits (shifted down by 61) to its low 61 bits. Multiplication of two
//! canonical elements fits in `u128`.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::traits::PrimeField;

/// The modulus `2^61 - 1`.
pub const P61: u64 = (1u64 << 61) - 1;

/// An element of `GF(2^61 - 1)`, stored canonically in `[0, p)`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct M61(u64);

impl M61 {
    /// Construct from a canonical representative. Debug-asserts canonicity.
    #[inline]
    pub fn from_canonical(v: u64) -> Self {
        debug_assert!(v < P61);
        M61(v)
    }

    /// Raw canonical value.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Reduce an arbitrary `u64` modulo `p`.
    #[inline]
    fn reduce64(v: u64) -> u64 {
        // Fold once: v < 2^64 => folded < 2^61 + 2^3.
        let folded = (v & P61) + (v >> 61);
        if folded >= P61 {
            folded - P61
        } else {
            folded
        }
    }

    /// Reduce an arbitrary `u128` modulo `p`.
    #[inline]
    fn reduce128(v: u128) -> u64 {
        // Two folds bring any u128 below 2^62, then a conditional subtract.
        let lo = (v & P61 as u128) as u64;
        let hi = v >> 61;
        let lo2 = (hi & P61 as u128) as u64;
        let hi2 = (hi >> 61) as u64;
        let mut acc = lo as u128 + lo2 as u128 + hi2 as u128;
        if acc >= P61 as u128 {
            acc -= P61 as u128;
        }
        if acc >= P61 as u128 {
            acc -= P61 as u128;
        }
        acc as u64
    }
}

impl PrimeField for M61 {
    const ZERO: Self = M61(0);
    const ONE: Self = M61(1);
    const MODULUS_BITS: u32 = 61;

    #[inline]
    fn modulus() -> u128 {
        P61 as u128
    }

    #[inline]
    fn from_u128(v: u128) -> Self {
        M61(Self::reduce128(v))
    }

    #[inline]
    fn from_u64(v: u64) -> Self {
        M61(Self::reduce64(v))
    }

    #[inline]
    fn to_canonical(self) -> u128 {
        self.0 as u128
    }

    #[inline]
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // Rejection sampling from 61 random bits keeps the distribution
        // exactly uniform (acceptance probability 1 - 2^-61).
        loop {
            let v = rng.gen::<u64>() >> 3; // 61 bits
            if v < P61 {
                return M61(v);
            }
        }
    }
}

impl Add for M61 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        let s = self.0 + rhs.0; // < 2^62, no overflow
        M61(if s >= P61 { s - P61 } else { s })
    }
}

impl Sub for M61 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        let (d, borrow) = self.0.overflowing_sub(rhs.0);
        M61(if borrow { d.wrapping_add(P61) } else { d })
    }
}

impl Mul for M61 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        M61(Self::reduce128(self.0 as u128 * rhs.0 as u128))
    }
}

impl Neg for M61 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        if self.0 == 0 {
            self
        } else {
            M61(P61 - self.0)
        }
    }
}

impl AddAssign for M61 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}
impl SubAssign for M61 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}
impl MulAssign for M61 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl fmt::Debug for M61 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "M61({})", self.0)
    }
}

impl fmt::Display for M61 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn basic_identities() {
        let a = M61::from_u64(12345);
        assert_eq!(a + M61::ZERO, a);
        assert_eq!(a * M61::ONE, a);
        assert_eq!(a - a, M61::ZERO);
        assert_eq!(a + (-a), M61::ZERO);
    }

    #[test]
    fn wraparound_addition() {
        let a = M61::from_canonical(P61 - 1);
        assert_eq!(a + M61::ONE, M61::ZERO);
        assert_eq!(a + M61::from_u64(2), M61::ONE);
    }

    #[test]
    fn reduce_of_modulus_is_zero() {
        assert_eq!(M61::from_u64(P61), M61::ZERO);
        assert_eq!(M61::from_u128(P61 as u128 * 7), M61::ZERO);
        assert!(M61::from_u128(u128::MAX).to_canonical() < P61 as u128);
    }

    #[test]
    fn centered_encoding_roundtrip() {
        for v in [-1i128, 0, 1, -(1i128 << 59), (1i128 << 59), 42, -42] {
            assert_eq!(M61::from_i128(v).to_centered_i128(), v, "v={v}");
        }
    }

    #[test]
    fn centered_arithmetic_matches_integers() {
        let a = -123456789i128;
        let b = 987654321i128;
        assert_eq!(
            (M61::from_i128(a) * M61::from_i128(b)).to_centered_i128(),
            a * b
        );
        assert_eq!(
            (M61::from_i128(a) + M61::from_i128(b)).to_centered_i128(),
            a + b
        );
    }

    #[test]
    fn inverse_and_pow() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let a = M61::random(&mut rng);
            if a == M61::ZERO {
                continue;
            }
            assert_eq!(a * a.inverse(), M61::ONE);
        }
        // Fermat: a^(p-1) = 1.
        let a = M61::from_u64(3);
        assert_eq!(a.pow(P61 as u128 - 1), M61::ONE);
    }

    #[test]
    fn random_is_canonical() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(M61::random(&mut rng).raw() < P61);
        }
    }

    proptest! {
        #[test]
        fn prop_add_commutes(a in 0u64..P61, b in 0u64..P61) {
            let (x, y) = (M61::from_canonical(a), M61::from_canonical(b));
            prop_assert_eq!(x + y, y + x);
        }

        #[test]
        fn prop_mul_matches_u128(a in 0u64..P61, b in 0u64..P61) {
            let expect = (a as u128 * b as u128) % P61 as u128;
            prop_assert_eq!((M61::from_canonical(a) * M61::from_canonical(b)).to_canonical(), expect);
        }

        #[test]
        fn prop_distributive(a in 0u64..P61, b in 0u64..P61, c in 0u64..P61) {
            let (x, y, z) = (M61::from_canonical(a), M61::from_canonical(b), M61::from_canonical(c));
            prop_assert_eq!(x * (y + z), x * y + x * z);
        }

        #[test]
        fn prop_sub_is_add_neg(a in 0u64..P61, b in 0u64..P61) {
            let (x, y) = (M61::from_canonical(a), M61::from_canonical(b));
            prop_assert_eq!(x - y, x + (-y));
        }

        #[test]
        fn prop_centered_roundtrip(v in -((P61 as i128)/2)..=((P61 as i128)/2)) {
            prop_assert_eq!(M61::from_i128(v).to_centered_i128(), v);
        }
    }
}
