//! Prime-field arithmetic for secure multiparty computation over integers.
//!
//! The Skellam Quantization Mechanism (SQM) evaluates integer-valued
//! polynomials inside an MPC protocol. The BGW protocol works over a finite
//! field, so quantized data and Skellam noise are embedded into a prime field
//! using a *centered* signed encoding: an integer `v` with `|v| < p/2` maps to
//! `v mod p`, and the inverse map interprets residues above `p/2` as negative.
//! As long as every intermediate value of the computation stays below `p/2`
//! in magnitude, field arithmetic coincides with integer arithmetic.
//!
//! Two Mersenne-prime fields are provided:
//!
//! * [`M61`] — modulus `2^61 - 1`. Fast (single `u128` multiply + fold);
//!   enough headroom for most logistic-regression workloads.
//! * [`M127`] — modulus `2^127 - 1`. Uses a 128x128 -> 256-bit school-book
//!   multiply; needed when the scaled magnitudes of PCA covariance entries
//!   (`gamma^2 * c^2 * m` plus Skellam noise tails) exceed 60 bits.
//!
//! [`FieldChoice::for_magnitude`] picks the cheapest field that can represent
//! a given worst-case magnitude bound.

pub mod choice;
pub mod m127;
pub mod m61;
pub mod traits;

pub use choice::FieldChoice;
pub use m127::M127;
pub use m61::M61;
pub use traits::PrimeField;
