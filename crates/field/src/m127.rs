//! `GF(2^127 - 1)`: the Mersenne-127 prime field.
//!
//! Multiplication decomposes each 127-bit operand into two 64-bit limbs and
//! assembles the 254-bit product as `hi * 2^128 + lo`; since
//! `2^128 ≡ 2 (mod p)` the product reduces to `2*hi + lo` followed by
//! Mersenne folds. This gives PCA workloads ~126 bits of integer headroom.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::traits::PrimeField;

/// The modulus `2^127 - 1`.
pub const P127: u128 = (1u128 << 127) - 1;

/// An element of `GF(2^127 - 1)`, stored canonically in `[0, p)`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct M127(u128);

impl M127 {
    /// Construct from a canonical representative. Debug-asserts canonicity.
    #[inline]
    pub fn from_canonical(v: u128) -> Self {
        debug_assert!(v < P127);
        M127(v)
    }

    /// Raw canonical value.
    #[inline]
    pub fn raw(self) -> u128 {
        self.0
    }

    /// Fold a `u128` once: result `< 2^127 + 1`.
    #[inline]
    fn fold(v: u128) -> u128 {
        (v & P127) + (v >> 127)
    }

    /// Reduce an arbitrary `u128` modulo `p`.
    #[inline]
    fn reduce(v: u128) -> u128 {
        let f = Self::fold(v);
        if f >= P127 {
            f - P127
        } else {
            f
        }
    }

    /// Full 128x128 -> 256-bit product as `(hi, lo)`.
    #[inline]
    fn wide_mul(a: u128, b: u128) -> (u128, u128) {
        let (a0, a1) = (a as u64 as u128, a >> 64);
        let (b0, b1) = (b as u64 as u128, b >> 64);
        let ll = a0 * b0;
        let lh = a0 * b1;
        let hl = a1 * b0;
        let hh = a1 * b1;
        // lo = ll + (lh + hl) << 64 ; carries propagate into hi.
        let (mid, carry_mid) = lh.overflowing_add(hl);
        let (lo, carry_lo) = ll.overflowing_add(mid << 64);
        let hi = hh + (mid >> 64) + ((carry_mid as u128) << 64) + carry_lo as u128;
        (hi, lo)
    }

    /// Reduce a 256-bit value `hi * 2^128 + lo` modulo `p`.
    #[inline]
    fn reduce256(hi: u128, lo: u128) -> u128 {
        // 2^128 = 2 (mod p), so hi*2^128 + lo = 2*hi + lo (mod p).
        // For products of canonical elements, hi < 2^126, so 2*hi < 2^127.
        let lo_folded = Self::fold(lo); // < 2^127 + 1
        let hi2 = Self::reduce(hi) << 1; // < 2^128 safe: reduce(hi) < 2^127
        let hi2 = Self::fold(hi2);
        let mut acc = Self::fold(lo_folded + hi2);
        if acc >= P127 {
            acc -= P127;
        }
        acc
    }
}

impl PrimeField for M127 {
    const ZERO: Self = M127(0);
    const ONE: Self = M127(1);
    const MODULUS_BITS: u32 = 127;

    #[inline]
    fn modulus() -> u128 {
        P127
    }

    #[inline]
    fn from_u128(v: u128) -> Self {
        M127(Self::reduce(v))
    }

    #[inline]
    fn to_canonical(self) -> u128 {
        self.0
    }

    #[inline]
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        loop {
            let v = rng.gen::<u128>() >> 1; // 127 bits
            if v < P127 {
                return M127(v);
            }
        }
    }
}

impl Add for M127 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        // Both < 2^127 - 1 so the u128 sum cannot overflow.
        let s = self.0 + rhs.0;
        M127(if s >= P127 { s - P127 } else { s })
    }
}

impl Sub for M127 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        let (d, borrow) = self.0.overflowing_sub(rhs.0);
        M127(if borrow { d.wrapping_add(P127) } else { d })
    }
}

impl Mul for M127 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        let (hi, lo) = Self::wide_mul(self.0, rhs.0);
        M127(Self::reduce256(hi, lo))
    }
}

impl Neg for M127 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        if self.0 == 0 {
            self
        } else {
            M127(P127 - self.0)
        }
    }
}

impl AddAssign for M127 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}
impl SubAssign for M127 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}
impl MulAssign for M127 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl fmt::Debug for M127 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "M127({})", self.0)
    }
}

impl fmt::Display for M127 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn basic_identities() {
        let a = M127::from_u128(1u128 << 100);
        assert_eq!(a + M127::ZERO, a);
        assert_eq!(a * M127::ONE, a);
        assert_eq!(a - a, M127::ZERO);
        assert_eq!(a + (-a), M127::ZERO);
    }

    #[test]
    fn wraparound() {
        let a = M127::from_canonical(P127 - 1);
        assert_eq!(a + M127::ONE, M127::ZERO);
        assert_eq!(M127::from_u128(P127), M127::ZERO);
    }

    #[test]
    fn wide_mul_known_values() {
        // (2^64)^2 = 2^128 => hi = 1, lo = 0.
        let (hi, lo) = M127::wide_mul(1u128 << 64, 1u128 << 64);
        assert_eq!((hi, lo), (1, 0));
        // max * max
        let (hi, lo) = M127::wide_mul(u128::MAX, u128::MAX);
        // (2^128-1)^2 = 2^256 - 2^129 + 1
        assert_eq!(lo, 1);
        assert_eq!(hi, u128::MAX - 1);
    }

    #[test]
    fn mul_matches_mod_exp_identity() {
        // 2^127 mod p = 1, so (2^64)*(2^63) = 2^127 = 1 (mod p).
        let a = M127::from_u128(1u128 << 64);
        let b = M127::from_u128(1u128 << 63);
        assert_eq!(a * b, M127::ONE);
    }

    #[test]
    fn centered_roundtrip_large() {
        for v in [
            -(1i128 << 120),
            1i128 << 120,
            -1,
            0,
            1,
            i128::MAX / 2,
            i128::MIN / 2 + 1,
        ] {
            assert_eq!(M127::from_i128(v).to_centered_i128(), v, "v={v}");
        }
    }

    #[test]
    fn inverse() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let a = M127::random(&mut rng);
            if a == M127::ZERO {
                continue;
            }
            assert_eq!(a * a.inverse(), M127::ONE);
        }
    }

    #[test]
    fn fermat_little() {
        let a = M127::from_u128(5);
        assert_eq!(a.pow(P127 - 1), M127::ONE);
    }

    proptest! {
        #[test]
        fn prop_mul_small_matches_integers(a in 0u64..u64::MAX, b in 0u64..u64::MAX) {
            let expect = a as u128 * b as u128;
            prop_assert_eq!(
                (M127::from_u128(a as u128) * M127::from_u128(b as u128)).to_canonical(),
                expect % P127
            );
        }

        #[test]
        fn prop_distributive(a in 0u128..P127, b in 0u128..P127, c in 0u128..P127) {
            let (x, y, z) = (M127::from_canonical(a), M127::from_canonical(b), M127::from_canonical(c));
            prop_assert_eq!(x * (y + z), x * y + x * z);
        }

        #[test]
        fn prop_mul_commutes(a in 0u128..P127, b in 0u128..P127) {
            let (x, y) = (M127::from_canonical(a), M127::from_canonical(b));
            prop_assert_eq!(x * y, y * x);
        }

        #[test]
        fn prop_assoc(a in 0u128..P127, b in 0u128..P127, c in 0u128..P127) {
            let (x, y, z) = (M127::from_canonical(a), M127::from_canonical(b), M127::from_canonical(c));
            prop_assert_eq!((x * y) * z, x * (y * z));
        }
    }
}
