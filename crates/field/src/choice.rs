//! Automatic field selection from a worst-case magnitude bound.
//!
//! SQM's integer computation must not wrap around in the field: correctness
//! of the centered encoding requires every intermediate value to stay below
//! `p/2` in magnitude. The mechanism layer computes a worst-case bound
//! `gamma^(lambda+1) * m * max|f| + noise_tail` and picks the cheapest field
//! that accommodates it, with a safety margin.

/// Which prime field a computation should run in.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FieldChoice {
    /// `GF(2^61 - 1)` — fast path.
    M61,
    /// `GF(2^127 - 1)` — large-magnitude path.
    M127,
}

impl FieldChoice {
    /// Bits of signed headroom each field offers (one bit below `p/2`,
    /// minus a 2-bit safety margin for noise tails).
    const M61_SAFE_BITS: u32 = 61 - 1 - 2;
    const M127_SAFE_BITS: u32 = 127 - 1 - 2;

    /// Pick the cheapest field whose centered encoding can hold values of
    /// magnitude up to `bound` (as `f64`, allowing bounds beyond `u128`).
    ///
    /// Returns `None` if even `M127` cannot hold the bound.
    pub fn for_magnitude(bound: f64) -> Option<FieldChoice> {
        assert!(
            bound >= 0.0 && bound.is_finite(),
            "bound must be finite and non-negative"
        );
        let bits = if bound <= 1.0 { 0.0 } else { bound.log2() };
        if bits <= Self::M61_SAFE_BITS as f64 {
            Some(FieldChoice::M61)
        } else if bits <= Self::M127_SAFE_BITS as f64 {
            Some(FieldChoice::M127)
        } else {
            None
        }
    }

    /// Bits of signed magnitude this choice can safely hold.
    pub fn safe_bits(self) -> u32 {
        match self {
            FieldChoice::M61 => Self::M61_SAFE_BITS,
            FieldChoice::M127 => Self::M127_SAFE_BITS,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_magnitudes_pick_m61() {
        assert_eq!(FieldChoice::for_magnitude(0.0), Some(FieldChoice::M61));
        assert_eq!(FieldChoice::for_magnitude(1e9), Some(FieldChoice::M61));
        assert_eq!(
            FieldChoice::for_magnitude(2f64.powi(57)),
            Some(FieldChoice::M61)
        );
    }

    #[test]
    fn large_magnitudes_pick_m127() {
        assert_eq!(
            FieldChoice::for_magnitude(2f64.powi(80)),
            Some(FieldChoice::M127)
        );
        assert_eq!(
            FieldChoice::for_magnitude(2f64.powi(120)),
            Some(FieldChoice::M127)
        );
    }

    #[test]
    fn absurd_magnitudes_rejected() {
        assert_eq!(FieldChoice::for_magnitude(2f64.powi(130)), None);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_rejected() {
        FieldChoice::for_magnitude(f64::NAN);
    }
}
