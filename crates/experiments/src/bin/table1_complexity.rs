//! Table I: complexity of SQM for PCA and LR under BGW — the analytic
//! formulas, validated against measured communication/round scaling of this
//! implementation.
//!
//! `cargo run -p sqm-experiments --release --bin table1_complexity`

use sqm_experiments::{obsout, parse_options, timing};

fn main() {
    let opts = parse_options();
    println!("=== Table I: SQM complexity under BGW (m records, n attributes, P clients) ===\n");
    println!("Paper's asymptotics:");
    println!("  PCA  computation/client O(mP + n^2 m log m / P + n^2), communication O(n^2 m P log gamma), time O(n^2 m log m)");
    println!("  LR   computation/client O(m(n-1)P + m(n-1) log m / P),  communication O(m(n-1) P log m log gamma), time O(m(n-1) log m)");
    println!();
    println!("This implementation batches record sums at share level before degree");
    println!("reduction, so *post-input* communication is O(n^2 P^2) for PCA and");
    println!("O(n P^2) for LR, independent of m; input sharing remains O(m n P^2).");
    println!("Measured validation:\n");

    // Communication scaling in n (PCA): double n => ~4x non-input bytes.
    let a = timing::time_pca(50, 16, 4, opts.seed, opts.trace);
    let b = timing::time_pca(50, 32, 4, opts.seed, opts.trace);
    println!(
        "PCA traffic n=16 -> n=32 (m fixed): {:.3} MiB -> {:.3} MiB  (x{:.2}, expect ~4 for the n^2 term)",
        a.megabytes,
        b.megabytes,
        b.megabytes / a.megabytes
    );

    // Communication scaling in m (PCA input sharing).
    let c = timing::time_pca(100, 16, 4, opts.seed, opts.trace);
    let d = timing::time_pca(200, 16, 4, opts.seed, opts.trace);
    println!(
        "PCA traffic m=100 -> m=200 (n fixed): {:.3} MiB -> {:.3} MiB  (input sharing grows linearly in m)",
        c.megabytes, d.megabytes
    );

    // Communication scaling in P.
    let e = timing::time_pca(50, 16, 2, opts.seed, opts.trace);
    let f = timing::time_pca(50, 16, 4, opts.seed, opts.trace);
    println!(
        "PCA traffic P=2 -> P=4 (m, n fixed): {:.3} MiB -> {:.3} MiB  (x{:.2}, expect ~P^2 growth of the mesh)",
        e.megabytes,
        f.megabytes,
        f.megabytes / e.megabytes
    );

    // LR: traffic linear in n.
    let g = timing::time_lr(50, 17, 4, opts.seed, opts.trace);
    let h = timing::time_lr(50, 33, 4, opts.seed, opts.trace);
    println!(
        "LR  traffic n=17 -> n=33 (m fixed): {:.3} MiB -> {:.3} MiB  (x{:.2}, expect ~2 for the linear term)",
        g.megabytes,
        h.megabytes,
        h.megabytes / g.megabytes
    );

    // Round counts are constant (the synchronous batching).
    println!(
        "\nround counts: PCA = {}, LR = {} — constant in m, n and P.",
        a.rounds, g.rounds
    );
    obsout::dump_metrics("table1_complexity").expect("writing results/");
}
