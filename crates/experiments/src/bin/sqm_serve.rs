//! `sqm-serve` — the multi-tenant VFL serving endpoint plus its perf
//! suite and regression gate.
//!
//! ```text
//! sqm-serve                                # serve, drive seeded load, write BENCH_serve.json
//! sqm-serve --addr 127.0.0.1:9190         # fixed listen address
//! sqm-serve --hold-secs 45                # keep serving after the load run
//! sqm-serve --suite small --gate          # ...and diff against bench/baseline.json
//! sqm-serve --write-baseline              # refresh the serve suite in the baseline
//! ```
//!
//! The run has three acts:
//!
//! 1. **Serve.** Bind the JSON-over-HTTP protocol (`/v1/tenant`,
//!    `/v1/ingest`, `/v1/release`, `/status`, `/metrics`) on `--addr`.
//! 2. **Load.** Drive the endpoint's scheduler with the seeded closed-loop
//!    generator — with request tracing on, so every request carries a span
//!    tree and every release's MPC span links to its causal critical path.
//!    The finite per-tenant budgets guarantee odometer refusals, which
//!    land in `/metrics` as `sqm_serve_budget_refusals` (the CI smoke test
//!    asserts at least one, plus per-tenant `sqm_serve_request_duration_ns`
//!    samples). Afterwards the span collector dumps the byte-deterministic
//!    `slowreq_<seed>.jsonl` (the zero threshold is pinned, so it retains
//!    every request — the full deterministic request log) and a
//!    `serve_report.html` with the "Serving SLO" section into `--out`.
//! 3. **Measure.** Run the `serve` bench suite and write
//!    `BENCH_serve.json` (sessions/sec from `serve_load_*`, p99 release
//!    latency from `serve_release_*`), optionally gated against
//!    `bench/baseline.json` like every other suite.
//!
//! With `--hold-secs N` the endpoint stays up for N more seconds after
//! the artifact is written, so external probes can scrape mid-run state.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use sqm::obs::span::SpanConfig;
use sqm::obs::trace::Trace;
use sqm::obs::{html_report_with_slo, metrics};
use sqm::serve::{run_load, LoadSpec, ServeHttp, Server, ServerConfig};
use sqm_bench::gate::{self, Baseline, GateConfig};
use sqm_bench::perf::{run_serve, Tier};

struct ServeOptions {
    addr: String,
    hold_secs: u64,
    tier: Tier,
    out_dir: PathBuf,
    baseline_path: PathBuf,
    gate: bool,
    warn_only: bool,
    write_baseline: bool,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:9190".to_string(),
            hold_secs: 0,
            tier: Tier::Small,
            out_dir: PathBuf::from("results/perf"),
            baseline_path: PathBuf::from("bench/baseline.json"),
            gate: false,
            warn_only: false,
            write_baseline: false,
        }
    }
}

fn parse_args() -> ServeOptions {
    let mut opts = ServeOptions::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                i += 1;
                opts.addr = args.get(i).expect("--addr needs host:port").clone();
            }
            "--hold-secs" => {
                i += 1;
                opts.hold_secs = args
                    .get(i)
                    .expect("--hold-secs needs a number")
                    .parse()
                    .expect("--hold-secs expects seconds");
            }
            "--suite" => {
                i += 1;
                let value = args.get(i).expect("--suite needs small|full");
                opts.tier = Tier::parse(value)
                    .unwrap_or_else(|| panic!("--suite expects small|full, got {value:?}"));
            }
            "--out" => {
                i += 1;
                opts.out_dir = PathBuf::from(args.get(i).expect("--out needs a directory"));
            }
            "--baseline" => {
                i += 1;
                opts.baseline_path = PathBuf::from(args.get(i).expect("--baseline needs a path"));
            }
            "--gate" => opts.gate = true,
            "--warn-only" => opts.warn_only = true,
            "--write-baseline" => opts.write_baseline = true,
            other => panic!(
                "unknown flag {other} (expected --addr HOST:PORT, --hold-secs N, \
                 --suite small|full, --out DIR, --baseline PATH, --gate, --warn-only, \
                 --write-baseline)"
            ),
        }
        i += 1;
    }
    opts
}

/// Replace (or append) the `serve` suite in an existing baseline so
/// blessing this binary's numbers never drops the other suites.
fn merge_baseline(path: &PathBuf, artifact: sqm_bench::BenchArtifact) -> Baseline {
    let mut suites = match std::fs::read_to_string(path)
        .ok()
        .and_then(|text| Baseline::from_json_str(&text).ok())
    {
        Some(baseline) => baseline.suites,
        None => Vec::new(),
    };
    suites.retain(|s| s.suite != artifact.suite);
    suites.push(artifact);
    Baseline { suites }
}

fn main() -> ExitCode {
    let opts = parse_args();
    metrics::set_enabled(true);

    // Act 1: the endpoint, with request tracing on. The zero slow
    // threshold is pinned (mirroring the live smoke's pinned stall
    // threshold): every request is retained, so the slowreq dump is the
    // full deterministic request log rather than a timing-dependent
    // subset.
    let server = Server::start(ServerConfig {
        tracing: Some(SpanConfig::dump_all()),
        ..ServerConfig::default()
    });
    let endpoint = match ServeHttp::bind(Arc::clone(&server), &opts.addr) {
        Ok(endpoint) => endpoint,
        Err(e) => {
            eprintln!("error: cannot bind {}: {e}", opts.addr);
            return ExitCode::FAILURE;
        }
    };
    println!("sqm-serve: listening on http://{}", endpoint.local_addr());

    // Act 2: seeded closed-loop load against the live endpoint's
    // scheduler. The smoke spec's budgets are finite, so the odometer
    // refuses at least one release and `/metrics` proves it.
    let spec = LoadSpec {
        tracing: true,
        ..LoadSpec::smoke()
    };
    let report = run_load(&server, &spec);
    println!(
        "  load: {} tenants x {} rounds -> {} releases admitted, {} budget refusals, \
         {:.1} sessions/s, p99 release {:.2} ms, digest {:016x}",
        spec.tenants,
        spec.rounds,
        report.releases_admitted(),
        report.budget_refusals(),
        report.sessions_per_sec(),
        report.p99_release_ns() as f64 / 1e6,
        report.digest(),
    );
    if report.budget_refusals() == 0 {
        eprintln!("error: smoke load finished without a single budget refusal");
        return ExitCode::FAILURE;
    }

    // Span artifacts: the deterministic slow-request dump and the HTML
    // report with the "Serving SLO" section.
    let collector = server.spans().expect("tracing configured");
    match collector.write_slow_dump(&opts.out_dir, spec.seed) {
        Ok(path) => println!(
            "  wrote {} ({} requests)",
            path.display(),
            collector.snapshot().slow_retained
        ),
        Err(e) => {
            eprintln!("error: cannot write slow-request dump: {e}");
            return ExitCode::FAILURE;
        }
    }
    let html = html_report_with_slo(
        "sqm-serve load run",
        &Trace::from_parties(Duration::ZERO, Vec::new()),
        None,
        Some(&metrics::snapshot()),
        Some(&collector.snapshot()),
    );
    let html_path = opts.out_dir.join("serve_report.html");
    match sqm::obs::atomic_write_str(&html_path, &html) {
        Ok(()) => println!("  wrote {}", html_path.display()),
        Err(e) => {
            eprintln!("error: cannot write HTML report: {e}");
            return ExitCode::FAILURE;
        }
    }

    // Act 3: the bench suite and its artifact.
    println!(
        "sqm-serve: running serve suite at tier '{}'",
        opts.tier.name()
    );
    let artifact = run_serve(opts.tier);
    match artifact.write_to(&opts.out_dir) {
        Ok(path) => println!(
            "  wrote {} ({} entries)",
            path.display(),
            artifact.entries.len()
        ),
        Err(e) => {
            eprintln!("error: cannot write artifact: {e}");
            return ExitCode::FAILURE;
        }
    }

    if opts.write_baseline {
        let baseline = merge_baseline(&opts.baseline_path, artifact.clone());
        if let Err(e) = sqm::obs::atomic_write_str(&opts.baseline_path, &baseline.to_json_string())
        {
            eprintln!("error: cannot write baseline: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "  wrote {} (serve suite refreshed)",
            opts.baseline_path.display()
        );
    }

    let mut failed = false;
    if opts.gate {
        match std::fs::read_to_string(&opts.baseline_path) {
            Ok(text) => match Baseline::from_json_str(&text) {
                Ok(baseline) => {
                    let report = gate::gate_artifacts(
                        &baseline,
                        std::slice::from_ref(&artifact),
                        &GateConfig::default(),
                    );
                    print!("{}", report.render(false));
                    if !report.passed() {
                        if opts.warn_only {
                            println!("(--warn-only: regressions reported but not fatal)");
                        } else {
                            failed = true;
                        }
                    }
                }
                Err(e) => {
                    eprintln!("error: malformed baseline: {e}");
                    failed = true;
                }
            },
            Err(e) => {
                eprintln!(
                    "error: cannot read baseline {}: {e}",
                    opts.baseline_path.display()
                );
                failed = true;
            }
        }
    }

    if opts.hold_secs > 0 {
        println!(
            "sqm-serve: holding for {}s (ctrl-c to stop)",
            opts.hold_secs
        );
        std::thread::sleep(Duration::from_secs(opts.hold_secs));
    }
    endpoint.shutdown();

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
