//! `sqm-audit` — the statistical correctness and privacy-auditing harness.
//!
//! ```text
//! sqm-audit                       # fast tier: CI smoke budget
//! sqm-audit --deep                # nightly tier: 10x sample budgets
//! sqm-audit --seed 42             # re-pin the master seed
//! sqm-audit --out results/audit_report.json
//! ```
//!
//! Runs three audits (see `sqm_audit`'s crate docs): exact-distribution
//! goodness-of-fit on every integer sampler, an empirical-epsilon DP
//! audit against the accountant's analytic bound, and the differential
//! backend fuzzer. Writes the full deterministic report as JSON and
//! exits non-zero if any section fails, so CI can gate on it directly.

use std::path::PathBuf;
use std::process::ExitCode;

use serde::Serialize as _;
use sqm::obs::metrics;
use sqm_audit::{run_all, AuditConfig, Tier};

struct Options {
    seed: u64,
    tier: Tier,
    alpha: Option<f64>,
    out: PathBuf,
    live: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            seed: 0xA0D1_7000,
            tier: Tier::Fast,
            alpha: None,
            out: PathBuf::from("results/audit_report.json"),
            live: sqm_experiments::live_addr_from_env(),
        }
    }
}

fn parse_args() -> Options {
    let mut opts = Options::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--deep" => opts.tier = Tier::Deep,
            "--seed" => {
                i += 1;
                opts.seed = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs a u64");
            }
            "--alpha" => {
                i += 1;
                let a: f64 = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .expect("--alpha needs a float in (0,1)");
                assert!(a > 0.0 && a < 1.0, "--alpha out of range: {a}");
                opts.alpha = Some(a);
            }
            "--out" => {
                i += 1;
                opts.out = PathBuf::from(args.get(i).expect("--out needs a path"));
            }
            "--live" => {
                // Optional value: bare `--live` uses the default address.
                match args.get(i + 1) {
                    Some(v) if !v.starts_with("--") => {
                        opts.live = Some(v.clone());
                        i += 1;
                    }
                    _ => opts.live = Some(sqm_experiments::DEFAULT_LIVE_ADDR.to_string()),
                }
            }
            other => {
                panic!(
                    "unknown flag {other} (expected --deep, --seed N, --alpha A, --out PATH, \
                     --live [addr])"
                )
            }
        }
        i += 1;
    }
    sqm_experiments::install_live(opts.live.as_deref());
    opts
}

fn main() -> ExitCode {
    let opts = parse_args();
    let mut cfg = AuditConfig::new(opts.seed, opts.tier);
    if let Some(a) = opts.alpha {
        cfg.alpha = a;
    }

    metrics::set_enabled(true);
    metrics::reset();
    let report = run_all(&cfg);
    metrics::set_enabled(false);

    sqm::obs::atomic_write_str(&opts.out, &report.to_json()).expect("write audit report");

    print!("{}", report.summary_text());
    let snap = metrics::snapshot();
    for (name, value) in snap
        .counters
        .iter()
        .filter(|(n, _)| n.starts_with("audit."))
    {
        println!("  {name} = {value}");
    }
    println!("report written to {}", opts.out.display());

    if report.passed {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
