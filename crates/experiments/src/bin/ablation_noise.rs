//! Ablation: integer noise choice — Skellam versus discrete Gaussian.
//!
//! The distributed discrete Gaussian mechanism \[39\] is the closest prior
//! work; the paper chooses Skellam because it is *exactly* closed under
//! summation (each client samples Sk(mu/P) and the aggregate is Sk(mu)),
//! where sums of discrete Gaussians are only approximately discrete
//! Gaussian. This binary quantifies the price Skellam pays for that
//! exactness: the calibrated variance ratio versus the (single-party)
//! discrete Gaussian at the same (eps, delta), across sensitivities.
//!
//! `cargo run -p sqm-experiments --release --bin ablation_noise`

use sqm::accounting::discrete_gaussian::compare_integer_noise_variances;
use sqm::accounting::skellam::Sensitivity;
use sqm_experiments::{obsout, parse_options};

fn main() {
    parse_options();
    println!("=== Ablation: Skellam vs discrete Gaussian calibrated variance ===");
    println!("(eps = 1, delta = 1e-5, scalar release; sensitivity = quantized scale)\n");
    println!(
        "{:>14} {:>20} {:>20} {:>10}",
        "sensitivity", "Skellam var (2mu)", "discrete-N var", "ratio"
    );
    for exp in [0u32, 2, 4, 8, 12, 16] {
        let s = 2f64.powi(exp as i32);
        let sens = Sensitivity::new(s, s);
        let (sk, dg) = compare_integer_noise_variances(1.0, 1e-5, sens);
        println!("{:>14.0} {sk:>20.3e} {dg:>20.3e} {:>10.4}", s, sk / dg);
    }
    println!(
        "\nThe ratio converges to 1 as the (quantized) sensitivity grows — i.e. at\n\
         realistic gamma the Skellam mechanism's second-order RDP penalty is free,\n\
         while its exact convolution closure removes [39]'s distributed-sum\n\
         approximation arguments entirely."
    );
    obsout::dump_metrics("ablation_noise").expect("writing results/");
}
