//! Figure 5: the gap between centralized DPSGD (exact sigmoid gradients)
//! and "Approx-Poly" (the same Gaussian mechanism with the degree-1 Taylor
//! gradient of Eq. 9) is negligible (< 0.05 in the paper).
//!
//! `cargo run -p sqm-experiments --release --bin fig5_approx_poly [--runs N]`

use rand::rngs::StdRng;
use rand::SeedableRng;
use sqm::datasets::presets::acsincome_classification;
use sqm::tasks::logreg::{accuracy, ApproxPolyLogReg, DpSgd, LrConfig};
use sqm_experiments::{fmt_pm, mean_std, obsout, parse_options};

const STATES: [&str; 4] = ["CA", "TX", "NY", "FL"];

fn main() {
    let opts = parse_options();
    let delta = 1e-5;
    let q = 0.05;
    println!(
        "=== Figure 5: DPSGD vs Approx-Poly (delta = {delta}, {} runs) ===",
        opts.runs
    );
    println!(
        "{:>6} {:>6} {:>20} {:>20} {:>10}",
        "state", "eps", "DPSGD (exact)", "Approx-Poly", "gap"
    );

    let mut worst_gap = 0.0f64;
    for (idx, state) in STATES.iter().enumerate() {
        let (train, test) =
            acsincome_classification(idx, opts.scale, opts.seed).split(0.8, opts.seed);
        for (eps, epochs) in [(0.5f64, 2u32), (1.0, 5), (2.0, 8), (4.0, 10), (8.0, 10)] {
            let cap = if opts.scale == sqm::datasets::Scale::Paper {
                u32::MAX
            } else {
                400
            };
            let rounds = (((epochs as f64) / q).round() as u32).min(cap);
            let cfg = LrConfig::new(rounds, q).with_lr(2.0);
            let mut rng = StdRng::seed_from_u64(opts.seed ^ eps.to_bits() ^ (idx as u64) << 8);
            let exact: Vec<f64> = (0..opts.runs)
                .map(|r| {
                    accuracy(
                        &DpSgd::new(cfg.clone().with_seed(r as u64), eps, delta)
                            .fit(&mut rng, &train),
                        &test,
                    )
                })
                .collect();
            let poly: Vec<f64> = (0..opts.runs)
                .map(|r| {
                    accuracy(
                        &ApproxPolyLogReg::new(cfg.clone().with_seed(r as u64), eps, delta)
                            .fit(&mut rng, &train),
                        &test,
                    )
                })
                .collect();
            let (em, es) = mean_std(&exact);
            let (pm, ps) = mean_std(&poly);
            let gap = (em - pm).abs();
            worst_gap = worst_gap.max(gap);
            println!(
                "{state:>6} {eps:>6.1} {:>20} {:>20} {gap:>10.4}",
                fmt_pm(em, es),
                fmt_pm(pm, ps)
            );
        }
    }
    println!("\nworst-case gap: {worst_gap:.4} (the paper reports < 0.05 throughout)");
    obsout::dump_metrics("fig5_approx_poly").expect("writing results/");
}
