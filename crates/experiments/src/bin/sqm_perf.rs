//! `sqm-perf` — deterministic perf suites, `BENCH_*.json` artifacts, and
//! the regression gate.
//!
//! ```text
//! sqm-perf --suite small              # run all suites, write artifacts
//! sqm-perf --suite small --gate      # ...and diff against bench/baseline.json
//! sqm-perf --suite small --gate --warn-only   # CI mode: report, never fail
//! sqm-perf --suite small --write-baseline     # refresh bench/baseline.json
//! sqm-perf --gate-self-test          # prove the gate catches a 2x slowdown
//! sqm-perf --suite small --report    # also write the covariance HTML report
//! sqm-perf --suite small --prof      # per-suite cost-profiler attribution
//! sqm-perf --suite small --append-history   # append medians to history.jsonl
//! ```
//!
//! Artifacts land in `results/perf/BENCH_<suite>.json` (override with
//! `--out DIR`); the schema is documented in `sqm_bench::perf` and
//! `EXPERIMENTS.md`. The commit hash is taken from `SQM_COMMIT` (CI
//! exports it; locally it falls back to `"unknown"`).

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use sqm::core::pca_sensitivity;
use sqm::datasets::SpectralSpec;
use sqm::obs::{html_report, metrics, PrivacyLedger};
use sqm::vfl::{covariance_skellam, ColumnPartition, VflConfig};
use sqm_bench::gate::{self, Baseline, GateConfig};
use sqm_bench::perf::{run_micro, run_mpc, run_serve, run_vfl, BenchArtifact, Tier};

struct PerfOptions {
    tier: Tier,
    out_dir: PathBuf,
    baseline_path: PathBuf,
    gate: bool,
    warn_only: bool,
    write_baseline: bool,
    gate_self_test: bool,
    report: bool,
    live: Option<String>,
    /// Attach the cost profiler and print a per-suite attribution delta
    /// (`--prof` / `SQM_PROF=1`).
    prof: bool,
    /// Append this run's medians to `<out>/history.jsonl`.
    append_history: bool,
}

impl Default for PerfOptions {
    fn default() -> Self {
        PerfOptions {
            tier: Tier::Small,
            out_dir: PathBuf::from("results/perf"),
            baseline_path: PathBuf::from("bench/baseline.json"),
            gate: false,
            warn_only: false,
            write_baseline: false,
            gate_self_test: false,
            report: false,
            live: sqm_experiments::live_addr_from_env(),
            prof: std::env::var("SQM_PROF").ok().as_deref() == Some("1"),
            append_history: false,
        }
    }
}

fn parse_args() -> PerfOptions {
    let mut opts = PerfOptions::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--suite" => {
                i += 1;
                let value = args.get(i).expect("--suite needs small|full");
                opts.tier = Tier::parse(value)
                    .unwrap_or_else(|| panic!("--suite expects small|full, got {value:?}"));
            }
            "--out" => {
                i += 1;
                opts.out_dir = PathBuf::from(args.get(i).expect("--out needs a directory"));
            }
            "--baseline" => {
                i += 1;
                opts.baseline_path = PathBuf::from(args.get(i).expect("--baseline needs a path"));
            }
            "--gate" => opts.gate = true,
            "--warn-only" => opts.warn_only = true,
            "--write-baseline" => opts.write_baseline = true,
            "--gate-self-test" => opts.gate_self_test = true,
            "--report" => opts.report = true,
            "--prof" => opts.prof = true,
            "--append-history" => opts.append_history = true,
            "--live" => {
                // Optional value: bare `--live` uses the default address.
                match args.get(i + 1) {
                    Some(v) if !v.starts_with("--") => {
                        opts.live = Some(v.clone());
                        i += 1;
                    }
                    _ => opts.live = Some(sqm_experiments::DEFAULT_LIVE_ADDR.to_string()),
                }
            }
            other => panic!(
                "unknown flag {other} (expected --suite small|full, --out DIR, --baseline PATH, \
                 --gate, --warn-only, --write-baseline, --gate-self-test, --report, \
                 --live [addr], --prof, --append-history)"
            ),
        }
        i += 1;
    }
    sqm_experiments::install_live(opts.live.as_deref());
    opts
}

/// Print what each suite added to the cost profile: the per-node delta of
/// the deterministic counters between two snapshots, heaviest first.
fn print_prof_delta(suite: &str, before: Option<sqm::obs::ProfSnapshot>) {
    let Some(after) = sqm::obs::prof::snapshot() else {
        return;
    };
    let empty = Default::default();
    let before_nodes = before.as_ref().map_or(&empty, |s| &s.nodes);
    let mut rows: Vec<(String, sqm::obs::prof::NodeAgg)> = Vec::new();
    for (name, agg) in &after.nodes {
        let prev = before_nodes.get(name).cloned().unwrap_or_default();
        let delta = sqm::obs::prof::NodeAgg {
            calls: agg.calls - prev.calls,
            work: agg.work - prev.work,
            messages: agg.messages - prev.messages,
            bytes: agg.bytes - prev.bytes,
            wall_ns: agg.wall_ns.saturating_sub(prev.wall_ns),
        };
        if delta.calls > 0 || delta.work > 0 {
            rows.push((name.clone(), delta));
        }
    }
    if rows.is_empty() {
        println!("  [prof {suite}] no instrumented work in this suite");
        return;
    }
    rows.sort_by(|a, b| b.1.weight().cmp(&a.1.weight()).then(a.0.cmp(&b.0)));
    println!("  [prof {suite}] top attribution (this suite's delta):");
    for (name, d) in rows.iter().take(8) {
        println!(
            "    {:>14} work {:>10} calls {:>10} msgs {:>12} B  {name}",
            d.work, d.calls, d.messages, d.bytes
        );
    }
}

/// One traced covariance release (metrics on) rendered as the
/// self-contained HTML report: phase waterfall, per-party traffic table,
/// privacy-ledger summary.
fn write_covariance_report(opts: &PerfOptions) -> std::io::Result<PathBuf> {
    metrics::set_enabled(true);
    metrics::reset();
    let (m, n, p) = (60, 8, 3);
    let (gamma, mu) = (18.0, 100.0);
    let data = SpectralSpec::new(m, n).with_seed(41).generate();
    let partition = ColumnPartition::even(n, p);
    let cfg = VflConfig::new(p)
        .with_latency(Duration::from_millis(100))
        .with_seed(42)
        .with_trace(true)
        .with_live(sqm_experiments::live_config());
    let out = covariance_skellam(&data, &partition, gamma, mu, &cfg);
    metrics::set_enabled(false);
    let trace = out.trace.expect("trace requested");
    assert_eq!(
        trace.summary().total_simulated(),
        out.stats.simulated_time(),
        "trace summary must reproduce the virtual clock exactly"
    );

    let mut ledger = PrivacyLedger::new(p, 1e-5);
    ledger.record(
        "covariance",
        n * n,
        gamma,
        mu,
        pca_sensitivity(gamma, 1.0, n),
    );
    let snapshot = metrics::snapshot();
    let mut html = html_report(
        &format!("covariance m={m} n={n} P={p}"),
        &trace,
        Some(&ledger.report()),
        Some(&snapshot),
    );
    // With two or more history points on record, embed the per-entry
    // median-trend sparklines (see `sqm_bench::history`).
    let trends = sqm_bench::history::trends_html(&sqm_bench::history::load(
        &opts.out_dir.join("history.jsonl"),
    ));
    if !trends.is_empty() {
        if let Some(pos) = html.rfind("</body>") {
            html.insert_str(pos, &trends);
        }
    }
    let path = opts.out_dir.join("covariance.report.html");
    sqm::obs::atomic_write_str(&path, &html)?;
    Ok(path)
}

fn main() -> ExitCode {
    let opts = parse_args();
    let cfg = GateConfig::default();

    if opts.prof {
        // Install the process-global profiler before any suite runs so the
        // per-suite deltas below have a baseline to diff against. The
        // aggregate artifacts land next to the BENCH_*.json files.
        sqm::obs::prof::install(
            &sqm::obs::prof::ProfConfig::default().with_dir(&opts.out_dir),
            42,
        );
    }

    println!(
        "sqm-perf: running micro/mpc/vfl/serve suites at tier '{}'",
        opts.tier.name()
    );
    // Same fixed order as `sqm_bench::perf::run_all`, run one suite at a
    // time so `--prof` can attribute instrumented work to the suite that
    // did it.
    type SuiteFn = fn(Tier) -> BenchArtifact;
    let suites: [(&str, SuiteFn); 4] = [
        ("micro", run_micro),
        ("mpc", run_mpc),
        ("vfl", run_vfl),
        ("serve", run_serve),
    ];
    let mut artifacts = Vec::new();
    for (suite, run) in suites {
        let before = if opts.prof {
            sqm::obs::prof::snapshot()
        } else {
            None
        };
        let artifact = run(opts.tier);
        if opts.prof {
            print_prof_delta(suite, before);
        }
        artifacts.push(artifact);
    }
    for artifact in &artifacts {
        match artifact.write_to(&opts.out_dir) {
            Ok(path) => println!(
                "  wrote {} ({} entries)",
                path.display(),
                artifact.entries.len()
            ),
            Err(e) => {
                eprintln!("error: cannot write artifact: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if opts.append_history {
        let path = opts.out_dir.join("history.jsonl");
        match sqm_bench::history::append(&path, &artifacts) {
            Ok(n) => println!(
                "  appended medians to {} ({n} runs on record)",
                path.display()
            ),
            Err(e) => {
                eprintln!("error: cannot append history: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if opts.prof {
        // Re-target the dump at the suite output directory (an engine run
        // inside the vfl suite re-installs with its own dir/seed; install
        // never clears the accumulated nodes) and flush the artifacts.
        sqm::obs::prof::install(
            &sqm::obs::prof::ProfConfig::default().with_dir(&opts.out_dir),
            42,
        );
        if let Err(e) = sqm_experiments::obsout::dump_prof() {
            eprintln!("error: cannot write profiler artifacts: {e}");
            return ExitCode::FAILURE;
        }
    }

    if opts.report {
        match write_covariance_report(&opts) {
            Ok(path) => println!("  wrote {}", path.display()),
            Err(e) => {
                eprintln!("error: cannot write HTML report: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if opts.gate_self_test {
        for artifact in &artifacts {
            if let Err(e) = gate::self_test(artifact, &cfg) {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
            println!(
                "  gate self-test [{}]: 2x slowdown flagged, identical re-run passes",
                artifact.suite
            );
        }
    }

    if opts.write_baseline {
        let baseline = Baseline {
            suites: artifacts.clone(),
        };
        if let Err(e) = sqm::obs::atomic_write_str(&opts.baseline_path, &baseline.to_json_string())
        {
            eprintln!("error: cannot write baseline: {e}");
            return ExitCode::FAILURE;
        }
        println!("  wrote {}", opts.baseline_path.display());
    }

    if opts.gate {
        let text = match std::fs::read_to_string(&opts.baseline_path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!(
                    "error: cannot read baseline {}: {e}",
                    opts.baseline_path.display()
                );
                return ExitCode::FAILURE;
            }
        };
        let baseline = match Baseline::from_json_str(&text) {
            Ok(baseline) => baseline,
            Err(e) => {
                eprintln!("error: malformed baseline: {e}");
                return ExitCode::FAILURE;
            }
        };
        let report = gate::gate_artifacts(&baseline, &artifacts, &cfg);
        print!("{}", report.render(false));
        if !report.passed() && !opts.warn_only {
            return ExitCode::FAILURE;
        }
        if !report.passed() {
            println!("(--warn-only: regressions reported but not fatal)");
        }
    }

    ExitCode::SUCCESS
}
