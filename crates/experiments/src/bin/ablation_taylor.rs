//! Ablation: how good does the polynomial approximation of the sigmoid have
//! to be? (The paper uses degree H = 1 and argues it suffices; its
//! "extension" discussion points at higher degrees for harder functions.)
//!
//! Reports (a) the sup-norm approximation error of Taylor degrees 1/3/5 and
//! a least-squares fit on the relevant interval, and (b) the end-to-end
//! DPSGD-with-polynomial-gradient accuracy for degrees 1 and 3.
//!
//! `cargo run -p sqm-experiments --release --bin ablation_taylor [--runs N]`

use rand::rngs::StdRng;
use rand::SeedableRng;
use sqm::core::approx::{least_squares_fit, sigmoid_taylor};
use sqm::datasets::presets::acsincome_classification;
use sqm::tasks::logreg::{accuracy, ApproxPolyLogReg, DpSgd, LrConfig};
use sqm_experiments::{mean_std, obsout, parse_options};

fn sigmoid(u: f64) -> f64 {
    1.0 / (1.0 + (-u).exp())
}

fn main() {
    let opts = parse_options();
    println!("=== Ablation: sigmoid approximation degree ===\n");

    // (a) Approximation quality on |u| <= 1 (unit-ball weights x features)
    // and on the wider |u| <= 4.
    println!(
        "{:>24} {:>16} {:>16}",
        "approximation", "sup err |u|<=1", "sup err |u|<=4"
    );
    for deg in [1usize, 3, 5] {
        let p = sigmoid_taylor(deg);
        println!(
            "{:>24} {:>16.5} {:>16.5}",
            format!("Taylor degree {deg}"),
            p.sup_error(sigmoid, -1.0, 1.0),
            p.sup_error(sigmoid, -4.0, 4.0)
        );
    }
    for deg in [3usize, 5] {
        let p = least_squares_fit(sigmoid, -4.0, 4.0, deg);
        println!(
            "{:>24} {:>16.5} {:>16.5}",
            format!("LS fit deg {deg} on [-4,4]"),
            p.sup_error(sigmoid, -1.0, 1.0),
            p.sup_error(sigmoid, -4.0, 4.0)
        );
    }

    // (b) End-to-end: central Gaussian mechanism with exact vs degree-1
    // polynomial gradients. (Degree-1 is what SQM quantizes; if the gap is
    // already negligible here, higher degrees buy nothing for LR.)
    let (train, test) = acsincome_classification(0, opts.scale, opts.seed).split(0.8, opts.seed);
    let cfg = LrConfig::new(200, 0.05).with_lr(2.0);
    let (eps, delta) = (4.0, 1e-5);
    let mut rng = StdRng::seed_from_u64(opts.seed ^ 0xAB1A);
    let exact: Vec<f64> = (0..opts.runs)
        .map(|r| {
            accuracy(
                &DpSgd::new(cfg.clone().with_seed(r as u64), eps, delta).fit(&mut rng, &train),
                &test,
            )
        })
        .collect();
    let poly1: Vec<f64> = (0..opts.runs)
        .map(|r| {
            accuracy(
                &ApproxPolyLogReg::new(cfg.clone().with_seed(r as u64), eps, delta)
                    .fit(&mut rng, &train),
                &test,
            )
        })
        .collect();
    let (em, es) = mean_std(&exact);
    let (pm, ps) = mean_std(&poly1);
    println!("\nend-to-end at (eps = {eps}, delta = {delta}):");
    println!("  exact sigmoid gradient : {em:.4} ± {es:.4}");
    println!("  degree-1 polynomial    : {pm:.4} ± {ps:.4}");
    println!("  gap                    : {:.4}", (em - pm).abs());
    println!("\nConclusion (matches the paper): for LR on unit-ball data, H = 1 already");
    println!("tracks the exact gradient; the approximation is not the bottleneck.");
    obsout::dump_metrics("ablation_taylor").expect("writing results/");
}
