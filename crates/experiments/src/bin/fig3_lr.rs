//! Figure 3: logistic-regression test accuracy versus epsilon, on the four
//! ACSIncome-shaped state datasets, for central DPSGD, SQM at two gammas,
//! and the local-DP VFL baseline.
//!
//! `cargo run -p sqm-experiments --release --bin fig3_lr [--paper] [--runs N]`

use rand::rngs::StdRng;
use rand::SeedableRng;
use sqm::datasets::presets::acsincome_classification;
use sqm::datasets::Scale;
use sqm::tasks::logreg::{accuracy, DpSgd, LocalDpLogReg, LrConfig, NonPrivateLogReg, SqmLogReg};
use sqm_experiments::{fmt_pm, mean_std, obsout, parse_options};

const STATES: [&str; 4] = ["CA", "TX", "NY", "FL"];

fn main() {
    let opts = parse_options();
    let delta = 1e-5;
    // The paper: subsample rate 0.001 and epochs {2,5,8,10,10} for eps
    // {0.5,1,2,4,8}. At laptop scale we keep the same epoch schedule but a
    // larger q so batches are non-trivial on 1600 training records.
    let (q, lr) = match opts.scale {
        Scale::Laptop => (0.05, 2.0),
        Scale::Paper => (0.001, 2.0),
    };
    let eps_epochs: [(f64, u32); 5] = [(0.5, 2), (1.0, 5), (2.0, 8), (4.0, 10), (8.0, 10)];
    println!(
        "=== Figure 3: DP logistic regression (delta = {delta}, q = {q}, {} runs) ===",
        opts.runs
    );

    for (state_idx, state) in STATES.iter().enumerate() {
        let ds = acsincome_classification(state_idx, opts.scale, opts.seed);
        let (train, test) = ds.split(0.8, opts.seed);
        let d = train.features.cols();
        println!(
            "\n--- ACSIncome({state}) : {} train / {} test, {d} features ---",
            train.len(),
            test.len()
        );
        println!(
            "{:>8} {:>8} {:>20} {:>20} {:>20} {:>20} {:>20}",
            "eps", "epochs", "non-private", "DPSGD", "SQM g=2^10", "SQM g=2^13", "local-DP"
        );

        for &(eps, epochs) in &eps_epochs {
            // Rounds: epochs' worth of expected passes at rate q, capped so
            // laptop runs stay fast (uncapped at paper scale).
            let cap = if opts.scale == Scale::Paper {
                u32::MAX
            } else {
                400
            };
            let rounds = (((epochs as f64) / q).round() as u32).min(cap);
            let cfg = LrConfig::new(rounds, q).with_lr(lr).with_seed(opts.seed);
            let mut rng = StdRng::seed_from_u64(opts.seed ^ eps.to_bits() ^ state_idx as u64);

            let collect = |f: &mut dyn FnMut(&mut StdRng, u64) -> Vec<f64>, rng: &mut StdRng| {
                let accs: Vec<f64> = (0..opts.runs)
                    .map(|r| accuracy(&f(rng, r as u64), &test))
                    .collect();
                mean_std(&accs)
            };

            let (np_m, np_s) = collect(
                &mut |rng, r| NonPrivateLogReg::new(cfg.clone().with_seed(r)).fit(rng, &train),
                &mut rng,
            );
            let (dp_m, dp_s) = collect(
                &mut |rng, r| DpSgd::new(cfg.clone().with_seed(r), eps, delta).fit(rng, &train),
                &mut rng,
            );
            let (s10_m, s10_s) = collect(
                &mut |rng, r| {
                    SqmLogReg::new(cfg.clone().with_seed(r), 2f64.powi(10), eps, delta)
                        .fit(rng, &train)
                },
                &mut rng,
            );
            let (s13_m, s13_s) = collect(
                &mut |rng, r| {
                    SqmLogReg::new(cfg.clone().with_seed(r), 2f64.powi(13), eps, delta)
                        .fit(rng, &train)
                },
                &mut rng,
            );
            let (lo_m, lo_s) = collect(
                &mut |rng, _| LocalDpLogReg::new(eps, delta).fit(rng, &train),
                &mut rng,
            );

            println!(
                "{eps:>8.1} {epochs:>8} {:>20} {:>20} {:>20} {:>20} {:>20}",
                fmt_pm(np_m, np_s),
                fmt_pm(dp_m, dp_s),
                fmt_pm(s10_m, s10_s),
                fmt_pm(s13_m, s13_s),
                fmt_pm(lo_m, lo_s),
            );
        }
    }
    obsout::dump_metrics("fig3_lr").expect("writing results/");
}
