//! Table IV: overall simulated time and DP-noise time for PCA and LR as the
//! record count m grows (n = 500, P = 4, gamma = 18, 0.1 s/hop).
//!
//! With `--trace` (or `SQM_TRACE=1`) each cell also writes stats/trace
//! artifacts into `results/` (see EXPERIMENTS.md, "Observability").
//!
//! `cargo run -p sqm-experiments --release --bin table4_record_scaling [--trace]`

use sqm_experiments::{obsout, parse_options, timing};

fn main() {
    let opts = parse_options();
    let n = 500;
    let p = 4;
    let ms = [20usize, 100, 500, 2500];

    println!("=== Table IV: time vs record count (n = {n}, P = {p}, gamma = 18) ===");
    for (task, f) in [
        (
            "PCA",
            timing::time_pca as fn(usize, usize, usize, u64, bool) -> timing::Timing,
        ),
        ("LR", timing::time_lr),
    ] {
        println!("--- {task} ---");
        println!(
            "{:>8} {:>16} {:>20} {:>10} {:>12}",
            "m", "overall (s)", "DP noise (s)", "rounds", "traffic MiB"
        );
        for &m in &ms {
            let t = f(m, n, p, opts.seed, opts.trace);
            println!(
                "{m:>8} {:>16.2} {:>20.2} {:>10} {:>12.2}",
                t.overall.as_secs_f64(),
                t.dp_noise.as_secs_f64(),
                t.rounds,
                t.megabytes
            );
            let name = format!("table4_{}_m{m}", task.to_lowercase());
            obsout::dump_run(&name, &t.stats, t.trace.as_ref()).expect("writing results/");
        }
    }
    obsout::dump_metrics("table4_record_scaling").expect("writing results/");
    println!("\nDP-noise time is independent of m (the noise matrix/vector size depends\nonly on n), while input sharing and local compute grow with m.");
}
