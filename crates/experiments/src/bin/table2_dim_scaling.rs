//! Table II: overall simulated time and DP-noise time for PCA and LR as the
//! data dimension n grows (m = 1000, P = 4, gamma = 18, 0.1 s/hop).
//!
//! The n = 2500 row is gated behind `--full` (minutes of local compute).
//! With `--trace` (or `SQM_TRACE=1`) every cell additionally writes its MPC
//! stats JSON, a trace JSONL and a Chrome trace-event file into `results/`,
//! and prints a per-phase summary whose total reproduces the virtual clock.
//!
//! `cargo run -p sqm-experiments --release --bin table2_dim_scaling [--full] [--trace]`

use sqm_experiments::{obsout, parse_options, timing};

fn main() {
    let opts = parse_options();
    let m = 1000;
    let p = 4;
    let mut dims = vec![20usize, 100, 500];
    if opts.full {
        dims.push(2500);
    }

    println!("=== Table II: time vs data dimension (m = {m}, P = {p}, gamma = 18) ===");
    println!("--- PCA ---");
    println!(
        "{:>8} {:>16} {:>20} {:>10} {:>12}",
        "n", "overall (s)", "DP noise (s)", "rounds", "traffic MiB"
    );
    for &n in &dims {
        let t = timing::time_pca(m, n, p, opts.seed, opts.trace);
        println!(
            "{n:>8} {:>16.2} {:>20.2} {:>10} {:>12.2}",
            t.overall.as_secs_f64(),
            t.dp_noise.as_secs_f64(),
            t.rounds,
            t.megabytes
        );
        obsout::dump_run(&format!("table2_pca_n{n}"), &t.stats, t.trace.as_ref())
            .expect("writing results/");
    }
    println!("--- LR ---");
    println!(
        "{:>8} {:>16} {:>20} {:>10} {:>12}",
        "n", "overall (s)", "DP noise (s)", "rounds", "traffic MiB"
    );
    for &n in &dims {
        let t = timing::time_lr(m, n, p, opts.seed, opts.trace);
        println!(
            "{n:>8} {:>16.2} {:>20.2} {:>10} {:>12.2}",
            t.overall.as_secs_f64(),
            t.dp_noise.as_secs_f64(),
            t.rounds,
            t.megabytes
        );
        obsout::dump_run(&format!("table2_lr_n{n}"), &t.stats, t.trace.as_ref())
            .expect("writing results/");
    }
    obsout::dump_metrics("table2_dim_scaling").expect("writing results/");
    println!("\nAs n grows the DP-noise cost stays a single exchange round; the overall\ncost is dominated by the covariance/gradient computation (the paper's conclusion).");
}
