//! Table V: overall simulated time and DP-noise time for PCA and LR as the
//! number of clients P grows (m = n = 500, gamma = 18, 0.1 s/hop).
//!
//! With `--trace` (or `SQM_TRACE=1`) each cell also writes stats/trace
//! artifacts into `results/` (see EXPERIMENTS.md, "Observability").
//!
//! `cargo run -p sqm-experiments --release --bin table5_client_scaling [--trace]`

use sqm_experiments::{obsout, parse_options, timing};

fn main() {
    let opts = parse_options();
    let (m, n) = (500usize, 500usize);
    let ps = [4usize, 10, 20];

    println!("=== Table V: time vs client count (m = {m}, n = {n}, gamma = 18) ===");
    for (task, f) in [
        (
            "PCA",
            timing::time_pca as fn(usize, usize, usize, u64, bool) -> timing::Timing,
        ),
        ("LR", timing::time_lr),
    ] {
        println!("--- {task} ---");
        println!(
            "{:>8} {:>16} {:>20} {:>10} {:>12}",
            "P", "overall (s)", "DP noise (s)", "rounds", "traffic MiB"
        );
        for &p in &ps {
            let t = f(m, n, p, opts.seed, opts.trace);
            println!(
                "{p:>8} {:>16.2} {:>20.2} {:>10} {:>12.2}",
                t.overall.as_secs_f64(),
                t.dp_noise.as_secs_f64(),
                t.rounds,
                t.megabytes
            );
            let name = format!("table5_{}_p{p}", task.to_lowercase());
            obsout::dump_run(&name, &t.stats, t.trace.as_ref()).expect("writing results/");
        }
    }
    obsout::dump_metrics("table5_client_scaling").expect("writing results/");
    println!("\nTraffic grows with P^2 (full-mesh sharing) and noise aggregation grows\nwith P, but the DP phase remains a single round — matching Table V's trend.");
}
