//! Figure 2: PCA utility `||X V||_F^2` versus epsilon (and versus the
//! number of top components), for central DP, SQM at several gamma, and the
//! local-DP VFL baseline, on all four dataset shapes.
//!
//! `cargo run -p sqm-experiments --release --bin fig2_pca [--paper] [--runs N]`

use rand::rngs::StdRng;
use rand::SeedableRng;
use sqm::linalg::Matrix;
use sqm::tasks::pca::{pca_utility, AnalyzeGaussPca, LocalDpPca, NonPrivatePca, SqmPca};
use sqm_experiments::{fmt_pm, mean_std, obsout, parse_options};

struct DatasetCase {
    name: &'static str,
    data: Matrix,
    eps_grid: Vec<f64>,
    gammas_log2: Vec<i32>,
    k: usize,
}

fn main() {
    let opts = parse_options();
    let delta = 1e-5;
    println!(
        "=== Figure 2: DP PCA utility (delta = {delta}, {} runs) ===",
        opts.runs
    );

    let cases = vec![
        DatasetCase {
            name: "KDDCUP",
            data: sqm::datasets::kddcup_like(opts.scale, opts.seed),
            eps_grid: vec![0.25, 0.5, 1.0, 2.0, 4.0, 8.0],
            gammas_log2: vec![6, 10, 14],
            k: 10,
        },
        DatasetCase {
            name: "ACSIncome(CA)",
            data: sqm::datasets::acsincome_like(0, opts.scale, opts.seed),
            eps_grid: vec![0.25, 0.5, 1.0, 2.0, 4.0, 8.0],
            gammas_log2: vec![6, 10, 14],
            k: 10,
        },
        DatasetCase {
            name: "CiteSeer",
            data: sqm::datasets::citeseer_like(opts.scale, opts.seed),
            eps_grid: vec![4.0, 8.0, 16.0, 32.0],
            gammas_log2: vec![8, 12, 16],
            k: 10,
        },
        DatasetCase {
            name: "Gene",
            data: sqm::datasets::gene_like(opts.scale, opts.seed),
            eps_grid: vec![4.0, 8.0, 16.0, 32.0],
            gammas_log2: vec![8, 14, 18],
            k: 10,
        },
    ];

    for case in cases {
        let (m, n) = (case.data.rows(), case.data.cols());
        let k = case.k.min(n);
        println!("\n--- {} (m = {m}, n = {n}, top-{k}) ---", case.name);
        let ceiling = pca_utility(&case.data, &NonPrivatePca::new(k).fit(&case.data));
        println!("non-private ceiling: {ceiling:.2}");

        // Header.
        let mut cols = vec!["eps".to_string(), "central".to_string()];
        for g in &case.gammas_log2 {
            cols.push(format!("SQM g=2^{g}"));
        }
        cols.push("local-DP".to_string());
        println!(
            "{}",
            cols.iter()
                .map(|c| format!("{c:>22}"))
                .collect::<Vec<_>>()
                .join("")
        );

        for &eps in &case.eps_grid {
            let mut row = vec![format!("{eps:>22.2}")];
            let mut rng = StdRng::seed_from_u64(opts.seed ^ eps.to_bits());

            let central: Vec<f64> = (0..opts.runs)
                .map(|_| {
                    pca_utility(
                        &case.data,
                        &AnalyzeGaussPca::new(k, eps, delta).fit(&mut rng, &case.data),
                    )
                })
                .collect();
            let (cm, cs) = mean_std(&central);
            row.push(format!("{:>22}", fmt_pm(cm, cs)));

            for &g in &case.gammas_log2 {
                let gamma = 2f64.powi(g);
                let vals: Vec<f64> = (0..opts.runs)
                    .map(|_| {
                        pca_utility(
                            &case.data,
                            &SqmPca::new(k, gamma, eps, delta).fit(&mut rng, &case.data),
                        )
                    })
                    .collect();
                let (m1, s1) = mean_std(&vals);
                row.push(format!("{:>22}", fmt_pm(m1, s1)));
            }

            let local: Vec<f64> = (0..opts.runs)
                .map(|_| {
                    pca_utility(
                        &case.data,
                        &LocalDpPca::new(k, eps, delta).fit(&mut rng, &case.data),
                    )
                })
                .collect();
            let (lm, ls) = mean_std(&local);
            row.push(format!("{:>22}", fmt_pm(lm, ls)));
            println!("{}", row.join(""));
        }

        // Secondary sweep: utility vs number of components at mid epsilon.
        let eps = case.eps_grid[case.eps_grid.len() / 2];
        let gamma = 2f64.powi(*case.gammas_log2.last().unwrap());
        println!("  -- utility vs top-k at eps = {eps}, gamma = {gamma} --");
        println!(
            "{:>8} {:>14} {:>14} {:>14}",
            "k", "central", "SQM", "local-DP"
        );
        let mut rng = StdRng::seed_from_u64(opts.seed ^ 0xF162);
        for k2 in [2usize, 5, 10, 20] {
            let k2 = k2.min(n);
            let c = pca_utility(
                &case.data,
                &AnalyzeGaussPca::new(k2, eps, delta).fit(&mut rng, &case.data),
            );
            let s = pca_utility(
                &case.data,
                &SqmPca::new(k2, gamma, eps, delta).fit(&mut rng, &case.data),
            );
            let l = pca_utility(
                &case.data,
                &LocalDpPca::new(k2, eps, delta).fit(&mut rng, &case.data),
            );
            println!("{k2:>8} {c:>14.2} {s:>14.2} {l:>14.2}");
        }
    }
    obsout::dump_metrics("fig2_pca").expect("writing results/");
}
