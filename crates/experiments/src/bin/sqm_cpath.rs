//! Measured-critical-path vs. uniform-latency-model divergence.
//!
//! The paper's timing tables charge every protocol round a uniform
//! `0.1 s` hop — i.e. they model the critical path as `rounds * latency`,
//! with compute free. This binary measures the *actual* critical path of
//! the same Table II workloads (PCA covariance and one LR gradient pass;
//! default m = 100, n = 20, P = 4) from the causal message DAG: every
//! send/recv is stamped (run id, party, round, link seq, Lamport clock),
//! the cross-party flow graph is reconstructed, and the latency-weighted
//! critical path is walked — on both the in-process mesh and loopback TCP.
//!
//! The divergence column is `(measured - model) / model`: exactly the
//! share of the end-to-end critical path that the uniform-latency model
//! does not account for (compute, stragglers, and — on TCP — real socket
//! time). On the in-process backend the run asserts the measured critical
//! path reproduces `RunStats::simulated_time()` bit-exactly before
//! writing anything.
//!
//! Output: `results/cpath_divergence.csv`, deterministic under a fixed
//! `--seed`: the protocol-derived columns (`rounds`, `messages`,
//! `flow_edges`, `model_critical_s`) are exact, and the measured columns
//! fold in wall-clock compute so they are written at a precision coarse
//! enough to be stable across repeated runs on the same machine class.
//! The stdout table additionally shows finer-grained, run-specific
//! detail (cross-party hops on the walked path, sub-percent divergence)
//! that deliberately stays out of the CSV.
//!
//! `cargo run -p sqm-experiments --release --bin sqm_cpath [--paper] [--seed S]`

use std::time::Duration;

use sqm::datasets::{Scale, SpectralSpec};
use sqm::mpc::RunStats;
use sqm::obs::trace::Trace;
use sqm::obs::MessageDag;
use sqm::vfl::covariance::covariance_skellam;
use sqm::vfl::gradient::gradient_sum_skellam;
use sqm::vfl::{ColumnPartition, NetBackend, VflConfig};
use sqm_experiments::{obsout, parse_options};

const HOP_LATENCY: Duration = Duration::from_millis(100);
const GAMMA: f64 = 18.0;
const MU: f64 = 100.0;

struct Row {
    workload: &'static str,
    backend: &'static str,
    parties: usize,
    rounds: u64,
    messages: u64,
    flow_edges: usize,
    cross_hops: u64,
    model_critical_s: f64,
    measured_critical_s: f64,
}

impl Row {
    fn divergence_pct(&self) -> f64 {
        (self.measured_critical_s - self.model_critical_s) / self.model_critical_s * 100.0
    }
}

fn cfg(p: usize, seed: u64, backend: &NetBackend) -> VflConfig {
    VflConfig::new(p)
        .with_latency(HOP_LATENCY)
        .with_seed(seed)
        .with_trace(true)
        .with_backend(backend.clone())
        .with_live(sqm_experiments::live_config())
}

fn analyze(
    workload: &'static str,
    backend_name: &'static str,
    p: usize,
    stats: &RunStats,
    trace: &Trace,
) -> Row {
    let dag = MessageDag::build(trace);
    assert!(
        dag.fully_matched(),
        "{workload}/{backend_name}: every stamped send must match one recv"
    );
    assert_eq!(
        dag.lamport_violations(),
        0,
        "{workload}/{backend_name}: Lamport clocks must be monotone"
    );
    let cp = dag.critical_path();
    // The virtual clock IS the critical path; the reconstruction must
    // reproduce it exactly (same Instant measurements, same latency math).
    assert_eq!(
        cp.total,
        stats.simulated_time(),
        "{workload}/{backend_name}: causal critical path must equal the virtual clock"
    );
    Row {
        workload,
        backend: backend_name,
        parties: p,
        rounds: stats.total.rounds,
        messages: stats.total.messages,
        flow_edges: dag.edges().len(),
        cross_hops: cp.cross_hops,
        model_critical_s: (HOP_LATENCY * stats.total.rounds as u32).as_secs_f64(),
        measured_critical_s: cp.total.as_secs_f64(),
    }
}

fn run_pca(m: usize, n: usize, p: usize, seed: u64, backend: &NetBackend) -> Row {
    let name = backend_name(backend);
    let data = SpectralSpec::new(m, n).with_seed(seed).generate();
    let partition = ColumnPartition::even(n, p);
    let out = covariance_skellam(&data, &partition, GAMMA, MU, &cfg(p, seed, backend));
    let trace = out.trace.as_ref().expect("tracing enabled");
    analyze("pca_covariance", name, p, &out.stats, trace)
}

fn run_lr(m: usize, n: usize, p: usize, seed: u64, backend: &NetBackend) -> Row {
    let name = backend_name(backend);
    let data = SpectralSpec::new(m, n).with_seed(seed).generate();
    let partition = ColumnPartition::even(n, p);
    let batch: Vec<usize> = (0..m).collect();
    let w = vec![0.01; n - 1];
    let out = gradient_sum_skellam(
        &data,
        &partition,
        &batch,
        &w,
        GAMMA,
        MU,
        &cfg(p, seed, backend),
    );
    let trace = out.trace.as_ref().expect("tracing enabled");
    analyze("lr_gradient", name, p, &out.stats, trace)
}

fn backend_name(backend: &NetBackend) -> &'static str {
    match backend {
        NetBackend::InProcess => "in_process",
        NetBackend::Tcp(_) => "tcp",
    }
}

fn main() {
    let opts = parse_options();
    let (m, n, p) = match opts.scale {
        Scale::Laptop => (100, 20, 4),
        Scale::Paper => (1000, 100, 4),
    };

    println!("=== Critical-path divergence (m = {m}, n = {n}, P = {p}) ===");
    println!(
        "model = rounds x {HOP_LATENCY:?} (the paper's uniform-latency charge); \
         measured = critical path of the causal message DAG"
    );
    println!(
        "{:>16} {:>11} {:>8} {:>10} {:>11} {:>10} {:>10} {:>12} {:>11}",
        "workload",
        "backend",
        "rounds",
        "messages",
        "flow edges",
        "x-hops",
        "model (s)",
        "measured (s)",
        "diverge (%)"
    );

    let backends = [NetBackend::InProcess, NetBackend::tcp()];
    let mut rows = Vec::new();
    for backend in &backends {
        rows.push(run_pca(m, n, p, opts.seed, backend));
        rows.push(run_lr(m, n, p, opts.seed, backend));
    }

    let mut csv = String::from(
        "workload,backend,parties,rounds,messages,flow_edges,\
         model_critical_s,measured_critical_s,divergence_pct\n",
    );
    for r in &rows {
        println!(
            "{:>16} {:>11} {:>8} {:>10} {:>11} {:>10} {:>10.1} {:>12.2} {:>11.1}",
            r.workload,
            r.backend,
            r.rounds,
            r.messages,
            r.flow_edges,
            r.cross_hops,
            r.model_critical_s,
            r.measured_critical_s,
            r.divergence_pct(),
        );
        csv.push_str(&format!(
            "{},{},{},{},{},{},{:.6},{:.1},{:.0}\n",
            r.workload,
            r.backend,
            r.parties,
            r.rounds,
            r.messages,
            r.flow_edges,
            r.model_critical_s,
            r.measured_critical_s,
            r.divergence_pct(),
        ));
    }

    let path = obsout::results_dir().join("cpath_divergence.csv");
    sqm::obs::atomic_write_str(&path, &csv).expect("writing results/cpath_divergence.csv");
    println!("\nwrote {}", path.display());
    println!(
        "Divergence is the critical-path share the uniform model leaves out: compute\n\
         and (on tcp) real socket time; the latency charge itself is identical."
    );
}
