//! Real-network validation of the simulated timing tables.
//!
//! The paper's Tables II/IV/V report *simulated* times: all parties run on
//! one machine and every message hop is charged a uniform latency
//! (0.1 s/hop). This binary checks that model against an actual network
//! stack by running the same Table II workloads (PCA covariance and one LR
//! gradient pass; default m = 100, n = 20, P = 4) twice:
//!
//! 1. **in-process** — the channel mesh, reporting the virtual-clock
//!    prediction `wall + rounds * 0.1 s`;
//! 2. **loopback TCP** — real sockets, real syscalls, real framing,
//!    reporting measured wall-clock (loopback latency is microseconds, so
//!    the per-hop charge is effectively zero).
//!
//! The run asserts the two backends open *identical* results and move the
//! same number of protocol messages/bytes, then writes the comparison to
//! `results/netcheck_timing.csv`. The interesting column is the gap: the
//! simulated number is `rounds * 0.1 s` plus compute, while loopback TCP
//! shows what the same protocol costs when the medium is nearly free —
//! bounding the part of the paper's timing that is *model*, not compute.
//!
//! `cargo run -p sqm-experiments --release --bin netcheck_timing [--paper] [--seed S]`

use std::time::{Duration, Instant};

use sqm::datasets::{Scale, SpectralSpec};
use sqm::vfl::covariance::covariance_skellam;
use sqm::vfl::gradient::gradient_sum_skellam;
use sqm::vfl::{ColumnPartition, NetBackend, VflConfig};
use sqm_experiments::{obsout, parse_options};

const HOP_LATENCY: Duration = Duration::from_millis(100);
const GAMMA: f64 = 18.0;
const MU: f64 = 100.0;

struct Row {
    workload: &'static str,
    rounds: u64,
    messages: u64,
    bytes: u64,
    simulated_s: f64,
    measured_tcp_s: f64,
}

fn cfg(p: usize, seed: u64) -> VflConfig {
    VflConfig::new(p)
        .with_latency(HOP_LATENCY)
        .with_seed(seed)
        .with_live(sqm_experiments::live_config())
}

fn run_pca(m: usize, n: usize, p: usize, seed: u64) -> Row {
    let data = SpectralSpec::new(m, n).with_seed(seed).generate();
    let partition = ColumnPartition::even(n, p);

    let sim = covariance_skellam(&data, &partition, GAMMA, MU, &cfg(p, seed));
    let started = Instant::now();
    let tcp = covariance_skellam(
        &data,
        &partition,
        GAMMA,
        MU,
        &cfg(p, seed).with_backend(NetBackend::tcp()),
    );
    let measured = started.elapsed();

    assert_eq!(sim.c_hat, tcp.c_hat, "backends disagree on the covariance");
    assert_eq!(sim.stats.total.messages, tcp.stats.total.messages);
    assert_eq!(sim.stats.total.bytes, tcp.stats.total.bytes);

    Row {
        workload: "pca_covariance",
        rounds: sim.stats.total.rounds,
        messages: sim.stats.total.messages,
        bytes: sim.stats.total.bytes,
        simulated_s: sim.stats.simulated_time().as_secs_f64(),
        measured_tcp_s: measured.as_secs_f64(),
    }
}

fn run_lr(m: usize, n: usize, p: usize, seed: u64) -> Row {
    let data = SpectralSpec::new(m, n).with_seed(seed).generate();
    let partition = ColumnPartition::even(n, p);
    let batch: Vec<usize> = (0..m).collect();
    let w = vec![0.01; n - 1];

    let sim = gradient_sum_skellam(&data, &partition, &batch, &w, GAMMA, MU, &cfg(p, seed));
    let started = Instant::now();
    let tcp = gradient_sum_skellam(
        &data,
        &partition,
        &batch,
        &w,
        GAMMA,
        MU,
        &cfg(p, seed).with_backend(NetBackend::tcp()),
    );
    let measured = started.elapsed();

    assert_eq!(
        sim.grad_sum, tcp.grad_sum,
        "backends disagree on the gradient"
    );
    assert_eq!(sim.stats.total.messages, tcp.stats.total.messages);
    assert_eq!(sim.stats.total.bytes, tcp.stats.total.bytes);

    Row {
        workload: "lr_gradient",
        rounds: sim.stats.total.rounds,
        messages: sim.stats.total.messages,
        bytes: sim.stats.total.bytes,
        simulated_s: sim.stats.simulated_time().as_secs_f64(),
        measured_tcp_s: measured.as_secs_f64(),
    }
}

fn main() {
    let opts = parse_options();
    // This binary exists to compare transports, so always record metrics:
    // the TCP backend fills per-link send/recv latency histograms
    // (`net.tcp.{send,recv}_ns.*`) that contextualize the CSV's wall-clock
    // column, dumped as a snapshot next to it.
    sqm::obs::metrics::set_enabled(true);
    let (m, n, p) = match opts.scale {
        Scale::Laptop => (100, 20, 4),
        Scale::Paper => (1000, 100, 4),
    };

    println!("=== Real-network validation (m = {m}, n = {n}, P = {p}) ===");
    println!(
        "simulated = in-process virtual clock at {:?}/hop; measured = loopback TCP wall-clock",
        HOP_LATENCY
    );
    println!(
        "{:>16} {:>8} {:>10} {:>12} {:>14} {:>14} {:>10}",
        "workload", "rounds", "messages", "bytes", "simulated (s)", "tcp wall (s)", "model/tcp"
    );

    let rows = vec![run_pca(m, n, p, opts.seed), run_lr(m, n, p, opts.seed)];
    let mut csv = String::from("workload,rounds,messages,bytes,simulated_s,measured_tcp_s\n");
    for r in &rows {
        println!(
            "{:>16} {:>8} {:>10} {:>12} {:>14.3} {:>14.3} {:>9.1}x",
            r.workload,
            r.rounds,
            r.messages,
            r.bytes,
            r.simulated_s,
            r.measured_tcp_s,
            r.simulated_s / r.measured_tcp_s.max(1e-9),
        );
        csv.push_str(&format!(
            "{},{},{},{},{:.6},{:.6}\n",
            r.workload, r.rounds, r.messages, r.bytes, r.simulated_s, r.measured_tcp_s
        ));
    }

    let path = obsout::results_dir().join("netcheck_timing.csv");
    sqm::obs::atomic_write_str(&path, &csv).expect("writing results/netcheck_timing.csv");
    println!("\nwrote {}", path.display());
    obsout::dump_metrics("netcheck_timing").expect("writing metrics snapshot");
    println!(
        "Outputs and traffic were asserted identical across backends; the timing gap is\n\
         the uniform-latency charge ({:?} x rounds) the paper's tables are built on.",
        HOP_LATENCY
    );
}
