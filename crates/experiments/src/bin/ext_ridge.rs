//! Extension experiment: SQM ridge regression (not in the paper's
//! evaluation — it instantiates the "polynomial sufficient statistics"
//! extension the paper's discussion proposes).
//!
//! `cargo run -p sqm-experiments --release --bin ext_ridge [--runs N]`

use rand::rngs::StdRng;
use rand::SeedableRng;
use sqm::datasets::RegressionSpec;
use sqm::tasks::ridge::{GaussianRidge, LocalDpRidge, NonPrivateRidge, SqmRidge};
use sqm_experiments::{fmt_pm, mean_std, obsout, parse_options};

fn main() {
    let opts = parse_options();
    let (train, test) = RegressionSpec::new(4000, 20)
        .with_seed(opts.seed)
        .generate()
        .split(0.8, opts.seed);
    let lambda = 1e-3;
    let delta = 1e-5;
    println!(
        "=== Extension: DP ridge regression ({} train / {} test, d = 20, lambda = {lambda}) ===",
        train.len(),
        test.len()
    );
    let floor = test.mse(&NonPrivateRidge::new(lambda).fit(&train));
    println!("non-private MSE floor: {floor:.5}\n");
    println!(
        "{:>8} {:>20} {:>20} {:>20} {:>20}",
        "eps", "central Gaussian", "SQM g=2^8", "SQM g=2^13", "local-DP"
    );
    for eps in [0.25f64, 0.5, 1.0, 2.0, 4.0, 8.0] {
        let mut rng = StdRng::seed_from_u64(opts.seed ^ eps.to_bits());
        let runs = opts.runs.max(3);
        let collect = |f: &mut dyn FnMut(&mut StdRng) -> Vec<f64>, rng: &mut StdRng| {
            let errs: Vec<f64> = (0..runs).map(|_| test.mse(&f(rng))).collect();
            mean_std(&errs)
        };
        let (cm, cs) = collect(
            &mut |r| GaussianRidge::new(lambda, eps, delta).fit(r, &train),
            &mut rng,
        );
        let (s8m, s8s) = collect(
            &mut |r| SqmRidge::new(lambda, 256.0, eps, delta).fit(r, &train),
            &mut rng,
        );
        let (s13m, s13s) = collect(
            &mut |r| SqmRidge::new(lambda, 8192.0, eps, delta).fit(r, &train),
            &mut rng,
        );
        let (lm, ls) = collect(
            &mut |r| LocalDpRidge::new(lambda, eps, delta).fit(r, &train),
            &mut rng,
        );
        println!(
            "{eps:>8.2} {:>20} {:>20} {:>20} {:>20}",
            fmt_pm(cm, cs),
            fmt_pm(s8m, s8s),
            fmt_pm(s13m, s13s),
            fmt_pm(lm, ls)
        );
    }
    println!("\n(MSE, lower is better: SQM tracks the central mechanism and local-DP trails.)");
    obsout::dump_metrics("ext_ridge").expect("writing results/");
}
