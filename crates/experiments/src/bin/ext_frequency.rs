//! Extension experiment: DP frequency estimation — single-attribute
//! histograms (degree-1) and cross-party contingency tables (degree-2) —
//! the multiparty frequency-estimation workload inside SQM's polynomial
//! class.
//!
//! `cargo run -p sqm-experiments --release --bin ext_frequency [--runs N]`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqm::tasks::histogram::{
    exact_contingency, l1_error, tv_distance, Categorical, GaussianHistogram, SqmContingency,
    SqmHistogram,
};
use sqm_experiments::{fmt_pm, mean_std, obsout, parse_options};

fn skewed(m: usize, k: usize, seed: u64) -> Categorical {
    let mut rng = StdRng::seed_from_u64(seed);
    Categorical::new(
        (0..m)
            .map(|_| {
                let u: f64 = rng.gen();
                ((u * u) * k as f64) as usize % k
            })
            .collect(),
        k,
    )
}

fn main() {
    let opts = parse_options();
    let m = 20_000;
    let k = 16;
    let data = skewed(m, k, opts.seed);
    let truth = data.exact_counts();
    println!("=== Extension: DP frequency estimation (m = {m}, k = {k} categories) ===\n");
    println!("-- single-attribute histogram: L1 error (counts) --");
    println!(
        "{:>8} {:>22} {:>22} {:>14}",
        "eps", "SQM (gamma=2^13)", "central Gaussian", "SQM TV dist"
    );
    for eps in [0.25f64, 1.0, 4.0] {
        let mut rng = StdRng::seed_from_u64(opts.seed ^ eps.to_bits());
        let runs = opts.runs.max(3);
        let sqm: Vec<f64> = (0..runs)
            .map(|_| {
                l1_error(
                    &SqmHistogram::new(8192.0, eps, 1e-5).estimate(&mut rng, &data),
                    &truth,
                )
            })
            .collect();
        let central: Vec<f64> = (0..runs)
            .map(|_| {
                l1_error(
                    &GaussianHistogram::new(eps, 1e-5).estimate(&mut rng, &data),
                    &truth,
                )
            })
            .collect();
        let tv: f64 = (0..runs)
            .map(|_| {
                tv_distance(
                    &SqmHistogram::new(8192.0, eps, 1e-5).estimate(&mut rng, &data),
                    &truth,
                )
            })
            .sum::<f64>()
            / runs as f64;
        let (sm, ss) = mean_std(&sqm);
        let (cm, cs) = mean_std(&central);
        println!(
            "{eps:>8.2} {:>22} {:>22} {tv:>14.5}",
            fmt_pm(sm, ss),
            fmt_pm(cm, cs)
        );
    }

    println!("\n-- cross-party contingency table (4 x 5 categories) --");
    let a = skewed(m, 4, opts.seed ^ 1);
    let b = skewed(m, 5, opts.seed ^ 2);
    let t_truth = exact_contingency(&a, &b);
    println!("{:>8} {:>24}", "eps", "rel. Frobenius error");
    for eps in [1.0f64, 4.0, 16.0] {
        let mut rng = StdRng::seed_from_u64(opts.seed ^ eps.to_bits() ^ 7);
        let runs = opts.runs.max(3);
        let errs: Vec<f64> = (0..runs)
            .map(|_| {
                let est = SqmContingency::new(8192.0, eps, 1e-5).estimate(&mut rng, &a, &b);
                est.sub(&t_truth).frobenius_norm() / t_truth.frobenius_norm()
            })
            .collect();
        let (em, es) = mean_std(&errs);
        println!("{eps:>8.2} {:>24}", fmt_pm(em, es));
    }
    println!("\nBoth organizations learn the joint table; neither learns the other's column.");
    obsout::dump_metrics("ext_frequency").expect("writing results/");
}
