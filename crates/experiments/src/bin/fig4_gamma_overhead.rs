//! Figure 4: effect of the scaling parameter gamma on (left) the L2
//! sensitivity overhead of SQM-LR versus the unquantized bound 3/4, and
//! (right) the normalized Skellam noise scale versus centralized DPSGD's
//! Gaussian sigma — both vanish as gamma grows.
//!
//! Parameters follow the paper: d = 800, eps = 1, delta = 1e-5, subsample
//! rate 0.001, 5 epochs.
//!
//! `cargo run -p sqm-experiments --release --bin fig4_gamma_overhead`

use sqm::accounting::calibration::{
    calibrate_gaussian_sigma, calibrate_skellam_mu, CalibrationTarget,
};
use sqm::core::sensitivity::{lr_sensitivity, lr_sensitivity_overhead};
use sqm::tasks::logreg::sqm_normalized_noise_std;
use sqm_experiments::{obsout, parse_options};

fn main() {
    // Figure 4 is fully analytic and takes no parameters, but flags are
    // still validated so typos fail loudly like in every other binary.
    let _ = parse_options();
    let d = 800usize;
    let target = CalibrationTarget::new(1.0, 1e-5);
    let q = 0.001;
    let epochs = 5u32;
    let rounds = ((epochs as f64 / q).round()) as u32;

    println!(
        "=== Figure 4: effect of gamma (d = {d}, eps = 1, delta = 1e-5, q = {q}, R = {rounds}) ==="
    );
    println!(
        "{:>10} {:>26} {:>22} {:>22} {:>18}",
        "gamma", "sensitivity overhead", "SQM noise std", "DPSGD sigma", "noise overhead"
    );

    // The centralized reference: DPSGD with clip 3/4 (the same worst-case
    // gradient norm the polynomial bound gives on the raw data).
    let sigma_gauss = calibrate_gaussian_sigma(target, 0.75, rounds, q);

    for gamma in [64.0f64, 256.0, 1024.0, 4096.0, 16384.0, 65536.0] {
        // Left panel: sqrt((3/4)^2 + 9d/gamma + 36/gamma^2) - 3/4.
        let sens_overhead = lr_sensitivity_overhead(gamma, d);
        // Right panel: minimal Skellam scale at the target privacy,
        // normalized to the gradient's units.
        let mu = calibrate_skellam_mu(target, lr_sensitivity(gamma, d), rounds, q);
        let sqm_std = sqm_normalized_noise_std(gamma, mu);
        let noise_overhead = sqm_std / sigma_gauss - 1.0;
        println!(
            "{gamma:>10.0} {sens_overhead:>26.6} {sqm_std:>22.6} {sigma_gauss:>22.6} {noise_overhead:>18.6}"
        );
    }
    println!(
        "\nBoth overheads decay toward 0 as gamma grows (log-scale y in the paper's plot),\n\
         explaining why SQM approaches the centralized competitor in Figure 3."
    );
    obsout::dump_metrics("fig4_gamma_overhead").expect("writing results/");
}
