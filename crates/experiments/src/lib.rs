//! Shared plumbing for the experiment binaries.
//!
//! Every binary regenerates one table or figure of the paper (see
//! `DESIGN.md` for the index) and accepts:
//!
//! * `--paper` — run at the paper's full dataset sizes (default: laptop
//!   scale, which regenerates every figure in minutes);
//! * `--runs N` — number of independent repetitions to average (paper: 20);
//! * `--seed S` — base RNG seed;
//! * `--trace` (or `SQM_TRACE=1`) — enable the observability layer:
//!   metrics recording plus, for the timing tables, per-phase trace
//!   exports into `results/` (JSONL + Chrome trace-event JSON);
//! * `--live [addr]` (or `SQM_LIVE=1` / `SQM_LIVE=addr`) — stream live
//!   telemetry while the run executes: Prometheus text at
//!   `http://<addr>/metrics`, a JSON snapshot at `/snapshot`, a stall
//!   watchdog, and a crash flight recorder (default addr
//!   `127.0.0.1:9184`);
//! * `--prof` (or `SQM_PROF=1`) — attach the deterministic cost profiler
//!   (`sqm_obs::prof`): collapsed-stack attribution of every MPC round,
//!   degree reduction and Skellam draw, a batching-opportunity report, and
//!   seed-deterministic `results/prof_<seed>.{folded,json,html}` artifacts
//!   dumped at exit. Release bits are identical with or without it.

use std::sync::OnceLock;

use sqm::datasets::Scale;
use sqm::obs::live::LiveConfig;
use sqm::obs::prof::ProfConfig;

/// Default bind address for `--live` without an explicit value.
pub const DEFAULT_LIVE_ADDR: &str = "127.0.0.1:9184";

/// Parsed common CLI options.
#[derive(Clone, Debug)]
pub struct ExpOptions {
    pub scale: Scale,
    pub runs: usize,
    pub seed: u64,
    /// Include the most expensive configurations (e.g. n = 2500 in
    /// Table II).
    pub full: bool,
    /// Observability on: record metrics and export traces.
    pub trace: bool,
    /// Live-telemetry bind address (`--live [addr]` / `SQM_LIVE`).
    pub live: Option<String>,
    /// Cost profiler on (`--prof` / `SQM_PROF=1`).
    pub prof: bool,
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions {
            scale: Scale::Laptop,
            runs: 3,
            seed: 0,
            full: false,
            trace: std::env::var("SQM_TRACE").ok().as_deref() == Some("1"),
            live: live_addr_from_env(),
            prof: std::env::var("SQM_PROF").ok().as_deref() == Some("1"),
        }
    }
}

/// The live-telemetry bind address requested through `SQM_LIVE`:
/// unset/empty/`0` means off, `1` means the default loopback address,
/// anything else is taken as the address itself.
pub fn live_addr_from_env() -> Option<String> {
    match std::env::var("SQM_LIVE").ok().as_deref() {
        None | Some("") | Some("0") => None,
        Some("1") => Some(DEFAULT_LIVE_ADDR.to_string()),
        Some(addr) => Some(addr.to_string()),
    }
}

static LIVE_CONFIG: OnceLock<Option<LiveConfig>> = OnceLock::new();

/// The live-telemetry config selected by [`parse_options`] (`None` when
/// `--live` was not requested). The timing harness attaches this to every
/// `VflConfig` it builds, so watchdog run-bracketing and flight-recorder
/// dumps follow the workload without each binary threading the flag
/// through by hand.
pub fn live_config() -> Option<LiveConfig> {
    LIVE_CONFIG.get().cloned().flatten()
}

static PROF_CONFIG: OnceLock<Option<ProfConfig>> = OnceLock::new();

/// The profiler config selected by [`parse_options`] (`None` when `--prof`
/// was not requested). The timing harness attaches this to every
/// `VflConfig` it builds, so attribution follows the workload without each
/// binary threading the flag through by hand; artifacts land in
/// `results/prof_<seed>.*` via [`obsout::dump_prof`].
pub fn prof_config() -> Option<ProfConfig> {
    PROF_CONFIG.get().cloned().flatten()
}

/// Remember whether the cost profiler was requested. First call wins,
/// mirroring [`install_live`]. The profiler itself is installed lazily by
/// the first MPC engine run that carries the config.
pub fn install_prof(enabled: bool) {
    let cfg = enabled.then(|| ProfConfig::default().with_dir("results"));
    let _ = PROF_CONFIG.set(cfg);
}

/// Parse the common flags from `std::env::args`.
///
/// When tracing is requested (via `--trace` or `SQM_TRACE=1`) this also
/// switches the global metrics registry on. When live telemetry is
/// requested (`--live [addr]` / `SQM_LIVE`), the process-global collector
/// is installed and its HTTP endpoint bound before any workload starts.
pub fn parse_options() -> ExpOptions {
    let mut opts = ExpOptions::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--paper" => opts.scale = Scale::Paper,
            "--full" => opts.full = true,
            "--trace" => opts.trace = true,
            "--prof" => opts.prof = true,
            "--live" => {
                // Optional value: `--live 0.0.0.0:9200` binds there,
                // bare `--live` uses the default loopback address.
                match args.get(i + 1) {
                    Some(v) if !v.starts_with("--") => {
                        opts.live = Some(v.clone());
                        i += 1;
                    }
                    _ => opts.live = Some(DEFAULT_LIVE_ADDR.to_string()),
                }
            }
            "--runs" => {
                i += 1;
                opts.runs = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .expect("--runs needs a positive integer");
            }
            "--seed" => {
                i += 1;
                opts.seed = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs an integer");
            }
            other => panic!(
                "unknown flag {other} (expected --paper, --full, --trace, --prof, \
                 --live [addr], --runs N, --seed S)"
            ),
        }
        i += 1;
    }
    if opts.trace {
        sqm::obs::metrics::set_enabled(true);
    }
    install_live(opts.live.as_deref());
    install_prof(opts.prof);
    opts
}

/// Install the process-global live collector (and bind its HTTP endpoint)
/// for the given `--live` address, remembering the resulting `LiveConfig`
/// for [`live_config`]. A `None` address records "live off" so later
/// calls to [`live_config`] stay `None`. Idempotent per process: the
/// first call wins, matching `sqm_obs::live::install`.
pub fn install_live(addr: Option<&str>) {
    let live_cfg = addr.map(|addr| LiveConfig::default().with_addr(addr.to_string()));
    if let Some(cfg) = &live_cfg {
        match sqm::obs::live::install(cfg) {
            Ok(Some(bound)) => {
                eprintln!("[live] serving http://{bound}/metrics and http://{bound}/snapshot")
            }
            Ok(None) => {}
            Err(e) => eprintln!(
                "[live] bind {} failed ({e}); telemetry aggregates without serving",
                cfg.addr.as_deref().unwrap_or("?")
            ),
        }
    }
    let _ = LIVE_CONFIG.set(live_cfg);
}

/// Mean and sample standard deviation.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    assert!(!xs.is_empty());
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    if xs.len() == 1 {
        return (mean, 0.0);
    }
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
    (mean, var.sqrt())
}

/// Render `mean +/- std` compactly.
pub fn fmt_pm(mean: f64, std: f64) -> String {
    format!("{mean:10.4} ±{std:7.4}")
}

/// A right-aligned header row.
pub fn header(cols: &[&str]) -> String {
    cols.iter()
        .map(|c| format!("{c:>20}"))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Timing harness for the paper's Tables II, IV and V: run the BGW-backed
/// PCA / LR workloads and report simulated times under the 0.1 s/hop model.
pub mod timing {
    use std::time::Duration;

    use sqm::datasets::SpectralSpec;
    use sqm::mpc::RunStats;
    use sqm::obs::trace::Trace;
    use sqm::vfl::covariance::covariance_skellam;
    use sqm::vfl::gradient::gradient_sum_skellam;
    use sqm::vfl::{ColumnPartition, VflConfig};

    /// One timing measurement: overall and DP-noise simulated seconds,
    /// plus the full per-phase stats and (when tracing) the merged trace.
    #[derive(Clone, Debug)]
    pub struct Timing {
        pub overall: Duration,
        pub dp_noise: Duration,
        pub rounds: u64,
        pub megabytes: f64,
        pub stats: RunStats,
        pub trace: Option<Trace>,
    }

    fn cfg(p: usize, seed: u64, trace: bool) -> VflConfig {
        VflConfig::new(p)
            .with_latency(Duration::from_millis(100))
            .with_seed(seed)
            .with_trace(trace)
            .with_live(crate::live_config())
            .with_prof(crate::prof_config())
    }

    fn timing(stats: RunStats, trace: Option<Trace>) -> Timing {
        Timing {
            overall: stats.simulated_time(),
            dp_noise: stats.phase_time("dp_noise"),
            rounds: stats.total.rounds,
            megabytes: stats.total.bytes as f64 / (1024.0 * 1024.0),
            stats,
            trace,
        }
    }

    /// Time the PCA covariance workload (the paper's gamma = 18).
    pub fn time_pca(m: usize, n: usize, p: usize, seed: u64, trace: bool) -> Timing {
        let data = SpectralSpec::new(m, n).with_seed(seed).generate();
        let partition = ColumnPartition::even(n, p);
        let out = covariance_skellam(&data, &partition, 18.0, 100.0, &cfg(p, seed, trace));
        timing(out.stats, out.trace)
    }

    /// Time one full-dataset LR gradient computation (the paper times the
    /// per-epoch gradient pass).
    pub fn time_lr(m: usize, n: usize, p: usize, seed: u64, trace: bool) -> Timing {
        let d = n - 1;
        let data = SpectralSpec::new(m, n).with_seed(seed).generate();
        let partition = ColumnPartition::even(n, p);
        let batch: Vec<usize> = (0..m).collect();
        let w = vec![0.01; d];
        let out = gradient_sum_skellam(
            &data,
            &partition,
            &batch,
            &w,
            18.0,
            100.0,
            &cfg(p, seed, trace),
        );
        timing(out.stats, out.trace)
    }
}

/// Observability artifact writers for the experiment binaries.
///
/// Everything lands in `results/` next to the plotted CSVs: per-run MPC
/// stats as JSON (always), plus — when a trace was recorded — a JSONL
/// event log, a Chrome trace-event file (load it in Perfetto or
/// `chrome://tracing`), and a per-phase summary table on stdout. Before
/// exporting, the trace summary is asserted to reproduce
/// `RunStats::simulated_time()` exactly.
pub mod obsout {
    use std::fs;
    use std::io;
    use std::path::PathBuf;

    use serde::Serialize as _;
    use sqm::mpc::RunStats;
    use sqm::obs::trace::Trace;
    use sqm::obs::{
        atomic_write, atomic_write_str, chrome_trace_json, html_report, metrics, write_jsonl,
        MessageDag,
    };

    /// The `results/` directory, created on first use.
    pub fn results_dir() -> PathBuf {
        let dir = PathBuf::from("results");
        fs::create_dir_all(&dir).expect("cannot create results/");
        dir
    }

    /// Dump one run's stats (and trace artifacts, when recorded) under
    /// `results/<name>.*`; returns the paths written.
    pub fn dump_run(
        name: &str,
        stats: &RunStats,
        trace: Option<&Trace>,
    ) -> io::Result<Vec<PathBuf>> {
        let dir = results_dir();
        let mut written = Vec::new();
        let stats_path = dir.join(format!("{name}.stats.json"));
        // When the trace carries causal stamps, the stats JSON gains a
        // `critical_path` section (total, per-party idle/compute, walked
        // segments) computed from the reconstructed message DAG.
        let mut stats_json = stats.to_json();
        if let Some(trace) = trace.filter(|t| t.parties.iter().any(|p| !p.causal.is_empty())) {
            let cp = MessageDag::build(trace).critical_path();
            debug_assert!(stats_json.ends_with('}'));
            stats_json.truncate(stats_json.len() - 1);
            stats_json.push_str(",\"critical_path\":");
            stats_json.push_str(&cp.to_json());
            stats_json.push('}');
        }
        atomic_write_str(&stats_path, &stats_json)?;
        written.push(stats_path);
        if let Some(trace) = trace {
            let summary = trace.summary();
            assert_eq!(
                summary.total_simulated(),
                stats.simulated_time(),
                "trace summary must reproduce the virtual clock exactly ({name})"
            );
            let jsonl_path = dir.join(format!("{name}.trace.jsonl"));
            let mut buf = Vec::new();
            write_jsonl(trace, &mut buf)?;
            atomic_write(&jsonl_path, &buf)?;
            written.push(jsonl_path);
            let chrome_path = dir.join(format!("{name}.chrome.json"));
            atomic_write_str(&chrome_path, &chrome_trace_json(trace))?;
            written.push(chrome_path);
            let html_path = dir.join(format!("{name}.report.html"));
            let snapshot = metrics::is_enabled().then(metrics::snapshot);
            atomic_write_str(
                &html_path,
                &html_report(name, trace, None, snapshot.as_ref()),
            )?;
            written.push(html_path);
            println!("[trace {name}]");
            println!("{summary}");
        }
        Ok(written)
    }

    /// Snapshot the metrics registry into `results/<name>.metrics.json`
    /// (no-op unless metrics were enabled via `--trace` / `SQM_TRACE=1`).
    /// Also flushes the cost profiler's artifacts when `--prof` is active,
    /// so every binary that dumps metrics gets `prof_<seed>.*` for free.
    pub fn dump_metrics(name: &str) -> io::Result<Option<PathBuf>> {
        dump_prof()?;
        if !metrics::is_enabled() {
            return Ok(None);
        }
        let path = results_dir().join(format!("{name}.metrics.json"));
        atomic_write_str(&path, &metrics::snapshot().to_json())?;
        println!("[metrics] wrote {}", path.display());
        Ok(Some(path))
    }

    /// Flush the cost profiler (no-op when `--prof` / `SQM_PROF=1` was not
    /// requested): writes the seed-deterministic
    /// `results/prof_<seed>.{folded,json,html}` triple and prints the
    /// top-weight attribution summary.
    pub fn dump_prof() -> io::Result<Vec<PathBuf>> {
        let written = sqm::obs::prof::dump_if_active()?;
        if let Some(snap) = (!written.is_empty())
            .then(sqm::obs::prof::snapshot)
            .flatten()
        {
            println!("[prof]");
            println!("{}", sqm::obs::prof::render_summary(&snap, 12));
            for p in &written {
                println!("[prof] wrote {}", p.display());
            }
        }
        Ok(written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_smoke() {
        let t = timing::time_pca(20, 8, 4, 0, false);
        assert!(t.overall >= t.dp_noise);
        assert!(t.rounds >= 4);
        assert!(t.trace.is_none());
        let t = timing::time_lr(20, 9, 4, 0, false);
        assert!(t.overall > std::time::Duration::ZERO);
    }

    #[test]
    fn traced_timing_reproduces_virtual_clock() {
        let t = timing::time_pca(20, 8, 4, 0, true);
        let trace = t.trace.expect("tracing requested");
        assert_eq!(trace.summary().total_simulated(), t.stats.simulated_time());
        assert_eq!(trace.summary().total_simulated(), t.overall);
    }

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[1.0, 2.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-12);
        assert!((s - 1.0).abs() < 1e-12);
        let (m1, s1) = mean_std(&[5.0]);
        assert_eq!((m1, s1), (5.0, 0.0));
    }

    #[test]
    fn defaults() {
        let o = ExpOptions::default();
        assert_eq!(o.runs, 3);
        assert!(!o.full);
    }
}
