//! Shared plumbing for the experiment binaries.
//!
//! Every binary regenerates one table or figure of the paper (see
//! `DESIGN.md` for the index) and accepts:
//!
//! * `--paper` — run at the paper's full dataset sizes (default: laptop
//!   scale, which regenerates every figure in minutes);
//! * `--runs N` — number of independent repetitions to average (paper: 20);
//! * `--seed S` — base RNG seed.

use sqm::datasets::Scale;

/// Parsed common CLI options.
#[derive(Clone, Debug)]
pub struct ExpOptions {
    pub scale: Scale,
    pub runs: usize,
    pub seed: u64,
    /// Include the most expensive configurations (e.g. n = 2500 in
    /// Table II).
    pub full: bool,
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions {
            scale: Scale::Laptop,
            runs: 3,
            seed: 0,
            full: false,
        }
    }
}

/// Parse the common flags from `std::env::args`.
pub fn parse_options() -> ExpOptions {
    let mut opts = ExpOptions::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--paper" => opts.scale = Scale::Paper,
            "--full" => opts.full = true,
            "--runs" => {
                i += 1;
                opts.runs = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .expect("--runs needs a positive integer");
            }
            "--seed" => {
                i += 1;
                opts.seed = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs an integer");
            }
            other => panic!("unknown flag {other} (expected --paper, --full, --runs N, --seed S)"),
        }
        i += 1;
    }
    opts
}

/// Mean and sample standard deviation.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    assert!(!xs.is_empty());
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    if xs.len() == 1 {
        return (mean, 0.0);
    }
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
    (mean, var.sqrt())
}

/// Render `mean +/- std` compactly.
pub fn fmt_pm(mean: f64, std: f64) -> String {
    format!("{mean:10.4} ±{std:7.4}")
}

/// A right-aligned header row.
pub fn header(cols: &[&str]) -> String {
    cols.iter()
        .map(|c| format!("{c:>20}"))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Timing harness for the paper's Tables II, IV and V: run the BGW-backed
/// PCA / LR workloads and report simulated times under the 0.1 s/hop model.
pub mod timing {
    use std::time::Duration;

    use sqm::datasets::SpectralSpec;
    use sqm::vfl::covariance::covariance_skellam;
    use sqm::vfl::gradient::gradient_sum_skellam;
    use sqm::vfl::{ColumnPartition, VflConfig};

    /// One timing measurement: overall and DP-noise simulated seconds.
    #[derive(Copy, Clone, Debug)]
    pub struct Timing {
        pub overall: Duration,
        pub dp_noise: Duration,
        pub rounds: u64,
        pub megabytes: f64,
    }

    fn cfg(p: usize, seed: u64) -> VflConfig {
        VflConfig {
            n_clients: p,
            latency: Duration::from_millis(100),
            seed,
        }
    }

    /// Time the PCA covariance workload (the paper's gamma = 18).
    pub fn time_pca(m: usize, n: usize, p: usize, seed: u64) -> Timing {
        let data = SpectralSpec::new(m, n).with_seed(seed).generate();
        let partition = ColumnPartition::even(n, p);
        let out = covariance_skellam(&data, &partition, 18.0, 100.0, &cfg(p, seed));
        Timing {
            overall: out.stats.simulated_time(),
            dp_noise: out.stats.phase_time("dp_noise"),
            rounds: out.stats.total.rounds,
            megabytes: out.stats.total.bytes as f64 / (1024.0 * 1024.0),
        }
    }

    /// Time one full-dataset LR gradient computation (the paper times the
    /// per-epoch gradient pass).
    pub fn time_lr(m: usize, n: usize, p: usize, seed: u64) -> Timing {
        let d = n - 1;
        let data = SpectralSpec::new(m, n).with_seed(seed).generate();
        let partition = ColumnPartition::even(n, p);
        let batch: Vec<usize> = (0..m).collect();
        let w = vec![0.01; d];
        let out = gradient_sum_skellam(&data, &partition, &batch, &w, 18.0, 100.0, &cfg(p, seed));
        Timing {
            overall: out.stats.simulated_time(),
            dp_noise: out.stats.phase_time("dp_noise"),
            rounds: out.stats.total.rounds,
            megabytes: out.stats.total.bytes as f64 / (1024.0 * 1024.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_smoke() {
        let t = timing::time_pca(20, 8, 4, 0);
        assert!(t.overall >= t.dp_noise);
        assert!(t.rounds >= 4);
        let t = timing::time_lr(20, 9, 4, 0);
        assert!(t.overall > std::time::Duration::ZERO);
    }

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[1.0, 2.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-12);
        assert!((s - 1.0).abs() < 1e-12);
        let (m1, s1) = mean_std(&[5.0]);
        assert_eq!((m1, s1), (5.0, 0.0));
    }

    #[test]
    fn defaults() {
        let o = ExpOptions::default();
        assert_eq!(o.runs, 3);
        assert!(!o.full);
    }
}
