//! The vertical-federated-learning runtime.
//!
//! Binds the SQM mechanism (`sqm-core`) to the BGW engine (`sqm-mpc`):
//! columns of the private matrix are assigned to clients
//! ([`partition::ColumnPartition`]), each client quantizes its own columns
//! and samples its own Skellam noise share *inside its party thread*, and
//! the clients jointly evaluate the target polynomial, open only the
//! perturbed integer result, and hand it to the (untrusted) server for
//! down-scaling.
//!
//! Three protocol entry points cover the paper's workloads:
//!
//! * [`covariance::covariance_skellam`] — the PCA covariance `X^T X + Sk`
//!   (Section V-A), with batched secure inner products: one degree-reduction
//!   round for all `n(n+1)/2` entries.
//! * [`gradient::gradient_sum_skellam`] — one LR gradient-sum step on a
//!   batch (Section V-B, Eq. 9). The weight vector is public, so the inner
//!   product `<w/4, x>` is a *local* linear operation; only the `d`
//!   per-dimension products need a (single, batched) reduction.
//! * [`mean::column_sums_skellam`] — degree-1 column sums/means
//!   (Algorithm 1 with `lambda = 1`): a purely linear protocol whose
//!   communication is independent of the record count.
//! * [`generic::eval_polynomial_skellam`] — any [`sqm_core::Polynomial`],
//!   compiled to an arithmetic circuit. General but per-record; intended
//!   for small workloads and cross-checking.
//!
//! Field width (`M61` vs `M127`) is chosen automatically from a worst-case
//! magnitude bound so the integer computation cannot wrap.
//!
//! **Two-client caveat:** BGW with `P = 2` degenerates to threshold `t = 0`
//! (shares equal secrets), so outputs are correct but the clients have no
//! secrecy from each other. Use three or more MPC parties — two data owners
//! can enlist a neutral compute helper that owns no columns — or the
//! additive backend (`sqm_mpc::additive`) for genuine two-party secrecy.

pub mod covariance;
pub mod generic;
pub mod gradient;
pub mod mean;
pub mod partition;
pub mod session;
pub mod stream;

pub use covariance::{
    covariance_quantized_oracle, covariance_skellam, covariance_skellam_chunked,
    try_covariance_skellam, CovarianceOutput,
};
pub use generic::eval_polynomial_skellam;
pub use gradient::{gradient_sum_skellam, GradientOutput};
pub use mean::{column_sums_skellam, column_sums_skellam_additive, MeanOutput};
pub use partition::ColumnPartition;
pub use session::{BudgetRefusal, ServerView, VflSession};
pub use stream::{covariance_streaming_oracle, StreamCov};

pub use sqm_mpc::net;
pub use sqm_mpc::{
    BatchOptions, Batching, CrashPoint, FaultSpec, LiveConfig, NetBackend, ProfConfig, TcpOptions,
    TransportError,
};

use std::time::Duration;

use sqm_mpc::MpcConfig;

/// Configuration shared by the VFL protocols.
#[derive(Clone, Debug)]
pub struct VflConfig {
    /// Number of clients `P` (MPC parties).
    pub n_clients: usize,
    /// Simulated per-hop network latency (paper: 0.1 s).
    pub latency: Duration,
    /// Seed for quantization randomness, noise sampling and share
    /// polynomials (per-party streams are derived from it).
    pub seed: u64,
    /// Record structured MPC traces (see `sqm_obs::trace`). Off by default.
    pub trace: bool,
    /// Cap on per-party trace *detail* records (spans/rounds/net events);
    /// `None` uses `sqm_obs::trace::DEFAULT_EVENT_CAP`. Summaries stay
    /// exact regardless — see `PartyRecorder::with_event_cap`.
    pub trace_event_cap: Option<usize>,
    /// Party-to-party transport backend (in-process channels by default;
    /// `NetBackend::Tcp` runs the same protocols over loopback sockets).
    pub backend: NetBackend,
    /// Optional deterministic fault injection layered over the backend.
    pub faults: Option<FaultSpec>,
    /// Stream live telemetry for the MPC runs this config drives (see
    /// `sqm_obs::live`): per-round events, stall watchdog, `/metrics` +
    /// `/snapshot` HTTP endpoint, crash flight recorder. `None` (the
    /// default) publishes nothing; `RunStats` are bit-identical either way.
    pub live: Option<sqm_mpc::LiveConfig>,
    /// Attach the deterministic cost profiler (see `sqm_obs::prof`) to the
    /// MPC runs this config drives: collapsed-stack attribution of engine
    /// traffic, degree reductions, Skellam draws, and the batching
    /// opportunity report. `None` (the default) records nothing; release
    /// bits and `RunStats` are bit-identical either way.
    pub prof: Option<sqm_mpc::ProfConfig>,
    /// Wire framing and gate-scheduling mode of the underlying MPC engine
    /// (see [`Batching`]). The round-batched default and the per-element
    /// reference mode release bit-identical values; only message accounting
    /// and local parallelism differ.
    pub batching: Batching,
}

impl VflConfig {
    pub fn new(n_clients: usize) -> Self {
        VflConfig {
            n_clients,
            latency: Duration::from_millis(100),
            seed: 7,
            trace: false,
            trace_event_cap: None,
            backend: NetBackend::InProcess,
            faults: None,
            live: None,
            prof: None,
            batching: Batching::default(),
        }
    }

    /// Zero latency — for tests and statistical experiments where only the
    /// output matters.
    pub fn fast(n_clients: usize) -> Self {
        Self::new(n_clients).with_latency(Duration::ZERO)
    }

    pub fn with_latency(mut self, latency: Duration) -> Self {
        self.latency = latency;
        self
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Turn structured trace recording on or off.
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Bound the number of per-party trace detail records.
    pub fn with_trace_event_cap(mut self, cap: usize) -> Self {
        self.trace_event_cap = Some(cap);
        self
    }

    /// Select the transport backend the MPC parties communicate over.
    pub fn with_backend(mut self, backend: NetBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Layer deterministic fault injection over the selected backend.
    pub fn with_faults(mut self, faults: FaultSpec) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Stream live telemetry for the MPC runs this config drives.
    pub fn with_live(mut self, live: Option<sqm_mpc::LiveConfig>) -> Self {
        self.live = live;
        self
    }

    /// Attach the deterministic cost profiler to the MPC runs this config
    /// drives (see `sqm_obs::prof`).
    pub fn with_prof(mut self, prof: Option<sqm_mpc::ProfConfig>) -> Self {
        self.prof = prof;
        self
    }

    /// Select the wire framing / gate-scheduling mode of the MPC engine
    /// (see [`Batching`]).
    pub fn with_batching(mut self, batching: Batching) -> Self {
        self.batching = batching;
        self
    }

    /// The `MpcConfig` every VFL protocol derives from this configuration.
    pub fn mpc_config(&self) -> MpcConfig {
        let config = MpcConfig::semi_honest(self.n_clients)
            .with_latency(self.latency)
            .with_seed(self.seed)
            .with_trace(self.trace)
            .with_backend(self.backend.clone())
            .with_faults(self.faults.clone())
            .with_live(self.live.clone())
            .with_prof(self.prof.clone())
            .with_batching(self.batching);
        match self.trace_event_cap {
            Some(cap) => config.with_trace_event_cap(cap),
            None => config,
        }
    }
}
