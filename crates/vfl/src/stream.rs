//! Streaming mini-batch covariance over a persistent MPC session.
//!
//! The one-shot protocols in [`crate::covariance`] mesh the parties, run,
//! and tear everything down. A serving deployment (see `sqm::serve`)
//! instead keeps a session alive across many mini-batch arrivals and many
//! DP releases. [`StreamCov`] is that session:
//!
//! * **Transports are reused.** The party mesh is built once
//!   (`net::build_mesh`) and threaded through every release via
//!   `MpcEngine::try_run_on`, so a release costs protocol rounds but never
//!   re-meshing. Party round counters simply continue across releases.
//! * **Sufficient statistics accumulate.** Each party keeps its share of
//!   the degree-2t upper-triangular Gram accumulator between releases.
//!   A release only quantizes/shares/multiplies the records that arrived
//!   since the previous release, then degree-reduces a *copy* of the
//!   accumulator — prior work is amortized, never recomputed.
//! * **Randomness streams persist.** Quantization and Skellam noise RNGs
//!   are the same per-party streams the one-shot protocols derive from
//!   `cfg.seed`, carried across releases. Release 0 is therefore
//!   bit-identical to [`crate::covariance::covariance_skellam_chunked`]
//!   with chunk boundaries at the batch boundaries, and release `r` is
//!   predicted bit-exactly by [`covariance_streaming_oracle`] with
//!   `noise_skip = r` (each release consumes the next `n(n+1)/2` noise
//!   draws per party).
//!
//! A transport failure poisons the session: the mesh is discarded, the
//! typed error is kept, and every later call returns it. The caller (one
//! serve tenant) fails; other sessions are untouched.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sqm_field::{FieldChoice, PrimeField, M127, M61};
use sqm_linalg::Matrix;
use sqm_mpc::net::transport::{build_mesh, Transport};
use sqm_mpc::{MpcEngine, TransportError};
use sqm_sampling::rounding::stochastic_round;
use sqm_sampling::skellam::sample_skellam;
use std::sync::Mutex;

use crate::covariance::CovarianceOutput;
use crate::partition::ColumnPartition;
use crate::VflConfig;

/// Per-party state that survives between releases: the private randomness
/// streams and this party's share of the running Gram accumulator.
struct PartyStream<F: PrimeField> {
    qrng: StdRng,
    nrng: StdRng,
    acc: Vec<F>,
}

struct StreamImpl<F: PrimeField> {
    partition: ColumnPartition,
    gamma: f64,
    mu: f64,
    cfg: VflConfig,
    mesh: Option<Vec<Box<dyn Transport<F>>>>,
    party: Vec<PartyStream<F>>,
    pending: Vec<Matrix>,
    rows_ingested: usize,
    releases: usize,
    failed: Option<TransportError>,
}

impl<F: PrimeField> StreamImpl<F> {
    fn new(
        partition: ColumnPartition,
        gamma: f64,
        mu: f64,
        cfg: VflConfig,
    ) -> Result<Self, TransportError> {
        let n_cols = partition.n_cols();
        let upper_len = n_cols * (n_cols + 1) / 2;
        let mpc = cfg.mpc_config();
        let mesh = build_mesh::<F>(mpc.n_parties, &mpc.backend, mpc.faults.as_ref())?;
        let party = (0..cfg.n_clients)
            .map(|p| PartyStream {
                qrng: StdRng::seed_from_u64(cfg.seed ^ (0xA11C_E000 + p as u64)),
                nrng: StdRng::seed_from_u64(cfg.seed ^ (0x5E11_A000 + p as u64)),
                acc: vec![F::ZERO; upper_len],
            })
            .collect();
        Ok(StreamImpl {
            partition,
            gamma,
            mu,
            cfg,
            mesh: Some(mesh),
            party,
            pending: Vec::new(),
            rows_ingested: 0,
            releases: 0,
            failed: None,
        })
    }

    fn release(&mut self) -> Result<CovarianceOutput, TransportError> {
        if let Some(e) = &self.failed {
            return Err(e.clone());
        }
        let mesh = self.mesh.take().expect("mesh present unless failed");
        let n = self.partition.n_cols();
        let upper_len = n * (n + 1) / 2;
        let counts = self.partition.counts();
        let p_clients = self.cfg.n_clients;
        let partition = &self.partition;
        let gamma = self.gamma;
        let local_mu = self.mu / p_clients as f64;
        let pending = std::mem::take(&mut self.pending);
        let pending = &pending;

        // Hand each party thread its persistent state through an indexed
        // slot; the thread takes it at the start of the program and returns
        // the updated state as part of its output.
        let slots: Vec<Mutex<Option<PartyStream<F>>>> =
            self.party.drain(..).map(|s| Mutex::new(Some(s))).collect();

        let engine = MpcEngine::new(self.cfg.mpc_config());
        type Out<F> = (Vec<i128>, PartyStream<F>);
        let result = engine.try_run_on::<F, Out<F>, _>(mesh, |ctx| {
            let me = ctx.id;
            let mut st = slots[me].lock().unwrap().take().expect("party state");
            let my_cols = partition.columns_of(me);
            for batch in pending {
                let rows = batch.rows();
                ctx.set_phase("quantize");
                let mut my_values: Vec<F> = Vec::with_capacity(my_cols.len() * rows);
                for &j in &my_cols {
                    for i in 0..rows {
                        let q = stochastic_round(&mut st.qrng, gamma * batch[(i, j)]);
                        my_values.push(F::from_i128(q as i128));
                    }
                }
                ctx.set_phase("input");
                let expected: Vec<usize> = counts.iter().map(|&c| c * rows).collect();
                let contributions = ctx.share_all_uneven(&my_values, &expected);
                let mut col_shares: Vec<Vec<F>> = vec![Vec::new(); n];
                for (client, contrib) in contributions.into_iter().enumerate() {
                    for (slot, &j) in partition.columns_of(client).iter().enumerate() {
                        col_shares[j] = contrib[slot * rows..(slot + 1) * rows].to_vec();
                    }
                }
                ctx.set_phase("compute");
                let mut idx = 0;
                for j in 0..n {
                    for k in j..n {
                        let mut s = F::ZERO;
                        for (&xj, &xk) in col_shares[j].iter().zip(&col_shares[k]) {
                            s += xj * xk;
                        }
                        st.acc[idx] += s;
                        idx += 1;
                    }
                }
            }

            ctx.set_phase("compute");
            let mut reduced = ctx.reduce_degree(&st.acc);

            ctx.set_phase("dp_noise");
            let my_noise: Vec<F> = (0..upper_len)
                .map(|_| F::from_i128(sample_skellam(&mut st.nrng, local_mu) as i128))
                .collect();
            for contrib in ctx.share_all(&my_noise) {
                reduced = ctx.add(&reduced, &contrib);
            }

            ctx.set_phase("open");
            let opened = ctx
                .open(&reduced)
                .into_iter()
                .map(|v| v.to_centered_i128())
                .collect();
            (opened, st)
        });

        match result {
            Ok((run, mesh)) => {
                self.mesh = Some(mesh);
                let mut opened_first: Option<Vec<i128>> = None;
                for (opened, st) in run.outputs {
                    opened_first.get_or_insert(opened);
                    self.party.push(st);
                }
                self.releases += 1;
                let opened = opened_first.expect("at least one party");
                let mut c_hat = Matrix::zeros(n, n);
                let mut idx = 0;
                for j in 0..n {
                    for k in j..n {
                        c_hat[(j, k)] = opened[idx] as f64;
                        c_hat[(k, j)] = c_hat[(j, k)];
                        idx += 1;
                    }
                }
                Ok(CovarianceOutput {
                    c_hat,
                    stats: run.stats,
                    trace: run.trace,
                })
            }
            Err(e) => {
                // Poisoned: the mesh round state is undefined and some
                // party states were lost with their threads.
                self.failed = Some(e.clone());
                Err(e)
            }
        }
    }
}

/// Field-width dispatch (mirrors `FieldChoice::for_magnitude` in the
/// one-shot protocols, but the choice is pinned at session creation from a
/// declared workload bound — it cannot change once accumulator shares
/// exist).
enum Inner {
    M61(StreamImpl<M61>),
    M127(StreamImpl<M127>),
}

/// A long-lived streaming covariance session: ingest mini-batches, release
/// the running noisy covariance on demand. See the module docs for the
/// determinism and reuse contract.
pub struct StreamCov {
    inner: Inner,
    max_rows: usize,
    max_row_norm: f64,
}

impl StreamCov {
    /// Open a session. `max_rows` and `max_row_norm` declare the workload
    /// envelope (total records the session may ingest and the largest
    /// per-record l2 norm); they pin the field width for the whole session
    /// and are enforced on ingest.
    pub fn new(
        partition: ColumnPartition,
        gamma: f64,
        mu: f64,
        cfg: &VflConfig,
        max_rows: usize,
        max_row_norm: f64,
    ) -> Result<StreamCov, TransportError> {
        assert_eq!(
            partition.n_clients(),
            cfg.n_clients,
            "partition/config client-count mismatch"
        );
        assert!(cfg.n_clients >= 2, "MPC needs at least 2 clients");
        assert!(max_rows >= 1, "declare a positive record envelope");
        let c = max_row_norm.max(1e-9);
        let per_entry = gamma * c + 1.0;
        let bound = max_rows as f64 * per_entry * per_entry + 12.0 * (2.0 * mu).sqrt() + 1.0;
        let inner = match FieldChoice::for_magnitude(bound).expect("workload exceeds M127 headroom")
        {
            FieldChoice::M61 => Inner::M61(StreamImpl::new(partition, gamma, mu, cfg.clone())?),
            FieldChoice::M127 => Inner::M127(StreamImpl::new(partition, gamma, mu, cfg.clone())?),
        };
        Ok(StreamCov {
            inner,
            max_rows,
            max_row_norm,
        })
    }

    /// Queue a mini-batch of records (rows) for the next release. Cheap:
    /// no MPC work happens until [`StreamCov::release`].
    pub fn ingest(&mut self, batch: &Matrix) {
        assert_eq!(
            batch.cols(),
            self.n_cols(),
            "batch/partition column mismatch"
        );
        assert!(
            self.rows_ingested() + self.pending_rows() + batch.rows() <= self.max_rows,
            "session would exceed its declared {}-record envelope",
            self.max_rows
        );
        assert!(
            batch.max_row_norm() <= self.max_row_norm * (1.0 + 1e-12),
            "record norm exceeds the declared envelope {}",
            self.max_row_norm
        );
        match &mut self.inner {
            Inner::M61(s) => s.pending.push(batch.clone()),
            Inner::M127(s) => s.pending.push(batch.clone()),
        }
    }

    /// Run one DP release over the reused mesh: share and accumulate the
    /// pending batches, degree-reduce a copy of the running accumulator,
    /// add fresh distributed Skellam noise, open. Consumes the pending
    /// queue. A release with nothing pending re-releases the current
    /// statistics under fresh noise (it still costs privacy budget —
    /// admission is the caller's job).
    pub fn release(&mut self) -> Result<CovarianceOutput, TransportError> {
        let rows = self.pending_rows();
        let out = match &mut self.inner {
            Inner::M61(s) => s.release(),
            Inner::M127(s) => s.release(),
        };
        if out.is_ok() {
            match &mut self.inner {
                Inner::M61(s) => s.rows_ingested += rows,
                Inner::M127(s) => s.rows_ingested += rows,
            }
        }
        out
    }

    /// Records already folded into the accumulator (past releases).
    pub fn rows_ingested(&self) -> usize {
        match &self.inner {
            Inner::M61(s) => s.rows_ingested,
            Inner::M127(s) => s.rows_ingested,
        }
    }

    /// Records queued for the next release.
    pub fn pending_rows(&self) -> usize {
        match &self.inner {
            Inner::M61(s) => s.pending.iter().map(|b| b.rows()).sum(),
            Inner::M127(s) => s.pending.iter().map(|b| b.rows()).sum(),
        }
    }

    /// Releases completed so far.
    pub fn releases(&self) -> usize {
        match &self.inner {
            Inner::M61(s) => s.releases,
            Inner::M127(s) => s.releases,
        }
    }

    /// Number of feature columns.
    pub fn n_cols(&self) -> usize {
        match &self.inner {
            Inner::M61(s) => s.partition.n_cols(),
            Inner::M127(s) => s.partition.n_cols(),
        }
    }

    /// The transport error that poisoned this session, if any.
    pub fn failure(&self) -> Option<&TransportError> {
        match &self.inner {
            Inner::M61(s) => s.failed.as_ref(),
            Inner::M127(s) => s.failed.as_ref(),
        }
    }
}

/// Bit-exact plaintext predictor of [`StreamCov`] release `noise_skip`
/// covering the cumulative `batches` ingested so far (the streaming
/// counterpart of [`crate::covariance::covariance_quantized_oracle`]).
///
/// Quantization replays each party's stream batch-by-batch in exactly the
/// order the session consumed it; the noise streams skip the
/// `noise_skip * n(n+1)/2` draws earlier releases consumed. Any divergence
/// from the MPC session is a correctness bug in share persistence,
/// transport reuse, or degree reduction.
pub fn covariance_streaming_oracle(
    batches: &[Matrix],
    partition: &ColumnPartition,
    gamma: f64,
    mu: f64,
    cfg: &VflConfig,
    noise_skip: usize,
) -> Matrix {
    let n = partition.n_cols();
    let upper_len = n * (n + 1) / 2;

    // Per-party quantization streams, consumed batch-major / column-major /
    // record-minor — the session's exact order.
    let mut qcols: Vec<Vec<i64>> = vec![Vec::new(); n];
    for p in 0..cfg.n_clients {
        let mut qrng = StdRng::seed_from_u64(cfg.seed ^ (0xA11C_E000 + p as u64));
        for batch in batches {
            for &j in &partition.columns_of(p) {
                for i in 0..batch.rows() {
                    qcols[j].push(stochastic_round(&mut qrng, gamma * batch[(i, j)]));
                }
            }
        }
    }

    let m: usize = batches.iter().map(|b| b.rows()).sum();
    let mut opened = vec![0i128; upper_len];
    let mut idx = 0;
    for j in 0..n {
        for k in j..n {
            opened[idx] = (0..m)
                .map(|i| qcols[j][i] as i128 * qcols[k][i] as i128)
                .sum();
            idx += 1;
        }
    }

    let local_mu = mu / cfg.n_clients as f64;
    for p in 0..cfg.n_clients {
        let mut nrng = StdRng::seed_from_u64(cfg.seed ^ (0x5E11_A000 + p as u64));
        for _ in 0..noise_skip * upper_len {
            let _ = sample_skellam(&mut nrng, local_mu);
        }
        for slot in opened.iter_mut() {
            *slot += sample_skellam(&mut nrng, local_mu) as i128;
        }
    }

    let mut c_hat = Matrix::zeros(n, n);
    let mut idx = 0;
    for j in 0..n {
        for k in j..n {
            c_hat[(j, k)] = opened[idx] as f64;
            c_hat[(k, j)] = c_hat[(j, k)];
            idx += 1;
        }
    }
    c_hat
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::covariance::covariance_skellam_chunked;

    fn batches() -> Vec<Matrix> {
        vec![
            Matrix::from_rows(&[vec![0.5, -0.2, 0.1], vec![-0.4, 0.3, 0.2]]),
            Matrix::from_rows(&[vec![0.1, 0.1, -0.5], vec![0.6, 0.0, 0.3]]),
            Matrix::from_rows(&[vec![-0.2, -0.3, 0.1], vec![0.3, 0.2, 0.2]]),
        ]
    }

    fn concat(batches: &[Matrix]) -> Matrix {
        let rows: Vec<Vec<f64>> = batches
            .iter()
            .flat_map(|b| (0..b.rows()).map(|i| b.row(i).to_vec()).collect::<Vec<_>>())
            .collect();
        Matrix::from_rows(&rows)
    }

    #[test]
    fn first_release_is_bit_identical_to_chunked_mpc() {
        let partition = ColumnPartition::even(3, 3);
        let cfg = VflConfig::fast(3).with_seed(21);
        let (gamma, mu) = (512.0, 40.0);
        let mut stream = StreamCov::new(partition.clone(), gamma, mu, &cfg, 16, 1.0).unwrap();
        for b in batches() {
            stream.ingest(&b);
        }
        let streamed = stream.release().unwrap();
        // Batch boundaries == chunk boundaries (2 rows each).
        let chunked =
            covariance_skellam_chunked(&concat(&batches()), &partition, gamma, mu, &cfg, 2);
        assert_eq!(streamed.c_hat, chunked.c_hat);
    }

    #[test]
    fn later_releases_match_the_streaming_oracle_bit_exactly() {
        let partition = ColumnPartition::even(3, 3);
        let cfg = VflConfig::fast(3).with_seed(4242);
        let (gamma, mu) = (256.0, 25.0);
        let all = batches();
        let mut stream = StreamCov::new(partition.clone(), gamma, mu, &cfg, 16, 1.0).unwrap();

        stream.ingest(&all[0]);
        let r0 = stream.release().unwrap();
        assert_eq!(
            r0.c_hat,
            covariance_streaming_oracle(&all[..1], &partition, gamma, mu, &cfg, 0)
        );

        // Second release folds in two more batches and consumes the *next*
        // noise draws; prior rows are not re-shared (amortization), yet the
        // result covers all rows so far.
        stream.ingest(&all[1]);
        stream.ingest(&all[2]);
        let r1 = stream.release().unwrap();
        assert_eq!(
            r1.c_hat,
            covariance_streaming_oracle(&all, &partition, gamma, mu, &cfg, 1)
        );
        assert_eq!(stream.releases(), 2);
        assert_eq!(stream.rows_ingested(), 6);
    }

    #[test]
    fn empty_release_rereleases_under_fresh_noise() {
        let partition = ColumnPartition::even(3, 3);
        let cfg = VflConfig::fast(3).with_seed(9);
        let (gamma, mu) = (128.0, 100.0);
        let all = batches();
        let mut stream = StreamCov::new(partition.clone(), gamma, mu, &cfg, 16, 1.0).unwrap();
        stream.ingest(&all[0]);
        let r0 = stream.release().unwrap();
        let r1 = stream.release().unwrap();
        assert_ne!(r0.c_hat, r1.c_hat, "fresh noise per release");
        assert_eq!(
            r1.c_hat,
            covariance_streaming_oracle(&all[..1], &partition, gamma, mu, &cfg, 1)
        );
    }

    #[test]
    fn amortized_release_ships_fewer_bytes_than_recompute() {
        let partition = ColumnPartition::even(3, 3);
        let cfg = VflConfig::fast(3).with_seed(77);
        let all = batches();
        let mut stream = StreamCov::new(partition.clone(), 512.0, 0.0, &cfg, 16, 1.0).unwrap();
        for b in &all {
            stream.ingest(b);
        }
        let first = stream.release().unwrap();
        // Nothing pending: the second release reduces/noises/opens only.
        let second = stream.release().unwrap();
        assert!(
            second.stats.total.bytes < first.stats.total.bytes,
            "second release {} bytes, first {} bytes",
            second.stats.total.bytes,
            first.stats.total.bytes
        );
        assert_eq!(second.stats.phases.get("input").map(|p| p.rounds), None);
    }

    #[test]
    fn transport_failure_poisons_the_session_with_a_typed_error() {
        let partition = ColumnPartition::even(3, 3);
        // Crash party 1 at round 2: the first release dies mid-protocol.
        let cfg = VflConfig::fast(3)
            .with_seed(5)
            .with_faults(sqm_mpc::FaultSpec::seeded(5).with_crash(1, 2));
        let mut stream = StreamCov::new(partition, 64.0, 0.0, &cfg, 16, 1.0).unwrap();
        stream.ingest(&batches()[0]);
        let err = stream.release().unwrap_err();
        assert_eq!(err.party(), 1);
        assert!(stream.failure().is_some());
        // Poisoned: later calls return the same typed error, no panic.
        let again = stream.release().unwrap_err();
        assert_eq!(err, again);
    }

    #[test]
    #[should_panic(expected = "envelope")]
    fn ingest_beyond_declared_envelope_is_rejected() {
        let partition = ColumnPartition::even(3, 3);
        let cfg = VflConfig::fast(3);
        let mut stream = StreamCov::new(partition, 64.0, 0.0, &cfg, 3, 1.0).unwrap();
        stream.ingest(&batches()[0]);
        stream.ingest(&batches()[1]); // 4 rows > 3-row envelope
    }
}
