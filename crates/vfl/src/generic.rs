//! Generic SQM over MPC: Algorithm 3 for an arbitrary polynomial, compiled
//! to an arithmetic circuit.
//!
//! Per-record monomials are built as balanced product trees, so the round
//! count is the polynomial's multiplicative depth (`ceil(log2 lambda)`)
//! plus input/noise/open — independent of the record count and the number
//! of monomials. This path is the reference implementation and is
//! cross-checked against the plaintext mechanism; the covariance and
//! gradient fast paths specialize it.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sqm_core::polynomial::Polynomial;
use sqm_core::quantize::{quantize_polynomial, quantize_value};
use sqm_field::{FieldChoice, PrimeField, M127, M61};
use sqm_linalg::Matrix;
use sqm_mpc::circuit::{Circuit, CircuitBuilder, Wire};
use sqm_mpc::{MpcEngine, RunStats};
use sqm_sampling::skellam::sample_skellam;

use crate::partition::ColumnPartition;
use crate::VflConfig;

/// Evaluate `sum_x f(x)` under SQM with full BGW execution.
///
/// Returns the down-scaled estimates (one per output dimension) and stats.
pub fn eval_polynomial_skellam(
    poly: &Polynomial,
    data: &Matrix,
    partition: &ColumnPartition,
    gamma: f64,
    mu: f64,
    cfg: &VflConfig,
) -> (Vec<f64>, RunStats) {
    assert_eq!(
        poly.n_vars(),
        data.cols(),
        "polynomial/data dimension mismatch"
    );
    assert_eq!(
        partition.n_cols(),
        data.cols(),
        "partition/data column mismatch"
    );
    assert_eq!(
        partition.n_clients(),
        cfg.n_clients,
        "partition/config mismatch"
    );

    // Conservative magnitude bound for field selection.
    let lambda = poly.degree() as i32;
    let max_abs_coeff = poly
        .dims()
        .flat_map(|ms| ms.iter().map(|m| m.coeff.abs()))
        .fold(1.0_f64, f64::max);
    let c = data.max_row_norm().max(1.0);
    let per_record = max_abs_coeff
        * gamma.powi(lambda + 1)
        * (c + 1.0).powi(lambda)
        * poly.max_monomials_per_dim() as f64;
    let bound = data.rows() as f64 * per_record + 12.0 * (2.0 * mu).sqrt() + 1.0;

    match FieldChoice::for_magnitude(bound).expect("workload exceeds M127 headroom") {
        FieldChoice::M61 => eval_impl::<M61>(poly, data, partition, gamma, mu, cfg),
        FieldChoice::M127 => eval_impl::<M127>(poly, data, partition, gamma, mu, cfg),
    }
}

/// Compile the quantized polynomial sum into a circuit. Input ordering per
/// owner: record-major over the owner's columns in ascending order —
/// `(record 0, col a), (record 0, col b), ..., (record 1, col a), ...`.
fn compile<F: PrimeField>(
    poly: &Polynomial,
    partition: &ColumnPartition,
    coeffs: &[Vec<i128>],
    m: usize,
) -> Circuit<F> {
    let p_clients = partition.n_clients();
    let mut b = CircuitBuilder::<F>::new(p_clients);

    // Declare inputs in a deterministic interleaving and remember the wire
    // of each (record, column).
    let mut var_wire: Vec<Vec<Option<Wire>>> = vec![vec![None; partition.n_cols()]; m];
    for client in 0..p_clients {
        for record in var_wire.iter_mut() {
            for &j in &partition.columns_of(client) {
                record[j] = Some(b.input(client));
            }
        }
    }

    for (t, monos) in poly.dims().enumerate() {
        let mut dim_terms: Vec<Wire> = Vec::new();
        for (l, mono) in monos.iter().enumerate() {
            let coeff = F::from_i128(coeffs[t][l]);
            for record in var_wire.iter() {
                let mut factors: Vec<Wire> = Vec::new();
                for &(v, e) in &mono.exponents {
                    let w = record[v].expect("input wire missing");
                    for _ in 0..e {
                        factors.push(w);
                    }
                }
                let term = if factors.is_empty() {
                    b.constant(coeff)
                } else {
                    let prod = b.product(&factors);
                    b.mul_const(prod, coeff)
                };
                dim_terms.push(term);
            }
        }
        let out = b.sum(&dim_terms);
        b.output(out);
    }
    b.build()
}

fn eval_impl<F: PrimeField>(
    poly: &Polynomial,
    data: &Matrix,
    partition: &ColumnPartition,
    gamma: f64,
    mu: f64,
    cfg: &VflConfig,
) -> (Vec<f64>, RunStats) {
    let m = data.rows();
    let d = poly.n_dims();
    let p_clients = cfg.n_clients;

    // Public coefficient quantization (Algorithm 3 lines 1-3): all parties
    // derive the same integers from the public seed.
    let mut crng = StdRng::seed_from_u64(cfg.seed ^ 0xC0EF_0000);
    let qpoly = quantize_polynomial(&mut crng, poly, gamma);
    let coeffs: Vec<Vec<i128>> = (0..d)
        .map(|t| qpoly.dim(t).iter().map(|qm| qm.coeff).collect())
        .collect();
    let amplification = qpoly.amplification();

    let circuit = compile::<F>(poly, partition, &coeffs, m);
    let engine = MpcEngine::new(cfg.mpc_config());

    let run = engine.run::<F, Vec<i128>, _>(|ctx| {
        let me = ctx.id;
        ctx.set_phase("quantize");
        let mut qrng = StdRng::seed_from_u64(cfg.seed ^ (0x9E4E_0000 + me as u64));
        let my_cols = partition.columns_of(me);
        let mut my_inputs: Vec<F> = Vec::with_capacity(m * my_cols.len());
        for i in 0..m {
            for &j in &my_cols {
                let q = quantize_value(&mut qrng, data[(i, j)], gamma);
                my_inputs.push(F::from_i128(q as i128));
            }
        }

        ctx.set_phase("compute");
        let mut shares = circuit.eval_mpc(ctx, &my_inputs);

        ctx.set_phase("dp_noise");
        let mut nrng = StdRng::seed_from_u64(cfg.seed ^ (0x5E11_C000 + me as u64));
        let local_mu = mu / p_clients as f64;
        let my_noise: Vec<F> = (0..d)
            .map(|_| F::from_i128(sample_skellam(&mut nrng, local_mu) as i128))
            .collect();
        for contrib in ctx.share_all(&my_noise) {
            shares = ctx.add(&shares, &contrib);
        }

        ctx.set_phase("open");
        ctx.open(&shares)
            .into_iter()
            .map(|f| f.to_centered_i128())
            .collect()
    });

    let opened = &run.outputs[0];
    let values = opened.iter().map(|&v| v as f64 / amplification).collect();
    (values, run.stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqm_core::polynomial::Monomial;

    fn toy_data() -> Matrix {
        Matrix::from_rows(&[
            vec![0.5, -0.3, 0.2],
            vec![-0.1, 0.4, 0.6],
            vec![0.2, 0.2, -0.5],
        ])
    }

    #[test]
    fn degree3_polynomial_matches_truth() {
        // f(x) = x0^3 + 1.5 x1 x2 + 2 (the paper's Section II example).
        let p = Polynomial::one_dimensional(
            3,
            vec![
                Monomial::new(1.0, vec![(0, 3)]),
                Monomial::new(1.5, vec![(1, 1), (2, 1)]),
                Monomial::constant(2.0),
            ],
        );
        let data = toy_data();
        let truth = p.sum_over((0..data.rows()).map(|i| data.row(i)))[0];
        let partition = ColumnPartition::even(3, 3);
        let (vals, stats) =
            eval_polynomial_skellam(&p, &data, &partition, 2048.0, 0.0, &VflConfig::fast(3));
        assert!(
            (vals[0] - truth).abs() < 0.01,
            "got {} want {truth}",
            vals[0]
        );
        // rounds: input(1) + mul depth 2 (x0^3 tree: ceil(log2 3) = 2) +
        // noise(1) + open(1) = 5.
        assert_eq!(stats.total.rounds, 5);
    }

    #[test]
    fn multi_dimensional_output() {
        // f(x) = (x0 + x1, x0 * x2) over 2 clients.
        let p = Polynomial::new(
            3,
            vec![
                vec![Monomial::linear(1.0, 0), Monomial::linear(1.0, 1)],
                vec![Monomial::new(1.0, vec![(0, 1), (2, 1)])],
            ],
        );
        let data = toy_data();
        let truth = p.sum_over((0..data.rows()).map(|i| data.row(i)));
        let partition = ColumnPartition::even(3, 2);
        let (vals, _) =
            eval_polynomial_skellam(&p, &data, &partition, 4096.0, 0.0, &VflConfig::fast(2));
        for (v, t) in vals.iter().zip(&truth) {
            assert!((v - t).abs() < 0.01, "got {v} want {t}");
        }
    }

    #[test]
    fn matches_plaintext_mechanism_distributionally() {
        // With mu = 0 both paths differ only in rounding randomness; their
        // outputs must agree to quantization precision.
        use sqm_core::mechanism::{sqm_polynomial, SqmParams};
        let p = Polynomial::one_dimensional(2, vec![Monomial::new(1.0, vec![(0, 1), (1, 1)])]);
        let data = Matrix::from_rows(&[vec![0.4, 0.6], vec![-0.2, 0.3]]);
        let partition = ColumnPartition::even(2, 2);
        let gamma = 8192.0;
        let (vals, _) =
            eval_polynomial_skellam(&p, &data, &partition, gamma, 0.0, &VflConfig::fast(2));
        let mut rng = StdRng::seed_from_u64(1);
        let plain = sqm_polynomial(&mut rng, &p, &data, SqmParams::new(gamma, 0.0, 2));
        assert!(
            (vals[0] - plain[0]).abs() < 0.01,
            "mpc {} plain {}",
            vals[0],
            plain[0]
        );
    }

    #[test]
    fn noise_is_injected() {
        let p = Polynomial::one_dimensional(2, vec![Monomial::linear(1.0, 0)]);
        let data = Matrix::zeros(2, 2);
        let partition = ColumnPartition::even(2, 2);
        // lambda = 1 so amplification gamma^2; mu chosen so the downscaled
        // noise is visible.
        let gamma = 4.0;
        let mu = 1e6;
        let (vals, stats) =
            eval_polynomial_skellam(&p, &data, &partition, gamma, mu, &VflConfig::fast(2));
        assert!(vals[0].abs() > 0.01, "noise should perturb: {}", vals[0]);
        assert_eq!(stats.phases["dp_noise"].rounds, 1);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn rejects_mismatched_polynomial() {
        let p = Polynomial::one_dimensional(5, vec![Monomial::linear(1.0, 0)]);
        let data = toy_data();
        let partition = ColumnPartition::even(3, 3);
        eval_polynomial_skellam(&p, &data, &partition, 16.0, 0.0, &VflConfig::fast(3));
    }
}
