//! Secure noisy covariance: the PCA workload (Section V-A).
//!
//! The clients compute `hatC = hatX^T hatX + sum_p N_p` where `hatX` is the
//! gamma-quantized data and each `N_p` is a symmetric matrix of client-local
//! `Sk(mu/P)` noise. Only `hatC` is opened; the server divides by `gamma^2`
//! and eigendecomposes.
//!
//! Communication structure: the local products `hat x_ij * hat x_ik` are
//! summed over records *before* degree reduction (addition is free at
//! degree 2t), so the entire covariance needs exactly one batched reduction
//! round of `n(n+1)/2` elements — communication `O(n^2 P)` independent
//! of `m`, matching Table I.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sqm_core::quantize::quantize_vec;
use sqm_field::{FieldChoice, PrimeField, M127, M61};
use sqm_linalg::Matrix;
use sqm_mpc::{MpcEngine, RunStats, TransportError};
use sqm_obs::prof;
use sqm_sampling::skellam::{sample_skellam, sample_skellam_symmetric};

use crate::partition::ColumnPartition;
use crate::VflConfig;

/// The opened, still-amplified covariance and the run statistics.
#[derive(Debug)]
pub struct CovarianceOutput {
    /// `hatX^T hatX + Sk(mu)` as an `n x n` symmetric matrix (integer
    /// values stored in `f64`; the server divides by `gamma^2`).
    pub c_hat: Matrix,
    /// MPC accounting (empty/default for the plaintext backend).
    pub stats: RunStats,
    /// Structured trace (only when `VflConfig::trace` is set).
    pub trace: Option<sqm_obs::trace::Trace>,
}

/// Full BGW execution of the noisy covariance.
///
/// Panics on transport failure; use [`try_covariance_skellam`] to receive
/// the typed [`TransportError`] instead (crashed party, exhausted
/// retransmits, socket timeout, ...).
pub fn covariance_skellam(
    data: &Matrix,
    partition: &ColumnPartition,
    gamma: f64,
    mu: f64,
    cfg: &VflConfig,
) -> CovarianceOutput {
    try_covariance_skellam(data, partition, gamma, mu, cfg)
        .unwrap_or_else(|e| panic!("mpc transport failure: {e}"))
}

/// [`covariance_skellam`] with transport failures surfaced as values.
pub fn try_covariance_skellam(
    data: &Matrix,
    partition: &ColumnPartition,
    gamma: f64,
    mu: f64,
    cfg: &VflConfig,
) -> Result<CovarianceOutput, TransportError> {
    validate(data, partition, cfg);
    let bound = magnitude_bound(data, gamma, mu);
    match FieldChoice::for_magnitude(bound).expect("workload exceeds M127 headroom") {
        FieldChoice::M61 => covariance_impl::<M61>(data, partition, gamma, mu, cfg),
        FieldChoice::M127 => covariance_impl::<M127>(data, partition, gamma, mu, cfg),
    }
}

/// Output-equivalent plaintext simulation (identical output law; the MPC
/// protocol reveals exactly this quantity). Used by the statistical
/// experiments, which need thousands of runs.
pub fn covariance_skellam_plaintext<R: rand::Rng + ?Sized>(
    rng: &mut R,
    data: &Matrix,
    gamma: f64,
    mu: f64,
    n_clients: usize,
) -> Matrix {
    assert!(n_clients >= 1);
    let n = data.cols();
    let mut qrows: Vec<Vec<i64>> = Vec::with_capacity(data.rows());
    for i in 0..data.rows() {
        qrows.push(quantize_vec(rng, data.row(i), gamma));
    }
    let mut c = vec![0i128; n * n];
    for row in &qrows {
        for j in 0..n {
            let xj = row[j] as i128;
            if xj == 0 {
                continue;
            }
            for k in j..n {
                c[j * n + k] += xj * row[k] as i128;
            }
        }
    }
    // Aggregate noise: sum of per-client symmetric Sk(mu/P) matrices.
    let local_mu = mu / n_clients as f64;
    for _ in 0..n_clients {
        let noise = sample_skellam_symmetric(rng, local_mu, n);
        for j in 0..n {
            for k in j..n {
                c[j * n + k] += noise[j * n + k] as i128;
            }
        }
    }
    let mut out = Matrix::zeros(n, n);
    for j in 0..n {
        for k in j..n {
            out[(j, k)] = c[j * n + k] as f64;
            out[(k, j)] = out[(j, k)];
        }
    }
    out
}

/// Bit-exact plaintext replay of [`covariance_skellam`].
///
/// Unlike [`covariance_skellam_plaintext`] (output-*equivalent* law, its own
/// RNG), this replays the exact per-party randomness streams the MPC party
/// threads derive from `cfg.seed` — quantization stream
/// `seed ^ (0xA11C_E000 + p)` consumed column-by-column in partition order,
/// then `n(n+1)/2` Skellam(mu/P) draws from `seed ^ (0x5E11_A000 + p)` per
/// party — and therefore predicts the *opened integer output* of the secure
/// protocol exactly, for any backend. It is the differential-fuzzing oracle:
/// any bit of divergence from the MPC run is a correctness bug in
/// secret-sharing, degree reduction, or transport.
///
/// The oracle honors `cfg.batching` implicitly: both the round-batched and
/// the per-element reference engine modes consume the party RNG streams in
/// the same order and release the same values, so one replay predicts both.
/// A divergence *between modes* would therefore also surface here.
pub fn covariance_quantized_oracle(
    data: &Matrix,
    partition: &ColumnPartition,
    gamma: f64,
    mu: f64,
    cfg: &VflConfig,
) -> Matrix {
    validate(data, partition, cfg);
    let n = data.cols();
    let m = data.rows();
    let upper_len = n * (n + 1) / 2;

    // Replay each party's quantization stream over its own columns.
    let mut qcols: Vec<Vec<i64>> = vec![Vec::new(); n];
    for p in 0..cfg.n_clients {
        let mut qrng = StdRng::seed_from_u64(cfg.seed ^ (0xA11C_E000 + p as u64));
        for j in partition.columns_of(p) {
            qcols[j] = quantize_vec(&mut qrng, &data.col(j), gamma);
        }
    }

    // Upper-triangular Gram of the quantized columns, in opened order.
    let mut opened = vec![0i128; upper_len];
    let mut idx = 0;
    for j in 0..n {
        for k in j..n {
            let acc: i128 = (0..m)
                .map(|i| qcols[j][i] as i128 * qcols[k][i] as i128)
                .sum();
            opened[idx] = acc;
            idx += 1;
        }
    }

    // Replay each party's noise stream.
    let local_mu = mu / cfg.n_clients as f64;
    for p in 0..cfg.n_clients {
        let mut nrng = StdRng::seed_from_u64(cfg.seed ^ (0x5E11_A000 + p as u64));
        for slot in opened.iter_mut() {
            *slot += sample_skellam(&mut nrng, local_mu) as i128;
        }
    }

    let mut c_hat = Matrix::zeros(n, n);
    let mut idx = 0;
    for j in 0..n {
        for k in j..n {
            c_hat[(j, k)] = opened[idx] as f64;
            c_hat[(k, j)] = c_hat[(j, k)];
            idx += 1;
        }
    }
    c_hat
}

fn validate(data: &Matrix, partition: &ColumnPartition, cfg: &VflConfig) {
    assert_eq!(
        partition.n_cols(),
        data.cols(),
        "partition/data column mismatch"
    );
    assert_eq!(
        partition.n_clients(),
        cfg.n_clients,
        "partition/config client-count mismatch"
    );
    assert!(cfg.n_clients >= 2, "MPC needs at least 2 clients");
}

fn magnitude_bound(data: &Matrix, gamma: f64, mu: f64) -> f64 {
    let c = data.max_row_norm().max(1e-9);
    let per_entry = gamma * c + 1.0;
    data.rows() as f64 * per_entry * per_entry + 12.0 * (2.0 * mu).sqrt() + 1.0
}

/// Memory-bounded variant: records are shared and locally multiplied in
/// chunks of `chunk_records` rows, so peak share memory is
/// `O(chunk_records * n)` per party instead of `O(m * n)`. Costs one extra
/// input round per chunk; the degree-2t accumulator carries across chunks
/// (addition is free at any degree), so reduction, noise and opening still
/// happen exactly once. Output law identical to [`covariance_skellam`].
pub fn covariance_skellam_chunked(
    data: &Matrix,
    partition: &ColumnPartition,
    gamma: f64,
    mu: f64,
    cfg: &VflConfig,
    chunk_records: usize,
) -> CovarianceOutput {
    validate(data, partition, cfg);
    assert!(chunk_records >= 1, "chunk size must be positive");
    let bound = magnitude_bound(data, gamma, mu);
    match FieldChoice::for_magnitude(bound).expect("workload exceeds M127 headroom") {
        FieldChoice::M61 => chunked_impl::<M61>(data, partition, gamma, mu, cfg, chunk_records),
        FieldChoice::M127 => chunked_impl::<M127>(data, partition, gamma, mu, cfg, chunk_records),
    }
}

fn chunked_impl<F: PrimeField>(
    data: &Matrix,
    partition: &ColumnPartition,
    gamma: f64,
    mu: f64,
    cfg: &VflConfig,
    chunk_records: usize,
) -> CovarianceOutput {
    let n = data.cols();
    let m = data.rows();
    let p_clients = cfg.n_clients;
    let engine = MpcEngine::new(cfg.mpc_config());
    let upper_len = n * (n + 1) / 2;
    let counts = partition.counts();

    let run = engine.run::<F, Vec<i128>, _>(|ctx| {
        let me = ctx.id;
        let mut qrng = StdRng::seed_from_u64(cfg.seed ^ (0xA11C_E000 + me as u64));
        let my_cols = partition.columns_of(me);
        // Degree-2t accumulator for the upper-triangular covariance.
        let mut acc = vec![F::ZERO; upper_len];

        let mut start = 0;
        while start < m {
            let end = (start + chunk_records).min(m);
            let rows = end - start;
            ctx.set_phase("quantize");
            let mut my_values: Vec<F> = Vec::with_capacity(my_cols.len() * rows);
            for &j in &my_cols {
                for i in start..end {
                    let q =
                        sqm_sampling::rounding::stochastic_round(&mut qrng, gamma * data[(i, j)]);
                    my_values.push(F::from_i128(q as i128));
                }
            }
            ctx.set_phase("input");
            let expected: Vec<usize> = counts.iter().map(|&c| c * rows).collect();
            let contributions = ctx.share_all_uneven(&my_values, &expected);
            let mut col_shares: Vec<Vec<F>> = vec![Vec::new(); n];
            for (client, contrib) in contributions.into_iter().enumerate() {
                for (slot, &j) in partition.columns_of(client).iter().enumerate() {
                    col_shares[j] = contrib[slot * rows..(slot + 1) * rows].to_vec();
                }
            }
            ctx.set_phase("compute");
            let mut idx = 0;
            for j in 0..n {
                for k in j..n {
                    let mut s = F::ZERO;
                    for (&xj, &xk) in col_shares[j].iter().zip(&col_shares[k]) {
                        s += xj * xk;
                    }
                    acc[idx] += s;
                    idx += 1;
                }
            }
            start = end;
        }

        ctx.set_phase("compute");
        if prof::is_active() {
            prof::set_batching_report(prof::BatchingReport::from_level_widths(
                vec![upper_len],
                p_clients,
            ));
        }
        let mut reduced = ctx.reduce_degree(&acc);

        ctx.set_phase("dp_noise");
        let local_mu = mu / p_clients as f64;
        let mut nrng = StdRng::seed_from_u64(cfg.seed ^ (0x5E11_A000 + me as u64));
        let my_noise: Vec<F> = (0..upper_len)
            .map(|_| F::from_i128(sample_skellam(&mut nrng, local_mu) as i128))
            .collect();
        prof::record("vfl;dp_noise;skellam_draw", 1, upper_len as u64);
        for contrib in ctx.share_all(&my_noise) {
            reduced = ctx.add(&reduced, &contrib);
        }

        ctx.set_phase("open");
        ctx.open(&reduced)
            .into_iter()
            .map(|v| v.to_centered_i128())
            .collect()
    });

    let opened = &run.outputs[0];
    let mut c_hat = Matrix::zeros(n, n);
    let mut idx = 0;
    for j in 0..n {
        for k in j..n {
            c_hat[(j, k)] = opened[idx] as f64;
            c_hat[(k, j)] = c_hat[(j, k)];
            idx += 1;
        }
    }
    CovarianceOutput {
        c_hat,
        stats: run.stats,
        trace: run.trace,
    }
}

fn covariance_impl<F: PrimeField>(
    data: &Matrix,
    partition: &ColumnPartition,
    gamma: f64,
    mu: f64,
    cfg: &VflConfig,
) -> Result<CovarianceOutput, TransportError> {
    let n = data.cols();
    let m = data.rows();
    let p_clients = cfg.n_clients;
    let engine = MpcEngine::new(cfg.mpc_config());
    let upper_len = n * (n + 1) / 2;
    // Column share lengths per client (column-major flattening).
    let counts = partition.counts();
    let expected: Vec<usize> = counts.iter().map(|&c| c * m).collect();

    let run = engine.try_run::<F, Vec<i128>, _>(|ctx| {
        let me = ctx.id;
        // --- quantize my own columns with my private randomness ----------
        ctx.set_phase("quantize");
        let mut qrng = StdRng::seed_from_u64(cfg.seed ^ (0xA11C_E000 + me as u64));
        let my_cols = partition.columns_of(me);
        let mut my_values: Vec<F> = Vec::with_capacity(my_cols.len() * m);
        for &j in &my_cols {
            let q = quantize_vec(&mut qrng, &data.col(j), gamma);
            my_values.extend(q.into_iter().map(|v| F::from_i128(v as i128)));
        }

        // --- input sharing (one round, all clients simultaneously) -------
        ctx.set_phase("input");
        let contributions = ctx.share_all_uneven(&my_values, &expected);
        // Reassemble global column order: shares[j] = my share-vector of
        // column j (length m).
        let mut col_shares: Vec<Vec<F>> = vec![Vec::new(); n];
        for (client, contrib) in contributions.into_iter().enumerate() {
            let cols = partition.columns_of(client);
            for (slot, &j) in cols.iter().enumerate() {
                col_shares[j] = contrib[slot * m..(slot + 1) * m].to_vec();
            }
        }

        // --- covariance: local inner products, one batched reduction -----
        ctx.set_phase("compute");
        let mut locals: Vec<F> = Vec::with_capacity(upper_len);
        for j in 0..n {
            for k in j..n {
                let mut acc = F::ZERO;
                for (&xj, &xk) in col_shares[j].iter().zip(&col_shares[k]) {
                    acc += xj * xk;
                }
                locals.push(acc);
            }
        }
        if prof::is_active() {
            // The whole covariance is one independent-mul round of width
            // n(n+1)/2: already maximally batched (ROADMAP item 1 would
            // change nothing here, which the report makes measurable).
            prof::set_batching_report(prof::BatchingReport::from_level_widths(
                vec![upper_len],
                p_clients,
            ));
        }
        let mut reduced = ctx.reduce_degree(&locals);

        // --- distributed Skellam noise (one round) ------------------------
        ctx.set_phase("dp_noise");
        let local_mu = mu / p_clients as f64;
        let mut nrng = StdRng::seed_from_u64(cfg.seed ^ (0x5E11_A000 + me as u64));
        let my_noise: Vec<F> = (0..upper_len)
            .map(|_| F::from_i128(sample_skellam(&mut nrng, local_mu) as i128))
            .collect();
        prof::record("vfl;dp_noise;skellam_draw", 1, upper_len as u64);
        let noise_contribs = ctx.share_all(&my_noise);
        for contrib in noise_contribs {
            reduced = ctx.add(&reduced, &contrib);
        }

        // --- open ----------------------------------------------------------
        ctx.set_phase("open");
        let opened = ctx.open(&reduced);
        opened.into_iter().map(|v| v.to_centered_i128()).collect()
    })?;

    // All parties opened the same values; take party 0's view.
    let opened = &run.outputs[0];
    for other in &run.outputs[1..] {
        debug_assert_eq!(other, opened, "parties disagree on the opened result");
    }
    let mut c_hat = Matrix::zeros(n, n);
    let mut idx = 0;
    for j in 0..n {
        for k in j..n {
            c_hat[(j, k)] = opened[idx] as f64;
            c_hat[(k, j)] = c_hat[(j, k)];
            idx += 1;
        }
    }
    Ok(CovarianceOutput {
        c_hat,
        stats: run.stats,
        trace: run.trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_data() -> Matrix {
        Matrix::from_rows(&[
            vec![0.5, -0.2, 0.1, 0.3],
            vec![-0.4, 0.3, 0.2, -0.1],
            vec![0.1, 0.1, -0.5, 0.2],
            vec![0.6, 0.0, 0.3, 0.4],
            vec![-0.2, -0.3, 0.1, 0.1],
        ])
    }

    #[test]
    fn mpc_covariance_matches_truth_without_noise() {
        let data = small_data();
        let partition = ColumnPartition::even(4, 4);
        let gamma = 1024.0;
        let cfg = VflConfig::fast(4);
        let out = covariance_skellam(&data, &partition, gamma, 0.0, &cfg);
        let truth = data.gram();
        let scaled = out.c_hat.scaled(1.0 / (gamma * gamma));
        let err = scaled.sub(&truth).frobenius_norm();
        assert!(err < 0.02, "err {err}\n{scaled:?}\n{truth:?}");
        assert!(out.c_hat.is_symmetric(0.0));
    }

    #[test]
    fn plaintext_and_mpc_agree_statistically() {
        let data = small_data();
        let partition = ColumnPartition::even(4, 2);
        let gamma = 4096.0;
        let cfg = VflConfig::fast(2);
        let mpc = covariance_skellam(&data, &partition, gamma, 0.0, &cfg);
        let mut rng = StdRng::seed_from_u64(99);
        let plain = covariance_skellam_plaintext(&mut rng, &data, gamma, 0.0, 2);
        let diff = mpc
            .c_hat
            .scaled(1.0 / (gamma * gamma))
            .sub(&plain.scaled(1.0 / (gamma * gamma)))
            .frobenius_norm();
        assert!(diff < 0.02, "diff {diff}");
    }

    #[test]
    fn noise_perturbs_output() {
        let data = small_data();
        let partition = ColumnPartition::even(4, 4);
        let cfg = VflConfig::fast(4);
        let mu = 1e6;
        let out = covariance_skellam(&data, &partition, 64.0, mu, &cfg);
        let clean = covariance_skellam(&data, &partition, 64.0, 0.0, &cfg);
        let delta = out.c_hat.sub(&clean.c_hat).frobenius_norm();
        // Noise std per entry is sqrt(2 mu) ~ 1414; 10 entries upper.
        assert!(delta > 100.0, "delta {delta}");
        assert!(out.c_hat.is_symmetric(0.0));
    }

    #[test]
    fn rounds_independent_of_m() {
        let partition = ColumnPartition::even(3, 3);
        let cfg = VflConfig::fast(3);
        let d1 = Matrix::from_rows(&vec![vec![0.1, 0.2, 0.3]; 5]);
        let d2 = Matrix::from_rows(&vec![vec![0.1, 0.2, 0.3]; 50]);
        let r1 = covariance_skellam(&d1, &partition, 16.0, 1.0, &cfg);
        let r2 = covariance_skellam(&d2, &partition, 16.0, 1.0, &cfg);
        assert_eq!(r1.stats.total.rounds, r2.stats.total.rounds);
        assert_eq!(r1.stats.total.rounds, 4); // input, reduce, noise, open
    }

    #[test]
    fn dp_noise_phase_is_tracked() {
        let data = small_data();
        let partition = ColumnPartition::even(4, 4);
        let cfg = VflConfig::fast(4);
        let out = covariance_skellam(&data, &partition, 32.0, 10.0, &cfg);
        assert_eq!(out.stats.phases["dp_noise"].rounds, 1);
        assert!(out.stats.phases["dp_noise"].bytes > 0);
    }

    #[test]
    fn large_gamma_dispatches_to_m127_and_stays_correct() {
        let data = small_data();
        let partition = ColumnPartition::even(4, 2);
        let cfg = VflConfig::fast(2);
        // gamma = 2^24 => per-entry ~ (2^24)^2 * m > 2^50; with the safety
        // margins this routes to M127.
        let gamma = (1u64 << 24) as f64;
        let out = covariance_skellam(&data, &partition, gamma, 0.0, &cfg);
        let scaled = out.c_hat.scaled(1.0 / (gamma * gamma));
        let err = scaled.sub(&data.gram()).frobenius_norm();
        assert!(err < 1e-4, "err {err}");
    }

    #[test]
    fn plaintext_noise_variance_matches_skellam() {
        let data = Matrix::zeros(1, 2);
        let mu = 500.0;
        let mut rng = StdRng::seed_from_u64(5);
        let mut vals = Vec::new();
        for _ in 0..2000 {
            let c = covariance_skellam_plaintext(&mut rng, &data, 16.0, mu, 4);
            vals.push(c[(0, 1)]);
        }
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64;
        assert!((var - 2.0 * mu).abs() / (2.0 * mu) < 0.15, "var {var}");
    }

    #[test]
    fn quantized_oracle_matches_mpc_bit_exactly() {
        let data = small_data();
        for (n_clients, seed, mu) in [(2usize, 7u64, 0.0), (3, 41, 25.0), (4, 1234, 400.0)] {
            let partition = ColumnPartition::even(4, n_clients);
            let gamma = 512.0;
            let cfg = VflConfig::fast(n_clients).with_seed(seed);
            let mpc = covariance_skellam(&data, &partition, gamma, mu, &cfg);
            let oracle = covariance_quantized_oracle(&data, &partition, gamma, mu, &cfg);
            assert_eq!(
                mpc.c_hat, oracle,
                "oracle diverged at P={n_clients} seed={seed} mu={mu}"
            );
        }
    }

    #[test]
    fn quantized_oracle_matches_both_batching_modes() {
        // One replay predicts both engine modes: the per-element reference
        // path and the round-batched path consume identical RNG streams.
        let data = small_data();
        let partition = ColumnPartition::even(4, 3);
        let gamma = 512.0;
        let mu = 25.0;
        for batching in [crate::Batching::default(), crate::Batching::Off] {
            let cfg = VflConfig::fast(3).with_seed(41).with_batching(batching);
            let mpc = covariance_skellam(&data, &partition, gamma, mu, &cfg);
            let oracle = covariance_quantized_oracle(&data, &partition, gamma, mu, &cfg);
            assert_eq!(mpc.c_hat, oracle, "oracle diverged under {batching:?}");
        }
    }

    #[test]
    #[should_panic(expected = "column mismatch")]
    fn rejects_partition_mismatch() {
        let data = small_data();
        let partition = ColumnPartition::even(3, 3);
        covariance_skellam(&data, &partition, 16.0, 0.0, &VflConfig::fast(3));
    }
}

#[cfg(test)]
mod chunked_tests {
    use super::*;

    #[test]
    fn chunked_matches_unchunked_without_noise() {
        let data = Matrix::from_rows(&[
            vec![0.5, -0.2, 0.1],
            vec![-0.4, 0.3, 0.2],
            vec![0.1, 0.1, -0.5],
            vec![0.6, 0.0, 0.3],
            vec![-0.2, -0.3, 0.1],
            vec![0.3, 0.2, 0.2],
            vec![0.1, -0.1, 0.4],
        ]);
        let partition = ColumnPartition::even(3, 3);
        let gamma = 2048.0;
        let cfg = VflConfig::fast(3);
        let full = covariance_skellam(&data, &partition, gamma, 0.0, &cfg);
        let chunked = covariance_skellam_chunked(&data, &partition, gamma, 0.0, &cfg, 3);
        // Same quantization stream per client, same arithmetic: identical.
        assert_eq!(full.c_hat, chunked.c_hat);
    }

    #[test]
    fn chunked_round_count() {
        let data = Matrix::from_rows(&vec![vec![0.1, 0.2]; 10]);
        let partition = ColumnPartition::even(2, 2);
        let cfg = VflConfig::fast(2);
        let out = covariance_skellam_chunked(&data, &partition, 32.0, 1.0, &cfg, 4);
        // ceil(10/4) = 3 input rounds + reduce + noise + open.
        assert_eq!(out.stats.total.rounds, 6);
        assert_eq!(out.stats.phases["input"].rounds, 3);
    }

    #[test]
    fn chunk_size_larger_than_m_equals_single_chunk() {
        let data = Matrix::from_rows(&vec![vec![0.3, -0.1]; 5]);
        let partition = ColumnPartition::even(2, 2);
        let cfg = VflConfig::fast(2);
        let a = covariance_skellam_chunked(&data, &partition, 64.0, 0.0, &cfg, 100);
        let b = covariance_skellam(&data, &partition, 64.0, 0.0, &cfg);
        assert_eq!(a.c_hat, b.c_hat);
        assert_eq!(a.stats.total.rounds, b.stats.total.rounds);
    }

    #[test]
    #[should_panic(expected = "chunk size")]
    fn rejects_zero_chunk() {
        let data = Matrix::zeros(2, 2);
        let partition = ColumnPartition::even(2, 2);
        covariance_skellam_chunked(&data, &partition, 16.0, 0.0, &VflConfig::fast(2), 0);
    }
}
