//! Session orchestration with an explicit, auditable server view.
//!
//! The paper's threat model distinguishes what the *server* observes
//! (Eq. 3) from what a *client* observes (Eq. 4). [`VflSession`] makes the
//! server side of that boundary executable: every value that crosses from
//! the clients to the server goes through [`ServerView::receive`], which
//! records it, so a test (or an auditor) can verify that the server's
//! entire view of a protocol run consists of exactly the DP-accounted
//! releases — never raw data, shares, or noise components.

use sqm_accounting::skellam::Sensitivity;
use sqm_accounting::{default_alpha_grid, skellam_rdp, Admission, PrivacyOdometer, RdpCurve};
use sqm_core::sensitivity::{lr_sensitivity, pca_sensitivity};
use sqm_linalg::Matrix;
use sqm_mpc::RunStats;
use sqm_obs::ledger::PrivacyLedger;
use std::fmt;

use crate::covariance::covariance_skellam;
use crate::gradient::gradient_sum_skellam;
use crate::mean::column_sums_skellam;
use crate::partition::ColumnPartition;
use crate::VflConfig;

/// One value the server received, with its provenance.
#[derive(Clone, Debug)]
pub struct Release {
    /// What protocol produced it.
    pub kind: ReleaseKind,
    /// The opened (already perturbed, still amplified) values.
    pub values: Vec<f64>,
    /// The Skellam parameter the release was perturbed with.
    pub mu: f64,
    /// The quantization scale.
    pub gamma: f64,
}

/// Protocol that produced a release.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ReleaseKind {
    Covariance,
    GradientSum,
    ColumnSums,
}

/// The untrusted coordinator's complete view of a session.
#[derive(Debug, Default)]
pub struct ServerView {
    releases: Vec<Release>,
}

impl ServerView {
    fn receive(&mut self, release: Release) {
        self.releases.push(release);
    }

    /// Everything the server has seen.
    pub fn releases(&self) -> &[Release] {
        &self.releases
    }

    /// Number of DP releases observed.
    pub fn len(&self) -> usize {
        self.releases.len()
    }

    pub fn is_empty(&self) -> bool {
        self.releases.is_empty()
    }
}

/// A release refused by the session's [`PrivacyOdometer`]: admitting it
/// would push the composed server-observed epsilon past the session budget.
/// The refusal happens *before* any MPC round runs — no shares move, no
/// noise is drawn, nothing reaches the server view or the ledger.
#[derive(Clone, Debug, PartialEq)]
pub struct BudgetRefusal {
    /// The protocol that was refused.
    pub kind: ReleaseKind,
    /// Server-observed epsilon the refused release alone would cost
    /// (infinite for an unperturbed `mu = 0` request).
    pub requested_epsilon: f64,
    /// Epsilon already spent by admitted releases.
    pub spent: f64,
    /// The session's overall epsilon budget.
    pub budget: f64,
}

impl fmt::Display for BudgetRefusal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "privacy budget refusal: {:?} release costing eps={:.4} refused \
             (spent {:.4} of budget {:.4})",
            self.kind, self.requested_epsilon, self.spent, self.budget
        )
    }
}

impl std::error::Error for BudgetRefusal {}

/// A VFL session: fixed clients/partition, a sequence of protocol calls,
/// and the accumulated [`ServerView`].
pub struct VflSession {
    partition: ColumnPartition,
    cfg: VflConfig,
    view: ServerView,
    total_stats: Vec<RunStats>,
    ledger: PrivacyLedger,
    odometer: PrivacyOdometer,
    delta: f64,
}

/// The `delta` the session's privacy ledger reports epsilons at unless
/// overridden with [`VflSession::with_delta`].
pub const DEFAULT_LEDGER_DELTA: f64 = 1e-5;

impl VflSession {
    pub fn new(partition: ColumnPartition, cfg: VflConfig) -> Self {
        Self::with_delta(partition, cfg, DEFAULT_LEDGER_DELTA)
    }

    /// Like [`VflSession::new`] but reporting ledger epsilons at `delta`.
    pub fn with_delta(partition: ColumnPartition, cfg: VflConfig, delta: f64) -> Self {
        assert_eq!(
            partition.n_clients(),
            cfg.n_clients,
            "partition/config mismatch"
        );
        let ledger = PrivacyLedger::new(cfg.n_clients, delta);
        VflSession {
            partition,
            cfg,
            view: ServerView::default(),
            total_stats: Vec::new(),
            ledger,
            // Unlimited by default: `admit()` still gates every release,
            // it just always fits. `with_budget` makes the gate bite.
            odometer: PrivacyOdometer::new(f64::INFINITY, delta),
            delta,
        }
    }

    /// Enforce an overall server-observed `(budget_eps, delta)` budget:
    /// every release must pass [`PrivacyOdometer::admit`] *before* its MPC
    /// rounds run, and an over-budget request is refused with a typed
    /// [`BudgetRefusal`]. The delta is the session's ledger delta.
    pub fn with_budget(mut self, budget_eps: f64) -> Self {
        self.odometer = PrivacyOdometer::new(budget_eps, self.delta);
        self
    }

    /// The server's accumulated view.
    pub fn server_view(&self) -> &ServerView {
        &self.view
    }

    /// Per-protocol MPC statistics, in execution order.
    pub fn stats(&self) -> &[RunStats] {
        &self.total_stats
    }

    /// The privacy ledger: one entry per release, with server- and
    /// client-observed epsilons and the running RDP composition.
    pub fn ledger(&self) -> &PrivacyLedger {
        &self.ledger
    }

    /// The budget odometer gating every release.
    pub fn odometer(&self) -> &PrivacyOdometer {
        &self.odometer
    }

    /// Does the odometer's recorded spend agree with the ledger's composed
    /// server curve? Both are fed the same per-release Skellam RDP curves,
    /// so any disagreement beyond floating error means a release bypassed
    /// one of the two accounts. (Trivially true while the ledger is
    /// unbounded from an unperturbed release — the odometer only admits
    /// those on unlimited sessions.)
    pub fn budget_consistent_with_ledger(&self) -> bool {
        let ledger_eps = self.ledger.server_epsilon();
        if ledger_eps.is_infinite() {
            return self.odometer.budget().0.is_infinite();
        }
        if self.ledger.is_empty() {
            return self.odometer.releases() == 0;
        }
        let spent = self.odometer.spent_epsilon();
        (spent - ledger_eps).abs() <= 1e-9 * ledger_eps.max(1.0)
    }

    /// Gate one release through the odometer, before any MPC work.
    fn admit(
        &mut self,
        kind: ReleaseKind,
        mu: f64,
        sens: Sensitivity,
    ) -> Result<(), BudgetRefusal> {
        let (budget, _) = self.odometer.budget();
        if mu <= 0.0 {
            // An unperturbed opening is an infinite-epsilon release; only
            // a session with an unlimited budget may run one.
            if budget.is_infinite() {
                return Ok(());
            }
            return Err(BudgetRefusal {
                kind,
                requested_epsilon: f64::INFINITY,
                spent: self.odometer.spent_epsilon(),
                budget,
            });
        }
        let curve = RdpCurve::from_fn(&default_alpha_grid(), |a| skellam_rdp(a, sens, mu));
        match self.odometer.admit(&curve) {
            Admission::Admitted => Ok(()),
            Admission::Rejected => Err(BudgetRefusal {
                kind,
                requested_epsilon: curve.to_epsilon(self.delta).0,
                spent: self.odometer.spent_epsilon(),
                budget,
            }),
        }
    }

    /// Run the noisy covariance protocol; the server receives only the
    /// opened `hatC` and down-scales it.
    ///
    /// Panics on a budget refusal; use [`VflSession::try_covariance`] on
    /// budgeted sessions.
    pub fn covariance(&mut self, data: &Matrix, gamma: f64, mu: f64) -> Matrix {
        self.try_covariance(data, gamma, mu)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`VflSession::covariance`] with over-budget requests refused as a
    /// typed [`BudgetRefusal`] before any MPC round runs.
    pub fn try_covariance(
        &mut self,
        data: &Matrix,
        gamma: f64,
        mu: f64,
    ) -> Result<Matrix, BudgetRefusal> {
        let n = data.cols();
        let c = data.max_row_norm().max(1e-9);
        let sens = pca_sensitivity(gamma, c, n);
        self.admit(ReleaseKind::Covariance, mu, sens)?;
        let out = covariance_skellam(data, &self.partition, gamma, mu, &self.cfg);
        self.view.receive(Release {
            kind: ReleaseKind::Covariance,
            values: out.c_hat.as_slice().to_vec(),
            mu,
            gamma,
        });
        self.ledger.record("covariance", n * n, gamma, mu, sens);
        self.total_stats.push(out.stats);
        Ok(out.c_hat.scaled(1.0 / (gamma * gamma)))
    }

    /// Run one noisy gradient-sum step.
    ///
    /// Panics on a budget refusal; use [`VflSession::try_gradient_sum`] on
    /// budgeted sessions.
    pub fn gradient_sum(
        &mut self,
        data: &Matrix,
        batch: &[usize],
        w: &[f64],
        gamma: f64,
        mu: f64,
    ) -> Vec<f64> {
        self.try_gradient_sum(data, batch, w, gamma, mu)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`VflSession::gradient_sum`] with over-budget requests refused as a
    /// typed [`BudgetRefusal`] before any MPC round runs.
    pub fn try_gradient_sum(
        &mut self,
        data: &Matrix,
        batch: &[usize],
        w: &[f64],
        gamma: f64,
        mu: f64,
    ) -> Result<Vec<f64>, BudgetRefusal> {
        let d = w.len();
        let sens = lr_sensitivity(gamma, d);
        self.admit(ReleaseKind::GradientSum, mu, sens)?;
        let out = gradient_sum_skellam(data, &self.partition, batch, w, gamma, mu, &self.cfg);
        self.view.receive(Release {
            kind: ReleaseKind::GradientSum,
            values: out.grad_sum.iter().map(|&g| g * gamma.powi(3)).collect(),
            mu,
            gamma,
        });
        self.ledger.record("gradient_sum", d, gamma, mu, sens);
        self.total_stats.push(out.stats);
        Ok(out.grad_sum)
    }

    /// Run the noisy column-sum (mean) protocol.
    ///
    /// Panics on a budget refusal; use [`VflSession::try_column_sums`] on
    /// budgeted sessions.
    pub fn column_sums(&mut self, data: &Matrix, gamma: f64, mu: f64) -> Vec<f64> {
        self.try_column_sums(data, gamma, mu)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`VflSession::column_sums`] with over-budget requests refused as a
    /// typed [`BudgetRefusal`] before any MPC round runs.
    pub fn try_column_sums(
        &mut self,
        data: &Matrix,
        gamma: f64,
        mu: f64,
    ) -> Result<Vec<f64>, BudgetRefusal> {
        // Lemma 3 shape at lambda = 1: replacing one record moves the
        // amplified sums by at most `gamma * c` plus one rounding unit per
        // column.
        let n = data.cols();
        let c = data.max_row_norm().max(1e-9);
        let sens = Sensitivity::from_l2_for_dim(gamma * c + (n as f64).sqrt(), n);
        self.admit(ReleaseKind::ColumnSums, mu, sens)?;
        let out = column_sums_skellam(data, &self.partition, gamma, mu, &self.cfg);
        self.view.receive(Release {
            kind: ReleaseKind::ColumnSums,
            values: out.sums_hat.clone(),
            mu,
            gamma,
        });
        self.ledger.record("column_sums", n, gamma, mu, sens);
        self.total_stats.push(out.stats);
        Ok(out.sums_hat.iter().map(|&s| s / gamma).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Matrix {
        Matrix::from_rows(&[
            vec![0.5, -0.2, 0.1, 1.0],
            vec![-0.4, 0.3, 0.2, 0.0],
            vec![0.1, 0.1, -0.5, 1.0],
            vec![0.6, 0.0, 0.3, 0.0],
        ])
    }

    #[test]
    fn view_records_every_release_and_nothing_else() {
        let partition = ColumnPartition::even(4, 2);
        let mut session = VflSession::new(partition, VflConfig::fast(2));
        let x = data();
        let gamma = 512.0;
        session.covariance(&x, gamma, 10.0);
        session.column_sums(&x, gamma, 10.0);
        session.gradient_sum(&x, &[0, 1, 2], &[0.1, 0.0, -0.1], gamma, 10.0);

        let view = session.server_view();
        assert_eq!(view.len(), 3);
        assert_eq!(view.releases()[0].kind, ReleaseKind::Covariance);
        assert_eq!(view.releases()[1].kind, ReleaseKind::ColumnSums);
        assert_eq!(view.releases()[2].kind, ReleaseKind::GradientSum);
        assert_eq!(session.stats().len(), 3);
    }

    #[test]
    fn releases_are_perturbed_not_raw() {
        // With visible noise, the server's view of the covariance must
        // differ from the exact quantized statistic — i.e. the server never
        // sees the noiseless value.
        let partition = ColumnPartition::even(4, 2);
        let x = data();
        let gamma = 64.0;
        let mu = 1e5;
        let mut noisy = VflSession::new(partition.clone(), VflConfig::fast(2));
        let c_noisy = noisy.covariance(&x, gamma, mu);
        let mut clean = VflSession::new(partition, VflConfig::fast(2));
        let c_clean = clean.covariance(&x, gamma, 0.0);
        let delta = c_noisy.sub(&c_clean).frobenius_norm();
        assert!(delta > 0.1, "server view not perturbed: {delta}");
    }

    #[test]
    fn downscaled_outputs_are_consistent_with_view() {
        let partition = ColumnPartition::even(4, 2);
        let mut session = VflSession::new(partition, VflConfig::fast(2));
        let x = data();
        let gamma = 1024.0;
        let sums = session.column_sums(&x, gamma, 0.0);
        let raw = &session.server_view().releases()[0].values;
        for (s, r) in sums.iter().zip(raw) {
            assert!((s * gamma - r).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn rejects_partition_config_mismatch() {
        VflSession::new(ColumnPartition::even(4, 2), VflConfig::fast(3));
    }

    #[test]
    fn exactly_one_release_per_invocation_with_parameters() {
        let mut session = VflSession::new(ColumnPartition::even(4, 2), VflConfig::fast(2));
        let x = data();
        assert!(session.server_view().is_empty());
        session.covariance(&x, 256.0, 5.0);
        assert_eq!(session.server_view().len(), 1);
        session.covariance(&x, 512.0, 7.0);
        assert_eq!(session.server_view().len(), 2);
        let r = &session.server_view().releases()[1];
        assert_eq!(r.kind, ReleaseKind::Covariance);
        assert_eq!(r.gamma, 512.0);
        assert_eq!(r.mu, 7.0);
        assert_eq!(r.values.len(), 16); // 4x4 covariance entries
    }

    #[test]
    fn gradient_release_is_the_amplified_opening() {
        // The recorded values must be the *amplified* (gamma^3-scaled)
        // integers the server actually observed, not the down-scaled output.
        let mut session = VflSession::new(ColumnPartition::even(4, 2), VflConfig::fast(2));
        let x = data();
        let gamma = 128.0;
        let grad = session.gradient_sum(&x, &[0, 1], &[0.2, -0.1, 0.0], gamma, 0.0);
        let rel = &session.server_view().releases()[0];
        assert_eq!(rel.values.len(), grad.len());
        for (v, g) in rel.values.iter().zip(&grad) {
            assert!((v - g * gamma.powi(3)).abs() < 1e-6);
            // Amplified openings are integers.
            assert!((v - v.round()).abs() < 1e-6, "not an integer opening: {v}");
        }
    }

    #[test]
    fn ledger_tracks_every_release() {
        let mut session = VflSession::new(ColumnPartition::even(4, 2), VflConfig::fast(2));
        let x = data();
        session.covariance(&x, 512.0, 1e6);
        session.column_sums(&x, 512.0, 1e4);
        session.gradient_sum(&x, &[0, 1, 2], &[0.1, 0.0, -0.1], 32.0, 1e8);

        let ledger = session.ledger();
        assert_eq!(ledger.len(), session.server_view().len());
        for (entry, release) in ledger
            .entries()
            .iter()
            .zip(session.server_view().releases())
        {
            assert_eq!(entry.gamma, release.gamma);
            assert_eq!(entry.mu, release.mu);
            assert!(entry.server_epsilon.is_finite());
            // The client view is strictly weaker (Eq. 4 vs Eq. 3).
            assert!(entry.client_epsilon > entry.server_epsilon);
        }
        assert_eq!(ledger.entries()[0].kind, "covariance");
        assert_eq!(ledger.entries()[1].kind, "column_sums");
        assert_eq!(ledger.entries()[2].kind, "gradient_sum");
        // Composition only grows.
        assert!(ledger.server_epsilon() >= ledger.entries()[0].server_epsilon);
        assert!(ledger.server_epsilon().is_finite());
    }

    #[test]
    fn unperturbed_release_is_flagged_unbounded() {
        let mut session = VflSession::new(ColumnPartition::even(4, 2), VflConfig::fast(2));
        session.column_sums(&data(), 64.0, 0.0);
        assert!(session.ledger().server_epsilon().is_infinite());
    }

    #[test]
    fn mu_starved_release_is_refused_before_any_mpc_round() {
        // A tight budget with near-zero noise: the requested epsilon is
        // enormous, so admission must refuse it up front — no MPC rounds,
        // no server view, no ledger entry, no odometer spend.
        let mut session =
            VflSession::new(ColumnPartition::even(4, 2), VflConfig::fast(2)).with_budget(1.0);
        let err = session.try_covariance(&data(), 512.0, 1e-6).unwrap_err();
        assert_eq!(err.kind, ReleaseKind::Covariance);
        assert!(err.requested_epsilon > err.budget);
        assert_eq!(err.budget, 1.0);
        assert!(
            session.stats().is_empty(),
            "refusal must happen before any MPC round runs"
        );
        assert!(session.server_view().is_empty());
        assert!(session.ledger().is_empty());
        assert_eq!(session.odometer().releases(), 0);
    }

    #[test]
    fn budgeted_session_admits_until_exhausted_then_refuses() {
        let x = data();
        // Measure one release's cost on an unlimited session, then budget
        // for about two of them.
        let mut probe = VflSession::new(ColumnPartition::even(4, 2), VflConfig::fast(2));
        probe.covariance(&x, 64.0, 1e8);
        let one = probe.ledger().server_epsilon();

        let mut session =
            VflSession::new(ColumnPartition::even(4, 2), VflConfig::fast(2)).with_budget(2.5 * one);
        let mut admitted = 0;
        let err = loop {
            match session.try_covariance(&x, 64.0, 1e8) {
                Ok(_) => admitted += 1,
                Err(e) => break e,
            }
            assert!(admitted < 50, "refusal never fired");
        };
        // RDP composition is sublinear in epsilon, so a 2.5x budget admits
        // at least two releases — and must eventually refuse.
        assert!(admitted >= 2, "expected >= 2 admitted, got {admitted}");
        assert!(err.spent <= err.budget, "spend never exceeds budget");
        // Only the admitted releases ran and were accounted.
        assert_eq!(session.stats().len(), admitted);
        assert_eq!(session.ledger().len(), admitted);
        assert_eq!(session.odometer().releases(), admitted);
        assert!(session.budget_consistent_with_ledger());
    }

    #[test]
    fn unperturbed_release_needs_an_unlimited_budget() {
        let mut session =
            VflSession::new(ColumnPartition::even(4, 2), VflConfig::fast(2)).with_budget(10.0);
        let err = session.try_column_sums(&data(), 64.0, 0.0).unwrap_err();
        assert_eq!(err.kind, ReleaseKind::ColumnSums);
        assert!(err.requested_epsilon.is_infinite());
        assert!(session.stats().is_empty());
    }

    #[test]
    fn odometer_spend_matches_ledger_composition() {
        let mut session = VflSession::new(ColumnPartition::even(4, 2), VflConfig::fast(2));
        let x = data();
        session.covariance(&x, 512.0, 1e6);
        session.column_sums(&x, 512.0, 1e4);
        assert!(session.budget_consistent_with_ledger());
        assert_eq!(session.odometer().releases(), session.ledger().len());
    }
}
