//! Session orchestration with an explicit, auditable server view.
//!
//! The paper's threat model distinguishes what the *server* observes
//! (Eq. 3) from what a *client* observes (Eq. 4). [`VflSession`] makes the
//! server side of that boundary executable: every value that crosses from
//! the clients to the server goes through [`ServerView::receive`], which
//! records it, so a test (or an auditor) can verify that the server's
//! entire view of a protocol run consists of exactly the DP-accounted
//! releases — never raw data, shares, or noise components.

use sqm_accounting::skellam::Sensitivity;
use sqm_core::sensitivity::{lr_sensitivity, pca_sensitivity};
use sqm_linalg::Matrix;
use sqm_mpc::RunStats;
use sqm_obs::ledger::PrivacyLedger;

use crate::covariance::covariance_skellam;
use crate::gradient::gradient_sum_skellam;
use crate::mean::column_sums_skellam;
use crate::partition::ColumnPartition;
use crate::VflConfig;

/// One value the server received, with its provenance.
#[derive(Clone, Debug)]
pub struct Release {
    /// What protocol produced it.
    pub kind: ReleaseKind,
    /// The opened (already perturbed, still amplified) values.
    pub values: Vec<f64>,
    /// The Skellam parameter the release was perturbed with.
    pub mu: f64,
    /// The quantization scale.
    pub gamma: f64,
}

/// Protocol that produced a release.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ReleaseKind {
    Covariance,
    GradientSum,
    ColumnSums,
}

/// The untrusted coordinator's complete view of a session.
#[derive(Debug, Default)]
pub struct ServerView {
    releases: Vec<Release>,
}

impl ServerView {
    fn receive(&mut self, release: Release) {
        self.releases.push(release);
    }

    /// Everything the server has seen.
    pub fn releases(&self) -> &[Release] {
        &self.releases
    }

    /// Number of DP releases observed.
    pub fn len(&self) -> usize {
        self.releases.len()
    }

    pub fn is_empty(&self) -> bool {
        self.releases.is_empty()
    }
}

/// A VFL session: fixed clients/partition, a sequence of protocol calls,
/// and the accumulated [`ServerView`].
pub struct VflSession {
    partition: ColumnPartition,
    cfg: VflConfig,
    view: ServerView,
    total_stats: Vec<RunStats>,
    ledger: PrivacyLedger,
}

/// The `delta` the session's privacy ledger reports epsilons at unless
/// overridden with [`VflSession::with_delta`].
pub const DEFAULT_LEDGER_DELTA: f64 = 1e-5;

impl VflSession {
    pub fn new(partition: ColumnPartition, cfg: VflConfig) -> Self {
        Self::with_delta(partition, cfg, DEFAULT_LEDGER_DELTA)
    }

    /// Like [`VflSession::new`] but reporting ledger epsilons at `delta`.
    pub fn with_delta(partition: ColumnPartition, cfg: VflConfig, delta: f64) -> Self {
        assert_eq!(
            partition.n_clients(),
            cfg.n_clients,
            "partition/config mismatch"
        );
        let ledger = PrivacyLedger::new(cfg.n_clients, delta);
        VflSession {
            partition,
            cfg,
            view: ServerView::default(),
            total_stats: Vec::new(),
            ledger,
        }
    }

    /// The server's accumulated view.
    pub fn server_view(&self) -> &ServerView {
        &self.view
    }

    /// Per-protocol MPC statistics, in execution order.
    pub fn stats(&self) -> &[RunStats] {
        &self.total_stats
    }

    /// The privacy ledger: one entry per release, with server- and
    /// client-observed epsilons and the running RDP composition.
    pub fn ledger(&self) -> &PrivacyLedger {
        &self.ledger
    }

    /// Run the noisy covariance protocol; the server receives only the
    /// opened `hatC` and down-scales it.
    pub fn covariance(&mut self, data: &Matrix, gamma: f64, mu: f64) -> Matrix {
        let out = covariance_skellam(data, &self.partition, gamma, mu, &self.cfg);
        self.view.receive(Release {
            kind: ReleaseKind::Covariance,
            values: out.c_hat.as_slice().to_vec(),
            mu,
            gamma,
        });
        let n = data.cols();
        let c = data.max_row_norm().max(1e-9);
        self.ledger
            .record("covariance", n * n, gamma, mu, pca_sensitivity(gamma, c, n));
        self.total_stats.push(out.stats);
        out.c_hat.scaled(1.0 / (gamma * gamma))
    }

    /// Run one noisy gradient-sum step.
    pub fn gradient_sum(
        &mut self,
        data: &Matrix,
        batch: &[usize],
        w: &[f64],
        gamma: f64,
        mu: f64,
    ) -> Vec<f64> {
        let out = gradient_sum_skellam(data, &self.partition, batch, w, gamma, mu, &self.cfg);
        self.view.receive(Release {
            kind: ReleaseKind::GradientSum,
            values: out.grad_sum.iter().map(|&g| g * gamma.powi(3)).collect(),
            mu,
            gamma,
        });
        let d = w.len();
        self.ledger
            .record("gradient_sum", d, gamma, mu, lr_sensitivity(gamma, d));
        self.total_stats.push(out.stats);
        out.grad_sum
    }

    /// Run the noisy column-sum (mean) protocol.
    pub fn column_sums(&mut self, data: &Matrix, gamma: f64, mu: f64) -> Vec<f64> {
        let out = column_sums_skellam(data, &self.partition, gamma, mu, &self.cfg);
        self.view.receive(Release {
            kind: ReleaseKind::ColumnSums,
            values: out.sums_hat.clone(),
            mu,
            gamma,
        });
        // Lemma 3 shape at lambda = 1: replacing one record moves the
        // amplified sums by at most `gamma * c` plus one rounding unit per
        // column.
        let n = data.cols();
        let c = data.max_row_norm().max(1e-9);
        let sens = Sensitivity::from_l2_for_dim(gamma * c + (n as f64).sqrt(), n);
        self.ledger.record("column_sums", n, gamma, mu, sens);
        self.total_stats.push(out.stats);
        out.sums_hat.iter().map(|&s| s / gamma).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Matrix {
        Matrix::from_rows(&[
            vec![0.5, -0.2, 0.1, 1.0],
            vec![-0.4, 0.3, 0.2, 0.0],
            vec![0.1, 0.1, -0.5, 1.0],
            vec![0.6, 0.0, 0.3, 0.0],
        ])
    }

    #[test]
    fn view_records_every_release_and_nothing_else() {
        let partition = ColumnPartition::even(4, 2);
        let mut session = VflSession::new(partition, VflConfig::fast(2));
        let x = data();
        let gamma = 512.0;
        session.covariance(&x, gamma, 10.0);
        session.column_sums(&x, gamma, 10.0);
        session.gradient_sum(&x, &[0, 1, 2], &[0.1, 0.0, -0.1], gamma, 10.0);

        let view = session.server_view();
        assert_eq!(view.len(), 3);
        assert_eq!(view.releases()[0].kind, ReleaseKind::Covariance);
        assert_eq!(view.releases()[1].kind, ReleaseKind::ColumnSums);
        assert_eq!(view.releases()[2].kind, ReleaseKind::GradientSum);
        assert_eq!(session.stats().len(), 3);
    }

    #[test]
    fn releases_are_perturbed_not_raw() {
        // With visible noise, the server's view of the covariance must
        // differ from the exact quantized statistic — i.e. the server never
        // sees the noiseless value.
        let partition = ColumnPartition::even(4, 2);
        let x = data();
        let gamma = 64.0;
        let mu = 1e5;
        let mut noisy = VflSession::new(partition.clone(), VflConfig::fast(2));
        let c_noisy = noisy.covariance(&x, gamma, mu);
        let mut clean = VflSession::new(partition, VflConfig::fast(2));
        let c_clean = clean.covariance(&x, gamma, 0.0);
        let delta = c_noisy.sub(&c_clean).frobenius_norm();
        assert!(delta > 0.1, "server view not perturbed: {delta}");
    }

    #[test]
    fn downscaled_outputs_are_consistent_with_view() {
        let partition = ColumnPartition::even(4, 2);
        let mut session = VflSession::new(partition, VflConfig::fast(2));
        let x = data();
        let gamma = 1024.0;
        let sums = session.column_sums(&x, gamma, 0.0);
        let raw = &session.server_view().releases()[0].values;
        for (s, r) in sums.iter().zip(raw) {
            assert!((s * gamma - r).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn rejects_partition_config_mismatch() {
        VflSession::new(ColumnPartition::even(4, 2), VflConfig::fast(3));
    }

    #[test]
    fn exactly_one_release_per_invocation_with_parameters() {
        let mut session = VflSession::new(ColumnPartition::even(4, 2), VflConfig::fast(2));
        let x = data();
        assert!(session.server_view().is_empty());
        session.covariance(&x, 256.0, 5.0);
        assert_eq!(session.server_view().len(), 1);
        session.covariance(&x, 512.0, 7.0);
        assert_eq!(session.server_view().len(), 2);
        let r = &session.server_view().releases()[1];
        assert_eq!(r.kind, ReleaseKind::Covariance);
        assert_eq!(r.gamma, 512.0);
        assert_eq!(r.mu, 7.0);
        assert_eq!(r.values.len(), 16); // 4x4 covariance entries
    }

    #[test]
    fn gradient_release_is_the_amplified_opening() {
        // The recorded values must be the *amplified* (gamma^3-scaled)
        // integers the server actually observed, not the down-scaled output.
        let mut session = VflSession::new(ColumnPartition::even(4, 2), VflConfig::fast(2));
        let x = data();
        let gamma = 128.0;
        let grad = session.gradient_sum(&x, &[0, 1], &[0.2, -0.1, 0.0], gamma, 0.0);
        let rel = &session.server_view().releases()[0];
        assert_eq!(rel.values.len(), grad.len());
        for (v, g) in rel.values.iter().zip(&grad) {
            assert!((v - g * gamma.powi(3)).abs() < 1e-6);
            // Amplified openings are integers.
            assert!((v - v.round()).abs() < 1e-6, "not an integer opening: {v}");
        }
    }

    #[test]
    fn ledger_tracks_every_release() {
        let mut session = VflSession::new(ColumnPartition::even(4, 2), VflConfig::fast(2));
        let x = data();
        session.covariance(&x, 512.0, 1e6);
        session.column_sums(&x, 512.0, 1e4);
        session.gradient_sum(&x, &[0, 1, 2], &[0.1, 0.0, -0.1], 32.0, 1e8);

        let ledger = session.ledger();
        assert_eq!(ledger.len(), session.server_view().len());
        for (entry, release) in ledger
            .entries()
            .iter()
            .zip(session.server_view().releases())
        {
            assert_eq!(entry.gamma, release.gamma);
            assert_eq!(entry.mu, release.mu);
            assert!(entry.server_epsilon.is_finite());
            // The client view is strictly weaker (Eq. 4 vs Eq. 3).
            assert!(entry.client_epsilon > entry.server_epsilon);
        }
        assert_eq!(ledger.entries()[0].kind, "covariance");
        assert_eq!(ledger.entries()[1].kind, "column_sums");
        assert_eq!(ledger.entries()[2].kind, "gradient_sum");
        // Composition only grows.
        assert!(ledger.server_epsilon() >= ledger.entries()[0].server_epsilon);
        assert!(ledger.server_epsilon().is_finite());
    }

    #[test]
    fn unperturbed_release_is_flagged_unbounded() {
        let mut session = VflSession::new(ColumnPartition::even(4, 2), VflConfig::fast(2));
        session.column_sums(&data(), 64.0, 0.0);
        assert!(session.ledger().server_epsilon().is_infinite());
    }
}
