//! Session orchestration with an explicit, auditable server view.
//!
//! The paper's threat model distinguishes what the *server* observes
//! (Eq. 3) from what a *client* observes (Eq. 4). [`VflSession`] makes the
//! server side of that boundary executable: every value that crosses from
//! the clients to the server goes through [`ServerView::receive`], which
//! records it, so a test (or an auditor) can verify that the server's
//! entire view of a protocol run consists of exactly the DP-accounted
//! releases — never raw data, shares, or noise components.

use sqm_linalg::Matrix;
use sqm_mpc::RunStats;

use crate::covariance::covariance_skellam;
use crate::gradient::gradient_sum_skellam;
use crate::mean::column_sums_skellam;
use crate::partition::ColumnPartition;
use crate::VflConfig;

/// One value the server received, with its provenance.
#[derive(Clone, Debug)]
pub struct Release {
    /// What protocol produced it.
    pub kind: ReleaseKind,
    /// The opened (already perturbed, still amplified) values.
    pub values: Vec<f64>,
    /// The Skellam parameter the release was perturbed with.
    pub mu: f64,
    /// The quantization scale.
    pub gamma: f64,
}

/// Protocol that produced a release.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ReleaseKind {
    Covariance,
    GradientSum,
    ColumnSums,
}

/// The untrusted coordinator's complete view of a session.
#[derive(Debug, Default)]
pub struct ServerView {
    releases: Vec<Release>,
}

impl ServerView {
    fn receive(&mut self, release: Release) {
        self.releases.push(release);
    }

    /// Everything the server has seen.
    pub fn releases(&self) -> &[Release] {
        &self.releases
    }

    /// Number of DP releases observed.
    pub fn len(&self) -> usize {
        self.releases.len()
    }

    pub fn is_empty(&self) -> bool {
        self.releases.is_empty()
    }
}

/// A VFL session: fixed clients/partition, a sequence of protocol calls,
/// and the accumulated [`ServerView`].
pub struct VflSession {
    partition: ColumnPartition,
    cfg: VflConfig,
    view: ServerView,
    total_stats: Vec<RunStats>,
}

impl VflSession {
    pub fn new(partition: ColumnPartition, cfg: VflConfig) -> Self {
        assert_eq!(partition.n_clients(), cfg.n_clients, "partition/config mismatch");
        VflSession {
            partition,
            cfg,
            view: ServerView::default(),
            total_stats: Vec::new(),
        }
    }

    /// The server's accumulated view.
    pub fn server_view(&self) -> &ServerView {
        &self.view
    }

    /// Per-protocol MPC statistics, in execution order.
    pub fn stats(&self) -> &[RunStats] {
        &self.total_stats
    }

    /// Run the noisy covariance protocol; the server receives only the
    /// opened `hatC` and down-scales it.
    pub fn covariance(&mut self, data: &Matrix, gamma: f64, mu: f64) -> Matrix {
        let out = covariance_skellam(data, &self.partition, gamma, mu, &self.cfg);
        self.view.receive(Release {
            kind: ReleaseKind::Covariance,
            values: out.c_hat.as_slice().to_vec(),
            mu,
            gamma,
        });
        self.total_stats.push(out.stats);
        out.c_hat.scaled(1.0 / (gamma * gamma))
    }

    /// Run one noisy gradient-sum step.
    pub fn gradient_sum(
        &mut self,
        data: &Matrix,
        batch: &[usize],
        w: &[f64],
        gamma: f64,
        mu: f64,
    ) -> Vec<f64> {
        let out = gradient_sum_skellam(data, &self.partition, batch, w, gamma, mu, &self.cfg);
        self.view.receive(Release {
            kind: ReleaseKind::GradientSum,
            values: out.grad_sum.iter().map(|&g| g * gamma.powi(3)).collect(),
            mu,
            gamma,
        });
        self.total_stats.push(out.stats);
        out.grad_sum
    }

    /// Run the noisy column-sum (mean) protocol.
    pub fn column_sums(&mut self, data: &Matrix, gamma: f64, mu: f64) -> Vec<f64> {
        let out = column_sums_skellam(data, &self.partition, gamma, mu, &self.cfg);
        self.view.receive(Release {
            kind: ReleaseKind::ColumnSums,
            values: out.sums_hat.clone(),
            mu,
            gamma,
        });
        self.total_stats.push(out.stats);
        out.sums_hat.iter().map(|&s| s / gamma).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Matrix {
        Matrix::from_rows(&[
            vec![0.5, -0.2, 0.1, 1.0],
            vec![-0.4, 0.3, 0.2, 0.0],
            vec![0.1, 0.1, -0.5, 1.0],
            vec![0.6, 0.0, 0.3, 0.0],
        ])
    }

    #[test]
    fn view_records_every_release_and_nothing_else() {
        let partition = ColumnPartition::even(4, 2);
        let mut session = VflSession::new(partition, VflConfig::fast(2));
        let x = data();
        let gamma = 512.0;
        session.covariance(&x, gamma, 10.0);
        session.column_sums(&x, gamma, 10.0);
        session.gradient_sum(&x, &[0, 1, 2], &[0.1, 0.0, -0.1], gamma, 10.0);

        let view = session.server_view();
        assert_eq!(view.len(), 3);
        assert_eq!(view.releases()[0].kind, ReleaseKind::Covariance);
        assert_eq!(view.releases()[1].kind, ReleaseKind::ColumnSums);
        assert_eq!(view.releases()[2].kind, ReleaseKind::GradientSum);
        assert_eq!(session.stats().len(), 3);
    }

    #[test]
    fn releases_are_perturbed_not_raw() {
        // With visible noise, the server's view of the covariance must
        // differ from the exact quantized statistic — i.e. the server never
        // sees the noiseless value.
        let partition = ColumnPartition::even(4, 2);
        let x = data();
        let gamma = 64.0;
        let mu = 1e5;
        let mut noisy = VflSession::new(partition.clone(), VflConfig::fast(2));
        let c_noisy = noisy.covariance(&x, gamma, mu);
        let mut clean = VflSession::new(partition, VflConfig::fast(2));
        let c_clean = clean.covariance(&x, gamma, 0.0);
        let delta = c_noisy.sub(&c_clean).frobenius_norm();
        assert!(delta > 0.1, "server view not perturbed: {delta}");
    }

    #[test]
    fn downscaled_outputs_are_consistent_with_view() {
        let partition = ColumnPartition::even(4, 2);
        let mut session = VflSession::new(partition, VflConfig::fast(2));
        let x = data();
        let gamma = 1024.0;
        let sums = session.column_sums(&x, gamma, 0.0);
        let raw = &session.server_view().releases()[0].values;
        for (s, r) in sums.iter().zip(raw) {
            assert!((s * gamma - r).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn rejects_partition_config_mismatch() {
        VflSession::new(ColumnPartition::even(4, 2), VflConfig::fast(3));
    }
}
