//! Vertical (column-wise) partitioning of the database across clients.

/// Assignment of each column to an owning client.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ColumnPartition {
    /// `owner[j]` = client owning column `j`.
    owner: Vec<usize>,
    n_clients: usize,
}

impl ColumnPartition {
    /// Contiguous even partition of `n_cols` columns among `n_clients`
    /// (the paper's canonical setup; with `n_clients == n_cols` each client
    /// owns exactly one attribute).
    pub fn even(n_cols: usize, n_clients: usize) -> Self {
        assert!(n_clients >= 1, "need at least one client");
        assert!(
            n_cols >= n_clients,
            "cannot spread {n_cols} columns over {n_clients} clients"
        );
        let base = n_cols / n_clients;
        let extra = n_cols % n_clients;
        let mut owner = Vec::with_capacity(n_cols);
        for c in 0..n_clients {
            let w = base + usize::from(c < extra);
            owner.extend(std::iter::repeat_n(c, w));
        }
        ColumnPartition { owner, n_clients }
    }

    /// Explicit assignment.
    pub fn from_owners(owner: Vec<usize>, n_clients: usize) -> Self {
        assert!(!owner.is_empty(), "no columns");
        assert!(
            owner.iter().all(|&c| c < n_clients),
            "owner index out of range"
        );
        ColumnPartition { owner, n_clients }
    }

    pub fn n_cols(&self) -> usize {
        self.owner.len()
    }

    pub fn n_clients(&self) -> usize {
        self.n_clients
    }

    /// The client owning column `j`.
    pub fn owner_of(&self, j: usize) -> usize {
        self.owner[j]
    }

    /// The columns owned by `client`, ascending.
    pub fn columns_of(&self, client: usize) -> Vec<usize> {
        assert!(client < self.n_clients, "client {client} out of range");
        self.owner
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c == client)
            .map(|(j, _)| j)
            .collect()
    }

    /// Per-client column counts.
    pub fn counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_clients];
        for &c in &self.owner {
            counts[c] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_split_balanced() {
        let p = ColumnPartition::even(10, 4);
        assert_eq!(p.counts(), vec![3, 3, 2, 2]);
        assert_eq!(p.columns_of(0), vec![0, 1, 2]);
        assert_eq!(p.columns_of(3), vec![8, 9]);
    }

    #[test]
    fn exact_division() {
        let p = ColumnPartition::even(8, 4);
        assert_eq!(p.counts(), vec![2; 4]);
    }

    #[test]
    fn one_column_per_client() {
        let p = ColumnPartition::even(5, 5);
        assert_eq!(p.counts(), vec![1; 5]);
        for j in 0..5 {
            assert_eq!(p.owner_of(j), j);
        }
    }

    #[test]
    fn explicit_owners() {
        let p = ColumnPartition::from_owners(vec![1, 0, 1], 2);
        assert_eq!(p.columns_of(1), vec![0, 2]);
    }

    #[test]
    #[should_panic(expected = "cannot spread")]
    fn rejects_more_clients_than_columns() {
        ColumnPartition::even(3, 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_owner() {
        ColumnPartition::from_owners(vec![0, 5], 2);
    }
}
