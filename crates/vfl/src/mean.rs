//! Secure noisy column sums — the degree-1 workload (Algorithm 1 with
//! `lambda = 1` per column).
//!
//! Releasing per-attribute sums/means is the simplest member of SQM's
//! polynomial class: the function is linear, so the MPC evaluation needs
//! *no* multiplications at all — input sharing, local summation of shares,
//! one noise round, one opening. Three rounds total, any record count.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sqm_core::quantize::quantize_vec;
use sqm_field::{FieldChoice, PrimeField, M127, M61};
use sqm_linalg::Matrix;
use sqm_mpc::{MpcEngine, RunStats};
use sqm_sampling::skellam::sample_skellam;

use crate::partition::ColumnPartition;
use crate::VflConfig;

/// The opened, still-amplified column sums plus statistics.
#[derive(Debug)]
pub struct MeanOutput {
    /// `sum_i hat x_ij + Sk(mu)` per column `j` (divide by `gamma * m` for
    /// the mean estimate).
    pub sums_hat: Vec<f64>,
    pub stats: RunStats,
    /// Structured trace (only when `VflConfig::trace` is set).
    pub trace: Option<sqm_obs::trace::Trace>,
}

/// Full BGW execution of the noisy column-sum release.
pub fn column_sums_skellam(
    data: &Matrix,
    partition: &ColumnPartition,
    gamma: f64,
    mu: f64,
    cfg: &VflConfig,
) -> MeanOutput {
    assert_eq!(
        partition.n_cols(),
        data.cols(),
        "partition/data column mismatch"
    );
    assert_eq!(
        partition.n_clients(),
        cfg.n_clients,
        "partition/config mismatch"
    );
    let c = data.max_row_norm().max(1e-9);
    let bound = data.rows() as f64 * (gamma * c + 1.0) + 12.0 * (2.0 * mu).sqrt();
    match FieldChoice::for_magnitude(bound).expect("workload exceeds M127 headroom") {
        FieldChoice::M61 => mean_impl::<M61>(data, partition, gamma, mu, cfg),
        FieldChoice::M127 => mean_impl::<M127>(data, partition, gamma, mu, cfg),
    }
}

/// Output-equivalent plaintext simulation.
pub fn column_sums_skellam_plaintext<R: rand::Rng + ?Sized>(
    rng: &mut R,
    data: &Matrix,
    gamma: f64,
    mu: f64,
    n_clients: usize,
) -> Vec<f64> {
    let n = data.cols();
    let mut sums = vec![0i128; n];
    for i in 0..data.rows() {
        for (s, q) in sums.iter_mut().zip(quantize_vec(rng, data.row(i), gamma)) {
            *s += q as i128;
        }
    }
    let local_mu = mu / n_clients as f64;
    for s in sums.iter_mut() {
        for _ in 0..n_clients {
            *s += sample_skellam(rng, local_mu) as i128;
        }
    }
    sums.into_iter().map(|s| s as f64).collect()
}

/// The same column-sum release executed on the *additive-sharing* backend
/// (SPDZ-style online phase) instead of BGW — a working demonstration of
/// the paper's claim that the MPC layer is replaceable. For a linear
/// function no triples are needed at all, so the two backends have
/// identical round structure (input, noise, open).
pub fn column_sums_skellam_additive(
    data: &Matrix,
    partition: &ColumnPartition,
    gamma: f64,
    mu: f64,
    cfg: &VflConfig,
) -> MeanOutput {
    assert_eq!(
        partition.n_cols(),
        data.cols(),
        "partition/data column mismatch"
    );
    assert_eq!(
        partition.n_clients(),
        cfg.n_clients,
        "partition/config mismatch"
    );
    let c = data.max_row_norm().max(1e-9);
    let bound = data.rows() as f64 * (gamma * c + 1.0) + 12.0 * (2.0 * mu).sqrt();
    match FieldChoice::for_magnitude(bound).expect("workload exceeds M127 headroom") {
        FieldChoice::M61 => additive_impl::<M61>(data, partition, gamma, mu, cfg),
        FieldChoice::M127 => additive_impl::<M127>(data, partition, gamma, mu, cfg),
    }
}

fn additive_impl<F: PrimeField>(
    data: &Matrix,
    partition: &ColumnPartition,
    gamma: f64,
    mu: f64,
    cfg: &VflConfig,
) -> MeanOutput {
    use sqm_mpc::AdditiveEngine;
    let n = data.cols();
    let p_clients = cfg.n_clients;
    let engine = AdditiveEngine::new(cfg.mpc_config());
    let run = engine.run::<F, Vec<i128>, _>(|ctx| {
        let me = ctx.id;
        ctx.set_phase("quantize");
        let mut qrng = StdRng::seed_from_u64(cfg.seed ^ (0x3EA4_0000 + me as u64));
        let my_cols = partition.columns_of(me);
        let my_sums: Vec<(usize, F)> = my_cols
            .iter()
            .map(|&j| {
                let q = quantize_vec(&mut qrng, &data.col(j), gamma);
                (j, F::from_i128(q.into_iter().map(|v| v as i128).sum()))
            })
            .collect();

        // Input sharing: one round per owner batched as n owner-calls would
        // be expensive; instead every client shares its own column sums in a
        // single round each (owner order is public). For the linear release
        // this is still O(P) rounds at most; with even partitions each
        // client calls share_input once per owned slot sequentially.
        ctx.set_phase("input");
        let mut col_sum_shares: Vec<F> = vec![F::ZERO; n];
        for owner in 0..ctx.n {
            let owned = partition.columns_of(owner);
            let values: Option<Vec<F>> =
                (ctx.id == owner).then(|| my_sums.iter().map(|&(_, v)| v).collect());
            let shares = ctx.share_input(owner, values.as_deref(), owned.len());
            for (slot, &j) in owned.iter().enumerate() {
                col_sum_shares[j] = shares[slot];
            }
        }

        ctx.set_phase("dp_noise");
        let mut nrng = StdRng::seed_from_u64(cfg.seed ^ (0x5E11_D000 + me as u64));
        let local_mu = mu / p_clients as f64;
        // Additive backend: each party simply adds its own noise share to
        // its additive share — no extra communication round at all.
        for share in col_sum_shares.iter_mut() {
            *share += F::from_i128(sample_skellam(&mut nrng, local_mu) as i128);
        }

        ctx.set_phase("open");
        ctx.open(&col_sum_shares)
            .into_iter()
            .map(|f| f.to_centered_i128())
            .collect()
    });
    MeanOutput {
        sums_hat: run.outputs[0].iter().map(|&v| v as f64).collect(),
        stats: run.stats,
        trace: run.trace,
    }
}

fn mean_impl<F: PrimeField>(
    data: &Matrix,
    partition: &ColumnPartition,
    gamma: f64,
    mu: f64,
    cfg: &VflConfig,
) -> MeanOutput {
    let n = data.cols();
    let m = data.rows();
    let p_clients = cfg.n_clients;
    let engine = MpcEngine::new(cfg.mpc_config());
    // Each client only shares its *column sums* — for a linear function the
    // per-record values never need to be shared at all, so the input cost
    // is O(n P^2) rather than O(m n P^2).
    let counts = partition.counts();

    let run = engine.run::<F, Vec<i128>, _>(|ctx| {
        let me = ctx.id;
        ctx.set_phase("quantize");
        let mut qrng = StdRng::seed_from_u64(cfg.seed ^ (0x3EA4_0000 + me as u64));
        let my_cols = partition.columns_of(me);
        let my_sums: Vec<F> = my_cols
            .iter()
            .map(|&j| {
                let q = quantize_vec(&mut qrng, &data.col(j), gamma);
                F::from_i128(q.into_iter().map(|v| v as i128).sum())
            })
            .collect();

        ctx.set_phase("input");
        let contributions = ctx.share_all_uneven(&my_sums, &counts);
        let mut col_sum_shares: Vec<F> = vec![F::ZERO; n];
        for (client, contrib) in contributions.into_iter().enumerate() {
            for (slot, &j) in partition.columns_of(client).iter().enumerate() {
                col_sum_shares[j] = contrib[slot];
            }
        }

        ctx.set_phase("dp_noise");
        let mut nrng = StdRng::seed_from_u64(cfg.seed ^ (0x5E11_D000 + me as u64));
        let local_mu = mu / p_clients as f64;
        let my_noise: Vec<F> = (0..n)
            .map(|_| F::from_i128(sample_skellam(&mut nrng, local_mu) as i128))
            .collect();
        for contrib in ctx.share_all(&my_noise) {
            col_sum_shares = ctx.add(&col_sum_shares, &contrib);
        }

        ctx.set_phase("open");
        ctx.open(&col_sum_shares)
            .into_iter()
            .map(|f| f.to_centered_i128())
            .collect()
    });
    let _ = m;

    MeanOutput {
        sums_hat: run.outputs[0].iter().map(|&v| v as f64).collect(),
        stats: run.stats,
        trace: run.trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn data() -> Matrix {
        Matrix::from_rows(&[
            vec![0.5, -0.2, 0.1],
            vec![-0.4, 0.3, 0.2],
            vec![0.1, 0.1, -0.5],
            vec![0.2, -0.2, 0.2],
        ])
    }

    fn true_sums(x: &Matrix) -> Vec<f64> {
        (0..x.cols()).map(|j| x.col(j).iter().sum()).collect()
    }

    #[test]
    fn mpc_sums_match_truth_without_noise() {
        let x = data();
        let partition = ColumnPartition::even(3, 3);
        let gamma = 4096.0;
        let out = column_sums_skellam(&x, &partition, gamma, 0.0, &VflConfig::fast(3));
        for (s, t) in out.sums_hat.iter().zip(true_sums(&x)) {
            assert!((s / gamma - t).abs() < 0.01, "{} vs {t}", s / gamma);
        }
        // Linear protocol: input + noise + open = 3 rounds, no reductions.
        assert_eq!(out.stats.total.rounds, 3);
    }

    #[test]
    fn plaintext_matches_mpc_statistically() {
        let x = data();
        let mut rng = StdRng::seed_from_u64(1);
        let gamma = 4096.0;
        let plain = column_sums_skellam_plaintext(&mut rng, &x, gamma, 0.0, 3);
        for (s, t) in plain.iter().zip(true_sums(&x)) {
            assert!((s / gamma - t).abs() < 0.01);
        }
    }

    #[test]
    fn noise_variance_matches_skellam() {
        let x = Matrix::zeros(2, 2);
        let mu = 200.0;
        let mut rng = StdRng::seed_from_u64(2);
        let vals: Vec<f64> = (0..4000)
            .map(|_| column_sums_skellam_plaintext(&mut rng, &x, 16.0, mu, 5)[0])
            .collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64;
        assert!((var - 2.0 * mu).abs() / (2.0 * mu) < 0.15, "var {var}");
    }

    #[test]
    fn additive_backend_matches_truth() {
        let x = data();
        let partition = ColumnPartition::even(3, 3);
        let gamma = 4096.0;
        let out = column_sums_skellam_additive(&x, &partition, gamma, 0.0, &VflConfig::fast(3));
        for (s, t) in out.sums_hat.iter().zip(true_sums(&x)) {
            assert!((s / gamma - t).abs() < 0.01, "{} vs {t}", s / gamma);
        }
    }

    #[test]
    fn additive_noise_is_free_of_extra_rounds() {
        let x = data();
        let partition = ColumnPartition::even(3, 3);
        let out = column_sums_skellam_additive(&x, &partition, 64.0, 100.0, &VflConfig::fast(3));
        // P input rounds + 1 open; the local-noise trick costs zero rounds.
        assert_eq!(out.stats.total.rounds, 4);
        assert!(out.stats.phases.get("dp_noise").map_or(0, |p| p.rounds) == 0);
    }

    #[test]
    fn additive_and_bgw_have_same_output_law() {
        // Both perturb the quantized sums with aggregate Sk(mu); compare
        // empirical variance of the two backends' outputs around the truth.
        let x = data();
        let partition = ColumnPartition::even(3, 3);
        let gamma = 64.0;
        let mu = 400.0;
        let mut var_bgw = 0.0;
        let mut var_add = 0.0;
        let reps = 60;
        for seed in 0..reps {
            let cfg = VflConfig::fast(3).with_seed(seed);
            let truth: Vec<f64> = true_sums(&x).iter().map(|t| t * gamma).collect();
            let b = column_sums_skellam(&x, &partition, gamma, mu, &cfg);
            let a = column_sums_skellam_additive(&x, &partition, gamma, mu, &cfg);
            var_bgw += (b.sums_hat[0] - truth[0]).powi(2);
            var_add += (a.sums_hat[0] - truth[0]).powi(2);
        }
        var_bgw /= reps as f64;
        var_add /= reps as f64;
        let expect = 2.0 * mu;
        // Quantization adds a little variance on top of the noise; both
        // backends must be in the same ballpark of 2*mu.
        for (name, v) in [("bgw", var_bgw), ("additive", var_add)] {
            assert!(
                v > 0.4 * expect && v < 2.5 * expect,
                "{name}: var {v} vs 2mu {expect}"
            );
        }
    }

    #[test]
    fn input_cost_independent_of_m() {
        let partition = ColumnPartition::even(3, 3);
        let cfg = VflConfig::fast(3);
        let small = column_sums_skellam(&data(), &partition, 16.0, 1.0, &cfg);
        let big_data = Matrix::from_rows(&vec![vec![0.1, 0.2, 0.3]; 400]);
        let big = column_sums_skellam(&big_data, &partition, 16.0, 1.0, &cfg);
        assert_eq!(small.stats.total.bytes, big.stats.total.bytes);
    }
}
