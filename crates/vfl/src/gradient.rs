//! Secure noisy gradient sums: the logistic-regression workload
//! (Section V-B).
//!
//! Eq. 9's per-record polynomial `f(w, (x, y)) = (1/2) x + <w/4, x> x - y x`
//! has degree 2 with the label treated as one more private attribute, so
//! Algorithm 3 amplifies every monomial by `gamma^3`:
//!
//! * data and labels are quantized at scale `gamma`;
//! * the degree-2 coefficients `w_j/4` and `-1` (label term) are quantized
//!   at scale `gamma`; the degree-1 coefficient `1/2` at scale `gamma^2`.
//!
//! Because the weights are public, `<hat w/4, hat x>` is a *local* linear
//! combination of shares; the only secure multiplications are the `|B|`
//! products `v_i * hat x_ik`, summed over the batch at degree `2t` and
//! reduced in a single batched round of `d` elements.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sqm_core::quantize::quantize_vec;
use sqm_field::{FieldChoice, PrimeField, M127, M61};
use sqm_linalg::Matrix;
use sqm_mpc::{MpcEngine, RunStats};
use sqm_obs::prof;
use sqm_sampling::rounding::stochastic_round;
use sqm_sampling::skellam::sample_skellam;

use crate::partition::ColumnPartition;
use crate::VflConfig;

/// The opened, down-scaled gradient sum and run statistics.
#[derive(Debug)]
pub struct GradientOutput {
    /// Estimate of `sum_{(x,y) in B} f(w, (x, y))` (already divided by
    /// `gamma^3`).
    pub grad_sum: Vec<f64>,
    /// MPC accounting.
    pub stats: RunStats,
    /// Structured trace (only when `VflConfig::trace` is set).
    pub trace: Option<sqm_obs::trace::Trace>,
}

/// Publicly quantized coefficients of Eq. 9 (all parties must agree, so the
/// rounding uses a public coin derived from the config seed).
#[derive(Clone, Debug)]
pub struct QuantizedLrCoeffs {
    /// `round(gamma * w_j / 4)`.
    pub w_quarter: Vec<i64>,
    /// `round(gamma^2 / 2)`.
    pub half: i64,
    /// `round(gamma * 1)` — the label-term coefficient magnitude.
    pub label: i64,
}

/// Quantize Eq. 9's coefficients for weight vector `w` at scale `gamma`.
pub fn quantize_lr_coeffs(w: &[f64], gamma: f64, public_seed: u64) -> QuantizedLrCoeffs {
    let mut rng = StdRng::seed_from_u64(public_seed ^ 0xC0EF_F1C1);
    QuantizedLrCoeffs {
        w_quarter: w
            .iter()
            .map(|&wj| stochastic_round(&mut rng, gamma * wj / 4.0))
            .collect(),
        half: stochastic_round(&mut rng, gamma * gamma / 2.0),
        label: stochastic_round(&mut rng, gamma),
    }
}

/// Full BGW execution of one noisy gradient-sum step.
///
/// `data` is the VFL matrix (`m x (d+1)`, last column = label), `batch`
/// indexes the subsampled records (known to the clients through shared
/// randomness, hidden from the server), `w` the current public weights.
pub fn gradient_sum_skellam(
    data: &Matrix,
    partition: &ColumnPartition,
    batch: &[usize],
    w: &[f64],
    gamma: f64,
    mu: f64,
    cfg: &VflConfig,
) -> GradientOutput {
    let d = data.cols() - 1;
    assert_eq!(w.len(), d, "weight vector length must equal feature count");
    assert_eq!(
        partition.n_cols(),
        data.cols(),
        "partition/data column mismatch"
    );
    assert_eq!(
        partition.n_clients(),
        cfg.n_clients,
        "partition/config mismatch"
    );
    assert!(!batch.is_empty(), "empty batch");
    assert!(
        batch.iter().all(|&i| i < data.rows()),
        "batch index out of range"
    );

    let bound = magnitude_bound(batch.len(), d, gamma, mu);
    match FieldChoice::for_magnitude(bound).expect("workload exceeds M127 headroom") {
        FieldChoice::M61 => gradient_impl::<M61>(data, partition, batch, w, gamma, mu, cfg),
        FieldChoice::M127 => gradient_impl::<M127>(data, partition, batch, w, gamma, mu, cfg),
    }
}

/// Output-equivalent plaintext simulation of the same release (used by the
/// statistical experiments; thousands of SGD steps).
#[allow(clippy::too_many_arguments)]
pub fn gradient_sum_skellam_plaintext<R: rand::Rng + ?Sized>(
    rng: &mut R,
    data: &Matrix,
    batch: &[usize],
    w: &[f64],
    gamma: f64,
    mu: f64,
    n_clients: usize,
    public_seed: u64,
) -> Vec<f64> {
    let d = data.cols() - 1;
    assert_eq!(w.len(), d);
    let coeffs = quantize_lr_coeffs(w, gamma, public_seed);
    let mut acc = vec![0i128; d];
    for &i in batch {
        let row = data.row(i);
        let qx = quantize_vec(rng, &row[..d], gamma);
        let qy = stochastic_round(rng, gamma * row[d]);
        let v: i128 = qx
            .iter()
            .zip(&coeffs.w_quarter)
            .map(|(&x, &c)| x as i128 * c as i128)
            .sum::<i128>()
            - coeffs.label as i128 * qy as i128;
        for k in 0..d {
            acc[k] += coeffs.half as i128 * qx[k] as i128 + v * qx[k] as i128;
        }
    }
    let local_mu = mu / n_clients as f64;
    for a in acc.iter_mut() {
        for _ in 0..n_clients {
            *a += sample_skellam(rng, local_mu) as i128;
        }
    }
    let amp = gamma.powi(3);
    acc.into_iter().map(|v| v as f64 / amp).collect()
}

fn magnitude_bound(batch_len: usize, d: usize, gamma: f64, mu: f64) -> f64 {
    // |v_i| <= gamma/4 * (gamma + sqrt(d)) + gamma*(gamma+1) roughly; per
    // dim |v_i * x_ik| <= ~2 gamma^3. Use a generous closed form.
    let per_record = 4.0 * gamma.powi(3) * (d as f64).sqrt().max(1.0);
    batch_len as f64 * per_record + 12.0 * (2.0 * mu).sqrt() + gamma * gamma
}

fn gradient_impl<F: PrimeField>(
    data: &Matrix,
    partition: &ColumnPartition,
    batch: &[usize],
    w: &[f64],
    gamma: f64,
    mu: f64,
    cfg: &VflConfig,
) -> GradientOutput {
    let d = data.cols() - 1;
    let mb = batch.len();
    let p_clients = cfg.n_clients;
    let coeffs = quantize_lr_coeffs(w, gamma, cfg.seed);
    let engine = MpcEngine::new(cfg.mpc_config());
    let counts = partition.counts();
    let expected: Vec<usize> = counts.iter().map(|&c| c * mb).collect();

    let run = engine.run::<F, Vec<i128>, _>(|ctx| {
        let me = ctx.id;
        // --- quantize my columns (batch rows only) ------------------------
        ctx.set_phase("quantize");
        let mut qrng = StdRng::seed_from_u64(cfg.seed ^ (0x96AD_0000 + me as u64));
        let my_cols = partition.columns_of(me);
        let mut my_values: Vec<F> = Vec::with_capacity(my_cols.len() * mb);
        for &j in &my_cols {
            for &i in batch {
                let q = stochastic_round(&mut qrng, gamma * data[(i, j)]);
                my_values.push(F::from_i128(q as i128));
            }
        }

        // --- input sharing --------------------------------------------------
        ctx.set_phase("input");
        let contributions = ctx.share_all_uneven(&my_values, &expected);
        let n_cols = d + 1;
        let mut col_shares: Vec<Vec<F>> = vec![Vec::new(); n_cols];
        for (client, contrib) in contributions.into_iter().enumerate() {
            let cols = partition.columns_of(client);
            for (slot, &j) in cols.iter().enumerate() {
                col_shares[j] = contrib[slot * mb..(slot + 1) * mb].to_vec();
            }
        }

        // --- gradient: local linear + one product per (record, dim) --------
        ctx.set_phase("compute");
        let f_half = F::from_i128(coeffs.half as i128);
        let f_label = F::from_i128(coeffs.label as i128);
        let f_w: Vec<F> = coeffs
            .w_quarter
            .iter()
            .map(|&c| F::from_i128(c as i128))
            .collect();
        // v_i = sum_j qw_j * x_ij - q_label * y_i  (degree-t share, local).
        let mut v: Vec<F> = vec![F::ZERO; mb];
        for (i, vi) in v.iter_mut().enumerate() {
            let mut acc = F::ZERO;
            for j in 0..d {
                acc += f_w[j] * col_shares[j][i];
            }
            *vi = acc - f_label * col_shares[d][i];
        }
        // G_k = sum_i (v_i * x_ik) [degree 2t] + half * sum_i x_ik [degree t].
        let mut locals: Vec<F> = Vec::with_capacity(d);
        for col in col_shares.iter().take(d) {
            let mut acc = F::ZERO;
            for (&vi, &xik) in v.iter().zip(col) {
                acc += vi * xik;
                acc += f_half * xik;
            }
            locals.push(acc);
        }
        if prof::is_active() {
            // One independent-mul round of width `d`: the gradient step is
            // already maximally batched.
            prof::set_batching_report(prof::BatchingReport::from_level_widths(vec![d], p_clients));
        }
        let mut reduced = ctx.reduce_degree(&locals);

        // --- distributed Skellam noise --------------------------------------
        ctx.set_phase("dp_noise");
        let mut nrng = StdRng::seed_from_u64(cfg.seed ^ (0x5E11_B000 + me as u64));
        let local_mu = mu / p_clients as f64;
        let my_noise: Vec<F> = (0..d)
            .map(|_| F::from_i128(sample_skellam(&mut nrng, local_mu) as i128))
            .collect();
        prof::record("vfl;dp_noise;skellam_draw", 1, d as u64);
        for contrib in ctx.share_all(&my_noise) {
            reduced = ctx.add(&reduced, &contrib);
        }

        // --- open ------------------------------------------------------------
        ctx.set_phase("open");
        ctx.open(&reduced)
            .into_iter()
            .map(|f| f.to_centered_i128())
            .collect()
    });

    let opened = &run.outputs[0];
    let amp = gamma.powi(3);
    GradientOutput {
        grad_sum: opened.iter().map(|&v| v as f64 / amp).collect(),
        stats: run.stats,
        trace: run.trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Reference: Eq. 9 on the raw (unquantized) records.
    fn true_grad_sum(data: &Matrix, batch: &[usize], w: &[f64]) -> Vec<f64> {
        let d = data.cols() - 1;
        let mut g = vec![0.0; d];
        for &i in batch {
            let row = data.row(i);
            let (x, y) = (&row[..d], row[d]);
            let wx: f64 = w.iter().zip(x).map(|(a, b)| a * b).sum();
            for k in 0..d {
                g[k] += 0.5 * x[k] + (wx / 4.0) * x[k] - y * x[k];
            }
        }
        g
    }

    fn toy_vfl_data() -> Matrix {
        // 6 records, 3 features + label.
        Matrix::from_rows(&[
            vec![0.5, -0.2, 0.1, 1.0],
            vec![-0.4, 0.3, 0.2, 0.0],
            vec![0.1, 0.1, -0.5, 1.0],
            vec![0.6, 0.0, 0.3, 0.0],
            vec![-0.2, -0.3, 0.1, 1.0],
            vec![0.3, 0.2, 0.2, 0.0],
        ])
    }

    #[test]
    fn mpc_gradient_matches_truth_without_noise() {
        let data = toy_vfl_data();
        let partition = ColumnPartition::even(4, 4);
        let w = vec![0.2, -0.1, 0.4];
        let batch: Vec<usize> = (0..6).collect();
        let gamma = 4096.0;
        let out = gradient_sum_skellam(
            &data,
            &partition,
            &batch,
            &w,
            gamma,
            0.0,
            &VflConfig::fast(4),
        );
        let truth = true_grad_sum(&data, &batch, &w);
        for (g, t) in out.grad_sum.iter().zip(&truth) {
            assert!((g - t).abs() < 0.01, "got {g}, want {t}");
        }
    }

    #[test]
    fn plaintext_matches_truth_without_noise() {
        let data = toy_vfl_data();
        let w = vec![0.2, -0.1, 0.4];
        let batch: Vec<usize> = (0..6).collect();
        let mut rng = StdRng::seed_from_u64(3);
        let g = gradient_sum_skellam_plaintext(&mut rng, &data, &batch, &w, 8192.0, 0.0, 4, 7);
        let truth = true_grad_sum(&data, &batch, &w);
        for (gi, t) in g.iter().zip(&truth) {
            assert!((gi - t).abs() < 0.01, "got {gi}, want {t}");
        }
    }

    #[test]
    fn mpc_and_plaintext_agree() {
        let data = toy_vfl_data();
        let partition = ColumnPartition::even(4, 2);
        let w = vec![0.1, 0.1, -0.2];
        let batch = vec![0, 2, 4];
        let gamma = 8192.0;
        let out = gradient_sum_skellam(
            &data,
            &partition,
            &batch,
            &w,
            gamma,
            0.0,
            &VflConfig::fast(2),
        );
        let mut rng = StdRng::seed_from_u64(11);
        let plain = gradient_sum_skellam_plaintext(&mut rng, &data, &batch, &w, gamma, 0.0, 2, 7);
        for (a, b) in out.grad_sum.iter().zip(&plain) {
            assert!((a - b).abs() < 0.01, "mpc {a} plain {b}");
        }
    }

    #[test]
    fn noise_scale_is_calibrated() {
        // Zero data isolates the noise: variance of grad_sum entries should
        // be 2*mu / gamma^6.
        let data = Matrix::zeros(4, 3); // 2 features + label
        let w = vec![0.0, 0.0];
        let batch = vec![0, 1, 2, 3];
        let gamma = 16.0;
        let mu = 1e4;
        let mut rng = StdRng::seed_from_u64(5);
        let mut vals = Vec::new();
        for trial in 0..3000 {
            let g =
                gradient_sum_skellam_plaintext(&mut rng, &data, &batch, &w, gamma, mu, 4, trial);
            vals.push(g[0]);
        }
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64;
        let expect = 2.0 * mu / gamma.powi(6);
        assert!(
            (var - expect).abs() / expect < 0.15,
            "var {var} expect {expect}"
        );
    }

    #[test]
    fn batch_subsetting_works() {
        let data = toy_vfl_data();
        let partition = ColumnPartition::even(4, 2);
        let w = vec![0.0, 0.0, 0.0];
        let batch = vec![1, 3];
        let out = gradient_sum_skellam(
            &data,
            &partition,
            &batch,
            &w,
            2048.0,
            0.0,
            &VflConfig::fast(2),
        );
        let truth = true_grad_sum(&data, &batch, &w);
        for (g, t) in out.grad_sum.iter().zip(&truth) {
            assert!((g - t).abs() < 0.01, "got {g}, want {t}");
        }
    }

    #[test]
    fn rounds_are_constant_in_batch_and_dim() {
        let data = toy_vfl_data();
        let partition = ColumnPartition::even(4, 2);
        let w = vec![0.1, 0.2, 0.3];
        let cfg = VflConfig::fast(2);
        let r1 = gradient_sum_skellam(&data, &partition, &[0, 1], &w, 256.0, 1.0, &cfg);
        let r2 = gradient_sum_skellam(&data, &partition, &[0, 1, 2, 3, 4, 5], &w, 256.0, 1.0, &cfg);
        assert_eq!(r1.stats.total.rounds, r2.stats.total.rounds);
        assert_eq!(r1.stats.total.rounds, 4);
    }

    #[test]
    fn coefficient_quantization_is_deterministic_in_public_seed() {
        let w = vec![0.123, -0.456];
        let a = quantize_lr_coeffs(&w, 1024.0, 42);
        let b = quantize_lr_coeffs(&w, 1024.0, 42);
        assert_eq!(a.w_quarter, b.w_quarter);
        assert_eq!(a.half, b.half);
        assert_eq!(a.label, b.label);
    }

    #[test]
    #[should_panic(expected = "weight vector length")]
    fn rejects_wrong_weight_length() {
        let data = toy_vfl_data();
        let partition = ColumnPartition::even(4, 2);
        gradient_sum_skellam(
            &data,
            &partition,
            &[0],
            &[0.1],
            256.0,
            0.0,
            &VflConfig::fast(2),
        );
    }
}
