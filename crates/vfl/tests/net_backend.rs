//! Acceptance tests for the pluggable transport: the loopback-TCP backend
//! must be *indistinguishable in outputs and accounting* from the
//! in-process channel mesh, faults must perturb timing but never values,
//! and failures must surface as typed errors naming party and round.
//!
//! Workload: the paper's covariance protocol at m = 100 records,
//! n = 20 dimensions, P = 4 clients.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqm_linalg::Matrix;
use sqm_vfl::{
    covariance_skellam, try_covariance_skellam, Batching, ColumnPartition, FaultSpec, NetBackend,
    TransportError, VflConfig,
};

const M: usize = 100;
const N: usize = 20;
const P: usize = 4;
const GAMMA: f64 = 128.0;
const MU: f64 = 10.0;

fn workload() -> (Matrix, ColumnPartition) {
    let mut rng = StdRng::seed_from_u64(2024);
    let data = Matrix::from_vec(M, N, (0..M * N).map(|_| rng.gen_range(-0.5..0.5)).collect());
    (data, ColumnPartition::even(N, P))
}

fn base_cfg() -> VflConfig {
    VflConfig::fast(P).with_seed(42)
}

#[test]
fn tcp_covariance_is_bit_identical_to_in_process() {
    let (data, partition) = workload();

    let inproc = covariance_skellam(&data, &partition, GAMMA, MU, &base_cfg());
    let tcp = covariance_skellam(
        &data,
        &partition,
        GAMMA,
        MU,
        &base_cfg().with_backend(NetBackend::tcp()),
    );

    // Field-element outputs are exact integers stored in f64: demand
    // bit-identity, not closeness.
    assert_eq!(inproc.c_hat, tcp.c_hat);
    // And the transports agree on what was said: same rounds, same
    // message count, same payload bytes (frame headers are overhead of
    // the medium, not protocol traffic, so TCP excludes them).
    assert_eq!(inproc.stats.total.rounds, tcp.stats.total.rounds);
    assert_eq!(inproc.stats.total.messages, tcp.stats.total.messages);
    assert_eq!(inproc.stats.total.bytes, tcp.stats.total.bytes);
}

#[test]
fn five_percent_drop_completes_via_retransmit_with_identical_output() {
    let (data, partition) = workload();
    let clean = covariance_skellam(&data, &partition, GAMMA, MU, &base_cfg());

    let faults = FaultSpec::seeded(7)
        .with_drop(0.05)
        .with_retransmit(Duration::from_micros(50), 20);
    let lossy = covariance_skellam(
        &data,
        &partition,
        GAMMA,
        MU,
        &base_cfg().with_faults(faults),
    );

    // Drops cost retransmit time, never data: the protocol completes and
    // opens the exact same matrix, with the same accounted traffic
    // (retransmits are a transport detail, not protocol messages).
    assert_eq!(clean.c_hat, lossy.c_hat);
    assert_eq!(clean.stats.total.messages, lossy.stats.total.messages);
    assert_eq!(clean.stats.total.bytes, lossy.stats.total.bytes);
}

#[test]
fn crashed_party_yields_typed_error_naming_party_and_round() {
    let (data, partition) = workload();
    let cfg = base_cfg().with_faults(FaultSpec::seeded(3).with_crash(2, 1));

    let err = try_covariance_skellam(&data, &partition, GAMMA, MU, &cfg)
        .expect_err("a crashed party must not produce an output");
    assert_eq!(err, TransportError::Crashed { party: 2, round: 1 });
}

#[test]
fn seeded_faults_are_deterministic_across_runs() {
    let (data, partition) = workload();
    let faulty = || {
        base_cfg().with_faults(
            FaultSpec::seeded(11)
                .with_delay(Duration::ZERO, Duration::from_micros(200))
                .with_drop(0.1)
                .with_retransmit(Duration::from_micros(50), 20),
        )
    };

    let a = covariance_skellam(&data, &partition, GAMMA, MU, &faulty());
    let b = covariance_skellam(&data, &partition, GAMMA, MU, &faulty());

    assert_eq!(a.c_hat, b.c_hat);
    assert_eq!(a.stats.total.rounds, b.stats.total.rounds);
    assert_eq!(a.stats.total.messages, b.stats.total.messages);
    assert_eq!(a.stats.total.bytes, b.stats.total.bytes);
}

#[test]
fn faults_compose_over_the_tcp_backend_too() {
    let (data, partition) = workload();
    let clean = covariance_skellam(&data, &partition, GAMMA, MU, &base_cfg());
    let cfg = base_cfg().with_backend(NetBackend::tcp()).with_faults(
        FaultSpec::seeded(5)
            .with_drop(0.05)
            .with_retransmit(Duration::from_micros(50), 20),
    );
    let out = covariance_skellam(&data, &partition, GAMMA, MU, &cfg);
    assert_eq!(clean.c_hat, out.c_hat);
}

#[test]
fn per_element_framing_survives_drops_over_tcp_with_identical_output() {
    // The reference mode sends one physical frame per element plus a
    // sentinel, so a seeded drop schedule hits a very different wire
    // pattern than the batched default — yet retransmission must still
    // deliver the exact same opened matrix and payload-byte accounting.
    let (data, partition) = workload();
    let clean = covariance_skellam(&data, &partition, GAMMA, MU, &base_cfg());
    let cfg = base_cfg()
        .with_batching(Batching::Off)
        .with_backend(NetBackend::tcp())
        .with_faults(
            FaultSpec::seeded(5)
                .with_drop(0.05)
                .with_retransmit(Duration::from_micros(50), 20),
        );
    let out = covariance_skellam(&data, &partition, GAMMA, MU, &cfg);
    assert_eq!(clean.c_hat, out.c_hat);
    assert_eq!(clean.stats.total.rounds, out.stats.total.rounds);
    assert_eq!(clean.stats.total.bytes, out.stats.total.bytes);
    assert_eq!(clean.stats.total.elems, out.stats.total.elems);
    // One accounted message per element in the reference framing.
    assert_eq!(out.stats.total.messages, out.stats.total.elems);
}

#[test]
fn mid_round_crash_is_typed_identically_in_the_reference_mode() {
    // A crash is a property of (party, round), not of wire framing: both
    // modes must surface the identical typed error over framed TCP.
    let (data, partition) = workload();
    for batching in [Batching::default(), Batching::Off] {
        let cfg = base_cfg()
            .with_batching(batching)
            .with_backend(NetBackend::tcp())
            .with_faults(FaultSpec::seeded(3).with_crash(2, 1));
        let err = try_covariance_skellam(&data, &partition, GAMMA, MU, &cfg)
            .expect_err("a crashed party must not produce an output");
        assert_eq!(err, TransportError::Crashed { party: 2, round: 1 });
    }
}
