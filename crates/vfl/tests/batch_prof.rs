//! Profiler-counter equivalence between the batched and per-element
//! reference execution modes.
//!
//! Lives in its own test binary with a single test: the cost profiler is
//! process-global, so no other MPC run may execute in this process while
//! it is active or the snapshots would absorb foreign traffic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqm_linalg::Matrix;
use sqm_obs::prof;
use sqm_vfl::{covariance_skellam, Batching, ColumnPartition, ProfConfig, VflConfig};

#[test]
fn prof_counters_differ_only_in_exchange_message_counts() {
    let (m, n, p) = (20usize, 8usize, 4usize);
    let mut rng = StdRng::seed_from_u64(4242);
    let data = Matrix::from_vec(m, n, (0..m * n).map(|_| rng.gen_range(-0.5..0.5)).collect());
    let partition = ColumnPartition::even(n, p);

    let profile = |batching: Batching| {
        prof::install(&ProfConfig::default(), 42);
        prof::reset();
        let out = covariance_skellam(
            &data,
            &partition,
            256.0,
            20.0,
            &VflConfig::fast(p).with_seed(42).with_batching(batching),
        );
        let snap = prof::snapshot().expect("profiler installed");
        prof::deactivate();
        prof::reset();
        (out, snap)
    };

    let (batched_out, batched) = profile(Batching::default());
    let (reference_out, reference) = profile(Batching::Off);
    assert_eq!(batched_out.c_hat, reference_out.c_hat);

    // Same attribution tree: every recorded path exists in both modes.
    assert_eq!(
        batched.nodes.keys().collect::<Vec<_>>(),
        reference.nodes.keys().collect::<Vec<_>>()
    );
    let (mut batched_msgs, mut reference_msgs) = (0u64, 0u64);
    for (path, b) in &batched.nodes {
        let r = &reference.nodes[path];
        assert_eq!(b.calls, r.calls, "{path}: calls");
        assert_eq!(b.work, r.work, "{path}: work");
        assert_eq!(b.bytes, r.bytes, "{path}: bytes");
        if b.bytes == 0 {
            // Non-exchange nodes (field-op bulks, sampler draws, layer
            // widths) are bit-identical: batching is a wire concern.
            assert_eq!(b.messages, r.messages, "{path}: messages");
        } else {
            // Exchange nodes carry the same payload in fewer frames.
            assert!(b.messages <= r.messages, "{path}: message framing");
        }
        batched_msgs += b.messages;
        reference_msgs += r.messages;
    }
    // The profile's exchange totals reconcile with the engine's own
    // accounting in both modes; `engine;<phase>;exchange` and
    // `engine;<phase>;round<k>` double-record each round.
    assert_eq!(batched_msgs, 2 * batched_out.stats.total.messages);
    assert_eq!(reference_msgs, 2 * reference_out.stats.total.messages);
    assert_eq!(
        reference_out.stats.total.messages,
        reference_out.stats.total.elems
    );

    // The batching-opportunity report is a function of the workload, not
    // of the execution mode, and records the realized batch width.
    assert_eq!(batched.batching, reference.batching);
    let report = batched.batching.expect("covariance reports its mul widths");
    assert_eq!(report.level_widths, vec![n * (n + 1) / 2]);
    assert_eq!(report.reduction_factor(), (n * (n + 1) / 2) as f64);
}
