//! Batched-vs-reference differential suite: the round-batched execution
//! mode against the per-element reference it replaced.
//!
//! `Batching::Off` keeps the one-message-per-element wire discipline as an
//! executable reference. The round-batched default must be
//! indistinguishable from it in everything except message accounting:
//! released values, round structure, payload bytes, element counts, the
//! deterministic component of the simulated clock, privacy-ledger
//! epsilons, and typed failure surfaces are bit-identical across modes,
//! backends and fault plans, while the reference counts exactly one
//! message per field element (`messages == elems`) and the batched mode
//! sends one frame per link per round.
//!
//! Profiler-counter equivalence lives in `batch_prof.rs` (own binary: the
//! cost profiler is process-global).

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqm_linalg::Matrix;
use sqm_mpc::RunStats;
use sqm_vfl::{
    covariance_skellam, gradient_sum_skellam, try_covariance_skellam, Batching, ColumnPartition,
    FaultSpec, NetBackend, TransportError, VflConfig, VflSession,
};

const M: usize = 24;
const N: usize = 10;
const P: usize = 4;
const GAMMA: f64 = 256.0;
const MU: f64 = 20.0;

fn workload() -> (Matrix, ColumnPartition) {
    let mut rng = StdRng::seed_from_u64(4242);
    let data = Matrix::from_vec(M, N, (0..M * N).map(|_| rng.gen_range(-0.5..0.5)).collect());
    (data, ColumnPartition::even(N, P))
}

fn cfg(batching: Batching) -> VflConfig {
    VflConfig::fast(P).with_seed(42).with_batching(batching)
}

/// Everything except the message count must match, phase by phase; the
/// reference must count exactly one message per field element.
fn assert_stats_equivalent(batched: &RunStats, reference: &RunStats) {
    assert_eq!(batched.total.rounds, reference.total.rounds);
    assert_eq!(batched.total.bytes, reference.total.bytes);
    assert_eq!(batched.total.elems, reference.total.elems);
    assert_eq!(
        reference.total.messages, reference.total.elems,
        "per-element reference must count one message per element"
    );
    assert!(
        batched.total.messages < reference.total.messages,
        "batching must shrink the message count ({} vs {})",
        batched.total.messages,
        reference.total.messages
    );
    // The simulated clock is `wall + rounds * latency`; wall is measured,
    // so compare the deterministic latency component on its own.
    assert_eq!(
        batched.simulated_time() - batched.total.wall,
        reference.simulated_time() - reference.total.wall,
        "simulated-clock latency component must be mode-independent"
    );
    assert_eq!(
        batched.phases.keys().collect::<Vec<_>>(),
        reference.phases.keys().collect::<Vec<_>>(),
        "same phase structure"
    );
    for (name, b) in &batched.phases {
        let r = &reference.phases[name];
        assert_eq!(b.rounds, r.rounds, "phase {name}: rounds");
        assert_eq!(b.bytes, r.bytes, "phase {name}: bytes");
        assert_eq!(b.elems, r.elems, "phase {name}: elems");
        assert_eq!(r.messages, r.elems, "phase {name}: reference framing");
    }
}

#[test]
fn covariance_reference_matches_batched_bit_for_bit() {
    let (data, partition) = workload();
    for backend in [NetBackend::InProcess, NetBackend::tcp()] {
        let batched = covariance_skellam(
            &data,
            &partition,
            GAMMA,
            MU,
            &cfg(Batching::default()).with_backend(backend.clone()),
        );
        let reference = covariance_skellam(
            &data,
            &partition,
            GAMMA,
            MU,
            &cfg(Batching::Off).with_backend(backend),
        );
        // Field elements are exact integers in f64: demand bit-identity.
        assert_eq!(batched.c_hat, reference.c_hat);
        assert_stats_equivalent(&batched.stats, &reference.stats);
    }
}

#[test]
fn gradient_reference_matches_batched_bit_for_bit() {
    let (data, partition) = workload();
    let batch: Vec<usize> = vec![0, 2, 5, 7, 11, 13];
    let w = vec![0.05; N - 1];
    for backend in [NetBackend::InProcess, NetBackend::tcp()] {
        let batched = gradient_sum_skellam(
            &data,
            &partition,
            &batch,
            &w,
            GAMMA,
            MU,
            &cfg(Batching::default()).with_backend(backend.clone()),
        );
        let reference = gradient_sum_skellam(
            &data,
            &partition,
            &batch,
            &w,
            GAMMA,
            MU,
            &cfg(Batching::Off).with_backend(backend),
        );
        assert_eq!(batched.grad_sum, reference.grad_sum);
        assert_stats_equivalent(&batched.stats, &reference.stats);
    }
}

#[test]
fn seeded_drop_and_retransmit_cannot_distinguish_the_modes() {
    let (data, partition) = workload();
    let clean = covariance_skellam(&data, &partition, GAMMA, MU, &cfg(Batching::default()));
    let faults = || {
        FaultSpec::seeded(7)
            .with_drop(0.05)
            .with_retransmit(Duration::from_micros(50), 20)
    };
    for backend in [NetBackend::InProcess, NetBackend::tcp()] {
        for batching in [Batching::default(), Batching::Off] {
            let out = covariance_skellam(
                &data,
                &partition,
                GAMMA,
                MU,
                &cfg(batching)
                    .with_backend(backend.clone())
                    .with_faults(faults()),
            );
            // Drops cost retransmit time in either framing; the opened
            // matrix never moves.
            assert_eq!(clean.c_hat, out.c_hat);
        }
    }
}

#[test]
fn crash_surfaces_the_same_typed_error_in_both_modes() {
    let (data, partition) = workload();
    for backend in [NetBackend::InProcess, NetBackend::tcp()] {
        for batching in [Batching::default(), Batching::Off] {
            let c = cfg(batching)
                .with_backend(backend.clone())
                .with_faults(FaultSpec::seeded(3).with_crash(2, 1));
            let err = try_covariance_skellam(&data, &partition, GAMMA, MU, &c)
                .expect_err("a crashed party must not produce an output");
            assert_eq!(err, TransportError::Crashed { party: 2, round: 1 });
        }
    }
}

#[test]
fn ledger_epsilons_and_server_view_are_mode_independent() {
    let (data, partition) = workload();
    let batch: Vec<usize> = vec![1, 3, 6, 9];
    let w = vec![-0.02; N - 1];
    let run = |batching: Batching| {
        let mut session = VflSession::new(partition.clone(), cfg(batching));
        session.covariance(&data, GAMMA, MU);
        session.gradient_sum(&data, &batch, &w, GAMMA, MU);
        session
    };

    let batched = run(Batching::default());
    let reference = run(Batching::Off);

    // The server's entire view — every release, value by value — is the
    // same in both modes.
    assert_eq!(batched.server_view().len(), reference.server_view().len());
    for (b, r) in batched
        .server_view()
        .releases()
        .iter()
        .zip(reference.server_view().releases())
    {
        assert_eq!(b.kind, r.kind);
        assert_eq!(b.values, r.values);
        assert_eq!(b.gamma, r.gamma);
        assert_eq!(b.mu, r.mu);
    }

    // So are the accounted epsilons, bit for bit.
    assert_eq!(batched.ledger().len(), reference.ledger().len());
    for (b, r) in batched
        .ledger()
        .entries()
        .iter()
        .zip(reference.ledger().entries())
    {
        assert_eq!(b.kind, r.kind);
        assert_eq!(b.server_epsilon.to_bits(), r.server_epsilon.to_bits());
        assert_eq!(b.client_epsilon.to_bits(), r.client_epsilon.to_bits());
    }
    assert_eq!(
        batched.ledger().server_epsilon().to_bits(),
        reference.ledger().server_epsilon().to_bits()
    );

    // And the per-protocol run stats differ only in message framing.
    assert_eq!(batched.stats().len(), reference.stats().len());
    for (b, r) in batched.stats().iter().zip(reference.stats()) {
        assert_stats_equivalent(b, r);
    }
}
