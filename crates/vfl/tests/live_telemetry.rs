//! Live telemetry at the VFL layer: a Table II-shaped covariance release
//! with `live` enabled must produce bit-identical outputs and accounting
//! to a live-disabled run, while the process-global collector serves
//! Prometheus text at `/metrics` and JSON at `/snapshot` over HTTP.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqm_linalg::Matrix;
use sqm_obs::live;
use sqm_vfl::{covariance_skellam, ColumnPartition, LiveConfig, VflConfig};

const M: usize = 100;
const N: usize = 20;
const P: usize = 4;
const GAMMA: f64 = 128.0;
const MU: f64 = 10.0;

fn workload() -> (Matrix, ColumnPartition) {
    let mut rng = StdRng::seed_from_u64(2024);
    let data = Matrix::from_vec(M, N, (0..M * N).map(|_| rng.gen_range(-0.5..0.5)).collect());
    (data, ColumnPartition::even(N, P))
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to live endpoint");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    response
}

#[test]
fn covariance_with_live_telemetry_is_bit_identical_and_served_over_http() {
    let (data, partition) = workload();
    let base = || VflConfig::fast(P).with_seed(42);

    let off = covariance_skellam(&data, &partition, GAMMA, MU, &base());

    let flight_dir = std::env::temp_dir().join(format!("sqm-live-vfl-{}", std::process::id()));
    let live_cfg = LiveConfig::default()
        .with_addr("127.0.0.1:0") // ephemeral port: tests must not collide
        .with_flight_dir(&flight_dir);
    let on = covariance_skellam(
        &data,
        &partition,
        GAMMA,
        MU,
        &base().with_live(Some(live_cfg)),
    );

    // Telemetry rides entirely out-of-band: outputs and every
    // deterministic accounting counter are bit-identical.
    assert_eq!(off.c_hat, on.c_hat);
    assert_eq!(off.stats.total.rounds, on.stats.total.rounds);
    assert_eq!(off.stats.total.messages, on.stats.total.messages);
    assert_eq!(off.stats.total.bytes, on.stats.total.bytes);

    // A successful run leaves no flight-recorder dump behind.
    let dump = flight_dir.join("flightrec_42.jsonl");
    assert!(!dump.exists(), "no dump expected for a clean run");

    // The endpoint the run installed keeps serving: Prometheus text with
    // the run's per-party counters, and a JSON snapshot.
    let collector = live::collector().expect("run installed the collector");
    let addr = collector.bound_addr().expect("endpoint bound");
    let metrics = http_get(addr, "/metrics");
    assert!(metrics.starts_with("HTTP/1.1 200 OK"));
    assert!(metrics.contains("sqm_live_runs_started_total"));
    assert!(metrics.contains("sqm_live_party_rounds{party=\"0\"}"));
    let snapshot = http_get(addr, "/snapshot");
    assert!(snapshot.starts_with("HTTP/1.1 200 OK"));
    assert!(snapshot.contains("application/json"));
    assert!(snapshot.contains("\"n_parties\":4"));
}
