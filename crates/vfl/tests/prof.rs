//! Acceptance tests for the cost profiler at the VFL layer: attaching
//! `VflConfig::prof` must not perturb a single released bit (the opened
//! covariance still matches the bit-exact quantized oracle and equals the
//! unprofiled run entry-for-entry), the artifacts must be byte-identical
//! across two same-seed runs, and the Skellam draw counter plus the
//! protocol-level batching report must land in the profile.
//!
//! The profiler is process-global, so these tests serialize on one mutex.

use std::sync::Mutex;

use sqm_linalg::Matrix;
use sqm_obs::prof;
use sqm_vfl::{
    covariance_quantized_oracle, covariance_skellam, gradient_sum_skellam, ColumnPartition,
    ProfConfig, VflConfig,
};

static PROF_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    PROF_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn small_data() -> Matrix {
    Matrix::from_rows(&[
        vec![0.5, -0.2, 0.1, 0.3],
        vec![-0.4, 0.3, 0.2, -0.1],
        vec![0.1, 0.1, -0.5, 0.2],
        vec![0.6, 0.0, 0.3, 0.4],
        vec![-0.2, -0.3, 0.1, 0.1],
    ])
}

#[test]
fn covariance_bits_identical_with_prof_on_and_oracle_still_matches() {
    let _g = lock();
    prof::deactivate();
    prof::reset();

    let data = small_data();
    let partition = ColumnPartition::even(4, 4);
    let (gamma, mu) = (256.0, 40.0);
    let cfg_off = VflConfig::fast(4).with_seed(21);
    let cfg_on = cfg_off
        .clone()
        .with_prof(Some(ProfConfig::default().with_dir(std::env::temp_dir())));

    let off = covariance_skellam(&data, &partition, gamma, mu, &cfg_off);
    let on = covariance_skellam(&data, &partition, gamma, mu, &cfg_on);
    assert!(
        prof::is_active(),
        "VflConfig::prof must install the profiler"
    );

    // Released matrix is bit-identical profiled or not, and both still
    // match the bit-exact plaintext replay of the secure protocol.
    assert_eq!(off.c_hat, on.c_hat);
    let oracle = covariance_quantized_oracle(&data, &partition, gamma, mu, &cfg_on);
    assert_eq!(on.c_hat, oracle);

    // Deterministic accounting unchanged (wall time excluded by design).
    assert_eq!(off.stats.total.rounds, on.stats.total.rounds);
    assert_eq!(off.stats.total.messages, on.stats.total.messages);
    assert_eq!(off.stats.total.bytes, on.stats.total.bytes);

    prof::deactivate();
    prof::reset();
}

#[test]
fn covariance_profile_is_byte_deterministic_with_skellam_and_batching() {
    let _g = lock();
    prof::deactivate();
    prof::reset();

    let data = small_data();
    let partition = ColumnPartition::even(4, 2);
    let cfg = VflConfig::fast(2)
        .with_seed(5)
        .with_prof(Some(ProfConfig::default().with_dir(std::env::temp_dir())));

    covariance_skellam(&data, &partition, 128.0, 10.0, &cfg);
    let first = prof::snapshot().expect("profiler installed");
    let (folded1, json1) = (prof::render_folded(&first), prof::render_json(&first));
    prof::deactivate();
    prof::reset();
    covariance_skellam(&data, &partition, 128.0, 10.0, &cfg);
    let second = prof::snapshot().expect("profiler installed");
    assert_eq!(folded1, prof::render_folded(&second));
    assert_eq!(json1, prof::render_json(&second));

    // Each of the 2 parties draws n(n+1)/2 = 10 Skellam samples once.
    let draws = &second.nodes["vfl;dp_noise;skellam_draw"];
    assert_eq!(draws.calls, 2);
    assert_eq!(draws.work, 2 * 10);

    // The protocol reports its single maximally-batched mul round.
    let batching = second.batching.as_ref().expect("protocol reports batching");
    assert_eq!(batching.level_widths, vec![10]);
    assert_eq!(batching.n_parties, 2);
    // Already one round wide: batching could not reduce messages further.
    assert_eq!(batching.messages_batched, batching.messages_unbatched / 10);

    // Engine traffic is attributed under the protocol's phase names.
    assert!(second.nodes.contains_key("engine;compute;reduce_degree"));
    assert!(second.nodes.contains_key("engine;open;exchange"));
    assert!(!json1.contains("wall"));

    prof::deactivate();
    prof::reset();
}

#[test]
fn gradient_records_skellam_draws_per_dimension() {
    let _g = lock();
    prof::deactivate();
    prof::reset();

    let data = small_data(); // 3 features + label
    let partition = ColumnPartition::even(4, 2);
    let cfg = VflConfig::fast(2)
        .with_seed(9)
        .with_prof(Some(ProfConfig::default().with_dir(std::env::temp_dir())));
    let w = vec![0.2, -0.1, 0.4];
    let out = gradient_sum_skellam(&data, &partition, &[0, 2, 4], &w, 1024.0, 4.0, &cfg);
    assert_eq!(out.grad_sum.len(), 3);

    let snap = prof::snapshot().expect("profiler installed");
    let draws = &snap.nodes["vfl;dp_noise;skellam_draw"];
    assert_eq!(draws.calls, 2); // one batch of draws per party
    assert_eq!(draws.work, 2 * 3); // d = 3 draws each
    let batching = snap.batching.as_ref().expect("protocol reports batching");
    assert_eq!(batching.level_widths, vec![3]);

    prof::deactivate();
    prof::reset();
}
