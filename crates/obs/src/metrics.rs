//! A process-wide metrics registry: counters, gauges, histograms.
//!
//! Producers (`sqm-mpc`, `sqm-vfl`, `sqm-tasks`, experiment binaries) call
//! the free functions unconditionally; when the registry is disabled —
//! the default — each call is a single relaxed atomic load and an immediate
//! return, cheap enough to leave in the engine's per-round path without
//! perturbing benchmarks. Enabling is explicit ([`set_enabled`]), done by
//! the experiment harness when `--trace` / `SQM_TRACE=1` is set.
//!
//! Names are dotted strings (`"mpc.rounds"`, `"eigen.sweeps"`); the
//! registry is flat and allocation happens only on first use of a name.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

use serde::Serialize;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Histograms keep at most this many raw samples per name; count/sum/min/
/// max keep exact track beyond it (quantiles then come from the prefix).
const HISTOGRAM_CAP: usize = 1 << 16;

#[derive(Default)]
struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

#[derive(Default)]
struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    samples: Vec<f64>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
}

/// Lock the registry, recovering from poisoning instead of propagating the
/// panic: a producer thread that died mid-record leaves data that is at
/// worst missing one observation, which is strictly better for an
/// observability registry than taking every later recorder down with it.
/// Each recovery is counted under `obs.metrics.poisoned` (incremented
/// directly on the recovered guard — re-entering the lock here would
/// recurse).
fn lock_registry() -> MutexGuard<'static, Registry> {
    match registry().lock() {
        Ok(guard) => guard,
        Err(poisoned) => {
            let mut guard = poisoned.into_inner();
            *guard
                .counters
                .entry("obs.metrics.poisoned".to_string())
                .or_insert(0) += 1;
            guard
        }
    }
}

/// Turn recording on or off (off by default).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Is the registry currently recording?
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Add `delta` to the counter `name`.
pub fn counter_add(name: &str, delta: u64) {
    if !is_enabled() {
        return;
    }
    let mut reg = lock_registry();
    match reg.counters.get_mut(name) {
        Some(v) => *v += delta,
        None => {
            reg.counters.insert(name.to_string(), delta);
        }
    }
}

/// Set the gauge `name` to `value` (last write wins).
pub fn gauge_set(name: &str, value: f64) {
    if !is_enabled() {
        return;
    }
    lock_registry().gauges.insert(name.to_string(), value);
}

/// Record one observation into the histogram `name`. Non-finite values
/// (NaN, ±∞) cannot be ranked into quantiles; they are discarded and
/// counted under `obs.metrics.non_finite_dropped` instead of poisoning the
/// summary.
pub fn histogram_record(name: &str, value: f64) {
    if !is_enabled() {
        return;
    }
    if !value.is_finite() {
        counter_add("obs.metrics.non_finite_dropped", 1);
        return;
    }
    let mut reg = lock_registry();
    let h = reg.histograms.entry(name.to_string()).or_default();
    if h.count == 0 {
        h.min = value;
        h.max = value;
    } else {
        h.min = h.min.min(value);
        h.max = h.max.max(value);
    }
    h.count += 1;
    h.sum += value;
    if h.samples.len() < HISTOGRAM_CAP {
        h.samples.push(value);
    }
}

/// Drop every recorded value (the enabled flag is left unchanged).
pub fn reset() {
    let mut reg = lock_registry();
    *reg = Registry::default();
}

/// Aggregated view of one histogram.
///
/// `count`/`sum`/`min`/`max`/`mean` are exact over every recorded
/// observation. Quantiles are computed from the first [`HISTOGRAM_CAP`]
/// raw samples; when observations beyond the cap were discarded,
/// `samples_dropped` reports how many, so a consumer can see that the
/// quantiles cover a prefix rather than silently trusting a biased p95.
#[derive(Clone, Debug, Default, Serialize)]
pub struct HistogramSummary {
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
    pub mean: f64,
    pub p50: f64,
    pub p90: f64,
    pub p95: f64,
    pub p99: f64,
    /// Observations not retained as raw samples (quantiles are estimated
    /// from the retained prefix when this is non-zero).
    pub samples_dropped: u64,
}

/// The canonical nearest-rank quantile index used repo-wide (`bench::perf`
/// sample quantiles, `serve::loadgen` p99, the live aggregator, and this
/// registry's summaries all agree): `round((len - 1) * p)` into an
/// ascending-sorted sample slice. Returns 0 for an empty slice so callers
/// can guard on emptiness themselves.
pub fn nearest_rank_index(len: usize, p: f64) -> usize {
    if len == 0 {
        return 0;
    }
    (((len - 1) as f64) * p).round() as usize
}

/// Summarize one histogram. An empty histogram (possible when a consumer
/// pre-registers a name, or when every observation was non-finite) yields
/// an all-zero summary — never NaN, which would serialize as `null` and
/// break downstream arithmetic.
fn summarize(h: &Histogram) -> HistogramSummary {
    if h.count == 0 {
        return HistogramSummary::default();
    }
    let mut sorted = h.samples.clone();
    sorted.sort_by(f64::total_cmp);
    let q = |p: f64| -> f64 {
        if sorted.is_empty() {
            return 0.0;
        }
        sorted[nearest_rank_index(sorted.len(), p)]
    };
    HistogramSummary {
        count: h.count,
        sum: h.sum,
        min: h.min,
        max: h.max,
        mean: h.sum / h.count as f64,
        p50: q(0.50),
        p90: q(0.90),
        p95: q(0.95),
        p99: q(0.99),
        samples_dropped: h.count - h.samples.len() as u64,
    }
}

/// A point-in-time copy of the whole registry, ready for JSON export.
#[derive(Clone, Debug, Default, Serialize)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub histograms: BTreeMap<String, HistogramSummary>,
}

/// Snapshot the registry (whether or not it is enabled).
pub fn snapshot() -> MetricsSnapshot {
    let reg = lock_registry();
    let histograms = reg
        .histograms
        .iter()
        .map(|(name, h)| (name.clone(), summarize(h)))
        .collect();
    MetricsSnapshot {
        counters: reg.counters.clone(),
        gauges: reg.gauges.clone(),
        histograms,
    }
}

/// Peak resident-set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`). `None` on platforms without procfs — callers
/// should treat that as "unknown", not zero.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    // One sequential test: the registry is process-global, so exercising it
    // from several parallel #[test]s would interleave.
    #[test]
    fn disabled_is_noop_enabled_records() {
        reset();
        assert!(!is_enabled());
        counter_add("t.c", 5);
        gauge_set("t.g", 1.0);
        histogram_record("t.h", 1.0);
        let snap = snapshot();
        assert!(snap.counters.is_empty() && snap.gauges.is_empty());

        set_enabled(true);
        counter_add("t.c", 5);
        counter_add("t.c", 2);
        gauge_set("t.g", 1.5);
        gauge_set("t.g", 2.5);
        for v in 0..100 {
            histogram_record("t.h", v as f64);
        }
        set_enabled(false);
        counter_add("t.c", 100); // ignored again

        let snap = snapshot();
        assert_eq!(snap.counters["t.c"], 7);
        assert_eq!(snap.gauges["t.g"], 2.5);
        let h = &snap.histograms["t.h"];
        assert_eq!(h.count, 100);
        assert_eq!(h.min, 0.0);
        assert_eq!(h.max, 99.0);
        assert!((h.mean - 49.5).abs() < 1e-9);
        assert!((h.p50 - 50.0).abs() <= 1.0);
        assert!(h.p99 >= 97.0);

        // JSON export round-trips through the serializer without panicking.
        let json = snap.to_json();
        assert!(json.contains("\"t.c\":7"));

        reset();
        assert!(snapshot().counters.is_empty());

        // --- histogram edge cases (same test fn: registry is global) ---

        // Empty histogram: all-zero summary, no NaN, no panic.
        let empty = summarize(&Histogram::default());
        assert_eq!(empty.count, 0);
        assert_eq!(empty.p95, 0.0);
        assert!(!empty.mean.is_nan() && !empty.p50.is_nan());
        assert_eq!(empty.samples_dropped, 0);

        // Non-finite observations are dropped and counted, not stored.
        set_enabled(true);
        histogram_record("t.nan", f64::NAN);
        histogram_record("t.nan", f64::INFINITY);
        histogram_record("t.nan", 1.0);
        let snap = snapshot();
        assert_eq!(snap.counters["obs.metrics.non_finite_dropped"], 2);
        assert_eq!(snap.histograms["t.nan"].count, 1);
        assert_eq!(snap.histograms["t.nan"].p99, 1.0);

        // Over-cap: count/sum/min/max stay exact, samples_dropped reports
        // how many observations the quantiles do not cover.
        reset();
        let n = HISTOGRAM_CAP as u64 + 100;
        for v in 0..n {
            histogram_record("t.big", v as f64);
        }
        let snap = snapshot();
        let h = &snap.histograms["t.big"];
        assert_eq!(h.count, n);
        assert_eq!(h.max, (n - 1) as f64);
        assert_eq!(h.samples_dropped, 100);
        // p95 is computed over the retained prefix only; the summary says so.
        assert!(h.p95 <= HISTOGRAM_CAP as f64);

        set_enabled(false);
        reset();

        // --- poisoning recovery (keep last: the mutex stays poisoned) ---
        set_enabled(true);
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = registry().lock().unwrap();
            panic!("poison the registry mutex");
        }));
        std::panic::set_hook(prev_hook);
        // Every later lock recovers the inner state instead of panicking,
        // and each recovery is visible in the poison counter.
        counter_add("t.after_poison", 1);
        let snap = snapshot();
        assert_eq!(snap.counters["t.after_poison"], 1);
        assert!(snap.counters["obs.metrics.poisoned"] >= 1);
        set_enabled(false);
    }

    #[test]
    fn peak_rss_is_plausible_on_linux() {
        if let Some(rss) = peak_rss_bytes() {
            // A running test binary occupies at least a page and (sanity)
            // less than a terabyte.
            assert!(rss > 4096, "peak RSS {rss} implausibly small");
            assert!(rss < (1u64 << 40), "peak RSS {rss} implausibly large");
        }
    }
}
