//! A minimal JSON reader.
//!
//! The workspace's offline `serde` stand-in only *writes* JSON
//! (`Deserialize` is a marker trait with no parser behind it), but two
//! consumers must read JSON back: the bench regression gate (the committed
//! baseline and freshly written `BENCH_*.json` artifacts) and the
//! `sqm-serve` HTTP protocol (request bodies). This module is that reader — a
//! small recursive-descent parser over the JSON our own serializer emits
//! plus ordinary hand-edited baselines. It accepts standard JSON
//! (RFC 8259) with two deliberate simplifications: numbers are always
//! parsed as `f64` (artifact counters fit in the 2^53 exact-integer
//! range), and `\uXXXX` escapes outside the BMP are not combined into
//! surrogate pairs (artifact strings are suite names and commit hashes).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Member lookup on objects; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(map) => map.get(key),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// Numeric member as `u64` (exact-integer floats only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 2f64.powi(53) => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Obj(map) => Some(map),
            _ => None,
        }
    }
}

/// Parse failure with a byte offset into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse one complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(map));
        }
        loop {
            self.skip_ws();
            let key_offset = self.pos;
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            if map.insert(key.clone(), value).is_some() {
                // A baseline or artifact with two entries for the same key
                // has been hand-edited badly or corrupted; silently keeping
                // the later one would let the gate diff against the wrong
                // number.
                return Err(JsonError {
                    offset: key_offset,
                    message: format!("duplicate object key {key:?}"),
                });
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("non-utf8 \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one complete UTF-8 scalar (input is &str, so
                    // slicing at char boundaries is safe).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        // Strict RFC 8259 grammar: `-?(0|[1-9][0-9]*)(.[0-9]+)?([eE][+-]?[0-9]+)?`.
        // Rust's `f64::from_str` is laxer (it accepts "1.", ".5", "inf"),
        // so the shape is validated here rather than delegated.
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
                if matches!(self.peek(), Some(b'0'..=b'9')) {
                    return Err(self.err("leading zero in number"));
                }
            }
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected a digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected a digit after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected a digit in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("-12.5e2").unwrap(), JsonValue::Num(-1250.0));
        assert_eq!(
            parse(r#""a\nb\u0041""#).unwrap(),
            JsonValue::Str("a\nbA".into())
        );
        let doc = parse(r#"{"xs":[1,2,3],"nested":{"ok":false},"empty":[],"eo":{}}"#).unwrap();
        assert_eq!(doc.get("xs").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            doc.get("nested").unwrap().get("ok"),
            Some(&JsonValue::Bool(false))
        );
        assert_eq!(doc.get("empty").unwrap().as_arr().unwrap().len(), 0);
        assert!(doc.get("eo").unwrap().as_obj().unwrap().is_empty());
    }

    #[test]
    fn accessors_enforce_types() {
        let doc = parse(r#"{"n":3,"neg":-1,"frac":0.5,"s":"x"}"#).unwrap();
        assert_eq!(doc.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(doc.get("neg").unwrap().as_u64(), None);
        assert_eq!(doc.get("frac").unwrap().as_u64(), None);
        assert_eq!(doc.get("frac").unwrap().as_f64(), Some(0.5));
        assert_eq!(doc.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(doc.get("s").unwrap().as_f64(), None);
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "1 2",
            "{\"a\":1,}",
            "\"\\x\"",
            "nan",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
        let err = parse("[1, oops]").unwrap_err();
        assert!(err.offset > 0 && err.to_string().contains("byte"));
    }

    #[test]
    fn rejects_duplicate_object_keys() {
        let err = parse(r#"{"median_ns":1,"median_ns":2}"#).unwrap_err();
        assert!(
            err.message.contains("duplicate object key \"median_ns\""),
            "wrong message: {err}"
        );
        // The offset points at the second occurrence, not the document end.
        assert_eq!(err.offset, 15);
        // Nested objects are checked too.
        assert!(parse(r#"{"a":{"x":1,"x":1}}"#).is_err());
        // Same key at different nesting levels stays legal.
        assert!(parse(r#"{"a":{"a":1},"b":{"a":2}}"#).is_ok());
    }

    #[test]
    fn rejects_trailing_garbage_after_document() {
        for bad in [
            "{} {}",
            "[1,2]]",
            "null null",
            "42 //comment",
            "{\"a\":1}x",
            "\"s\"\"t\"",
        ] {
            let err = parse(bad).unwrap_err();
            assert!(
                err.message.contains("trailing"),
                "{bad:?} gave wrong error: {err}"
            );
        }
    }

    #[test]
    fn rejects_nonstandard_numbers() {
        // `f64::from_str` would happily accept several of these; the JSON
        // grammar does not, and neither must the gate's reader.
        for bad in [
            "1.", "01", "-01", ".5", "-.5", "1e", "1e+", "+1", "0x10", "1.2.3", "inf", "-", "--1",
            "1_000",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
        // Valid edge cases stay accepted.
        assert_eq!(parse("0").unwrap(), JsonValue::Num(0.0));
        assert_eq!(parse("-0").unwrap(), JsonValue::Num(0.0));
        assert_eq!(parse("0.5").unwrap(), JsonValue::Num(0.5));
        assert_eq!(parse("1e3").unwrap(), JsonValue::Num(1000.0));
        assert_eq!(parse("-1.5E-2").unwrap(), JsonValue::Num(-0.015));
    }

    #[test]
    fn roundtrips_compat_serde_output() {
        // The gate reads what our own serializer writes: exercise exactly
        // that path, including escaped strings and null (non-finite float).
        use serde::Serialize;
        let mut out = String::new();
        serde::json::write_str(&mut out, "a \"quoted\"\npath");
        let parsed = parse(&out).unwrap();
        assert_eq!(parsed.as_str(), Some("a \"quoted\"\npath"));
        assert_eq!(parse(&f64::NAN.to_json()).unwrap(), JsonValue::Null);
        assert_eq!(parse(&42u64.to_json()).unwrap().as_u64(), Some(42));
    }
}
