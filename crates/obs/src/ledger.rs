//! The privacy ledger: an audit log of DP releases.
//!
//! The paper's threat model gives every release two epsilons: the
//! **server-observed** guarantee (Eq. 3 — the untrusted server sees the
//! aggregate `Sk(mu)`-perturbed opening) and the weaker **client-observed**
//! guarantee (Eq. 4 — a curious client knows her own noise share, leaving
//! `Sk((P-1)/P * mu)`, and neighboring datasets replace a record, doubling
//! sensitivity). The ledger records both for every release, along with the
//! mechanism parameters `(gamma, mu, sensitivity)` that justify them, and
//! maintains the running RDP composition (Lemma 10) of everything released
//! so far.
//!
//! The ledger is pure observation: it never blocks a release (that is
//! [`sqm_accounting::budget::PrivacyOdometer`]'s job). Its composed totals
//! are computed by the same curve arithmetic the odometer uses, which the
//! tests cross-check.

use serde::Serialize;
use sqm_accounting::skellam::{skellam_rdp, skellam_rdp_client_observed, Sensitivity};
use sqm_accounting::{default_alpha_grid, RdpCurve};

/// One recorded release.
#[derive(Clone, Debug, Serialize)]
pub struct LedgerEntry {
    /// Position in the release sequence (0-based).
    pub index: usize,
    /// What produced it (e.g. `"covariance"`, `"gradient_sum"`).
    pub kind: String,
    /// Output dimensionality of the released vector/matrix.
    pub dims: usize,
    /// Quantization scale.
    pub gamma: f64,
    /// Aggregate Skellam parameter (each of the `P` clients contributed
    /// `Sk(mu/P)`).
    pub mu: f64,
    /// L1 sensitivity of the amplified integer release.
    pub sensitivity_l1: f64,
    /// L2 sensitivity of the amplified integer release.
    pub sensitivity_l2: f64,
    /// Server-observed epsilon of this release alone (infinite when
    /// `mu = 0`).
    pub server_epsilon: f64,
    /// Client-observed epsilon of this release alone.
    pub client_epsilon: f64,
    /// Server-observed epsilon of the composition up to and including this
    /// release.
    pub server_epsilon_total: f64,
    /// Client-observed epsilon of the composition up to and including this
    /// release.
    pub client_epsilon_total: f64,
}

/// Running privacy account over a sequence of Skellam releases.
#[derive(Clone, Debug)]
pub struct PrivacyLedger {
    n_clients: usize,
    delta: f64,
    entries: Vec<LedgerEntry>,
    server_curve: RdpCurve,
    client_curve: RdpCurve,
    /// Set once any release had `mu = 0` (no noise): composed epsilons are
    /// infinite from then on.
    unbounded: bool,
}

impl PrivacyLedger {
    /// A fresh ledger for a `P`-client deployment, converting RDP to
    /// `(eps, delta)`-DP at the given `delta`.
    pub fn new(n_clients: usize, delta: f64) -> Self {
        assert!(
            n_clients >= 2,
            "client-observed DP needs at least 2 clients"
        );
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
        let grid = default_alpha_grid();
        PrivacyLedger {
            n_clients,
            delta,
            entries: Vec::new(),
            server_curve: RdpCurve::zero(&grid),
            client_curve: RdpCurve::zero(&grid),
            unbounded: false,
        }
    }

    /// Record one Skellam release and return a reference to its entry
    /// (`None` is impossible after a push, but the signature keeps the
    /// ledger free of panic paths).
    pub fn record(
        &mut self,
        kind: &str,
        dims: usize,
        gamma: f64,
        mu: f64,
        sens: Sensitivity,
    ) -> Option<&LedgerEntry> {
        let grid = default_alpha_grid();
        let (server_eps, client_eps) = if mu > 0.0 {
            let server = RdpCurve::from_fn(&grid, |a| skellam_rdp(a, sens, mu));
            let client = RdpCurve::from_fn(&grid, |a| {
                skellam_rdp_client_observed(a, sens, mu, self.n_clients)
            });
            let server_eps = server.to_epsilon(self.delta).0;
            let client_eps = client.to_epsilon(self.delta).0;
            self.server_curve = self.server_curve.compose(&server);
            self.client_curve = self.client_curve.compose(&client);
            (server_eps, client_eps)
        } else {
            // An unperturbed opening has no DP guarantee at all.
            self.unbounded = true;
            (f64::INFINITY, f64::INFINITY)
        };
        let entry = LedgerEntry {
            index: self.entries.len(),
            kind: kind.to_string(),
            dims,
            gamma,
            mu,
            sensitivity_l1: sens.l1,
            sensitivity_l2: sens.l2,
            server_epsilon: server_eps,
            client_epsilon: client_eps,
            server_epsilon_total: self.server_epsilon(),
            client_epsilon_total: self.client_epsilon(),
        };
        self.entries.push(entry);
        self.last_entry()
    }

    /// Every recorded release, in order.
    pub fn entries(&self) -> &[LedgerEntry] {
        &self.entries
    }

    /// The most recent release, if any has been recorded.
    pub fn last_entry(&self) -> Option<&LedgerEntry> {
        self.entries.last()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The `delta` all epsilons are reported at.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Server-observed epsilon of the full composition so far.
    pub fn server_epsilon(&self) -> f64 {
        if self.unbounded {
            f64::INFINITY
        } else {
            self.server_curve.to_epsilon(self.delta).0
        }
    }

    /// Client-observed epsilon of the full composition so far.
    pub fn client_epsilon(&self) -> f64 {
        if self.unbounded {
            f64::INFINITY
        } else {
            self.client_curve.to_epsilon(self.delta).0
        }
    }

    /// The composed server-observed RDP curve (for feeding an odometer or
    /// converting at a different delta).
    pub fn server_curve(&self) -> &RdpCurve {
        &self.server_curve
    }

    /// The composed client-observed RDP curve.
    pub fn client_curve(&self) -> &RdpCurve {
        &self.client_curve
    }

    /// A serializable/printable report of the whole account.
    pub fn report(&self) -> LedgerReport {
        LedgerReport {
            n_clients: self.n_clients,
            delta: self.delta,
            releases: self.entries.len(),
            server_epsilon_total: self.server_epsilon(),
            client_epsilon_total: self.client_epsilon(),
            entries: self.entries.clone(),
        }
    }
}

/// Export form of a [`PrivacyLedger`].
#[derive(Clone, Debug, Serialize)]
pub struct LedgerReport {
    pub n_clients: usize,
    pub delta: f64,
    pub releases: usize,
    pub server_epsilon_total: f64,
    pub client_epsilon_total: f64,
    pub entries: Vec<LedgerEntry>,
}

impl std::fmt::Display for LedgerReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "privacy ledger: {} release(s), P = {}, delta = {:.1e}",
            self.releases, self.n_clients, self.delta
        )?;
        writeln!(
            f,
            "{:<14} {:>6} {:>10} {:>12} {:>12} {:>12} {:>12}",
            "kind", "dims", "gamma", "mu", "Delta_2", "eps(server)", "eps(client)"
        )?;
        for e in &self.entries {
            writeln!(
                f,
                "{:<14} {:>6} {:>10.1} {:>12.3e} {:>12.3e} {:>12.4} {:>12.4}",
                e.kind, e.dims, e.gamma, e.mu, e.sensitivity_l2, e.server_epsilon, e.client_epsilon,
            )?;
        }
        write!(
            f,
            "composed totals: server eps = {:.4}, client eps = {:.4}",
            self.server_epsilon_total, self.client_epsilon_total
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqm_accounting::budget::{Admission, PrivacyOdometer};

    fn sens(l2: f64, d: usize) -> Sensitivity {
        Sensitivity::from_l2_for_dim(l2, d)
    }

    #[test]
    fn records_both_views_per_release() {
        let mut ledger = PrivacyLedger::new(4, 1e-5);
        assert!(ledger.last_entry().is_none(), "fresh ledger has no entries");
        let e = ledger
            .record("covariance", 16, 18.0, 1e6, sens(330.0, 16))
            .expect("entry just recorded")
            .clone();
        assert_eq!(e.index, 0);
        assert_eq!(e.kind, "covariance");
        assert!(e.server_epsilon.is_finite() && e.server_epsilon > 0.0);
        // Client view is strictly weaker: less effective noise, doubled
        // sensitivity.
        assert!(e.client_epsilon > e.server_epsilon);
        assert_eq!(e.server_epsilon_total, e.server_epsilon);
    }

    #[test]
    fn composition_grows_and_matches_the_odometer() {
        // The ledger's composed total must agree with the budget odometer
        // fed the same per-release RDP curves.
        let mut ledger = PrivacyLedger::new(4, 1e-5);
        let mut odometer = PrivacyOdometer::new(1e9, 1e-5);
        let grid = default_alpha_grid();
        let releases = [
            ("covariance", 330.0, 16, 1e6),
            ("gradient_sum", 5000.0, 8, 1e8),
            ("column_sums", 40.0, 4, 1e4),
        ];
        let mut last_total = 0.0;
        for (kind, l2, d, mu) in releases {
            let s = sens(l2, d);
            ledger.record(kind, d, 18.0, mu, s);
            let curve = RdpCurve::from_fn(&grid, |a| skellam_rdp(a, s, mu));
            assert_eq!(odometer.admit(&curve), Admission::Admitted);
            assert!(ledger.server_epsilon() > last_total);
            last_total = ledger.server_epsilon();
        }
        let diff = (ledger.server_epsilon() - odometer.spent_epsilon()).abs();
        assert!(
            diff < 1e-12,
            "ledger {} vs odometer {}",
            ledger.server_epsilon(),
            odometer.spent_epsilon()
        );
        assert_eq!(ledger.len(), 3);
        assert_eq!(
            ledger.entries()[2].server_epsilon_total,
            ledger.server_epsilon()
        );
    }

    #[test]
    fn zero_mu_is_unbounded() {
        let mut ledger = PrivacyLedger::new(2, 1e-5);
        ledger.record("covariance", 4, 18.0, 100.0, sens(10.0, 4));
        assert!(ledger.server_epsilon().is_finite());
        ledger.record("covariance", 4, 18.0, 0.0, sens(10.0, 4));
        assert!(ledger.server_epsilon().is_infinite());
        assert!(ledger.entries()[1].server_epsilon.is_infinite());
    }

    #[test]
    fn report_serializes() {
        use serde::Serialize as _;
        let mut ledger = PrivacyLedger::new(3, 1e-6);
        ledger.record("column_sums", 4, 32.0, 1e5, sens(40.0, 4));
        let report = ledger.report();
        let json = report.to_json();
        assert!(json.contains("\"kind\":\"column_sums\""));
        assert!(json.contains("\"n_clients\":3"));
        let shown = format!("{report}");
        assert!(shown.contains("column_sums"));
        assert!(shown.contains("server"));
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn rejects_single_client() {
        PrivacyLedger::new(1, 1e-5);
    }
}
