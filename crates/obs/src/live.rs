//! Streaming telemetry for in-flight runs: a lock-free event ring, a stall
//! watchdog, an HTTP `/metrics` + `/snapshot` endpoint, and a crash flight
//! recorder.
//!
//! Every observability surface in this crate so far is post-hoc: traces,
//! ledgers and causal DAGs exist only after `try_run` returns. This module
//! makes a run visible *while it executes*:
//!
//! * **Event ring** — both MPC engines and the TCP transport publish
//!   fixed-size [`LiveEvent`]s into a bounded lock-free MPMC ring
//!   (Vyukov-style sequence-stamped slots). Producers never block and never
//!   allocate: when the ring is full the event is dropped and counted, so
//!   telemetry can never stall the engine's round path. When no collector
//!   is installed, [`publish`] is a single relaxed atomic load.
//! * **Aggregator** — a background thread (or any `/metrics` request)
//!   drains the ring into rolling per-party / per-phase counters and
//!   round-wall latency quantiles over a bounded window.
//! * **Stall watchdog** — tracks per-party round-progress heartbeats and
//!   flags rounds whose wall time exceeds an adaptive threshold derived
//!   from the rolling round-wall median. Because a slow *link* slows the
//!   sender and every receiver alike, attribution uses the deterministic
//!   `net::fault` delay/retransmit events published alongside each round:
//!   the party with the largest injected cost at that round is the culprit.
//!   Typed [`StallEvent`]s carry `(party, round, stalled-for)`.
//! * **Flight recorder** — the last `flight_cap` events per party are kept
//!   in per-party rings; when a run fails (transport error or party-thread
//!   panic) they are dumped to `results/flightrec_<seed>.jsonl`
//!   (atomically, see [`crate::export::atomic_write`]) so a postmortem does
//!   not require a re-run. Only deterministic fields (party, round, phase,
//!   messages, bytes, injected fault costs) are dumped — never wall-clock
//!   timings — so the dump for a seeded failure is byte-reproducible.
//! * **HTTP endpoint** — a minimal `std::net::TcpListener` HTTP/1.1 server
//!   (no dependencies) serving a Prometheus text exposition at `/metrics`
//!   (live aggregates plus the [`crate::metrics`] registry, keys always in
//!   sorted order) and a JSON [`LiveSnapshot`] at `/snapshot`.
//!
//! The collector is process-global, like the metrics registry: engines gate
//! publishing on [`is_active`], and bracket runs with [`begin_run`] /
//! [`RunGuard::finish`] when their config carries a `LiveConfig`. One live
//! run is aggregated at a time; overlapping runs mix aggregates (harmless)
//! but the flight recorder and watchdog follow the most recent
//! [`begin_run`]. Nothing here touches `RunStats` or the trace: the
//! accounting contracts are bit-identical with live telemetry on or off.

use std::cell::UnsafeCell;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io;
use std::mem::MaybeUninit;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use serde::{json, Serialize};

use crate::export::atomic_write_str;
use crate::httpd::{HttpRequest, HttpResponse, HttpServer};
use crate::metrics::{self, MetricsSnapshot};

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Configuration for live telemetry, carried as `live: Option<LiveConfig>`
/// on `MpcConfig` / `VflConfig` and installed process-wide on first use.
#[derive(Clone, Debug)]
pub struct LiveConfig {
    /// HTTP bind address for `/metrics` + `/snapshot` (e.g.
    /// `"127.0.0.1:9184"`, port `0` for ephemeral). `None` aggregates
    /// without serving — the mode benches use to measure pure publish
    /// overhead.
    pub addr: Option<String>,
    /// Directory flight-recorder dumps land in.
    pub flight_dir: PathBuf,
    /// Events retained per party in the flight recorder.
    pub flight_cap: usize,
    /// Rolling window length (round-wall samples) for quantiles and the
    /// adaptive stall threshold.
    pub window: usize,
    /// Adaptive stall threshold = `stall_factor` × rolling round-wall
    /// median (but never below `stall_min`).
    pub stall_factor: f64,
    /// Floor for the adaptive threshold, so µs-scale in-process rounds
    /// don't flag each other over scheduler noise.
    pub stall_min: Duration,
    /// Fixed stall threshold overriding the adaptive rule — used by tests
    /// that derive the expected flag set from the fault schedule.
    pub stall_threshold: Option<Duration>,
    /// Ring capacity (rounded up to a power of two).
    pub ring_capacity: usize,
    /// Aggregator poll interval.
    pub poll: Duration,
}

impl Default for LiveConfig {
    fn default() -> Self {
        LiveConfig {
            addr: None,
            flight_dir: PathBuf::from("results"),
            flight_cap: 64,
            window: 256,
            stall_factor: 8.0,
            stall_min: Duration::from_millis(25),
            stall_threshold: None,
            ring_capacity: 1 << 14,
            poll: Duration::from_millis(25),
        }
    }
}

impl LiveConfig {
    pub fn with_addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = Some(addr.into());
        self
    }

    pub fn with_flight_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.flight_dir = dir.into();
        self
    }

    pub fn with_flight_cap(mut self, cap: usize) -> Self {
        self.flight_cap = cap.max(1);
        self
    }

    pub fn with_stall_threshold(mut self, threshold: Duration) -> Self {
        self.stall_threshold = Some(threshold);
        self
    }

    pub fn with_stall_min(mut self, min: Duration) -> Self {
        self.stall_min = min;
        self
    }
}

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// Maximum phase-name bytes carried inline in a [`LiveEvent`] (events must
/// stay `Copy` and allocation-free for the lock-free ring).
const PHASE_TAG_CAP: usize = 23;

/// A fixed-capacity inline phase name; longer names are truncated at a
/// UTF-8 boundary.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct PhaseTag {
    len: u8,
    buf: [u8; PHASE_TAG_CAP],
}

impl PhaseTag {
    pub fn new(phase: &str) -> Self {
        let mut end = phase.len().min(PHASE_TAG_CAP);
        while end > 0 && !phase.is_char_boundary(end) {
            end -= 1;
        }
        let mut buf = [0u8; PHASE_TAG_CAP];
        buf[..end].copy_from_slice(&phase.as_bytes()[..end]);
        PhaseTag {
            len: end as u8,
            buf,
        }
    }

    pub fn as_str(&self) -> &str {
        // The constructor only stores prefixes cut at char boundaries.
        std::str::from_utf8(&self.buf[..self.len as usize]).unwrap_or("")
    }
}

/// What a [`LiveEvent`] describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LiveEventKind {
    /// One completed synchronous exchange at `party`.
    Round,
    /// A deterministic injected link delay (`value` = seconds slept at the
    /// publishing sender).
    Delay,
    /// A deterministic injected drop/retransmit cycle (`value` = dropped
    /// attempts at the publishing sender).
    Retransmit,
    /// One TCP frame batch sent to `peer` (`wall_ns` = send wall time).
    Send,
    /// One TCP frame batch received from `peer` (`wall_ns` = recv wall
    /// time, including any wait for the peer).
    Recv,
}

impl LiveEventKind {
    fn as_str(self) -> &'static str {
        match self {
            LiveEventKind::Round => "round",
            LiveEventKind::Delay => "delay",
            LiveEventKind::Retransmit => "retransmit",
            LiveEventKind::Send => "send",
            LiveEventKind::Recv => "recv",
        }
    }
}

/// A fixed-size, `Copy`, allocation-free telemetry event.
#[derive(Clone, Copy, Debug)]
pub struct LiveEvent {
    pub kind: LiveEventKind,
    pub party: usize,
    pub round: u64,
    /// Peer party for link-scoped events; `usize::MAX` otherwise.
    pub peer: usize,
    pub phase: PhaseTag,
    /// Wall-clock nanoseconds (round wall, link send/recv). Never written
    /// to flight-recorder dumps — it is the one nondeterministic field.
    pub wall_ns: u64,
    /// Deterministic injected fault cost (seconds for [`Delay`], attempt
    /// count for [`Retransmit`]).
    ///
    /// [`Delay`]: LiveEventKind::Delay
    /// [`Retransmit`]: LiveEventKind::Retransmit
    pub value: f64,
    pub messages: u64,
    pub bytes: u64,
}

impl LiveEvent {
    /// One completed exchange at `party`.
    pub fn round(
        party: usize,
        round: u64,
        phase: &str,
        wall: Duration,
        messages: u64,
        bytes: u64,
    ) -> Self {
        LiveEvent {
            kind: LiveEventKind::Round,
            party,
            round,
            peer: usize::MAX,
            phase: PhaseTag::new(phase),
            wall_ns: wall.as_nanos() as u64,
            value: 0.0,
            messages,
            bytes,
        }
    }

    /// A deterministic injected fault at `party` (the sender that slept or
    /// retransmitted), as drained from the transport's net-event stream.
    pub fn fault(party: usize, round: u64, peer: usize, kind: &str, value: f64) -> Option<Self> {
        let kind = match kind {
            "delay" => LiveEventKind::Delay,
            "retransmit" => LiveEventKind::Retransmit,
            _ => return None,
        };
        Some(LiveEvent {
            kind,
            party,
            round,
            peer,
            phase: PhaseTag::new(""),
            wall_ns: 0,
            value,
            messages: 0,
            bytes: 0,
        })
    }

    /// One TCP link transfer (`send` chooses direction).
    pub fn link(party: usize, round: u64, peer: usize, send: bool, wall: Duration) -> Self {
        LiveEvent {
            kind: if send {
                LiveEventKind::Send
            } else {
                LiveEventKind::Recv
            },
            party,
            round,
            peer,
            phase: PhaseTag::new(""),
            wall_ns: wall.as_nanos() as u64,
            value: 0.0,
            messages: 0,
            bytes: 0,
        }
    }
}

// ---------------------------------------------------------------------------
// Lock-free bounded MPMC ring (Vyukov sequence-stamped slots)
// ---------------------------------------------------------------------------

struct Slot {
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<LiveEvent>>,
}

/// Bounded lock-free multi-producer queue. Producers (`try_push`) never
/// block: a full ring drops the event and bumps a counter. The consumer
/// side is also lock-free, though the collector serializes consumers behind
/// its state mutex anyway.
pub(crate) struct EventRing {
    mask: usize,
    slots: Box<[Slot]>,
    enqueue_pos: AtomicUsize,
    dequeue_pos: AtomicUsize,
    published: AtomicU64,
    dropped: AtomicU64,
}

// SAFETY: slot payloads are only written by the producer that won the
// sequence CAS and only read by the consumer that won the dequeue CAS; the
// seq acquire/release pair orders payload access. `LiveEvent` is `Copy` +
// `Send`.
unsafe impl Send for EventRing {}
unsafe impl Sync for EventRing {}

impl EventRing {
    fn new(capacity: usize) -> Self {
        let capacity = capacity.max(2).next_power_of_two();
        let slots = (0..capacity)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        EventRing {
            mask: capacity - 1,
            slots,
            enqueue_pos: AtomicUsize::new(0),
            dequeue_pos: AtomicUsize::new(0),
            published: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Non-blocking push; `false` (plus a drop count) when the ring is full.
    fn try_push(&self, event: LiveEvent) -> bool {
        let mut pos = self.enqueue_pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq as isize - pos as isize;
            if dif == 0 {
                match self.enqueue_pos.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: winning the CAS grants exclusive write
                        // access to this slot until the seq store below.
                        unsafe { (*slot.value.get()).write(event) };
                        slot.seq.store(pos.wrapping_add(1), Ordering::Release);
                        self.published.fetch_add(1, Ordering::Relaxed);
                        return true;
                    }
                    Err(actual) => pos = actual,
                }
            } else if dif < 0 {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return false;
            } else {
                pos = self.enqueue_pos.load(Ordering::Relaxed);
            }
        }
    }

    fn pop(&self) -> Option<LiveEvent> {
        let mut pos = self.dequeue_pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq as isize - pos.wrapping_add(1) as isize;
            if dif == 0 {
                match self.dequeue_pos.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: winning the CAS grants exclusive read
                        // access; the producer's Release store made the
                        // payload visible.
                        let event = unsafe { (*slot.value.get()).assume_init() };
                        slot.seq
                            .store(pos.wrapping_add(self.mask + 1), Ordering::Release);
                        return Some(event);
                    }
                    Err(actual) => pos = actual,
                }
            } else if dif < 0 {
                return None;
            } else {
                pos = self.dequeue_pos.load(Ordering::Relaxed);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Stall events and snapshots
// ---------------------------------------------------------------------------

/// A typed watchdog finding: `party` made no acceptable progress at
/// `round` for `stalled_for`.
#[derive(Clone, Debug, Serialize)]
pub struct StallEvent {
    pub party: usize,
    pub round: u64,
    /// How long the stall lasted (injected link cost for attributed slow
    /// rounds, observed wall otherwise). Wall-clock derived — excluded from
    /// deterministic flight-recorder dumps.
    pub stalled_for: Duration,
    /// `"slow_round"` (threshold exceeded), `"heartbeat"` (no progress
    /// events at all), or `"crash"` (synthesized from a transport error).
    pub kind: String,
}

/// Round-wall quantiles over the rolling window, in nanoseconds.
#[derive(Clone, Debug, Default, Serialize)]
pub struct QuantileSummary {
    pub count: u64,
    pub p50_ns: u64,
    pub p90_ns: u64,
    pub p99_ns: u64,
    pub max_ns: u64,
}

fn quantiles(window: &VecDeque<u64>) -> QuantileSummary {
    if window.is_empty() {
        return QuantileSummary::default();
    }
    let mut sorted: Vec<u64> = window.iter().copied().collect();
    sorted.sort_unstable();
    let q = |p: f64| sorted[crate::metrics::nearest_rank_index(sorted.len(), p)];
    QuantileSummary {
        count: sorted.len() as u64,
        p50_ns: q(0.50),
        p90_ns: q(0.90),
        p99_ns: q(0.99),
        max_ns: *sorted.last().unwrap(),
    }
}

/// Per-party live aggregates.
#[derive(Clone, Debug, Serialize)]
pub struct PartyLive {
    pub party: usize,
    pub rounds: u64,
    pub messages: u64,
    pub bytes: u64,
    pub last_round: u64,
    pub round_wall: QuantileSummary,
    pub seconds_since_progress: f64,
}

/// Per-phase rolling counters.
#[derive(Clone, Debug, Default, Serialize)]
pub struct PhaseCounters {
    pub rounds: u64,
    pub messages: u64,
    pub bytes: u64,
}

/// Per-directed-link transfer aggregates (TCP backend only).
#[derive(Clone, Debug, Default, Serialize)]
pub struct LinkLive {
    pub count: u64,
    pub total_ns: u64,
    pub max_ns: u64,
}

/// Metadata for the run currently (or most recently) bracketed by
/// [`begin_run`].
#[derive(Clone, Debug, Serialize)]
pub struct RunLive {
    pub seed: u64,
    pub n_parties: usize,
    pub in_progress: bool,
    pub error: Option<String>,
    pub pending_slow_rounds: u64,
}

/// Point-in-time JSON view served at `/snapshot`.
#[derive(Clone, Debug, Serialize)]
pub struct LiveSnapshot {
    pub runs_started: u64,
    pub runs_failed: u64,
    pub stalls_total: u64,
    pub events_published: u64,
    pub events_dropped: u64,
    pub run: Option<RunLive>,
    pub parties: Vec<PartyLive>,
    pub phases: BTreeMap<String, PhaseCounters>,
    /// Keyed `"from->to"`.
    pub links: BTreeMap<String, LinkLive>,
    pub stalls: Vec<StallEvent>,
    pub metrics: MetricsSnapshot,
}

// ---------------------------------------------------------------------------
// Aggregation state
// ---------------------------------------------------------------------------

struct PartyAgg {
    rounds: u64,
    messages: u64,
    bytes: u64,
    last_round: u64,
    last_seen: Instant,
    window: VecDeque<u64>,
}

struct RunAgg {
    seed: u64,
    n_parties: usize,
    in_progress: bool,
    error: Option<String>,
    settings: LiveConfig,
    parties: Vec<PartyAgg>,
    phases: BTreeMap<String, PhaseCounters>,
    window: VecDeque<u64>,
    /// round → (party with the largest injected fault cost, that cost in
    /// seconds-equivalent units). Deterministic: fault schedules are pure
    /// functions of (seed, from, to, round).
    culprits: BTreeMap<u64, (usize, f64)>,
    /// Parties that have reported a `Round` event per round index; a
    /// pending slow round resolves once every party reported it (all fault
    /// events for the round have then been published too).
    round_reports: BTreeMap<u64, usize>,
    pending_slow: Vec<(usize, u64, u64)>,
    stalls: Vec<StallEvent>,
    stall_keys: BTreeSet<(usize, u64)>,
    flight: Vec<VecDeque<LiveEvent>>,
    links: BTreeMap<(usize, usize), LinkLive>,
}

impl RunAgg {
    fn new(settings: LiveConfig, n_parties: usize, seed: u64) -> Self {
        let now = Instant::now();
        RunAgg {
            seed,
            n_parties,
            in_progress: true,
            error: None,
            parties: (0..n_parties)
                .map(|_| PartyAgg {
                    rounds: 0,
                    messages: 0,
                    bytes: 0,
                    last_round: 0,
                    last_seen: now,
                    window: VecDeque::new(),
                })
                .collect(),
            phases: BTreeMap::new(),
            window: VecDeque::new(),
            culprits: BTreeMap::new(),
            round_reports: BTreeMap::new(),
            pending_slow: Vec::new(),
            stalls: Vec::new(),
            stall_keys: BTreeSet::new(),
            flight: (0..n_parties).map(|_| VecDeque::new()).collect(),
            links: BTreeMap::new(),
            settings,
        }
    }

    /// Current stall threshold in nanoseconds: the fixed override, or
    /// `stall_factor` × rolling median once the window has warmed up.
    fn threshold_ns(&self) -> Option<u64> {
        if let Some(t) = self.settings.stall_threshold {
            return Some(t.as_nanos() as u64);
        }
        const WARMUP: usize = 8;
        if self.window.len() < WARMUP {
            return None;
        }
        let mut sorted: Vec<u64> = self.window.iter().copied().collect();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        let adaptive = (median as f64 * self.settings.stall_factor) as u64;
        Some(adaptive.max(self.settings.stall_min.as_nanos() as u64))
    }

    fn record_stall(
        &mut self,
        party: usize,
        round: u64,
        stalled_for: Duration,
        kind: &str,
    ) -> bool {
        if !self.stall_keys.insert((party, round)) {
            return false;
        }
        self.stalls.push(StallEvent {
            party,
            round,
            stalled_for,
            kind: kind.to_string(),
        });
        true
    }

    /// Resolve pending slow rounds whose fault attribution is complete:
    /// every party has reported `round` (or `force`, at end of run). All
    /// slow reports for one round collapse onto the single culprit.
    fn resolve_pending(&mut self, force: bool) -> u64 {
        let mut emitted = 0;
        let mut keep = Vec::new();
        for (reporter, round, wall_ns) in std::mem::take(&mut self.pending_slow) {
            let complete = self.round_reports.get(&round).copied().unwrap_or(0) >= self.n_parties;
            if !complete && !force {
                keep.push((reporter, round, wall_ns));
                continue;
            }
            let (party, stalled_for) = match self.culprits.get(&round) {
                Some(&(culprit, secs)) => (culprit, Duration::from_secs_f64(secs.max(0.0))),
                None => (reporter, Duration::from_nanos(wall_ns)),
            };
            if self.record_stall(party, round, stalled_for, "slow_round") {
                emitted += 1;
            }
        }
        self.pending_slow = keep;
        emitted
    }

    fn apply(&mut self, event: LiveEvent) -> u64 {
        if event.party >= self.n_parties {
            return 0;
        }
        let mut emitted = 0;
        let flight_cap = self.settings.flight_cap;
        let flight = &mut self.flight[event.party];
        if flight.len() == flight_cap {
            flight.pop_front();
        }
        flight.push_back(event);
        match event.kind {
            LiveEventKind::Round => {
                let p = &mut self.parties[event.party];
                p.rounds += 1;
                p.messages += event.messages;
                p.bytes += event.bytes;
                p.last_round = p.last_round.max(event.round);
                p.last_seen = Instant::now();
                push_window(&mut p.window, event.wall_ns, self.settings.window);
                push_window(&mut self.window, event.wall_ns, self.settings.window);
                let phase = self
                    .phases
                    .entry(event.phase.as_str().to_string())
                    .or_default();
                phase.rounds += 1;
                phase.messages += event.messages;
                phase.bytes += event.bytes;
                *self.round_reports.entry(event.round).or_insert(0) += 1;
                if let Some(threshold) = self.threshold_ns() {
                    if event.wall_ns > threshold {
                        self.pending_slow
                            .push((event.party, event.round, event.wall_ns));
                    }
                }
                emitted += self.resolve_pending(false);
            }
            LiveEventKind::Delay | LiveEventKind::Retransmit => {
                let cost = if event.kind == LiveEventKind::Delay {
                    event.value
                } else {
                    // Rank a retransmit cycle by its dropped-attempt count;
                    // in runs mixing delays and drops the largest injected
                    // seconds-scale delay still dominates attribution.
                    event.value * 1e-3
                };
                let entry = self
                    .culprits
                    .entry(event.round)
                    .or_insert((event.party, cost));
                if cost > entry.1 {
                    *entry = (event.party, cost);
                }
            }
            LiveEventKind::Send | LiveEventKind::Recv => {
                let link = self.links.entry((event.party, event.peer)).or_default();
                link.count += 1;
                link.total_ns += event.wall_ns;
                link.max_ns = link.max_ns.max(event.wall_ns);
            }
        }
        emitted
    }

    /// Heartbeat check: a party silent for much longer than the stall
    /// threshold while the run is in progress is flagged even before its
    /// round completes — this is what makes a wedged party visible on
    /// `/metrics` *during* the stall.
    fn heartbeat_check(&mut self) -> u64 {
        if !self.in_progress {
            return 0;
        }
        let threshold = self.threshold_ns().unwrap_or(0);
        let timeout = Duration::from_nanos((threshold.saturating_mul(8)).max(1_000_000_000));
        let mut found = Vec::new();
        for (party, p) in self.parties.iter().enumerate() {
            let gap = p.last_seen.elapsed();
            if gap > timeout {
                found.push((party, p.last_round + 1, gap));
            }
        }
        let mut emitted = 0;
        for (party, round, gap) in found {
            if self.record_stall(party, round, gap, "heartbeat") {
                emitted += 1;
            }
        }
        emitted
    }
}

fn push_window(window: &mut VecDeque<u64>, value: u64, cap: usize) {
    if window.len() == cap.max(1) {
        window.pop_front();
    }
    window.push_back(value);
}

#[derive(Default)]
struct AggState {
    run: Option<RunAgg>,
    runs_started: u64,
    runs_failed: u64,
    stalls_total: u64,
}

// ---------------------------------------------------------------------------
// Collector
// ---------------------------------------------------------------------------

/// A failed run's digest, pre-extracted by the engine (this crate cannot
/// name `TransportError`: `sqm-net` depends on `sqm-obs`, not vice versa).
#[derive(Clone, Debug)]
pub struct RunError {
    pub kind: String,
    pub party: Option<usize>,
    pub round: Option<u64>,
}

impl RunError {
    pub fn new(kind: impl Into<String>, party: Option<usize>, round: Option<u64>) -> Self {
        RunError {
            kind: kind.into(),
            party,
            round,
        }
    }

    /// The digest used when a party thread panics (no typed error to mine).
    pub fn panic() -> Self {
        RunError::new("panic", None, None)
    }
}

/// The telemetry collector: ring + aggregation state + optional background
/// threads. Usually accessed through the process-global instance
/// ([`install`] / [`publish`] / [`begin_run`]); tests may drive a detached
/// instance synchronously via [`Collector::pump`].
pub struct Collector {
    ring: EventRing,
    state: Mutex<AggState>,
    stop: AtomicBool,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    http: Mutex<Option<HttpServer>>,
}

impl Collector {
    pub fn new(config: &LiveConfig) -> Arc<Self> {
        Arc::new(Collector {
            ring: EventRing::new(config.ring_capacity),
            state: Mutex::new(AggState::default()),
            stop: AtomicBool::new(false),
            threads: Mutex::new(Vec::new()),
            http: Mutex::new(None),
        })
    }

    /// Push one event (never blocks; drops + counts when full).
    pub fn publish(&self, event: LiveEvent) {
        self.ring.try_push(event);
    }

    fn lock_state(&self) -> MutexGuard<'_, AggState> {
        // Same poison policy as the metrics registry: a consumer that died
        // mid-aggregation loses at most one event.
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Drain the ring into the aggregates and run the watchdog once.
    /// Called by the background aggregator, by every HTTP request (so
    /// `/metrics` is fresh even between polls), and directly by tests.
    pub fn pump(&self) {
        let mut state = self.lock_state();
        let mut emitted = 0;
        while let Some(event) = self.ring.pop() {
            if let Some(run) = state.run.as_mut() {
                emitted += run.apply(event);
            }
        }
        if let Some(run) = state.run.as_mut() {
            emitted += run.heartbeat_check();
        }
        state.stalls_total += emitted;
    }

    fn begin_run(&self, settings: &LiveConfig, n_parties: usize, seed: u64) {
        self.pump();
        let mut state = self.lock_state();
        state.runs_started += 1;
        state.run = Some(RunAgg::new(settings.clone(), n_parties, seed));
    }

    fn end_run(&self, error: Option<RunError>) {
        self.pump();
        let mut state = self.lock_state();
        let Some(run) = state.run.as_mut() else {
            return;
        };
        let mut emitted = run.resolve_pending(true);
        run.in_progress = false;
        let failed = error.is_some();
        if let Some(err) = &error {
            run.error = Some(match (err.party, err.round) {
                (Some(p), Some(r)) => format!("{} party={p} round={r}", err.kind),
                (Some(p), None) => format!("{} party={p}", err.kind),
                _ => err.kind.clone(),
            });
            // A crash names its party and round exactly; synthesize the
            // typed stall the watchdog may not have seen complete.
            if let Some(party) = err.party.filter(|&p| p < run.n_parties) {
                let round = err.round.unwrap_or(run.parties[party].last_round);
                let gap = run.parties[party].last_seen.elapsed();
                if run.record_stall(party, round, gap, "crash") {
                    emitted += 1;
                }
            }
            let dump = render_flight_dump(run);
            let path = run
                .settings
                .flight_dir
                .join(format!("flightrec_{}.jsonl", run.seed));
            if let Err(e) = atomic_write_str(&path, &dump) {
                eprintln!(
                    "[live] flight-recorder dump to {} failed: {e}",
                    path.display()
                );
            }
        }
        state.stalls_total += emitted;
        if failed {
            state.runs_failed += 1;
        }
    }

    /// Build the JSON/Prometheus view (after a [`Collector::pump`]).
    pub fn snapshot(&self) -> LiveSnapshot {
        self.pump();
        let state = self.lock_state();
        let mut snap = LiveSnapshot {
            runs_started: state.runs_started,
            runs_failed: state.runs_failed,
            stalls_total: state.stalls_total,
            events_published: self.ring.published.load(Ordering::Relaxed),
            events_dropped: self.ring.dropped.load(Ordering::Relaxed),
            run: None,
            parties: Vec::new(),
            phases: BTreeMap::new(),
            links: BTreeMap::new(),
            stalls: Vec::new(),
            metrics: metrics::snapshot(),
        };
        if let Some(run) = &state.run {
            snap.run = Some(RunLive {
                seed: run.seed,
                n_parties: run.n_parties,
                in_progress: run.in_progress,
                error: run.error.clone(),
                pending_slow_rounds: run.pending_slow.len() as u64,
            });
            snap.parties = run
                .parties
                .iter()
                .enumerate()
                .map(|(party, p)| PartyLive {
                    party,
                    rounds: p.rounds,
                    messages: p.messages,
                    bytes: p.bytes,
                    last_round: p.last_round,
                    round_wall: quantiles(&p.window),
                    seconds_since_progress: p.last_seen.elapsed().as_secs_f64(),
                })
                .collect();
            snap.phases = run.phases.clone();
            snap.links = run
                .links
                .iter()
                .map(|(&(from, to), v)| (format!("{from}->{to}"), v.clone()))
                .collect();
            snap.stalls = run.stalls.clone();
        }
        snap
    }

    /// Stalls recorded for the current (or most recent) run.
    pub fn stalls(&self) -> Vec<StallEvent> {
        self.pump();
        let state = self.lock_state();
        state
            .run
            .as_ref()
            .map(|r| r.stalls.clone())
            .unwrap_or_default()
    }

    /// Spawn the background aggregator (idempotent per call site; callers
    /// only invoke this once per collector).
    pub fn spawn_aggregator(self: &Arc<Self>, poll: Duration) {
        let collector = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name("sqm-live-agg".to_string())
            .spawn(move || {
                while !collector.stop.load(Ordering::Relaxed) {
                    collector.pump();
                    std::thread::sleep(poll);
                }
            })
            .expect("spawn live aggregator");
        self.threads.lock().unwrap().push(handle);
    }

    /// Bind the HTTP endpoint and serve `/metrics` + `/snapshot` until
    /// [`Collector::stop`]. Returns the bound address (useful with port 0).
    pub fn start_server(self: &Arc<Self>, addr: &str) -> io::Result<SocketAddr> {
        let mut slot = self.http.lock().unwrap();
        if let Some(server) = slot.as_ref() {
            return Ok(server.local_addr());
        }
        let collector = Arc::clone(self);
        let server = HttpServer::bind(
            addr,
            "sqm-live-http",
            Arc::new(move |req: &HttpRequest| handle_live_request(req, &collector)),
        )?;
        let bound = server.local_addr();
        *slot = Some(server);
        Ok(bound)
    }

    /// Address the HTTP endpoint is bound to, if serving.
    pub fn bound_addr(&self) -> Option<SocketAddr> {
        self.http.lock().unwrap().as_ref().map(|s| s.local_addr())
    }

    /// Stop background threads (detached/test collectors; the process-global
    /// collector lives for the whole process).
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
        let handles: Vec<_> = self.threads.lock().unwrap().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
        if let Some(mut server) = self.http.lock().unwrap().take() {
            server.shutdown();
        }
    }
}

// ---------------------------------------------------------------------------
// Flight-recorder dump
// ---------------------------------------------------------------------------

/// Render the flight recorder as JSONL. Only deterministic fields are
/// written — party, round, kind, phase, messages, bytes, injected fault
/// costs — never wall-clock measurements, so a seeded failure dumps
/// byte-identically on every machine.
fn render_flight_dump(run: &RunAgg) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str(&format!(
        "{{\"type\":\"flightrec_meta\",\"version\":1,\"seed\":{},\"n_parties\":{},\"error\":",
        run.seed, run.n_parties
    ));
    match &run.error {
        Some(e) => json::write_str(&mut out, e),
        None => out.push_str("null"),
    }
    out.push_str(&format!(",\"stalls\":{}}}\n", run.stalls.len()));
    let mut stalls: Vec<&StallEvent> = run.stalls.iter().collect();
    stalls.sort_by_key(|s| (s.party, s.round));
    for s in stalls {
        out.push_str(&format!(
            "{{\"type\":\"stall\",\"party\":{},\"round\":{},\"kind\":",
            s.party, s.round
        ));
        json::write_str(&mut out, &s.kind);
        out.push_str("}\n");
    }
    for (party, flight) in run.flight.iter().enumerate() {
        for (seq, e) in flight.iter().enumerate() {
            out.push_str(&format!(
                "{{\"type\":\"event\",\"party\":{party},\"seq\":{seq},\"round\":{},\"kind\":",
                e.round
            ));
            json::write_str(&mut out, e.kind.as_str());
            match e.kind {
                LiveEventKind::Round => {
                    out.push_str(",\"phase\":");
                    json::write_str(&mut out, e.phase.as_str());
                    out.push_str(&format!(
                        ",\"messages\":{},\"bytes\":{}",
                        e.messages, e.bytes
                    ));
                }
                LiveEventKind::Delay | LiveEventKind::Retransmit => {
                    out.push_str(&format!(",\"peer\":{},\"value\":", e.peer));
                    json::write_f64(&mut out, e.value);
                }
                LiveEventKind::Send | LiveEventKind::Recv => {
                    out.push_str(&format!(",\"peer\":{}", e.peer));
                }
            }
            out.push_str("}\n");
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Prometheus text exposition
// ---------------------------------------------------------------------------

fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        let ok = ok && !(i == 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    out
}

/// Render the live aggregates plus the metrics registry in the Prometheus
/// text exposition format (0.0.4). Output order is fixed: live section
/// first, then registry counters/gauges/histograms — each from a `BTreeMap`
/// iteration, so the exposition is key-sorted and byte-deterministic for a
/// given state.
pub fn render_prometheus(snap: &LiveSnapshot) -> String {
    let mut out = String::with_capacity(8 * 1024);
    let scalar = |out: &mut String, name: &str, kind: &str, help: &str, value: String| {
        out.push_str(&format!(
            "# HELP {name} {help}\n# TYPE {name} {kind}\n{name} {value}\n"
        ));
    };
    scalar(
        &mut out,
        "sqm_live_runs_started_total",
        "counter",
        "Engine runs started since the live collector was installed.",
        snap.runs_started.to_string(),
    );
    scalar(
        &mut out,
        "sqm_live_runs_failed_total",
        "counter",
        "Engine runs ended by a transport error or party panic.",
        snap.runs_failed.to_string(),
    );
    scalar(
        &mut out,
        "sqm_live_stalls_total",
        "counter",
        "Stall events flagged by the watchdog (slow_round, heartbeat, crash).",
        snap.stalls_total.to_string(),
    );
    scalar(
        &mut out,
        "sqm_live_events_published_total",
        "counter",
        "Events accepted into the live ring by engines and transports.",
        snap.events_published.to_string(),
    );
    scalar(
        &mut out,
        "sqm_live_events_dropped_total",
        "counter",
        "Events dropped because the live ring was full.",
        snap.events_dropped.to_string(),
    );
    if let Some(run) = &snap.run {
        scalar(
            &mut out,
            "sqm_live_run_in_progress",
            "gauge",
            "1 while the current engine run is still executing, else 0.",
            u64::from(run.in_progress).to_string(),
        );
        scalar(
            &mut out,
            "sqm_live_run_seed",
            "gauge",
            "Seed of the current (or most recent) engine run.",
            run.seed.to_string(),
        );
    }
    if !snap.parties.is_empty() {
        out.push_str(
            "# HELP sqm_live_party_rounds Exchange rounds completed, per party.\n\
             # TYPE sqm_live_party_rounds counter\n",
        );
        for p in &snap.parties {
            out.push_str(&format!(
                "sqm_live_party_rounds{{party=\"{}\"}} {}\n",
                p.party, p.rounds
            ));
        }
        out.push_str(
            "# HELP sqm_live_party_messages Messages sent, per party.\n\
             # TYPE sqm_live_party_messages counter\n",
        );
        for p in &snap.parties {
            out.push_str(&format!(
                "sqm_live_party_messages{{party=\"{}\"}} {}\n",
                p.party, p.messages
            ));
        }
        out.push_str(
            "# HELP sqm_live_party_bytes Payload bytes sent, per party.\n\
             # TYPE sqm_live_party_bytes counter\n",
        );
        for p in &snap.parties {
            out.push_str(&format!(
                "sqm_live_party_bytes{{party=\"{}\"}} {}\n",
                p.party, p.bytes
            ));
        }
        out.push_str(
            "# HELP sqm_live_party_round_wall_seconds Windowed per-round wall-time quantiles, per party.\n\
             # TYPE sqm_live_party_round_wall_seconds summary\n",
        );
        for p in &snap.parties {
            for (q, v) in [
                ("0.5", p.round_wall.p50_ns),
                ("0.9", p.round_wall.p90_ns),
                ("0.99", p.round_wall.p99_ns),
            ] {
                out.push_str(&format!(
                    "sqm_live_party_round_wall_seconds{{party=\"{}\",quantile=\"{q}\"}} ",
                    p.party
                ));
                json::write_f64(&mut out, v as f64 * 1e-9);
                out.push('\n');
            }
        }
    }
    if !snap.phases.is_empty() {
        out.push_str(
            "# HELP sqm_live_phase_rounds Exchange rounds completed, per protocol phase.\n\
             # TYPE sqm_live_phase_rounds counter\n",
        );
        for (phase, c) in &snap.phases {
            out.push_str(&format!(
                "sqm_live_phase_rounds{{phase=\"{}\"}} {}\n",
                prom_name(phase),
                c.rounds
            ));
        }
        out.push_str(
            "# HELP sqm_live_phase_bytes Payload bytes sent, per protocol phase.\n\
             # TYPE sqm_live_phase_bytes counter\n",
        );
        for (phase, c) in &snap.phases {
            out.push_str(&format!(
                "sqm_live_phase_bytes{{phase=\"{}\"}} {}\n",
                prom_name(phase),
                c.bytes
            ));
        }
    }
    if !snap.stalls.is_empty() {
        out.push_str(
            "# HELP sqm_live_stall Seconds a flagged party was stalled, labeled by round and stall kind.\n\
             # TYPE sqm_live_stall gauge\n",
        );
    }
    for s in &snap.stalls {
        out.push_str(&format!(
            "sqm_live_stall{{party=\"{}\",round=\"{}\",kind=\"{}\"}} ",
            s.party, s.round, s.kind
        ));
        json::write_f64(&mut out, s.stalled_for.as_secs_f64());
        out.push('\n');
    }
    // Metrics registry, key-sorted (BTreeMap iteration order).
    out.push_str(&render_metrics_prometheus(&snap.metrics));
    out
}

/// Render the process-wide metrics registry (counters, gauges, histogram
/// summaries) in Prometheus text exposition format. Shared between the live
/// `/metrics` endpoint (as the tail of [`render_prometheus`]) and other
/// endpoints — e.g. the `sqm-serve` scrape route — that expose the registry
/// without the live ring's per-run aggregates.
pub fn render_metrics_prometheus(metrics: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(1024);
    for (name, v) in &metrics.counters {
        let raw = name;
        let name = prom_name(&format!("sqm_{name}"));
        out.push_str(&format!(
            "# HELP {name} Process metrics registry counter `{raw}`.\n\
             # TYPE {name} counter\n{name} {v}\n"
        ));
    }
    for (name, v) in &metrics.gauges {
        let raw = name;
        let name = prom_name(&format!("sqm_{name}"));
        out.push_str(&format!(
            "# HELP {name} Process metrics registry gauge `{raw}`.\n\
             # TYPE {name} gauge\n{name} "
        ));
        json::write_f64(&mut out, *v);
        out.push('\n');
    }
    for (name, h) in &metrics.histograms {
        let raw = name;
        let name = prom_name(&format!("sqm_{name}"));
        out.push_str(&format!(
            "# HELP {name} Process metrics registry histogram `{raw}` (quantile summary).\n\
             # TYPE {name} summary\n"
        ));
        for (q, v) in [("0.5", h.p50), ("0.9", h.p90), ("0.99", h.p99)] {
            out.push_str(&format!("{name}{{quantile=\"{q}\"}} "));
            json::write_f64(&mut out, v);
            out.push('\n');
        }
        out.push_str(&format!("{name}_count {}\n{name}_sum ", h.count));
        json::write_f64(&mut out, h.sum);
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------------------
// HTTP endpoint (routes over the shared `obs::httpd` listener)
// ---------------------------------------------------------------------------

fn handle_live_request(req: &HttpRequest, collector: &Arc<Collector>) -> HttpResponse {
    if req.method != "GET" {
        return HttpResponse::text(405, "only GET is supported\n");
    }
    match req.path.as_str() {
        "/metrics" => HttpResponse::prometheus(render_prometheus(&collector.snapshot())),
        "/snapshot" => {
            let mut body = collector.snapshot().to_json();
            body.push('\n');
            HttpResponse::json(200, body)
        }
        "/" => HttpResponse::text(
            200,
            "sqm live telemetry\n/metrics  Prometheus text exposition\n/snapshot JSON snapshot\n",
        ),
        _ => HttpResponse::not_found(),
    }
}

// ---------------------------------------------------------------------------
// Process-global collector
// ---------------------------------------------------------------------------

static ACTIVE: AtomicBool = AtomicBool::new(false);

fn global() -> &'static OnceLock<Arc<Collector>> {
    static GLOBAL: OnceLock<Arc<Collector>> = OnceLock::new();
    &GLOBAL
}

/// Is a process-global collector installed? When `false` — the default —
/// [`publish`] is a single relaxed atomic load, cheap enough for the
/// engines' per-round path.
pub fn is_active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Publish one event to the process-global collector, if installed.
pub fn publish(event: LiveEvent) {
    if !is_active() {
        return;
    }
    if let Some(c) = global().get() {
        c.publish(event);
    }
}

/// Install the process-global collector (idempotent) and, when
/// `config.addr` is set, bind the HTTP endpoint. Returns the bound address
/// when serving. The first install's ring capacity and poll interval win;
/// per-run thresholds come from the `LiveConfig` passed to [`begin_run`].
pub fn install(config: &LiveConfig) -> io::Result<Option<SocketAddr>> {
    let collector = global().get_or_init(|| {
        let c = Collector::new(config);
        c.spawn_aggregator(config.poll);
        c
    });
    ACTIVE.store(true, Ordering::Relaxed);
    match &config.addr {
        Some(addr) => collector.start_server(addr).map(Some),
        None => Ok(collector.bound_addr()),
    }
}

/// The process-global collector, if installed.
pub fn collector() -> Option<Arc<Collector>> {
    global().get().cloned()
}

/// Bracket one engine run: installs the global collector on first use,
/// resets per-run aggregation, and returns a guard. Call
/// [`RunGuard::finish`] on success or [`RunGuard::fail`] on a typed
/// transport error; a guard dropped any other way (a party-thread panic
/// unwinding through `try_run`) records the run as failed with a `"panic"`
/// digest and still dumps the flight recorder.
pub fn begin_run(config: &LiveConfig, n_parties: usize, seed: u64) -> RunGuard {
    if let Err(e) = install(config) {
        eprintln!("[live] endpoint bind failed (telemetry continues unserved): {e}");
    }
    if let Some(c) = collector() {
        c.begin_run(config, n_parties, seed);
    }
    RunGuard { done: false }
}

/// See [`begin_run`].
pub struct RunGuard {
    done: bool,
}

impl RunGuard {
    /// The run completed; resolve the watchdog and leave the aggregates
    /// visible (no dump).
    pub fn finish(mut self) {
        self.done = true;
        if let Some(c) = collector() {
            c.end_run(None);
        }
    }

    /// The run failed with a typed transport error; synthesize the crash
    /// stall and dump the flight recorder.
    pub fn fail(mut self, error: RunError) {
        self.done = true;
        if let Some(c) = collector() {
            c.end_run(Some(error));
        }
    }
}

impl Drop for RunGuard {
    fn drop(&mut self) {
        if !self.done {
            if let Some(c) = collector() {
                c.end_run(Some(RunError::panic()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpStream;

    fn test_config() -> LiveConfig {
        LiveConfig {
            stall_threshold: Some(Duration::from_millis(10)),
            ..LiveConfig::default()
        }
    }

    /// Drive a detached collector synchronously through a run.
    fn detached(config: &LiveConfig, n: usize, seed: u64) -> Arc<Collector> {
        let c = Collector::new(config);
        c.begin_run(config, n, seed);
        c
    }

    #[test]
    fn ring_is_fifo_and_drops_when_full() {
        let ring = EventRing::new(4);
        for round in 0..4 {
            assert!(ring.try_push(LiveEvent::round(0, round, "p", Duration::ZERO, 1, 8)));
        }
        assert!(!ring.try_push(LiveEvent::round(0, 99, "p", Duration::ZERO, 1, 8)));
        assert_eq!(ring.dropped.load(Ordering::Relaxed), 1);
        for round in 0..4 {
            assert_eq!(ring.pop().unwrap().round, round);
        }
        assert!(ring.pop().is_none());
        // Wraparound keeps working.
        assert!(ring.try_push(LiveEvent::round(1, 7, "p", Duration::ZERO, 1, 8)));
        assert_eq!(ring.pop().unwrap().party, 1);
    }

    #[test]
    fn ring_survives_concurrent_producers() {
        let ring = Arc::new(EventRing::new(1 << 12));
        std::thread::scope(|s| {
            for party in 0..4usize {
                let ring = Arc::clone(&ring);
                s.spawn(move || {
                    for round in 0..500u64 {
                        ring.try_push(LiveEvent::round(party, round, "p", Duration::ZERO, 1, 1));
                    }
                });
            }
        });
        let mut per_party_next = [0u64; 4];
        let mut total = 0;
        while let Some(e) = ring.pop() {
            // Per-producer FIFO: each party's rounds arrive in order.
            assert_eq!(e.round, per_party_next[e.party]);
            per_party_next[e.party] += 1;
            total += 1;
        }
        assert_eq!(total, 2000);
    }

    #[test]
    fn phase_tag_truncates_at_char_boundary() {
        assert_eq!(PhaseTag::new("share").as_str(), "share");
        let long = "a".repeat(100);
        assert_eq!(PhaseTag::new(&long).as_str().len(), PHASE_TAG_CAP);
        // Multi-byte char straddling the cap is dropped, not split.
        let tricky = format!("{}é", "x".repeat(PHASE_TAG_CAP - 1));
        let tag = PhaseTag::new(&tricky);
        assert_eq!(tag.as_str(), &"x".repeat(PHASE_TAG_CAP - 1));
    }

    #[test]
    fn watchdog_attributes_slow_round_to_injected_culprit() {
        let cfg = test_config();
        let c = detached(&cfg, 3, 1);
        // Round 4: party 1 injected a 50 ms delay; every party's round wall
        // spikes, but only party 1 must be flagged.
        for party in 0..3 {
            c.publish(
                LiveEvent::fault(
                    party,
                    4,
                    (party + 1) % 3,
                    "delay",
                    if party == 1 { 0.05 } else { 0.001 },
                )
                .unwrap(),
            );
            c.publish(LiveEvent::round(
                party,
                4,
                "mul",
                Duration::from_millis(50),
                2,
                64,
            ));
        }
        c.pump();
        let stalls = c.stalls();
        assert_eq!(stalls.len(), 1, "{stalls:?}");
        assert_eq!((stalls[0].party, stalls[0].round), (1, 4));
        assert_eq!(stalls[0].kind, "slow_round");
        assert!((stalls[0].stalled_for.as_secs_f64() - 0.05).abs() < 1e-9);
    }

    #[test]
    fn watchdog_adaptive_threshold_flags_outlier_round() {
        let cfg = LiveConfig {
            stall_min: Duration::from_micros(1),
            ..LiveConfig::default()
        };
        let c = detached(&cfg, 2, 2);
        // Warm the window with 1 ms rounds, then one 100 ms outlier at
        // party 0 (factor 8 × median 1 ms = 8 ms threshold).
        for round in 0..20u64 {
            for party in 0..2 {
                c.publish(LiveEvent::round(
                    party,
                    round,
                    "p",
                    Duration::from_millis(1),
                    1,
                    8,
                ));
            }
        }
        c.publish(LiveEvent::round(
            0,
            20,
            "p",
            Duration::from_millis(100),
            1,
            8,
        ));
        c.publish(LiveEvent::round(1, 20, "p", Duration::from_millis(1), 1, 8));
        c.pump();
        let stalls = c.stalls();
        assert_eq!(stalls.len(), 1, "{stalls:?}");
        assert_eq!((stalls[0].party, stalls[0].round), (0, 20));
        // And nothing was flagged during warmup.
        assert!(stalls[0].kind == "slow_round");
    }

    #[test]
    fn crash_digest_synthesizes_stall_and_dumps_deterministic_flightrec() {
        let dir = std::env::temp_dir().join(format!("sqm_live_fr_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = LiveConfig {
            flight_dir: dir.clone(),
            ..test_config()
        };
        let render = |c: &Arc<Collector>| {
            for party in 0..3 {
                c.publish(LiveEvent::round(
                    party,
                    0,
                    "share",
                    Duration::from_micros(10),
                    2,
                    48,
                ));
            }
            c.end_run(Some(RunError::new("crashed", Some(2), Some(1))));
            std::fs::read_to_string(dir.join("flightrec_9.jsonl")).unwrap()
        };
        let first = render(&detached(&cfg, 3, 9));
        let second = render(&detached(&cfg, 3, 9));
        assert_eq!(first, second, "dump must be byte-deterministic");
        assert!(first.contains("\"type\":\"flightrec_meta\""));
        assert!(first.contains("\"error\":\"crashed party=2 round=1\""));
        assert!(first.contains("\"type\":\"stall\",\"party\":2,\"round\":1,\"kind\":\"crash\""));
        assert!(first.contains("\"phase\":\"share\""));
        // The nondeterministic field never leaks into the dump.
        assert!(!first.contains("wall"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_and_prometheus_are_sorted_and_deterministic() {
        let cfg = test_config();
        let c = detached(&cfg, 2, 5);
        c.publish(LiveEvent::round(
            0,
            0,
            "share",
            Duration::from_micros(5),
            1,
            32,
        ));
        c.publish(LiveEvent::round(
            1,
            0,
            "share",
            Duration::from_micros(5),
            1,
            32,
        ));
        c.publish(LiveEvent::link(0, 0, 1, false, Duration::from_micros(3)));
        let snap = c.snapshot();
        assert_eq!(snap.parties.len(), 2);
        assert_eq!(snap.phases["share"].rounds, 2);
        assert_eq!(snap.links["0->1"].count, 1);
        let json = snap.to_json();
        assert!(json.contains("\"runs_started\":1"), "{json}");
        assert!(json.contains("\"in_progress\":true"));
        let text_a = render_prometheus(&snap);
        let text_b = render_prometheus(&c.snapshot());
        assert_eq!(text_a, text_b, "same state must render byte-identically");
        assert!(text_a.contains("sqm_live_party_rounds{party=\"0\"} 1"));
        assert!(text_a.contains("# TYPE sqm_live_phase_rounds counter"));
        // Registry names are sanitized and key-sorted.
        let reg_lines: Vec<&str> = text_a
            .lines()
            .filter(|l| l.starts_with("sqm_") && !l.starts_with("sqm_live_"))
            .collect();
        let mut sorted = reg_lines.clone();
        sorted.sort_unstable();
        assert_eq!(reg_lines, sorted);
    }

    #[test]
    fn every_prometheus_type_line_has_a_matching_help_line() {
        // Populate every exported family: per-party, per-phase, run gauges,
        // a stall, and all three registry metric kinds.
        let cfg = test_config();
        let c = detached(&cfg, 3, 5);
        for party in 0..3 {
            c.publish(
                LiveEvent::fault(
                    party,
                    4,
                    (party + 1) % 3,
                    "delay",
                    if party == 1 { 0.05 } else { 0.001 },
                )
                .unwrap(),
            );
            c.publish(LiveEvent::round(
                party,
                4,
                "mul",
                Duration::from_millis(50),
                2,
                64,
            ));
        }
        c.pump();
        let mut snap = c.snapshot();
        assert!(!snap.stalls.is_empty(), "need a stall line in the fixture");
        snap.metrics.counters.insert("mpc.rounds".to_string(), 7);
        snap.metrics.gauges.insert("queue.depth".to_string(), 1.5);
        snap.metrics.histograms.insert(
            "round.wall".to_string(),
            crate::metrics::HistogramSummary::default(),
        );
        let text = render_prometheus(&snap);
        let lines: Vec<&str> = text.lines().collect();
        let mut families = 0usize;
        for (i, line) in lines.iter().enumerate() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                families += 1;
                let name = rest.split_whitespace().next().unwrap();
                let help_name = i
                    .checked_sub(1)
                    .and_then(|p| lines[p].strip_prefix("# HELP "))
                    .and_then(|r| r.split_whitespace().next());
                assert_eq!(
                    help_name,
                    Some(name),
                    "# TYPE without an immediately preceding matching # HELP: {line}"
                );
            }
        }
        // Scalars (7) + party families (4) + phase families (2) + stall +
        // registry counter/gauge/summary (3).
        assert!(families >= 17, "only {families} TYPE lines in:\n{text}");
        assert!(text.contains("# TYPE sqm_live_stall gauge"));
        // The shared registry renderer (the serve /metrics tail) carries
        // HELP on its own too.
        let registry = render_metrics_prometheus(&snap.metrics);
        assert!(registry.contains("# HELP sqm_mpc_rounds "), "{registry}");
        assert!(registry.contains("# HELP sqm_queue_depth "));
        assert!(registry.contains("# HELP sqm_round_wall "));
    }

    #[test]
    fn http_endpoint_serves_metrics_snapshot_and_404() {
        let cfg = test_config();
        let c = detached(&cfg, 2, 11);
        c.publish(LiveEvent::round(
            0,
            0,
            "open",
            Duration::from_micros(5),
            1,
            16,
        ));
        let addr = c.start_server("127.0.0.1:0").unwrap();
        let get = |path: &str| -> (String, String) {
            let mut s = TcpStream::connect(addr).unwrap();
            write!(s, "GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
            let mut response = String::new();
            s.read_to_string(&mut response).unwrap();
            let (head, body) = response.split_once("\r\n\r\n").unwrap();
            (head.to_string(), body.to_string())
        };
        let (head, body) = get("/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(head.contains("text/plain; version=0.0.4"));
        assert!(body.contains("sqm_live_events_published_total"));
        let (head, body) = get("/snapshot");
        assert!(head.contains("application/json"));
        assert!(body.trim_end().starts_with('{') && body.trim_end().ends_with('}'));
        assert!(body.contains("\"parties\""));
        let (head, _) = get("/nope");
        assert!(head.starts_with("HTTP/1.1 404"));
        c.stop();
    }

    #[test]
    fn heartbeat_watchdog_flags_silent_party() {
        let cfg = LiveConfig {
            // Tiny threshold → heartbeat timeout is the 1 s floor... too
            // slow for a unit test, so drive the check directly with a
            // backdated last_seen.
            stall_threshold: Some(Duration::from_millis(1)),
            ..LiveConfig::default()
        };
        let c = detached(&cfg, 2, 3);
        c.publish(LiveEvent::round(0, 0, "p", Duration::from_micros(5), 1, 8));
        c.publish(LiveEvent::round(1, 0, "p", Duration::from_micros(5), 1, 8));
        c.pump();
        {
            let mut state = c.lock_state();
            let run = state.run.as_mut().unwrap();
            run.parties[1].last_seen = Instant::now() - Duration::from_secs(5);
        }
        c.pump();
        let stalls = c.stalls();
        assert_eq!(stalls.len(), 1, "{stalls:?}");
        assert_eq!(stalls[0].party, 1);
        assert_eq!(stalls[0].kind, "heartbeat");
        assert!(stalls[0].stalled_for >= Duration::from_secs(4));
    }

    #[test]
    fn finished_run_without_error_leaves_no_dump() {
        let dir = std::env::temp_dir().join(format!("sqm_live_ok_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = LiveConfig {
            flight_dir: dir.clone(),
            ..test_config()
        };
        let c = detached(&cfg, 2, 13);
        c.publish(LiveEvent::round(0, 0, "p", Duration::from_micros(5), 1, 8));
        c.end_run(None);
        assert!(!dir.join("flightrec_13.jsonl").exists());
        let snap = c.snapshot();
        assert!(!snap.run.as_ref().unwrap().in_progress);
        assert_eq!(snap.runs_failed, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
