//! Observability for SQM: tracing, metrics, and a privacy ledger.
//!
//! The simulation layer already *accounts* (rounds, bytes, virtual-clock
//! time in `sqm_mpc::RunStats`; RDP spend in `sqm_accounting::budget`), but
//! accounting alone answers "how much" — not "where", "when", or "under
//! what privacy claim". This crate adds the missing views:
//!
//! * [`trace`] — structured span/round records keyed to the **simulated
//!   clock**. Each MPC party thread owns a lock-free [`trace::PartyRecorder`]
//!   fed from the same code paths (and the *same* `Instant` measurements) as
//!   the engine's `PartyStats`, so a merged [`trace::Trace`] reproduces
//!   `RunStats::simulated_time()` exactly — see [`trace::TraceSummary`].
//! * [`metrics`] — a process-wide registry of counters, gauges and
//!   histograms (messages per round, bytes per party, degree-reduction batch
//!   sizes, eigensolver sweeps, ...). Disabled by default; every recording
//!   call is a single relaxed atomic load when disabled.
//! * [`ledger`] — a privacy ledger: one entry per DP release carrying
//!   `(gamma, mu, sensitivity)` and the **server-observed** and
//!   **client-observed** epsilons (paper Eqs. 3-4, Lemma 1), plus the
//!   running RDP composition of everything released so far. The composed
//!   totals agree with `sqm_accounting::budget::PrivacyOdometer` fed the
//!   same curves.
//! * [`causal`] — cross-party causal analysis of a traced run: every
//!   message carries a compact trace context (run id, party, round,
//!   per-link sequence number, Lamport clock), from which
//!   [`causal::MessageDag`] reconstructs the full send→recv flow graph,
//!   validates it (Lamport monotonicity, one matching receive per send),
//!   and computes the latency-weighted critical path with a per-party
//!   idle/compute breakdown. On the in-process backend the critical-path
//!   total equals `RunStats::simulated_time()` exactly.
//! * [`export`] — JSONL event logs, Chrome trace-event JSON (loadable in
//!   Perfetto / `chrome://tracing`, timestamps on the simulated timeline,
//!   flow arrows from the causal stamps), and a human-readable per-phase
//!   summary table. File-writing goes through [`export::atomic_write`]
//!   (temp file + rename), so interrupted runs never leave truncated
//!   artifacts.
//! * [`httpd`] — the minimal std-only HTTP/1.1 listener shared by every
//!   in-process endpoint (`live`'s `/metrics`+`/snapshot` and the
//!   `sqm-serve` protocol), with graceful shutdown/drain.
//! * [`json`] — a small recursive-descent JSON reader (the offline `serde`
//!   stand-in only writes), used by the bench gate to read artifacts back
//!   and by HTTP endpoints to parse request bodies.
//! * [`span`] — request-scoped tracing for the serving layer: a
//!   [`span::RequestContext`] minted at admission carries a span tree
//!   (queue wait, odometer admit, MPC, encode) through the scheduler, and
//!   the MPC child span links to the causal run id so the message DAG's
//!   critical path attaches as its self-time breakdown. A per-server
//!   [`span::SpanCollector`] keeps a time-bucketed SLO history ring and a
//!   slow-request recorder whose `slowreq_<seed>.jsonl` dump is
//!   byte-deterministic (flight-recorder discipline: counters and
//!   structure only, never measured wall time).
//! * [`prof`] — a deterministic hierarchical cost profiler: `;`-separated
//!   collapsed-stack paths attribute engine cost to circuit layers, gate
//!   kinds, degree reductions, bulk field ops and sampler draws; a
//!   batching-opportunity analyzer ([`prof::BatchingReport`]) predicts the
//!   message-count reduction of round-batched multiplication frames; and
//!   the exporters (folded format, deterministic `prof_<seed>.json`,
//!   self-contained SVG flamegraph) never carry wall time, so same-seed
//!   runs dump byte-identical artifacts.
//! * [`live`] — streaming telemetry for runs *in flight*: a bounded
//!   lock-free event ring the engines and the TCP transport publish
//!   per-round events into, a background aggregator with rolling per-party
//!   / per-phase counters and latency quantiles, a stall watchdog emitting
//!   typed [`live::StallEvent`]s, a crash flight recorder dumping
//!   `results/flightrec_<seed>.jsonl` on failure, and a std-only HTTP
//!   endpoint serving Prometheus text at `/metrics` and JSON at
//!   `/snapshot`.
//!
//! Everything here is *passive*: recording is driven by the `mpc`/`vfl`
//! layers behind `trace: bool` config flags, and the experiment binaries
//! gate exports behind `--trace` / `SQM_TRACE=1`.

pub mod causal;
pub mod export;
pub mod httpd;
pub mod json;
pub mod ledger;
pub mod live;
pub mod metrics;
pub mod prof;
pub mod span;
pub mod trace;

pub use causal::{CriticalPath, FlowEdge, MessageDag, PartyBreakdown, PathSegment};
pub use export::{
    atomic_write, atomic_write_str, chrome_trace_json, flamegraph_html, html_report,
    html_report_full, html_report_with_slo, write_chrome_trace, write_html_report, write_jsonl,
    write_ledger_jsonl,
};
pub use ledger::{LedgerEntry, LedgerReport, PrivacyLedger};
pub use live::{LiveConfig, LiveEvent, LiveSnapshot, StallEvent};
pub use prof::{BatchingReport, ProfConfig, ProfSnapshot};
pub use span::{
    CriticalSummary, FinishedRequest, PartyCost, RequestContext, RequestOutcome, SloBucket,
    SloSnapshot, Span, SpanCollector, SpanConfig,
};
pub use trace::{
    CausalRound, MsgStamp, NetEvent, PartyRecorder, PartyTrace, PhaseTotal, RoundRecord,
    SpanRecord, Trace, TraceSummary,
};
