//! Structured protocol tracing on the simulated clock.
//!
//! The MPC engine charges `latency` per synchronous round on top of the
//! measured wall time of the concurrently running party threads
//! (`simulated = wall + rounds * latency`). The tracer mirrors that model
//! at span granularity: each visit to a protocol phase (`"share"`,
//! `"quantize"`, `"dp_noise"`, `"compute"`, `"open"`, ...) becomes one
//! [`SpanRecord`] with a start position and duration on the party's
//! simulated timeline, and each message exchange becomes one
//! [`RoundRecord`].
//!
//! ## Exactness contract
//!
//! A [`PartyRecorder`] is owned by its party thread — no locks, no atomics —
//! and is fed the *same* `Instant::elapsed()` measurement that the engine
//! attributes to `PartyStats`. Merging therefore uses identical inputs and
//! identical arithmetic (`wall + latency * rounds as u32`, max-over-parties
//! for rounds/wall, sum for messages/bytes), so
//! [`Trace::summary`]'s total equals `RunStats::simulated_time()`
//! **exactly**, not approximately. The engine asserts this in its tests.

use std::collections::BTreeMap;
use std::time::Duration;

use serde::Serialize;

/// One closed phase visit on a party's simulated timeline.
#[derive(Clone, Debug, Serialize)]
pub struct SpanRecord {
    /// Party (MPC client) that executed the span.
    pub party: usize,
    /// Protocol phase name.
    pub phase: String,
    /// Position in the party's span sequence (0-based).
    pub seq: usize,
    /// Simulated-clock start: sum of all earlier span durations.
    pub start: Duration,
    /// Simulated duration: `wall + latency * rounds`.
    pub duration: Duration,
    /// Measured wall time of this visit (same measurement as `PartyStats`).
    pub wall: Duration,
    /// Communication rounds inside this visit.
    pub rounds: u64,
    /// Messages this party sent inside this visit.
    pub messages: u64,
    /// Payload bytes this party sent inside this visit.
    pub bytes: u64,
}

/// One message exchange (synchronous round) as seen by one party.
#[derive(Clone, Debug, Serialize)]
pub struct RoundRecord {
    pub party: usize,
    /// Phase the round was charged to.
    pub phase: String,
    /// Party-global round index (0-based, in execution order).
    pub index: u64,
    /// Messages this party sent in the round.
    pub messages: u64,
    /// Payload bytes this party sent in the round.
    pub bytes: u64,
}

/// One stamped message as seen from one side of an exchange.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct MsgStamp {
    /// The peer on the directed link: the destination for sends, the
    /// source for receives.
    pub peer: usize,
    /// Per-directed-link sequence number (matches a send to its receive).
    pub link_seq: u64,
    /// The sender's Lamport clock stamped on the message.
    pub lamport: u64,
    /// The sender's round index at send time.
    pub round: u64,
}

/// One synchronous exchange with its full causal context: where on the
/// party's simulated timeline the send and receive happened, the party's
/// Lamport clock on both sides, and the per-link stamps of every real
/// message sent and received. Recorded only when tracing is on; the
/// reconstruction lives in [`crate::causal`].
#[derive(Clone, Debug, Serialize)]
pub struct CausalRound {
    pub party: usize,
    /// Phase the round was charged to.
    pub phase: String,
    /// Party-global round index (matches [`RoundRecord::index`]).
    pub index: u64,
    /// Simulated-clock position of the send side of the exchange
    /// (span start + wall measured before the exchange + one latency per
    /// earlier round in the phase).
    pub t_send: Duration,
    /// Simulated-clock position of the receive side (span start + wall
    /// measured after the exchange + one latency per round completed in
    /// the phase, including this one). Always `>= t_send`.
    pub t_recv: Duration,
    /// Measured wall time spent inside the exchange call (receive wait).
    pub wall_wait: Duration,
    /// The party's Lamport clock stamped on this round's outgoing messages.
    pub lamport_send: u64,
    /// The party's Lamport clock after merging the received stamps.
    pub lamport_recv: u64,
    /// Real messages sent this round (non-empty, non-loopback), one stamp
    /// per destination.
    pub sends: Vec<MsgStamp>,
    /// Stamped messages received this round, one per stamping sender.
    pub recvs: Vec<MsgStamp>,
}

/// One transport-level incident (injected fault, retransmit, reconnect,
/// timeout) as observed by one party's transport endpoint. Emitted by the
/// `sqm-net` backends and drained into the trace by the engine.
#[derive(Clone, Debug, Serialize)]
pub struct NetEvent {
    /// Party whose endpoint observed the event.
    pub party: usize,
    /// Synchronous round the event occurred in.
    pub round: u64,
    /// The peer on the affected link.
    pub peer: usize,
    /// Event kind: `"delay"`, `"retransmit"`, `"reconnect"`, `"timeout"`.
    pub kind: String,
    /// Kind-specific magnitude: injected delay in seconds for `"delay"`,
    /// attempt count for `"retransmit"` / `"reconnect"`.
    pub value: f64,
}

/// Exact per-phase aggregate a party maintains alongside its detail
/// records. Unlike the span/round vectors, phase totals are bounded by the
/// number of distinct phase names, so they survive the event cap intact —
/// [`Trace::summary`] is computed from these and stays exact no matter how
/// many detail events were dropped.
#[derive(Clone, Debug, Default, Serialize)]
pub struct PhaseTotal {
    pub phase: String,
    /// Communication rounds this party spent in the phase.
    pub rounds: u64,
    /// Messages this party sent in the phase.
    pub messages: u64,
    /// Payload bytes this party sent in the phase.
    pub bytes: u64,
    /// Wall time this party measured in the phase (sum over visits).
    pub wall: Duration,
}

/// Default bound on detail records (spans + rounds + net events) kept per
/// party. Long epoch loops (e.g. the `sqm-perf` suite) can emit millions of
/// per-round records; beyond the cap they are counted, not stored, and the
/// per-phase aggregates keep the summary exact.
pub const DEFAULT_EVENT_CAP: usize = 1 << 20;

/// Per-party-thread recorder. Owned by exactly one thread; all methods are
/// plain mutations (lock-free by construction, like `PartyStats`).
#[derive(Debug)]
pub struct PartyRecorder {
    party: usize,
    latency: Duration,
    /// Simulated-clock cursor: sum of closed span durations.
    clock: Duration,
    phase: String,
    open_rounds: u64,
    open_messages: u64,
    open_bytes: u64,
    round_index: u64,
    /// Bound on `spans.len() + rounds.len() + net_events.len()`.
    event_cap: usize,
    /// Detail records discarded because the cap was reached.
    dropped_events: u64,
    spans: Vec<SpanRecord>,
    rounds: Vec<RoundRecord>,
    net_events: Vec<NetEvent>,
    causal: Vec<CausalRound>,
    phase_totals: BTreeMap<String, PhaseTotal>,
}

impl PartyRecorder {
    /// A fresh recorder positioned at simulated time zero in the engine's
    /// initial `"default"` phase, with the [`DEFAULT_EVENT_CAP`].
    pub fn new(party: usize, latency: Duration) -> Self {
        PartyRecorder {
            party,
            latency,
            clock: Duration::ZERO,
            phase: "default".to_string(),
            open_rounds: 0,
            open_messages: 0,
            open_bytes: 0,
            round_index: 0,
            event_cap: DEFAULT_EVENT_CAP,
            dropped_events: 0,
            spans: Vec::new(),
            rounds: Vec::new(),
            net_events: Vec::new(),
            causal: Vec::new(),
            phase_totals: BTreeMap::new(),
        }
    }

    /// Bound the number of detail records (spans, rounds, net events) this
    /// recorder keeps. Once the cap is reached further detail is dropped and
    /// counted ([`PartyTrace::dropped_events`], metrics counter
    /// `obs.trace.dropped_events`); phase totals — and with them the exact
    /// summary — are unaffected.
    pub fn with_event_cap(mut self, cap: usize) -> Self {
        self.event_cap = cap;
        self
    }

    fn stored_events(&self) -> usize {
        self.spans.len() + self.rounds.len() + self.net_events.len() + self.causal.len()
    }

    /// Record one exchange charged to the current phase.
    pub fn record_round(&mut self, messages: u64, bytes: u64) {
        if self.stored_events() < self.event_cap {
            self.rounds.push(RoundRecord {
                party: self.party,
                phase: self.phase.clone(),
                index: self.round_index,
                messages,
                bytes,
            });
        } else {
            self.dropped_events += 1;
        }
        self.round_index += 1;
        self.open_rounds += 1;
        self.open_messages += messages;
        self.open_bytes += bytes;
    }

    /// Close the current visit with the engine-measured wall time. The
    /// caller must pass the *same* `Duration` it hands to `PartyStats` —
    /// that is what makes the summary exact.
    pub fn flush_phase(&mut self, wall: Duration) {
        let duration = wall + self.latency * self.open_rounds as u32;
        let total = self
            .phase_totals
            .entry(self.phase.clone())
            .or_insert_with(|| PhaseTotal {
                phase: self.phase.clone(),
                ..PhaseTotal::default()
            });
        total.rounds += self.open_rounds;
        total.messages += self.open_messages;
        total.bytes += self.open_bytes;
        total.wall += wall;
        if self.stored_events() < self.event_cap {
            self.spans.push(SpanRecord {
                party: self.party,
                phase: self.phase.clone(),
                seq: self.spans.len(),
                start: self.clock,
                duration,
                wall,
                rounds: self.open_rounds,
                messages: self.open_messages,
                bytes: self.open_bytes,
            });
        } else {
            self.dropped_events += 1;
        }
        self.clock += duration;
        self.open_rounds = 0;
        self.open_messages = 0;
        self.open_bytes = 0;
    }

    /// Switch to a new phase. The caller flushes the previous visit first
    /// (mirroring the engine's `set_phase`).
    pub fn set_phase(&mut self, name: &str) {
        self.phase = name.to_string();
    }

    /// Record the causal context of an exchange. Must be called *before*
    /// [`record_round`](Self::record_round) for the same exchange: the
    /// event's position on the simulated timeline is anchored at the
    /// current span start plus one configured latency per round already
    /// completed in the open phase, mirroring `wall + latency * rounds`.
    ///
    /// `wall_send` / `wall_recv` are elapsed-since-phase-start
    /// measurements taken immediately before and after the transport
    /// call — the same `Instant` basis as the `flush_phase` wall.
    #[allow(clippy::too_many_arguments)]
    pub fn record_causal_round(
        &mut self,
        wall_send: Duration,
        wall_recv: Duration,
        lamport_send: u64,
        lamport_recv: u64,
        sends: Vec<MsgStamp>,
        recvs: Vec<MsgStamp>,
    ) {
        if self.stored_events() < self.event_cap {
            let k = self.open_rounds as u32;
            self.causal.push(CausalRound {
                party: self.party,
                phase: self.phase.clone(),
                index: self.round_index,
                t_send: self.clock + wall_send + self.latency * k,
                t_recv: self.clock + wall_recv + self.latency * (k + 1),
                wall_wait: wall_recv.saturating_sub(wall_send),
                lamport_send,
                lamport_recv,
                sends,
                recvs,
            });
        } else {
            self.dropped_events += 1;
        }
    }

    /// Record a transport-level event (drained from the transport by the
    /// engine after each exchange). Events do not affect the simulated
    /// clock — injected delays already show up in the measured wall time.
    pub fn record_net_event(&mut self, event: NetEvent) {
        if self.stored_events() < self.event_cap {
            self.net_events.push(event);
        } else {
            self.dropped_events += 1;
        }
    }

    /// Finish recording. Any un-flushed activity is dropped, so the engine
    /// flushes before calling this.
    pub fn finish(self) -> PartyTrace {
        if self.dropped_events > 0 {
            crate::metrics::counter_add("obs.trace.dropped_events", self.dropped_events);
        }
        PartyTrace {
            party: self.party,
            spans: self.spans,
            rounds: self.rounds,
            net_events: self.net_events,
            causal: self.causal,
            phase_totals: self.phase_totals.into_values().collect(),
            dropped_events: self.dropped_events,
        }
    }
}

/// One party's completed timeline.
#[derive(Clone, Debug, Serialize)]
pub struct PartyTrace {
    pub party: usize,
    pub spans: Vec<SpanRecord>,
    pub rounds: Vec<RoundRecord>,
    /// Transport incidents (faults, retransmits, reconnects), in order.
    pub net_events: Vec<NetEvent>,
    /// Per-exchange causal context (empty unless the run was traced with
    /// a causal-stamping engine). Feeds [`crate::causal`].
    pub causal: Vec<CausalRound>,
    /// Exact per-phase aggregates (sorted by phase name). These feed
    /// [`Trace::summary`] and are complete even when detail records were
    /// dropped under the event cap.
    pub phase_totals: Vec<PhaseTotal>,
    /// Detail records discarded because the event cap was reached.
    pub dropped_events: u64,
}

/// The merged trace of one protocol run: every party's timeline plus the
/// latency the run was configured with.
#[derive(Clone, Debug, Serialize)]
pub struct Trace {
    /// Per-hop latency used to convert rounds into simulated time.
    pub latency: Duration,
    /// Party timelines, sorted by party id.
    pub parties: Vec<PartyTrace>,
}

impl Trace {
    /// Assemble a run trace from per-party recordings.
    pub fn from_parties(latency: Duration, mut parties: Vec<PartyTrace>) -> Self {
        parties.sort_by_key(|p| p.party);
        Trace { latency, parties }
    }

    /// Total messages across all parties.
    pub fn total_messages(&self) -> u64 {
        self.parties
            .iter()
            .flat_map(|p| &p.phase_totals)
            .map(|t| t.messages)
            .sum()
    }

    /// Total payload bytes across all parties.
    pub fn total_bytes(&self) -> u64 {
        self.parties
            .iter()
            .flat_map(|p| &p.phase_totals)
            .map(|t| t.bytes)
            .sum()
    }

    /// Detail records dropped across all parties under the event cap.
    pub fn dropped_events(&self) -> u64 {
        self.parties.iter().map(|p| p.dropped_events).sum()
    }

    /// Merge the per-party phase totals into a per-phase summary using the
    /// engine's semantics: within a party, visits to the same phase add;
    /// across parties, rounds and wall take the maximum (parties run
    /// concurrently in lock-step) while messages and bytes sum (total
    /// network traffic). Phase totals are exact even when detail spans were
    /// dropped under the event cap, so the summary always reproduces
    /// `RunStats` exactly.
    pub fn summary(&self) -> TraceSummary {
        #[derive(Default, Clone)]
        struct Acc {
            rounds: u64,
            messages: u64,
            bytes: u64,
            wall: Duration,
        }
        let mut phases: BTreeMap<String, Acc> = BTreeMap::new();
        let mut total = Acc::default();
        for pt in &self.parties {
            let mut party_total = Acc::default();
            for t in &pt.phase_totals {
                let m = phases.entry(t.phase.clone()).or_default();
                m.rounds = m.rounds.max(t.rounds);
                m.wall = m.wall.max(t.wall);
                m.messages += t.messages;
                m.bytes += t.bytes;
                party_total.rounds += t.rounds;
                party_total.messages += t.messages;
                party_total.bytes += t.bytes;
                party_total.wall += t.wall;
            }
            total.rounds = total.rounds.max(party_total.rounds);
            total.wall = total.wall.max(party_total.wall);
            total.messages += party_total.messages;
            total.bytes += party_total.bytes;
        }
        let row = |name: String, a: &Acc| PhaseRow {
            name,
            rounds: a.rounds,
            messages: a.messages,
            bytes: a.bytes,
            wall: a.wall,
            simulated: a.wall + self.latency * a.rounds as u32,
        };
        TraceSummary {
            latency: self.latency,
            phases: phases.iter().map(|(n, a)| row(n.clone(), a)).collect(),
            total: row("total".to_string(), &total),
        }
    }
}

/// One merged row of the per-phase summary table.
#[derive(Clone, Debug, Serialize)]
pub struct PhaseRow {
    pub name: String,
    /// Rounds (max over parties).
    pub rounds: u64,
    /// Messages (sum over parties).
    pub messages: u64,
    /// Payload bytes (sum over parties).
    pub bytes: u64,
    /// Wall time (max over parties).
    pub wall: Duration,
    /// `wall + latency * rounds` — the virtual-clock cost of the row.
    pub simulated: Duration,
}

/// Per-phase rollup of a [`Trace`]. `total.simulated` equals the engine's
/// `RunStats::simulated_time()` exactly (see the module docs).
#[derive(Clone, Debug, Serialize)]
pub struct TraceSummary {
    pub latency: Duration,
    pub phases: Vec<PhaseRow>,
    pub total: PhaseRow,
}

impl TraceSummary {
    /// The summary's total simulated time.
    pub fn total_simulated(&self) -> Duration {
        self.total.simulated
    }
}

impl std::fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:<12} {:>7} {:>10} {:>10} {:>14} {:>14}",
            "phase", "rounds", "messages", "MiB", "wall", "simulated"
        )?;
        for row in self.phases.iter().chain(std::iter::once(&self.total)) {
            writeln!(
                f,
                "{:<12} {:>7} {:>10} {:>10.3} {:>14.2?} {:>14.2?}",
                row.name,
                row.rounds,
                row.messages,
                row.bytes as f64 / (1024.0 * 1024.0),
                row.wall,
                row.simulated,
            )?;
        }
        write!(f, "({:?}/hop latency)", self.latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn spans_accumulate_on_the_simulated_clock() {
        let mut r = PartyRecorder::new(0, ms(100));
        r.set_phase("input");
        r.record_round(3, 300);
        r.flush_phase(ms(5));
        r.set_phase("open");
        r.record_round(3, 24);
        r.record_round(3, 24);
        r.flush_phase(ms(1));
        let t = r.finish();
        assert_eq!(t.spans.len(), 2);
        assert_eq!(t.spans[0].start, Duration::ZERO);
        assert_eq!(t.spans[0].duration, ms(105));
        assert_eq!(t.spans[1].start, ms(105));
        assert_eq!(t.spans[1].duration, ms(201));
        assert_eq!(t.rounds.len(), 3);
        assert_eq!(t.rounds[2].index, 2);
        assert_eq!(t.rounds[2].phase, "open");
    }

    #[test]
    fn summary_merges_like_the_engine() {
        // Two parties, same round structure, different wall times.
        let mut a = PartyRecorder::new(0, ms(100));
        a.set_phase("x");
        a.record_round(2, 100);
        a.flush_phase(ms(3));
        let mut b = PartyRecorder::new(1, ms(100));
        b.set_phase("x");
        b.record_round(2, 100);
        b.flush_phase(ms(7));
        let trace = Trace::from_parties(ms(100), vec![a.finish(), b.finish()]);
        let s = trace.summary();
        assert_eq!(s.total.rounds, 1); // max, not sum
        assert_eq!(s.total.messages, 4); // sum
        assert_eq!(s.total.bytes, 200);
        assert_eq!(s.total.wall, ms(7)); // max
        assert_eq!(s.total_simulated(), ms(107));
        assert_eq!(s.phases.len(), 1);
        assert_eq!(s.phases[0].name, "x");
        assert_eq!(s.phases[0].simulated, ms(107));
    }

    #[test]
    fn repeated_phase_visits_add_within_a_party() {
        let mut r = PartyRecorder::new(0, ms(10));
        r.set_phase("input");
        r.record_round(1, 10);
        r.flush_phase(ms(1));
        r.set_phase("compute");
        r.flush_phase(ms(2));
        r.set_phase("input");
        r.record_round(1, 10);
        r.flush_phase(ms(3));
        let trace = Trace::from_parties(ms(10), vec![r.finish()]);
        let s = trace.summary();
        let input = s.phases.iter().find(|p| p.name == "input").unwrap();
        assert_eq!(input.rounds, 2);
        assert_eq!(input.wall, ms(4));
        assert_eq!(input.simulated, ms(24));
        assert_eq!(s.total.rounds, 2);
        assert_eq!(s.total_simulated(), ms(26));
    }

    #[test]
    fn net_events_are_kept_in_order_and_do_not_touch_the_clock() {
        let mut r = PartyRecorder::new(1, ms(100));
        r.set_phase("input");
        r.record_round(2, 16);
        r.record_net_event(NetEvent {
            party: 1,
            round: 0,
            peer: 0,
            kind: "retransmit".to_string(),
            value: 2.0,
        });
        r.record_net_event(NetEvent {
            party: 1,
            round: 0,
            peer: 2,
            kind: "delay".to_string(),
            value: 0.005,
        });
        r.flush_phase(ms(3));
        let t = r.finish();
        assert_eq!(t.net_events.len(), 2);
        assert_eq!(t.net_events[0].kind, "retransmit");
        assert_eq!(t.net_events[1].peer, 2);
        // Simulated clock still `wall + latency * rounds` only: one round
        // was recorded, and the net events add nothing to it.
        assert_eq!(t.spans[0].duration, ms(103));
    }

    #[test]
    fn event_cap_drops_detail_but_keeps_summary_exact() {
        // Uncapped reference.
        let record = |cap: Option<usize>| {
            let mut r = PartyRecorder::new(0, ms(10));
            if let Some(cap) = cap {
                r = r.with_event_cap(cap);
            }
            for _ in 0..50 {
                r.set_phase("epoch");
                r.record_round(2, 64);
                r.flush_phase(ms(1));
            }
            r.finish()
        };
        let full = record(None);
        let capped = record(Some(8));
        assert_eq!(full.dropped_events, 0);
        assert_eq!(full.spans.len(), 50);
        assert_eq!(full.rounds.len(), 50);
        // Capped: only 8 detail records kept, the other 92 counted.
        assert_eq!(
            capped.spans.len() + capped.rounds.len() + capped.net_events.len(),
            8
        );
        assert_eq!(capped.dropped_events, 92);
        // The summary is identical — phase totals are exact regardless.
        let t_full = Trace::from_parties(ms(10), vec![full]);
        let t_capped = Trace::from_parties(ms(10), vec![capped]);
        let (a, b) = (t_full.summary(), t_capped.summary());
        assert_eq!(a.total.rounds, b.total.rounds);
        assert_eq!(a.total.messages, b.total.messages);
        assert_eq!(a.total.bytes, b.total.bytes);
        assert_eq!(a.total_simulated(), b.total_simulated());
        assert_eq!(t_capped.total_messages(), 100);
        assert_eq!(t_capped.total_bytes(), 50 * 64);
        assert_eq!(t_capped.dropped_events(), 92);
        assert_eq!(t_full.dropped_events(), 0);
    }

    #[test]
    fn zero_cap_keeps_no_detail_and_all_totals() {
        let mut r = PartyRecorder::new(0, ms(1)).with_event_cap(0);
        r.set_phase("x");
        r.record_round(3, 9);
        r.record_net_event(NetEvent {
            party: 0,
            round: 0,
            peer: 1,
            kind: "delay".to_string(),
            value: 0.1,
        });
        r.flush_phase(ms(2));
        let t = r.finish();
        assert!(t.spans.is_empty() && t.rounds.is_empty() && t.net_events.is_empty());
        assert_eq!(t.dropped_events, 3);
        let trace = Trace::from_parties(ms(1), vec![t]);
        let s = trace.summary();
        assert_eq!(s.total.rounds, 1);
        assert_eq!(s.total.messages, 3);
        assert_eq!(s.total.bytes, 9);
        assert_eq!(s.total_simulated(), ms(3));
    }

    #[test]
    fn parties_sorted_and_totals_counted() {
        let mut b = PartyRecorder::new(1, ms(1));
        b.record_round(5, 50);
        b.flush_phase(ms(1));
        let mut a = PartyRecorder::new(0, ms(1));
        a.record_round(4, 40);
        a.flush_phase(ms(1));
        let t = Trace::from_parties(ms(1), vec![b.finish(), a.finish()]);
        assert_eq!(t.parties[0].party, 0);
        assert_eq!(t.total_messages(), 9);
        assert_eq!(t.total_bytes(), 90);
    }
}
