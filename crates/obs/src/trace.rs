//! Structured protocol tracing on the simulated clock.
//!
//! The MPC engine charges `latency` per synchronous round on top of the
//! measured wall time of the concurrently running party threads
//! (`simulated = wall + rounds * latency`). The tracer mirrors that model
//! at span granularity: each visit to a protocol phase (`"share"`,
//! `"quantize"`, `"dp_noise"`, `"compute"`, `"open"`, ...) becomes one
//! [`SpanRecord`] with a start position and duration on the party's
//! simulated timeline, and each message exchange becomes one
//! [`RoundRecord`].
//!
//! ## Exactness contract
//!
//! A [`PartyRecorder`] is owned by its party thread — no locks, no atomics —
//! and is fed the *same* `Instant::elapsed()` measurement that the engine
//! attributes to `PartyStats`. Merging therefore uses identical inputs and
//! identical arithmetic (`wall + latency * rounds as u32`, max-over-parties
//! for rounds/wall, sum for messages/bytes), so
//! [`Trace::summary`]'s total equals `RunStats::simulated_time()`
//! **exactly**, not approximately. The engine asserts this in its tests.

use std::collections::BTreeMap;
use std::time::Duration;

use serde::Serialize;

/// One closed phase visit on a party's simulated timeline.
#[derive(Clone, Debug, Serialize)]
pub struct SpanRecord {
    /// Party (MPC client) that executed the span.
    pub party: usize,
    /// Protocol phase name.
    pub phase: String,
    /// Position in the party's span sequence (0-based).
    pub seq: usize,
    /// Simulated-clock start: sum of all earlier span durations.
    pub start: Duration,
    /// Simulated duration: `wall + latency * rounds`.
    pub duration: Duration,
    /// Measured wall time of this visit (same measurement as `PartyStats`).
    pub wall: Duration,
    /// Communication rounds inside this visit.
    pub rounds: u64,
    /// Messages this party sent inside this visit.
    pub messages: u64,
    /// Payload bytes this party sent inside this visit.
    pub bytes: u64,
}

/// One message exchange (synchronous round) as seen by one party.
#[derive(Clone, Debug, Serialize)]
pub struct RoundRecord {
    pub party: usize,
    /// Phase the round was charged to.
    pub phase: String,
    /// Party-global round index (0-based, in execution order).
    pub index: u64,
    /// Messages this party sent in the round.
    pub messages: u64,
    /// Payload bytes this party sent in the round.
    pub bytes: u64,
}

/// One transport-level incident (injected fault, retransmit, reconnect,
/// timeout) as observed by one party's transport endpoint. Emitted by the
/// `sqm-net` backends and drained into the trace by the engine.
#[derive(Clone, Debug, Serialize)]
pub struct NetEvent {
    /// Party whose endpoint observed the event.
    pub party: usize,
    /// Synchronous round the event occurred in.
    pub round: u64,
    /// The peer on the affected link.
    pub peer: usize,
    /// Event kind: `"delay"`, `"retransmit"`, `"reconnect"`, `"timeout"`.
    pub kind: String,
    /// Kind-specific magnitude: injected delay in seconds for `"delay"`,
    /// attempt count for `"retransmit"` / `"reconnect"`.
    pub value: f64,
}

/// Per-party-thread recorder. Owned by exactly one thread; all methods are
/// plain mutations (lock-free by construction, like `PartyStats`).
#[derive(Debug)]
pub struct PartyRecorder {
    party: usize,
    latency: Duration,
    /// Simulated-clock cursor: sum of closed span durations.
    clock: Duration,
    phase: String,
    open_rounds: u64,
    open_messages: u64,
    open_bytes: u64,
    round_index: u64,
    spans: Vec<SpanRecord>,
    rounds: Vec<RoundRecord>,
    net_events: Vec<NetEvent>,
}

impl PartyRecorder {
    /// A fresh recorder positioned at simulated time zero in the engine's
    /// initial `"default"` phase.
    pub fn new(party: usize, latency: Duration) -> Self {
        PartyRecorder {
            party,
            latency,
            clock: Duration::ZERO,
            phase: "default".to_string(),
            open_rounds: 0,
            open_messages: 0,
            open_bytes: 0,
            round_index: 0,
            spans: Vec::new(),
            rounds: Vec::new(),
            net_events: Vec::new(),
        }
    }

    /// Record one exchange charged to the current phase.
    pub fn record_round(&mut self, messages: u64, bytes: u64) {
        self.rounds.push(RoundRecord {
            party: self.party,
            phase: self.phase.clone(),
            index: self.round_index,
            messages,
            bytes,
        });
        self.round_index += 1;
        self.open_rounds += 1;
        self.open_messages += messages;
        self.open_bytes += bytes;
    }

    /// Close the current visit with the engine-measured wall time. The
    /// caller must pass the *same* `Duration` it hands to `PartyStats` —
    /// that is what makes the summary exact.
    pub fn flush_phase(&mut self, wall: Duration) {
        let duration = wall + self.latency * self.open_rounds as u32;
        self.spans.push(SpanRecord {
            party: self.party,
            phase: self.phase.clone(),
            seq: self.spans.len(),
            start: self.clock,
            duration,
            wall,
            rounds: self.open_rounds,
            messages: self.open_messages,
            bytes: self.open_bytes,
        });
        self.clock += duration;
        self.open_rounds = 0;
        self.open_messages = 0;
        self.open_bytes = 0;
    }

    /// Switch to a new phase. The caller flushes the previous visit first
    /// (mirroring the engine's `set_phase`).
    pub fn set_phase(&mut self, name: &str) {
        self.phase = name.to_string();
    }

    /// Record a transport-level event (drained from the transport by the
    /// engine after each exchange). Events do not affect the simulated
    /// clock — injected delays already show up in the measured wall time.
    pub fn record_net_event(&mut self, event: NetEvent) {
        self.net_events.push(event);
    }

    /// Finish recording. Any un-flushed activity is dropped, so the engine
    /// flushes before calling this.
    pub fn finish(self) -> PartyTrace {
        PartyTrace {
            party: self.party,
            spans: self.spans,
            rounds: self.rounds,
            net_events: self.net_events,
        }
    }
}

/// One party's completed timeline.
#[derive(Clone, Debug, Serialize)]
pub struct PartyTrace {
    pub party: usize,
    pub spans: Vec<SpanRecord>,
    pub rounds: Vec<RoundRecord>,
    /// Transport incidents (faults, retransmits, reconnects), in order.
    pub net_events: Vec<NetEvent>,
}

/// The merged trace of one protocol run: every party's timeline plus the
/// latency the run was configured with.
#[derive(Clone, Debug, Serialize)]
pub struct Trace {
    /// Per-hop latency used to convert rounds into simulated time.
    pub latency: Duration,
    /// Party timelines, sorted by party id.
    pub parties: Vec<PartyTrace>,
}

impl Trace {
    /// Assemble a run trace from per-party recordings.
    pub fn from_parties(latency: Duration, mut parties: Vec<PartyTrace>) -> Self {
        parties.sort_by_key(|p| p.party);
        Trace { latency, parties }
    }

    /// Total messages across all parties.
    pub fn total_messages(&self) -> u64 {
        self.parties
            .iter()
            .flat_map(|p| &p.spans)
            .map(|s| s.messages)
            .sum()
    }

    /// Total payload bytes across all parties.
    pub fn total_bytes(&self) -> u64 {
        self.parties
            .iter()
            .flat_map(|p| &p.spans)
            .map(|s| s.bytes)
            .sum()
    }

    /// Merge spans into a per-phase summary using the engine's semantics:
    /// within a party, visits to the same phase add; across parties, rounds
    /// and wall take the maximum (parties run concurrently in lock-step)
    /// while messages and bytes sum (total network traffic).
    pub fn summary(&self) -> TraceSummary {
        #[derive(Default, Clone)]
        struct Acc {
            rounds: u64,
            messages: u64,
            bytes: u64,
            wall: Duration,
        }
        let mut phases: BTreeMap<String, Acc> = BTreeMap::new();
        let mut total = Acc::default();
        for pt in &self.parties {
            let mut party_phases: BTreeMap<&str, Acc> = BTreeMap::new();
            let mut party_total = Acc::default();
            for s in &pt.spans {
                let a = party_phases.entry(s.phase.as_str()).or_default();
                a.rounds += s.rounds;
                a.messages += s.messages;
                a.bytes += s.bytes;
                a.wall += s.wall;
                party_total.rounds += s.rounds;
                party_total.messages += s.messages;
                party_total.bytes += s.bytes;
                party_total.wall += s.wall;
            }
            for (name, a) in party_phases {
                let m = phases.entry(name.to_string()).or_default();
                m.rounds = m.rounds.max(a.rounds);
                m.wall = m.wall.max(a.wall);
                m.messages += a.messages;
                m.bytes += a.bytes;
            }
            total.rounds = total.rounds.max(party_total.rounds);
            total.wall = total.wall.max(party_total.wall);
            total.messages += party_total.messages;
            total.bytes += party_total.bytes;
        }
        let row = |name: String, a: &Acc| PhaseRow {
            name,
            rounds: a.rounds,
            messages: a.messages,
            bytes: a.bytes,
            wall: a.wall,
            simulated: a.wall + self.latency * a.rounds as u32,
        };
        TraceSummary {
            latency: self.latency,
            phases: phases.iter().map(|(n, a)| row(n.clone(), a)).collect(),
            total: row("total".to_string(), &total),
        }
    }
}

/// One merged row of the per-phase summary table.
#[derive(Clone, Debug, Serialize)]
pub struct PhaseRow {
    pub name: String,
    /// Rounds (max over parties).
    pub rounds: u64,
    /// Messages (sum over parties).
    pub messages: u64,
    /// Payload bytes (sum over parties).
    pub bytes: u64,
    /// Wall time (max over parties).
    pub wall: Duration,
    /// `wall + latency * rounds` — the virtual-clock cost of the row.
    pub simulated: Duration,
}

/// Per-phase rollup of a [`Trace`]. `total.simulated` equals the engine's
/// `RunStats::simulated_time()` exactly (see the module docs).
#[derive(Clone, Debug, Serialize)]
pub struct TraceSummary {
    pub latency: Duration,
    pub phases: Vec<PhaseRow>,
    pub total: PhaseRow,
}

impl TraceSummary {
    /// The summary's total simulated time.
    pub fn total_simulated(&self) -> Duration {
        self.total.simulated
    }
}

impl std::fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:<12} {:>7} {:>10} {:>10} {:>14} {:>14}",
            "phase", "rounds", "messages", "MiB", "wall", "simulated"
        )?;
        for row in self.phases.iter().chain(std::iter::once(&self.total)) {
            writeln!(
                f,
                "{:<12} {:>7} {:>10} {:>10.3} {:>14.2?} {:>14.2?}",
                row.name,
                row.rounds,
                row.messages,
                row.bytes as f64 / (1024.0 * 1024.0),
                row.wall,
                row.simulated,
            )?;
        }
        write!(f, "({:?}/hop latency)", self.latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn spans_accumulate_on_the_simulated_clock() {
        let mut r = PartyRecorder::new(0, ms(100));
        r.set_phase("input");
        r.record_round(3, 300);
        r.flush_phase(ms(5));
        r.set_phase("open");
        r.record_round(3, 24);
        r.record_round(3, 24);
        r.flush_phase(ms(1));
        let t = r.finish();
        assert_eq!(t.spans.len(), 2);
        assert_eq!(t.spans[0].start, Duration::ZERO);
        assert_eq!(t.spans[0].duration, ms(105));
        assert_eq!(t.spans[1].start, ms(105));
        assert_eq!(t.spans[1].duration, ms(201));
        assert_eq!(t.rounds.len(), 3);
        assert_eq!(t.rounds[2].index, 2);
        assert_eq!(t.rounds[2].phase, "open");
    }

    #[test]
    fn summary_merges_like_the_engine() {
        // Two parties, same round structure, different wall times.
        let mut a = PartyRecorder::new(0, ms(100));
        a.set_phase("x");
        a.record_round(2, 100);
        a.flush_phase(ms(3));
        let mut b = PartyRecorder::new(1, ms(100));
        b.set_phase("x");
        b.record_round(2, 100);
        b.flush_phase(ms(7));
        let trace = Trace::from_parties(ms(100), vec![a.finish(), b.finish()]);
        let s = trace.summary();
        assert_eq!(s.total.rounds, 1); // max, not sum
        assert_eq!(s.total.messages, 4); // sum
        assert_eq!(s.total.bytes, 200);
        assert_eq!(s.total.wall, ms(7)); // max
        assert_eq!(s.total_simulated(), ms(107));
        assert_eq!(s.phases.len(), 1);
        assert_eq!(s.phases[0].name, "x");
        assert_eq!(s.phases[0].simulated, ms(107));
    }

    #[test]
    fn repeated_phase_visits_add_within_a_party() {
        let mut r = PartyRecorder::new(0, ms(10));
        r.set_phase("input");
        r.record_round(1, 10);
        r.flush_phase(ms(1));
        r.set_phase("compute");
        r.flush_phase(ms(2));
        r.set_phase("input");
        r.record_round(1, 10);
        r.flush_phase(ms(3));
        let trace = Trace::from_parties(ms(10), vec![r.finish()]);
        let s = trace.summary();
        let input = s.phases.iter().find(|p| p.name == "input").unwrap();
        assert_eq!(input.rounds, 2);
        assert_eq!(input.wall, ms(4));
        assert_eq!(input.simulated, ms(24));
        assert_eq!(s.total.rounds, 2);
        assert_eq!(s.total_simulated(), ms(26));
    }

    #[test]
    fn net_events_are_kept_in_order_and_do_not_touch_the_clock() {
        let mut r = PartyRecorder::new(1, ms(100));
        r.set_phase("input");
        r.record_round(2, 16);
        r.record_net_event(NetEvent {
            party: 1,
            round: 0,
            peer: 0,
            kind: "retransmit".to_string(),
            value: 2.0,
        });
        r.record_net_event(NetEvent {
            party: 1,
            round: 0,
            peer: 2,
            kind: "delay".to_string(),
            value: 0.005,
        });
        r.flush_phase(ms(3));
        let t = r.finish();
        assert_eq!(t.net_events.len(), 2);
        assert_eq!(t.net_events[0].kind, "retransmit");
        assert_eq!(t.net_events[1].peer, 2);
        // Simulated clock still `wall + latency * rounds` only: one round
        // was recorded, and the net events add nothing to it.
        assert_eq!(t.spans[0].duration, ms(103));
    }

    #[test]
    fn parties_sorted_and_totals_counted() {
        let mut b = PartyRecorder::new(1, ms(1));
        b.record_round(5, 50);
        b.flush_phase(ms(1));
        let mut a = PartyRecorder::new(0, ms(1));
        a.record_round(4, 40);
        a.flush_phase(ms(1));
        let t = Trace::from_parties(ms(1), vec![b.finish(), a.finish()]);
        assert_eq!(t.parties[0].party, 0);
        assert_eq!(t.total_messages(), 9);
        assert_eq!(t.total_bytes(), 90);
    }
}
