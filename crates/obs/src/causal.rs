//! Cross-party causal analysis of a traced run.
//!
//! When tracing is on, both MPC engines stamp every real message with a
//! compact trace context (run id, party, round, per-link sequence number,
//! Lamport clock — see `sqm_net::wire::TraceHeader`) and record one
//! [`CausalRound`] per exchange. [`MessageDag::build`] reconstructs the
//! full message DAG from a completed [`Trace`]: the nodes are per-party
//! exchange events on the simulated timeline, the intra-party edges follow
//! each party's program order, and the flow edges match every send to its
//! receive by `(from, to, link_seq)`.
//!
//! From the DAG, [`MessageDag::critical_path`] computes the
//! latency-weighted critical path and a per-party idle/compute breakdown.
//!
//! ## Exactness contract
//!
//! The critical-path **total** is computed from the same per-phase
//! aggregates (and with the same `Duration` arithmetic) as
//! [`Trace::summary`]: per party, `wall + latency * rounds`, maximized
//! over parties. For the engines' SPMD runs — every party executes the
//! same number of rounds — this equals `RunStats::simulated_time()`
//! **exactly**, which the engine tests assert. The walked segment list is
//! an *attribution* of that total: per-party clocks share the simulated
//! origin but drift by measured wall differences, so individual segment
//! boundaries are measurements, not invariants.

use std::collections::BTreeMap;
use std::time::Duration;

use serde::Serialize;

use crate::trace::{CausalRound, Trace};

/// One matched send→recv flow edge of the message DAG.
#[derive(Clone, Debug, Serialize)]
pub struct FlowEdge {
    /// Sending party.
    pub from: usize,
    /// Receiving party.
    pub to: usize,
    /// Per-directed-link sequence number (matches send to receive).
    pub link_seq: u64,
    /// The sender's Lamport clock stamped on the message.
    pub lamport: u64,
    /// The sender's round index at send time.
    pub send_round: u64,
    /// The receiver's round index at receive time.
    pub recv_round: u64,
    /// Simulated-clock send position (sender's timeline).
    pub send_time: Duration,
    /// Simulated-clock receive position (receiver's timeline).
    pub recv_time: Duration,
}

/// One segment of the walked critical path, in increasing time order.
#[derive(Clone, Debug, Serialize)]
pub struct PathSegment {
    /// Party whose timeline the segment ends on.
    pub party: usize,
    /// Phase the segment's terminal event was charged to.
    pub phase: String,
    /// `"compute"` (local work between exchanges) or `"hop"` (the
    /// latency-weighted wait of one exchange).
    pub kind: String,
    pub start: Duration,
    pub end: Duration,
    /// For cross-party hops: the party whose send bound the receive.
    /// `None` for compute segments and for hops bound by the local round
    /// structure (uniform-model latency charge).
    pub from_party: Option<usize>,
}

/// Per-party share of a run: where its simulated time went.
#[derive(Clone, Debug, Serialize)]
pub struct PartyBreakdown {
    pub party: usize,
    /// End of the party's simulated timeline (`wall + latency * rounds`,
    /// exact from the per-phase aggregates).
    pub total: Duration,
    /// Time spent waiting inside exchanges (sum of `t_recv - t_send`
    /// over recorded causal rounds; includes the modeled latency).
    pub idle: Duration,
    /// `total - idle`: local compute attributed to the party.
    pub compute: Duration,
    /// Exchanges the party executed.
    pub rounds: u64,
    /// Real messages the party sent.
    pub messages: u64,
}

/// The latency-weighted critical path of a run.
#[derive(Clone, Debug, Serialize)]
pub struct CriticalPath {
    /// Length of the critical path — the end of the straggler party's
    /// simulated timeline. Equals `RunStats::simulated_time()` exactly on
    /// SPMD runs (see the module docs).
    pub total: Duration,
    /// The party whose timeline ends last (the straggler).
    pub end_party: usize,
    /// Cross-party hops on the walked path.
    pub cross_hops: u64,
    /// The walked path, oldest segment first (empty when the trace holds
    /// no causal rounds, e.g. untraced or fully event-capped runs).
    pub segments: Vec<PathSegment>,
    /// Per-party idle/compute breakdown, sorted by party id.
    pub parties: Vec<PartyBreakdown>,
}

impl CriticalPath {
    /// The critical-path length in fractional seconds.
    pub fn total_seconds(&self) -> f64 {
        self.total.as_secs_f64()
    }
}

/// The reconstructed cross-party message DAG of one traced run.
///
/// Holds references into the [`Trace`] it was built from; nodes are the
/// per-party [`CausalRound`]s in program order, flow edges are the matched
/// `(from, to, link_seq)` send/recv pairs.
pub struct MessageDag<'a> {
    latency: Duration,
    /// `rounds[k]` are party `parties[k]`'s causal rounds in round order.
    parties: Vec<usize>,
    rounds: Vec<Vec<&'a CausalRound>>,
    /// Matched flow edges, sorted by `(from, to, link_seq)`.
    edges: Vec<FlowEdge>,
    /// Send stamps with no matching receive stamp.
    unmatched_sends: usize,
    /// Receive stamps with no matching send stamp.
    unmatched_recvs: usize,
    trace: &'a Trace,
}

impl<'a> MessageDag<'a> {
    /// Reconstruct the message DAG of a completed traced run.
    pub fn build(trace: &'a Trace) -> MessageDag<'a> {
        let mut parties = Vec::new();
        let mut rounds: Vec<Vec<&CausalRound>> = Vec::new();
        for pt in &trace.parties {
            parties.push(pt.party);
            let mut rs: Vec<&CausalRound> = pt.causal.iter().collect();
            rs.sort_by_key(|r| r.index);
            rounds.push(rs);
        }

        // (from, to, link_seq) -> send side (round index, time, lamport).
        let mut sends: BTreeMap<(usize, usize, u64), (u64, Duration, u64)> = BTreeMap::new();
        let mut dup_sends = 0usize;
        for rs in &rounds {
            for r in rs {
                for s in &r.sends {
                    if sends
                        .insert(
                            (r.party, s.peer, s.link_seq),
                            (r.index, r.t_send, s.lamport),
                        )
                        .is_some()
                    {
                        dup_sends += 1;
                    }
                }
            }
        }
        let total_sends = sends.len() + dup_sends;

        let mut edges = Vec::new();
        let mut unmatched_recvs = 0usize;
        for rs in &rounds {
            for r in rs {
                for stamp in &r.recvs {
                    match sends.remove(&(stamp.peer, r.party, stamp.link_seq)) {
                        Some((send_round, send_time, lamport)) => edges.push(FlowEdge {
                            from: stamp.peer,
                            to: r.party,
                            link_seq: stamp.link_seq,
                            lamport,
                            send_round,
                            recv_round: r.index,
                            send_time,
                            recv_time: r.t_recv,
                        }),
                        None => unmatched_recvs += 1,
                    }
                }
            }
        }
        edges.sort_by_key(|e| (e.from, e.to, e.link_seq));
        let unmatched_sends = total_sends - edges.len();
        MessageDag {
            latency: trace.latency,
            parties,
            rounds,
            edges,
            unmatched_sends,
            unmatched_recvs,
            trace,
        }
    }

    /// The matched flow edges, sorted by `(from, to, link_seq)`. The
    /// position in this slice is the stable flow id used by the Chrome
    /// trace export.
    pub fn edges(&self) -> &[FlowEdge] {
        &self.edges
    }

    /// Total causal rounds (DAG nodes) across all parties.
    pub fn node_count(&self) -> usize {
        self.rounds.iter().map(Vec::len).sum()
    }

    /// Send stamps with no matching receive.
    pub fn unmatched_sends(&self) -> usize {
        self.unmatched_sends
    }

    /// Receive stamps with no matching send.
    pub fn unmatched_recvs(&self) -> usize {
        self.unmatched_recvs
    }

    /// `true` when every send matched exactly one receive and vice versa
    /// — the expected state of any fault-free completed run.
    pub fn fully_matched(&self) -> bool {
        self.unmatched_sends == 0 && self.unmatched_recvs == 0
    }

    /// Count Lamport-clock violations across every DAG edge: within each
    /// exchange `lamport_send < lamport_recv`; along each party's program
    /// order `lamport_recv < next lamport_send`; along each flow edge the
    /// stamped send clock is `<` the receiving exchange's merged clock.
    /// Zero on any correctly stamped run.
    pub fn lamport_violations(&self) -> usize {
        let mut violations = 0usize;
        let mut recv_clock: BTreeMap<(usize, u64), u64> = BTreeMap::new();
        for rs in &self.rounds {
            for pair in rs.windows(2) {
                if pair[0].lamport_recv >= pair[1].lamport_send {
                    violations += 1;
                }
            }
            for r in rs {
                if r.lamport_send >= r.lamport_recv {
                    violations += 1;
                }
                recv_clock.insert((r.party, r.index), r.lamport_recv);
            }
        }
        for e in &self.edges {
            match recv_clock.get(&(e.to, e.recv_round)) {
                Some(&merged) if e.lamport < merged => {}
                _ => violations += 1,
            }
        }
        violations
    }

    /// Per-party timeline ends, exact from the phase aggregates:
    /// `wall + latency * rounds` with the engine's `Duration` arithmetic.
    fn party_totals(&self) -> Vec<(usize, Duration, u64, u64)> {
        self.trace
            .parties
            .iter()
            .map(|pt| {
                let mut wall = Duration::ZERO;
                let mut rounds = 0u64;
                let mut messages = 0u64;
                for t in &pt.phase_totals {
                    wall += t.wall;
                    rounds += t.rounds;
                    messages += t.messages;
                }
                (
                    pt.party,
                    wall + self.latency * rounds as u32,
                    rounds,
                    messages,
                )
            })
            .collect()
    }

    /// Compute the latency-weighted critical path and per-party breakdown.
    pub fn critical_path(&self) -> CriticalPath {
        let totals = self.party_totals();
        let (end_party, total) = totals
            .iter()
            .map(|&(p, t, _, _)| (p, t))
            .max_by_key(|&(p, t)| (t, std::cmp::Reverse(p)))
            .unwrap_or((0, Duration::ZERO));

        let parties = totals
            .iter()
            .map(|&(party, total, rounds, messages)| {
                let slot = self.parties.iter().position(|&p| p == party);
                let idle = slot
                    .map(|k| {
                        self.rounds[k]
                            .iter()
                            .map(|r| r.t_recv.saturating_sub(r.t_send))
                            .sum()
                    })
                    .unwrap_or(Duration::ZERO);
                PartyBreakdown {
                    party,
                    total,
                    idle,
                    compute: total.saturating_sub(idle),
                    rounds,
                    messages,
                }
            })
            .collect();

        let segments = self.walk_segments(end_party, total);
        let cross_hops = segments
            .iter()
            .filter(|s| s.kind == "hop" && s.from_party.is_some())
            .count() as u64;
        CriticalPath {
            total,
            end_party,
            cross_hops,
            segments,
            parties,
        }
    }

    /// Backward walk from the straggler's timeline end, choosing at every
    /// receive the binding predecessor: the matched remote send whose
    /// simulated send position is latest, against the local send event.
    fn walk_segments(&self, end_party: usize, total: Duration) -> Vec<PathSegment> {
        // Incoming matched edges keyed by (receiver, receiver round).
        let mut incoming: BTreeMap<(usize, u64), Vec<&FlowEdge>> = BTreeMap::new();
        for e in &self.edges {
            incoming.entry((e.to, e.recv_round)).or_default().push(e);
        }
        let slot_of = |party: usize| self.parties.iter().position(|&p| p == party);
        let pos_of =
            |slot: usize, round: u64| self.rounds[slot].iter().position(|r| r.index == round);

        let mut segments: Vec<PathSegment> = Vec::new();
        let mut push = |party: usize,
                        phase: &str,
                        kind: &str,
                        start: Duration,
                        end: Duration,
                        from: Option<usize>| {
            if end > start {
                segments.push(PathSegment {
                    party,
                    phase: phase.to_string(),
                    kind: kind.to_string(),
                    start,
                    end,
                    from_party: from,
                });
            }
        };

        let Some(mut slot) = slot_of(end_party) else {
            return segments;
        };
        if self.rounds[slot].is_empty() {
            return segments;
        }
        let mut pos = self.rounds[slot].len() - 1;
        {
            let last = self.rounds[slot][pos];
            push(end_party, &last.phase, "compute", last.t_recv, total, None);
        }
        loop {
            let r = self.rounds[slot][pos];
            let party = r.party;
            let binding = incoming
                .get(&(party, r.index))
                .and_then(|es| es.iter().max_by_key(|e| (e.send_time, e.from)).copied())
                .filter(|e| e.send_time > r.t_send);
            match binding {
                Some(e) => {
                    push(party, &r.phase, "hop", e.send_time, r.t_recv, Some(e.from));
                    let Some(s) = slot_of(e.from) else { break };
                    let Some(p) = pos_of(s, e.send_round) else {
                        break;
                    };
                    slot = s;
                    pos = p;
                    let r2 = self.rounds[slot][pos];
                    if pos == 0 {
                        push(
                            r2.party,
                            &r2.phase,
                            "compute",
                            Duration::ZERO,
                            r2.t_send,
                            None,
                        );
                        break;
                    }
                    let prev = self.rounds[slot][pos - 1];
                    push(r2.party, &r2.phase, "compute", prev.t_recv, r2.t_send, None);
                    pos -= 1;
                }
                None => {
                    push(party, &r.phase, "hop", r.t_send, r.t_recv, None);
                    if pos == 0 {
                        push(party, &r.phase, "compute", Duration::ZERO, r.t_send, None);
                        break;
                    }
                    let prev = self.rounds[slot][pos - 1];
                    push(party, &r.phase, "compute", prev.t_recv, r.t_send, None);
                    pos -= 1;
                }
            }
        }
        segments.reverse();
        segments
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{MsgStamp, PartyRecorder};

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    /// Two parties exchanging one message each for `rounds` rounds,
    /// recorded the way the engines record: causal context first, then the
    /// round, then one flush per phase.
    fn two_party_trace(rounds: u64) -> Trace {
        let latency = ms(100);
        let parties = (0..2usize)
            .map(|me| {
                let peer = 1 - me;
                let mut rec = PartyRecorder::new(me, latency);
                rec.set_phase("compute");
                let mut lamport = 0u64;
                for k in 0..rounds {
                    let send = lamport + 1;
                    let recv = send + 1; // peer's stamp is `send` too; max+1
                    rec.record_causal_round(
                        ms(k),
                        ms(k),
                        send,
                        recv,
                        vec![MsgStamp {
                            peer,
                            link_seq: k,
                            lamport: send,
                            round: k,
                        }],
                        vec![MsgStamp {
                            peer,
                            link_seq: k,
                            lamport: send,
                            round: k,
                        }],
                    );
                    rec.record_round(1, 8);
                    lamport = recv;
                }
                rec.flush_phase(ms(rounds));
                rec.finish()
            })
            .collect();
        Trace::from_parties(latency, parties)
    }

    #[test]
    fn dag_matches_every_send_to_one_recv() {
        let trace = two_party_trace(3);
        let dag = MessageDag::build(&trace);
        assert_eq!(dag.node_count(), 6);
        assert_eq!(dag.edges().len(), 6);
        assert!(dag.fully_matched());
        assert_eq!(dag.unmatched_sends(), 0);
        assert_eq!(dag.unmatched_recvs(), 0);
        assert_eq!(dag.lamport_violations(), 0);
        // Edges are sorted by (from, to, link_seq).
        let keys: Vec<_> = dag
            .edges()
            .iter()
            .map(|e| (e.from, e.to, e.link_seq))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn missing_recv_is_reported_not_matched() {
        let latency = ms(10);
        let mut a = PartyRecorder::new(0, latency);
        a.record_causal_round(
            ms(0),
            ms(0),
            1,
            2,
            vec![MsgStamp {
                peer: 1,
                link_seq: 0,
                lamport: 1,
                round: 0,
            }],
            vec![],
        );
        a.record_round(1, 8);
        a.flush_phase(ms(1));
        let mut b = PartyRecorder::new(1, latency);
        b.record_round(0, 0);
        b.flush_phase(ms(1));
        let trace = Trace::from_parties(latency, vec![a.finish(), b.finish()]);
        let dag = MessageDag::build(&trace);
        assert!(!dag.fully_matched());
        assert_eq!(dag.unmatched_sends(), 1);
        assert_eq!(dag.unmatched_recvs(), 0);
        assert!(dag.edges().is_empty());
    }

    #[test]
    fn critical_path_total_matches_summary_exactly() {
        let trace = two_party_trace(4);
        let dag = MessageDag::build(&trace);
        let cp = dag.critical_path();
        assert_eq!(cp.total, trace.summary().total_simulated());
        assert_eq!(cp.parties.len(), 2);
        for p in &cp.parties {
            assert_eq!(p.rounds, 4);
            assert_eq!(p.total, p.idle + p.compute);
        }
        // The walked path is contiguous in time and ends at the total.
        assert!(!cp.segments.is_empty());
        assert_eq!(cp.segments.last().unwrap().end, cp.total);
        for w in cp.segments.windows(2) {
            assert!(w[0].end <= w[1].start || w[0].party != w[1].party);
        }
    }

    #[test]
    fn empty_causal_data_yields_exact_total_and_no_segments() {
        let latency = ms(100);
        let mut r = PartyRecorder::new(0, latency);
        r.set_phase("x");
        r.record_round(2, 16);
        r.flush_phase(ms(5));
        let trace = Trace::from_parties(latency, vec![r.finish()]);
        let dag = MessageDag::build(&trace);
        let cp = dag.critical_path();
        assert_eq!(cp.total, trace.summary().total_simulated());
        assert!(cp.segments.is_empty());
        assert_eq!(cp.parties[0].idle, Duration::ZERO);
    }

    #[test]
    fn lamport_violations_detected() {
        let latency = ms(10);
        let mut a = PartyRecorder::new(0, latency);
        // Broken stamping: recv clock not past the send clock.
        a.record_causal_round(ms(0), ms(0), 5, 5, vec![], vec![]);
        a.record_round(0, 0);
        a.flush_phase(ms(1));
        let trace = Trace::from_parties(latency, vec![a.finish()]);
        let dag = MessageDag::build(&trace);
        assert_eq!(dag.lamport_violations(), 1);
    }

    /// Simulate a fault-free synchronous-round run the way the engines
    /// stamp it: per global round every party picks `lamport + 1` as its
    /// send clock, delivery is exact, and each receiver merges to
    /// `max(send, received...) + 1`. The message pattern, per-party wall
    /// times, and latency all come from proptest.
    fn simulate(n: usize, latency: Duration, pattern: &[Vec<bool>], walls_ms: &[u64]) -> Trace {
        let mut recs: Vec<PartyRecorder> = (0..n).map(|p| PartyRecorder::new(p, latency)).collect();
        let mut lamport = vec![0u64; n];
        let mut link_seq = vec![vec![0u64; n]; n];
        for (k, round) in pattern.iter().enumerate() {
            // Who sends to whom this round: `round[me * n + peer]`.
            let mut sends: Vec<Vec<MsgStamp>> = vec![Vec::new(); n];
            let mut recvs: Vec<Vec<MsgStamp>> = vec![Vec::new(); n];
            let send_clock: Vec<u64> = lamport.iter().map(|l| l + 1).collect();
            for me in 0..n {
                for peer in 0..n {
                    if peer == me || !round[me * n + peer] {
                        continue;
                    }
                    let stamp = MsgStamp {
                        peer,
                        link_seq: link_seq[me][peer],
                        lamport: send_clock[me],
                        round: k as u64,
                    };
                    link_seq[me][peer] += 1;
                    sends[me].push(stamp);
                    recvs[peer].push(MsgStamp { peer: me, ..stamp });
                }
            }
            for me in 0..n {
                let max_recv = recvs[me].iter().map(|s| s.lamport).max().unwrap_or(0);
                let merged = send_clock[me].max(max_recv) + 1;
                let wall = ms(walls_ms[(k * n + me) % walls_ms.len()]);
                let n_sent = sends[me].len() as u64;
                recs[me].record_causal_round(
                    wall,
                    wall + ms(1),
                    send_clock[me],
                    merged,
                    std::mem::take(&mut sends[me]),
                    std::mem::take(&mut recvs[me]),
                );
                recs[me].record_round(n_sent, 8 * n_sent);
                lamport[me] = merged;
            }
        }
        let total_rounds = pattern.len() as u64;
        let parties = recs
            .into_iter()
            .map(|mut r| {
                r.flush_phase(ms(total_rounds * 2));
                r.finish()
            })
            .collect();
        Trace::from_parties(latency, parties)
    }

    proptest::proptest! {
        #[test]
        fn reconstruction_invariants_hold_on_faultfree_runs(
            n in 2usize..5,
            rounds in 1usize..6,
            latency_ms in 0u64..200,
            raw_pattern in proptest::collection::vec(proptest::prelude::any::<bool>(), 5 * 25),
            walls_ms in proptest::collection::vec(0u64..50, 8),
        ) {
            let pattern: Vec<Vec<bool>> = (0..rounds)
                .map(|k| (0..n * n).map(|i| raw_pattern[(k * n * n + i) % raw_pattern.len()]).collect())
                .collect();
            let trace = simulate(n, ms(latency_ms), &pattern, &walls_ms);
            let dag = MessageDag::build(&trace);
            // Every send has exactly one matching recv, and vice versa.
            let total_sends: usize = trace
                .parties
                .iter()
                .flat_map(|p| p.causal.iter().map(|c| c.sends.len()))
                .sum();
            proptest::prop_assert!(dag.fully_matched());
            proptest::prop_assert_eq!(dag.edges().len(), total_sends);
            proptest::prop_assert_eq!(dag.unmatched_sends(), 0);
            proptest::prop_assert_eq!(dag.unmatched_recvs(), 0);
            // Lamport clocks are monotone along every DAG edge (flow and
            // program order) — zero violations on a fault-free run.
            proptest::prop_assert_eq!(dag.lamport_violations(), 0);
            // Equal-round (SPMD) runs reproduce the summary total exactly.
            let cp = dag.critical_path();
            proptest::prop_assert_eq!(cp.total, trace.summary().total_simulated());
            for p in &cp.parties {
                proptest::prop_assert_eq!(p.total, p.idle + p.compute);
            }
        }
    }
}
