//! Trace exporters: JSONL event logs and Chrome trace-event JSON.
//!
//! Both exports put events on the **simulated** timeline (wall time plus
//! `latency` per round), matching what `RunStats` reports — so a Perfetto
//! view of a Table II run shows 0.1 s network gaps even though the run
//! finished in milliseconds of real time.
//!
//! * JSONL: one self-describing JSON object per line (`"type"` is
//!   `"meta"`, `"span"`, `"round"` or `"net"`), easy to `jq`/stream.
//! * Chrome trace: the [trace-event format] with complete (`"X"`) events,
//!   one track per party (`pid` 0, `tid` = party id), loadable in
//!   Perfetto or `chrome://tracing`.
//!
//! [trace-event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use std::io::{self, Write};
use std::time::Duration;

use serde::json;

use crate::trace::Trace;

fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

fn micros(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

/// Write a trace as JSONL: a `meta` line, then every span and round record.
pub fn write_jsonl<W: Write>(trace: &Trace, w: &mut W) -> io::Result<()> {
    let mut line = String::new();
    line.push_str("{\"type\":\"meta\",\"latency_s\":");
    json::write_f64(&mut line, secs(trace.latency));
    line.push_str(&format!(",\"parties\":{}}}", trace.parties.len()));
    writeln!(w, "{line}")?;

    for pt in &trace.parties {
        for s in &pt.spans {
            let mut line = String::new();
            line.push_str(&format!(
                "{{\"type\":\"span\",\"party\":{},\"phase\":",
                s.party
            ));
            json::write_str(&mut line, &s.phase);
            line.push_str(&format!(",\"seq\":{},\"start_s\":", s.seq));
            json::write_f64(&mut line, secs(s.start));
            line.push_str(",\"duration_s\":");
            json::write_f64(&mut line, secs(s.duration));
            line.push_str(",\"wall_s\":");
            json::write_f64(&mut line, secs(s.wall));
            line.push_str(&format!(
                ",\"rounds\":{},\"messages\":{},\"bytes\":{}}}",
                s.rounds, s.messages, s.bytes
            ));
            writeln!(w, "{line}")?;
        }
        for r in &pt.rounds {
            let mut line = String::new();
            line.push_str(&format!(
                "{{\"type\":\"round\",\"party\":{},\"phase\":",
                r.party
            ));
            json::write_str(&mut line, &r.phase);
            line.push_str(&format!(
                ",\"index\":{},\"messages\":{},\"bytes\":{}}}",
                r.index, r.messages, r.bytes
            ));
            writeln!(w, "{line}")?;
        }
        for e in &pt.net_events {
            let mut line = String::new();
            line.push_str(&format!(
                "{{\"type\":\"net\",\"party\":{},\"round\":{},\"peer\":{},\"kind\":",
                e.party, e.round, e.peer
            ));
            json::write_str(&mut line, &e.kind);
            line.push_str(",\"value\":");
            json::write_f64(&mut line, e.value);
            line.push('}');
            writeln!(w, "{line}")?;
        }
    }
    Ok(())
}

/// Render a trace in the Chrome trace-event JSON format (simulated-clock
/// microsecond timestamps; one thread track per party).
pub fn chrome_trace_json(trace: &Trace) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut push_event = |out: &mut String, event: String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&event);
    };

    push_event(
        &mut out,
        "{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\",\
         \"args\":{\"name\":\"sqm simulated run\"}}"
            .to_string(),
    );
    for pt in &trace.parties {
        push_event(
            &mut out,
            format!(
                "{{\"ph\":\"M\",\"pid\":0,\"tid\":{},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"party {}\"}}}}",
                pt.party, pt.party
            ),
        );
    }
    for pt in &trace.parties {
        for s in &pt.spans {
            let mut ev = String::from("{\"ph\":\"X\",\"pid\":0,\"tid\":");
            ev.push_str(&s.party.to_string());
            ev.push_str(",\"name\":");
            json::write_str(&mut ev, &s.phase);
            ev.push_str(",\"cat\":\"mpc\",\"ts\":");
            json::write_f64(&mut ev, micros(s.start));
            ev.push_str(",\"dur\":");
            json::write_f64(&mut ev, micros(s.duration));
            ev.push_str(&format!(
                ",\"args\":{{\"rounds\":{},\"messages\":{},\"bytes\":{},\"wall_us\":",
                s.rounds, s.messages, s.bytes
            ));
            json::write_f64(&mut ev, micros(s.wall));
            ev.push_str("}}");
            push_event(&mut out, ev);
        }
    }
    out.push_str("]}");
    out
}

/// Write [`chrome_trace_json`] to a writer.
pub fn write_chrome_trace<W: Write>(trace: &Trace, w: &mut W) -> io::Result<()> {
    w.write_all(chrome_trace_json(trace).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::PartyRecorder;

    fn sample_trace() -> Trace {
        let latency = Duration::from_millis(100);
        let parties = (0..2)
            .map(|id| {
                let mut r = PartyRecorder::new(id, latency);
                r.set_phase("input");
                r.record_round(1, 64);
                r.flush_phase(Duration::from_millis(2));
                r.set_phase("open");
                r.record_round(1, 16);
                r.flush_phase(Duration::from_millis(1));
                r.finish()
            })
            .collect();
        Trace::from_parties(latency, parties)
    }

    #[test]
    fn jsonl_lines_are_json_objects() {
        let mut buf = Vec::new();
        write_jsonl(&sample_trace(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // meta + 2 parties * (2 spans + 2 rounds).
        assert_eq!(lines.len(), 1 + 2 * 4);
        assert!(lines[0].contains("\"type\":\"meta\""));
        assert!(lines[0].contains("\"latency_s\":0.1"));
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert!(text.contains("\"phase\":\"input\""));
        assert!(text.contains("\"type\":\"round\""));
    }

    #[test]
    fn jsonl_includes_net_events() {
        let latency = Duration::from_millis(100);
        let mut r = PartyRecorder::new(0, latency);
        r.record_round(1, 8);
        r.record_net_event(crate::trace::NetEvent {
            party: 0,
            round: 0,
            peer: 1,
            kind: "retransmit".to_string(),
            value: 3.0,
        });
        r.flush_phase(Duration::from_millis(1));
        let trace = Trace::from_parties(latency, vec![r.finish()]);
        let mut buf = Vec::new();
        write_jsonl(&trace, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let net_line = text
            .lines()
            .find(|l| l.contains("\"type\":\"net\""))
            .expect("net event line");
        assert!(net_line.contains("\"kind\":\"retransmit\""), "{net_line}");
        assert!(net_line.contains("\"peer\":1"), "{net_line}");
        assert!(net_line.ends_with('}'), "{net_line}");
    }

    #[test]
    fn chrome_trace_shape() {
        let json = chrome_trace_json(&sample_trace());
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\":["));
        // Two thread-name metadata events + process name + 4 X events.
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 4);
        assert_eq!(json.matches("\"ph\":\"M\"").count(), 3);
        // Span 2 of party 0 starts at simulated 102 ms = 102000 us.
        assert!(json.contains("\"ts\":102000.0"), "{json}");
        // Durations are on the simulated clock (100 ms latency dominates).
        assert!(json.contains("\"dur\":102000.0"));
        // No trailing commas (the classic hand-rolled-JSON bug).
        assert!(!json.contains(",]") && !json.contains(",}"));
    }

    #[test]
    fn writer_variant_matches_string_variant() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_chrome_trace(&t, &mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), chrome_trace_json(&t));
    }
}
