//! Trace exporters: JSONL event logs and Chrome trace-event JSON.
//!
//! Both exports put events on the **simulated** timeline (wall time plus
//! `latency` per round), matching what `RunStats` reports — so a Perfetto
//! view of a Table II run shows 0.1 s network gaps even though the run
//! finished in milliseconds of real time.
//!
//! * JSONL: one self-describing JSON object per line (`"type"` is
//!   `"meta"`, `"span"`, `"round"`, `"net"` or `"causal"`), easy to
//!   `jq`/stream.
//! * Chrome trace: the [trace-event format] with complete (`"X"`) events,
//!   one track per party (`pid` 0, `tid` = party id), loadable in
//!   Perfetto or `chrome://tracing`. When the trace carries causal stamps
//!   (see [`crate::causal`]), every matched send→recv message becomes a
//!   flow-event pair (`"ph":"s"` on the sender track, `"ph":"f"` with
//!   `"bp":"e"` on the receiver track, shared `"id"`), rendered as arrows
//!   between party tracks.
//!
//! [trace-event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use serde::json;

use crate::causal::MessageDag;
use crate::ledger::LedgerReport;
use crate::metrics::MetricsSnapshot;
use crate::trace::Trace;

/// Write `contents` to `path` atomically: the bytes land in a sibling
/// temporary file first and are renamed into place only once fully written,
/// so a reader (or a later run) never observes a truncated artifact — an
/// interrupted writer leaves at worst a stale previous version plus an
/// orphaned `*.tmp.*` sibling, never a half-written file under the real
/// name. Parent directories are created as needed. The temporary name
/// carries the pid and a process-wide counter so concurrent writers (test
/// processes, parallel threads) cannot collide on it.
pub fn atomic_write(path: impl AsRef<Path>, contents: &[u8]) -> io::Result<()> {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let path = path.as_ref();
    if let Some(dir) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir)?;
    }
    let mut tmp_name = path.as_os_str().to_owned();
    tmp_name.push(format!(
        ".tmp.{}.{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let tmp = PathBuf::from(tmp_name);
    let result = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(contents)?;
        f.flush()?;
        drop(f);
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// [`atomic_write`] for string artifacts (JSON, JSONL, HTML, CSV).
pub fn atomic_write_str(path: impl AsRef<Path>, contents: &str) -> io::Result<()> {
    atomic_write(path, contents.as_bytes())
}

fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

fn micros(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

/// Write a trace as JSONL: a `meta` line, then every span and round record.
pub fn write_jsonl<W: Write>(trace: &Trace, w: &mut W) -> io::Result<()> {
    let mut line = String::new();
    line.push_str("{\"type\":\"meta\",\"latency_s\":");
    json::write_f64(&mut line, secs(trace.latency));
    line.push_str(&format!(
        ",\"parties\":{},\"dropped_events\":{}}}",
        trace.parties.len(),
        trace.dropped_events()
    ));
    writeln!(w, "{line}")?;

    for pt in &trace.parties {
        for s in &pt.spans {
            let mut line = String::new();
            line.push_str(&format!(
                "{{\"type\":\"span\",\"party\":{},\"phase\":",
                s.party
            ));
            json::write_str(&mut line, &s.phase);
            line.push_str(&format!(",\"seq\":{},\"start_s\":", s.seq));
            json::write_f64(&mut line, secs(s.start));
            line.push_str(",\"duration_s\":");
            json::write_f64(&mut line, secs(s.duration));
            line.push_str(",\"wall_s\":");
            json::write_f64(&mut line, secs(s.wall));
            line.push_str(&format!(
                ",\"rounds\":{},\"messages\":{},\"bytes\":{}}}",
                s.rounds, s.messages, s.bytes
            ));
            writeln!(w, "{line}")?;
        }
        for r in &pt.rounds {
            let mut line = String::new();
            line.push_str(&format!(
                "{{\"type\":\"round\",\"party\":{},\"phase\":",
                r.party
            ));
            json::write_str(&mut line, &r.phase);
            line.push_str(&format!(
                ",\"index\":{},\"messages\":{},\"bytes\":{}}}",
                r.index, r.messages, r.bytes
            ));
            writeln!(w, "{line}")?;
        }
        for e in &pt.net_events {
            let mut line = String::new();
            line.push_str(&format!(
                "{{\"type\":\"net\",\"party\":{},\"round\":{},\"peer\":{},\"kind\":",
                e.party, e.round, e.peer
            ));
            json::write_str(&mut line, &e.kind);
            line.push_str(",\"value\":");
            json::write_f64(&mut line, e.value);
            line.push('}');
            writeln!(w, "{line}")?;
        }
        for c in &pt.causal {
            let mut line = String::new();
            line.push_str(&format!(
                "{{\"type\":\"causal\",\"party\":{},\"phase\":",
                c.party
            ));
            json::write_str(&mut line, &c.phase);
            line.push_str(&format!(",\"index\":{},\"t_send_s\":", c.index));
            json::write_f64(&mut line, secs(c.t_send));
            line.push_str(",\"t_recv_s\":");
            json::write_f64(&mut line, secs(c.t_recv));
            line.push_str(&format!(
                ",\"lamport_send\":{},\"lamport_recv\":{},\"sends\":{},\"recvs\":{}}}",
                c.lamport_send,
                c.lamport_recv,
                c.sends.len(),
                c.recvs.len()
            ));
            writeln!(w, "{line}")?;
        }
    }
    Ok(())
}

/// Write a privacy-ledger report as JSONL: one self-describing object per
/// line — a `"ledger_meta"` header carrying the deployment parameters and
/// composed totals, then one `"release"` line per recorded entry, in
/// release order.
///
/// This is the machine-readable export of the privacy account (the HTML
/// report renders the same data for humans); its schema is pinned by a
/// golden-file test, so field additions are deliberate, reviewed events.
pub fn write_ledger_jsonl<W: Write>(report: &LedgerReport, w: &mut W) -> io::Result<()> {
    use serde::Serialize as _;
    let mut line = String::from("{\"type\":\"ledger_meta\",\"n_clients\":");
    line.push_str(&report.n_clients.to_string());
    line.push_str(",\"delta\":");
    json::write_f64(&mut line, report.delta);
    line.push_str(&format!(",\"releases\":{}", report.releases));
    line.push_str(",\"server_epsilon_total\":");
    json::write_f64(&mut line, report.server_epsilon_total);
    line.push_str(",\"client_epsilon_total\":");
    json::write_f64(&mut line, report.client_epsilon_total);
    line.push('}');
    writeln!(w, "{line}")?;
    for entry in &report.entries {
        // The derived serializer emits fields in declaration order; splice
        // the discriminator in front so each line is self-describing.
        let body = entry.to_json();
        writeln!(w, "{{\"type\":\"release\",{}", &body[1..])?;
    }
    Ok(())
}

/// Render a trace in the Chrome trace-event JSON format (simulated-clock
/// microsecond timestamps; one thread track per party).
pub fn chrome_trace_json(trace: &Trace) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut push_event = |out: &mut String, event: String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&event);
    };

    push_event(
        &mut out,
        "{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\",\
         \"args\":{\"name\":\"sqm simulated run\"}}"
            .to_string(),
    );
    for pt in &trace.parties {
        push_event(
            &mut out,
            format!(
                "{{\"ph\":\"M\",\"pid\":0,\"tid\":{},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"party {}\"}}}}",
                pt.party, pt.party
            ),
        );
    }
    for pt in &trace.parties {
        for s in &pt.spans {
            let mut ev = String::from("{\"ph\":\"X\",\"pid\":0,\"tid\":");
            ev.push_str(&s.party.to_string());
            ev.push_str(",\"name\":");
            json::write_str(&mut ev, &s.phase);
            ev.push_str(",\"cat\":\"mpc\",\"ts\":");
            json::write_f64(&mut ev, micros(s.start));
            ev.push_str(",\"dur\":");
            json::write_f64(&mut ev, micros(s.duration));
            ev.push_str(&format!(
                ",\"args\":{{\"rounds\":{},\"messages\":{},\"bytes\":{},\"wall_us\":",
                s.rounds, s.messages, s.bytes
            ));
            json::write_f64(&mut ev, micros(s.wall));
            ev.push_str("}}");
            push_event(&mut out, ev);
        }
    }
    // Flow arrows: one `s`/`f` pair per matched send→recv edge. The shared
    // `id` is the edge's index in the DAG's deterministic (from, to,
    // link_seq) ordering, so identical runs produce identical flow ids.
    let dag = MessageDag::build(trace);
    for (id, e) in dag.edges().iter().enumerate() {
        let mut ev = format!(
            "{{\"ph\":\"s\",\"pid\":0,\"tid\":{},\"name\":\"msg\",\
             \"cat\":\"flow\",\"id\":{id},\"ts\":",
            e.from
        );
        json::write_f64(&mut ev, micros(e.send_time));
        ev.push('}');
        push_event(&mut out, ev);
        let mut ev = format!(
            "{{\"ph\":\"f\",\"bp\":\"e\",\"pid\":0,\"tid\":{},\"name\":\"msg\",\
             \"cat\":\"flow\",\"id\":{id},\"ts\":",
            e.to
        );
        json::write_f64(&mut ev, micros(e.recv_time));
        ev.push('}');
        push_event(&mut out, ev);
    }
    out.push_str("]}");
    out
}

/// Write [`chrome_trace_json`] to a writer.
pub fn write_chrome_trace<W: Write>(trace: &Trace, w: &mut W) -> io::Result<()> {
    w.write_all(chrome_trace_json(trace).as_bytes())
}

// ---------------------------------------------------------------------------
// Self-contained HTML report
// ---------------------------------------------------------------------------

fn html_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
    out
}

/// Stable phase → color assignment (FNV-1a hash into a hue), so the same
/// phase gets the same color across reports and report regenerations.
pub(crate) fn phase_color(phase: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in phase.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    format!("hsl({},62%,52%)", h % 360)
}

fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.1} µs", s * 1e6)
    }
}

fn fmt_bytes(b: u64) -> String {
    if b >= 1024 * 1024 {
        format!("{:.2} MiB", b as f64 / (1024.0 * 1024.0))
    } else if b >= 1024 {
        format!("{:.1} KiB", b as f64 / 1024.0)
    } else {
        format!("{b} B")
    }
}

/// Render a run as a single self-contained HTML page: a per-party phase
/// waterfall on the simulated clock (inline SVG), the per-phase summary
/// table, a per-party message/byte table, and — when provided — the
/// privacy-ledger and metrics-registry summaries. No external scripts,
/// stylesheets, fonts, or network access of any kind: the file renders
/// offline in any browser.
pub fn html_report(
    title: &str,
    trace: &Trace,
    ledger: Option<&LedgerReport>,
    metrics: Option<&MetricsSnapshot>,
) -> String {
    html_report_with_slo(title, trace, ledger, metrics, None)
}

/// [`html_report`] plus an optional "Serving SLO" section: the serving
/// layer's time-bucketed request history ring (requests, releases,
/// refusals, failures, mean/max latency per bucket) and slow-request
/// recorder totals, from `crate::span::SpanCollector::snapshot`.
pub fn html_report_with_slo(
    title: &str,
    trace: &Trace,
    ledger: Option<&LedgerReport>,
    metrics: Option<&MetricsSnapshot>,
    slo: Option<&crate::span::SloSnapshot>,
) -> String {
    html_report_full(title, trace, ledger, metrics, slo, None)
}

/// [`html_report_with_slo`] plus an optional "Cost profile" section: the
/// deterministic flamegraph and batching-opportunity summary from an
/// [`crate::prof::ProfSnapshot`].
pub fn html_report_full(
    title: &str,
    trace: &Trace,
    ledger: Option<&LedgerReport>,
    metrics: Option<&MetricsSnapshot>,
    slo: Option<&crate::span::SloSnapshot>,
    prof: Option<&crate::prof::ProfSnapshot>,
) -> String {
    let summary = trace.summary();
    let mut out = String::with_capacity(16 * 1024);
    out.push_str("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n<title>");
    out.push_str(&html_escape(title));
    out.push_str("</title>\n<style>\n");
    out.push_str(
        "body{font-family:system-ui,sans-serif;margin:2em auto;max-width:64em;color:#1a1a2e}\n\
         h1{font-size:1.4em}h2{font-size:1.1em;margin-top:2em;border-bottom:1px solid #ccd}\n\
         table{border-collapse:collapse;margin:0.8em 0}\n\
         th,td{border:1px solid #ccd;padding:0.25em 0.7em;text-align:right;font-variant-numeric:tabular-nums}\n\
         th{background:#eef;font-weight:600}td.l,th.l{text-align:left}\n\
         .chip{display:inline-block;width:0.8em;height:0.8em;border-radius:2px;margin-right:0.4em;vertical-align:-0.05em}\n\
         .warn{background:#fff3cd;border:1px solid #e0c96a;padding:0.5em 0.8em;border-radius:4px}\n\
         .meta{color:#556}\n",
    );
    out.push_str("</style></head><body>\n<h1>");
    out.push_str(&html_escape(title));
    out.push_str("</h1>\n<p class=\"meta\">");
    out.push_str(&format!(
        "{} parties · {} per hop · total simulated {} · {} messages · {}",
        trace.parties.len(),
        fmt_duration(trace.latency),
        fmt_duration(summary.total.simulated),
        summary.total.messages,
        fmt_bytes(summary.total.bytes),
    ));
    out.push_str("</p>\n");
    if trace.dropped_events() > 0 {
        out.push_str(&format!(
            "<p class=\"warn\">{} detail event(s) were dropped under the trace event cap; \
             the waterfall below is truncated, but every table is computed from exact \
             per-phase totals.</p>\n",
            trace.dropped_events()
        ));
    }

    // --- phase waterfall (SVG) ---------------------------------------
    out.push_str("<h2>Phase waterfall (simulated clock)</h2>\n");
    let horizon = trace
        .parties
        .iter()
        .flat_map(|p| p.spans.iter().map(|s| s.start + s.duration))
        .max()
        .unwrap_or_default()
        .as_secs_f64()
        .max(1e-9);
    const W: f64 = 880.0;
    const ROW: f64 = 26.0;
    const LEFT: f64 = 70.0;
    let height = ROW * trace.parties.len() as f64 + 24.0;
    out.push_str(&format!(
        "<svg width=\"{}\" height=\"{height}\" role=\"img\">\n",
        W + LEFT + 10.0
    ));
    for (row, pt) in trace.parties.iter().enumerate() {
        let y = row as f64 * ROW + 4.0;
        out.push_str(&format!(
            "<text x=\"0\" y=\"{:.1}\" font-size=\"12\">party {}</text>\n",
            y + 14.0,
            pt.party
        ));
        for s in &pt.spans {
            let x = LEFT + W * s.start.as_secs_f64() / horizon;
            let w = (W * s.duration.as_secs_f64() / horizon).max(0.5);
            out.push_str(&format!(
                "<rect x=\"{x:.2}\" y=\"{y:.1}\" width=\"{w:.2}\" height=\"{:.1}\" fill=\"{}\">\
                 <title>{}: {} (wall {}, {} rounds, {} msgs, {})</title></rect>\n",
                ROW - 6.0,
                phase_color(&s.phase),
                html_escape(&s.phase),
                fmt_duration(s.duration),
                fmt_duration(s.wall),
                s.rounds,
                s.messages,
                fmt_bytes(s.bytes),
            ));
        }
    }
    // Time axis.
    let axis_y = ROW * trace.parties.len() as f64 + 8.0;
    out.push_str(&format!(
        "<line x1=\"{LEFT}\" y1=\"{axis_y:.1}\" x2=\"{:.1}\" y2=\"{axis_y:.1}\" stroke=\"#889\"/>\n\
         <text x=\"{LEFT}\" y=\"{:.1}\" font-size=\"11\">0</text>\n\
         <text x=\"{:.1}\" y=\"{:.1}\" font-size=\"11\" text-anchor=\"end\">{}</text>\n",
        LEFT + W,
        axis_y + 12.0,
        LEFT + W,
        axis_y + 12.0,
        fmt_duration(Duration::from_secs_f64(horizon)),
    ));
    out.push_str("</svg>\n<p>");
    for row in &summary.phases {
        out.push_str(&format!(
            "<span class=\"chip\" style=\"background:{}\"></span>{}&nbsp;&nbsp;",
            phase_color(&row.name),
            html_escape(&row.name)
        ));
    }
    out.push_str("</p>\n");

    // --- per-phase summary table -------------------------------------
    out.push_str(
        "<h2>Per-phase summary</h2>\n<table>\n<tr><th class=\"l\">phase</th><th>rounds</th>\
         <th>messages</th><th>bytes</th><th>wall</th><th>simulated</th></tr>\n",
    );
    for row in summary.phases.iter().chain(std::iter::once(&summary.total)) {
        out.push_str(&format!(
            "<tr><td class=\"l\">{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>\n",
            html_escape(&row.name),
            row.rounds,
            row.messages,
            fmt_bytes(row.bytes),
            fmt_duration(row.wall),
            fmt_duration(row.simulated),
        ));
    }
    out.push_str("</table>\n");

    // --- per-party table ----------------------------------------------
    out.push_str(
        "<h2>Per-party traffic</h2>\n<table>\n<tr><th class=\"l\">party</th><th>rounds</th>\
         <th>messages</th><th>bytes</th><th>wall</th><th>net events</th><th>dropped</th></tr>\n",
    );
    for pt in &trace.parties {
        let (mut rounds, mut messages, mut bytes) = (0u64, 0u64, 0u64);
        let mut wall = Duration::ZERO;
        for t in &pt.phase_totals {
            rounds += t.rounds;
            messages += t.messages;
            bytes += t.bytes;
            wall += t.wall;
        }
        out.push_str(&format!(
            "<tr><td class=\"l\">party {}</td><td>{rounds}</td><td>{messages}</td>\
             <td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>\n",
            pt.party,
            fmt_bytes(bytes),
            fmt_duration(wall),
            pt.net_events.len(),
            pt.dropped_events,
        ));
    }
    out.push_str("</table>\n");

    // --- critical path (causal stamps required) -----------------------
    let has_causal = trace.parties.iter().any(|p| !p.causal.is_empty());
    if has_causal {
        let dag = MessageDag::build(trace);
        let cp = dag.critical_path();
        out.push_str("<h2>Critical path</h2>\n<p class=\"meta\">");
        out.push_str(&format!(
            "total {} · ends at party {} · {} cross-party hop(s) · \
             {} flow edge(s), {} unmatched send(s), {} Lamport violation(s)",
            fmt_duration(cp.total),
            cp.end_party,
            cp.cross_hops,
            dag.edges().len(),
            dag.unmatched_sends(),
            dag.lamport_violations(),
        ));
        out.push_str("</p>\n");
        out.push_str(
            "<table>\n<tr><th class=\"l\">party</th><th>total</th><th>compute</th>\
             <th>idle (waiting)</th><th>causal rounds</th><th>messages sent</th></tr>\n",
        );
        for p in &cp.parties {
            out.push_str(&format!(
                "<tr><td class=\"l\">party {}</td><td>{}</td><td>{}</td><td>{}</td>\
                 <td>{}</td><td>{}</td></tr>\n",
                p.party,
                fmt_duration(p.total),
                fmt_duration(p.compute),
                fmt_duration(p.idle),
                p.rounds,
                p.messages,
            ));
        }
        out.push_str("</table>\n");
        const MAX_SEGMENTS: usize = 32;
        out.push_str(
            "<table>\n<tr><th class=\"l\">segment</th><th class=\"l\">kind</th>\
             <th class=\"l\">phase</th><th>party</th><th>start</th><th>end</th>\
             <th>duration</th><th>from</th></tr>\n",
        );
        for (i, seg) in cp.segments.iter().take(MAX_SEGMENTS).enumerate() {
            out.push_str(&format!(
                "<tr><td class=\"l\">{i}</td><td class=\"l\">{}</td><td class=\"l\">{}</td>\
                 <td>{}</td><td>{}</td><td>{}</td><td>{}</td><td class=\"l\">{}</td></tr>\n",
                html_escape(&seg.kind),
                html_escape(&seg.phase),
                seg.party,
                fmt_duration(seg.start),
                fmt_duration(seg.end),
                fmt_duration(seg.end.saturating_sub(seg.start)),
                seg.from_party
                    .map_or_else(|| "—".to_string(), |p| format!("party {p}")),
            ));
        }
        out.push_str("</table>\n");
        if cp.segments.len() > MAX_SEGMENTS {
            out.push_str(&format!(
                "<p class=\"meta\">… {} further segment(s) omitted; the full walk is in \
                 the Chrome trace's flow arrows.</p>\n",
                cp.segments.len() - MAX_SEGMENTS
            ));
        }
    }

    // --- privacy ledger -----------------------------------------------
    if let Some(report) = ledger {
        out.push_str(&format!(
            "<h2>Privacy ledger</h2>\n<p class=\"meta\">{} release(s), P = {}, δ = {:.1e} — \
             composed ε: server {:.4}, client {:.4}</p>\n",
            report.releases,
            report.n_clients,
            report.delta,
            report.server_epsilon_total,
            report.client_epsilon_total,
        ));
        out.push_str(
            "<table>\n<tr><th class=\"l\">kind</th><th>dims</th><th>γ</th><th>μ</th>\
             <th>Δ₂</th><th>ε (server)</th><th>ε (client)</th></tr>\n",
        );
        for e in &report.entries {
            out.push_str(&format!(
                "<tr><td class=\"l\">{}</td><td>{}</td><td>{:.1}</td><td>{:.3e}</td>\
                 <td>{:.3e}</td><td>{:.4}</td><td>{:.4}</td></tr>\n",
                html_escape(&e.kind),
                e.dims,
                e.gamma,
                e.mu,
                e.sensitivity_l2,
                e.server_epsilon,
                e.client_epsilon,
            ));
        }
        out.push_str("</table>\n");
    }

    // --- metrics snapshot ----------------------------------------------
    if let Some(snap) = metrics {
        if !snap.counters.is_empty() {
            out.push_str(
                "<h2>Counters</h2>\n<table>\n<tr><th class=\"l\">counter</th><th>value</th></tr>\n",
            );
            for (name, v) in &snap.counters {
                out.push_str(&format!(
                    "<tr><td class=\"l\">{}</td><td>{v}</td></tr>\n",
                    html_escape(name)
                ));
            }
            out.push_str("</table>\n");
        }
        if !snap.histograms.is_empty() {
            out.push_str(
                "<h2>Histograms</h2>\n<table>\n<tr><th class=\"l\">histogram</th><th>count</th>\
                 <th>mean</th><th>p50</th><th>p95</th><th>p99</th><th>max</th></tr>\n",
            );
            for (name, h) in &snap.histograms {
                out.push_str(&format!(
                    "<tr><td class=\"l\">{}</td><td>{}</td><td>{:.1}</td><td>{:.1}</td>\
                     <td>{:.1}</td><td>{:.1}</td><td>{:.1}</td></tr>\n",
                    html_escape(name),
                    h.count,
                    h.mean,
                    h.p50,
                    h.p95,
                    h.p99,
                    h.max,
                ));
            }
            out.push_str("</table>\n");
        }
    }

    // --- serving SLO history -------------------------------------------
    if let Some(slo) = slo {
        out.push_str(&format!(
            "<h2>Serving SLO</h2>\n<p class=\"meta\">{} request(s) — {} release(s), \
             {} refusal(s), {} failure(s) · slow threshold {} · {} slow request(s) \
             retained{}</p>\n",
            slo.total_requests,
            slo.total_releases,
            slo.total_refusals,
            slo.total_failures,
            fmt_duration(Duration::from_nanos(slo.threshold_ns)),
            slo.slow_retained,
            if slo.slow_dropped > 0 {
                format!(" ({} dropped past the cap)", slo.slow_dropped)
            } else {
                String::new()
            },
        ));
        if !slo.buckets.is_empty() {
            out.push_str(&format!(
                "<table>\n<tr><th class=\"l\">bucket ({} wide)</th><th>requests</th>\
                 <th>releases</th><th>refusals</th><th>failures</th><th>mean</th>\
                 <th>max</th></tr>\n",
                fmt_duration(slo.bucket_width),
            ));
            let origin = slo.buckets[0].index;
            for b in &slo.buckets {
                let offset = slo.bucket_width * (b.index - origin) as u32;
                let mean = Duration::from_nanos(b.total_ns / b.requests.max(1));
                out.push_str(&format!(
                    "<tr><td class=\"l\">+{}</td><td>{}</td><td>{}</td><td>{}</td>\
                     <td>{}</td><td>{}</td><td>{}</td></tr>\n",
                    fmt_duration(offset),
                    b.requests,
                    b.releases,
                    b.refusals,
                    b.failures,
                    fmt_duration(mean),
                    fmt_duration(Duration::from_nanos(b.max_ns)),
                ));
            }
            out.push_str("</table>\n");
        }
    }

    // --- cost profile (flamegraph) -------------------------------------
    if let Some(prof) = prof {
        out.push_str(&flamegraph_section(prof));
    }

    out.push_str("</body></html>\n");
    out
}

/// The "Cost profile" report section: batching-opportunity summary plus
/// the self-contained SVG flamegraph. Deterministic for a given snapshot
/// (key-sorted layout, hash-stable colors, no wall time).
fn flamegraph_section(prof: &crate::prof::ProfSnapshot) -> String {
    let mut out = String::with_capacity(8 * 1024);
    out.push_str("<h2>Cost profile (flamegraph)</h2>\n<p class=\"meta\">");
    out.push_str(&format!(
        "{} attribution node(s), seed {}",
        prof.nodes.len(),
        prof.seed
    ));
    if let Some(b) = &prof.batching {
        out.push_str(&format!(
            " · batching opportunity: {} secure mul(s) over {} round(s) — \
             {} reduce-degree messages gate-at-a-time vs {} round-batched \
             (x{:.1} reduction, P = {})",
            b.n_mul_gates,
            b.mul_depth,
            b.messages_unbatched,
            b.messages_batched,
            b.reduction_factor(),
            b.n_parties,
        ));
    }
    out.push_str("</p>\n");
    if let Some(b) = &prof.batching {
        out.push_str(
            "<table>\n<tr><th>independent-mul width</th><th>rounds at this width</th></tr>\n",
        );
        for (width, count) in &b.width_histogram {
            out.push_str(&format!("<tr><td>{width}</td><td>{count}</td></tr>\n"));
        }
        out.push_str("</table>\n");
    }
    out.push_str(&crate::prof::render_flamegraph_svg(prof));
    out
}

/// Render a profile snapshot as a standalone self-contained HTML page
/// (the `prof_<seed>.html` artifact): no scripts, stylesheets, or network
/// references; byte-deterministic for a given snapshot.
pub fn flamegraph_html(title: &str, prof: &crate::prof::ProfSnapshot) -> String {
    let mut out = String::with_capacity(16 * 1024);
    out.push_str("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n<title>");
    out.push_str(&html_escape(title));
    out.push_str(
        "</title>\n<style>\nbody{font-family:system-ui,sans-serif;margin:2em auto;\
         max-width:64em;color:#1a1a2e}\nh1{font-size:1.4em}\
         h2{font-size:1.1em;margin-top:2em;border-bottom:1px solid #ccd}\n\
         table{border-collapse:collapse;margin:0.8em 0}\n\
         th,td{border:1px solid #ccd;padding:0.25em 0.7em;text-align:right;\
         font-variant-numeric:tabular-nums}\nth{background:#eef;font-weight:600}\n\
         .meta{color:#556}\n</style></head><body>\n<h1>",
    );
    out.push_str(&html_escape(title));
    out.push_str("</h1>\n");
    out.push_str(&flamegraph_section(prof));
    out.push_str("</body></html>\n");
    out
}

/// Write [`html_report`] to a writer.
pub fn write_html_report<W: Write>(
    title: &str,
    trace: &Trace,
    ledger: Option<&LedgerReport>,
    metrics: Option<&MetricsSnapshot>,
    w: &mut W,
) -> io::Result<()> {
    w.write_all(html_report(title, trace, ledger, metrics).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::PartyRecorder;

    fn sample_trace() -> Trace {
        let latency = Duration::from_millis(100);
        let parties = (0..2)
            .map(|id| {
                let mut r = PartyRecorder::new(id, latency);
                r.set_phase("input");
                r.record_round(1, 64);
                r.flush_phase(Duration::from_millis(2));
                r.set_phase("open");
                r.record_round(1, 16);
                r.flush_phase(Duration::from_millis(1));
                r.finish()
            })
            .collect();
        Trace::from_parties(latency, parties)
    }

    #[test]
    fn jsonl_lines_are_json_objects() {
        let mut buf = Vec::new();
        write_jsonl(&sample_trace(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // meta + 2 parties * (2 spans + 2 rounds).
        assert_eq!(lines.len(), 1 + 2 * 4);
        assert!(lines[0].contains("\"type\":\"meta\""));
        assert!(lines[0].contains("\"latency_s\":0.1"));
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert!(text.contains("\"phase\":\"input\""));
        assert!(text.contains("\"type\":\"round\""));
    }

    #[test]
    fn jsonl_includes_net_events() {
        let latency = Duration::from_millis(100);
        let mut r = PartyRecorder::new(0, latency);
        r.record_round(1, 8);
        r.record_net_event(crate::trace::NetEvent {
            party: 0,
            round: 0,
            peer: 1,
            kind: "retransmit".to_string(),
            value: 3.0,
        });
        r.flush_phase(Duration::from_millis(1));
        let trace = Trace::from_parties(latency, vec![r.finish()]);
        let mut buf = Vec::new();
        write_jsonl(&trace, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let net_line = text
            .lines()
            .find(|l| l.contains("\"type\":\"net\""))
            .expect("net event line");
        assert!(net_line.contains("\"kind\":\"retransmit\""), "{net_line}");
        assert!(net_line.contains("\"peer\":1"), "{net_line}");
        assert!(net_line.ends_with('}'), "{net_line}");
    }

    #[test]
    fn ledger_jsonl_is_one_object_per_line() {
        use crate::ledger::PrivacyLedger;
        let mut ledger = PrivacyLedger::new(3, 1e-5);
        ledger.record(
            "covariance",
            16,
            18.0,
            1e6,
            sqm_accounting::skellam::Sensitivity::from_l2_for_dim(330.0, 16),
        );
        ledger.record(
            "column_sums",
            4,
            32.0,
            1e4,
            sqm_accounting::skellam::Sensitivity::from_l2_for_dim(40.0, 4),
        );
        let mut buf = Vec::new();
        write_ledger_jsonl(&ledger.report(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "meta + 2 releases");
        assert!(lines[0].contains("\"type\":\"ledger_meta\""));
        assert!(lines[0].contains("\"n_clients\":3"));
        assert!(lines[1].contains("\"type\":\"release\""));
        assert!(lines[1].contains("\"kind\":\"covariance\""));
        assert!(lines[2].contains("\"index\":1"));
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
    }

    #[test]
    fn chrome_trace_shape() {
        let json = chrome_trace_json(&sample_trace());
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\":["));
        // Two thread-name metadata events + process name + 4 X events.
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 4);
        assert_eq!(json.matches("\"ph\":\"M\"").count(), 3);
        // Span 2 of party 0 starts at simulated 102 ms = 102000 us.
        assert!(json.contains("\"ts\":102000.0"), "{json}");
        // Durations are on the simulated clock (100 ms latency dominates).
        assert!(json.contains("\"dur\":102000.0"));
        // No trailing commas (the classic hand-rolled-JSON bug).
        assert!(!json.contains(",]") && !json.contains(",}"));
    }

    /// Two parties, two causally-stamped rounds each (the engines' recording
    /// order: causal context, then the round, then one flush per phase).
    fn causal_sample_trace() -> Trace {
        use crate::trace::MsgStamp;
        let latency = Duration::from_millis(100);
        let parties = (0..2usize)
            .map(|me| {
                let peer = 1 - me;
                let mut rec = PartyRecorder::new(me, latency);
                rec.set_phase("compute");
                let mut lamport = 0u64;
                for k in 0..2u64 {
                    let send = lamport + 1;
                    let recv = send + 1;
                    let stamp = MsgStamp {
                        peer,
                        link_seq: k,
                        lamport: send,
                        round: k,
                    };
                    rec.record_causal_round(
                        Duration::from_millis(k),
                        Duration::from_millis(k),
                        send,
                        recv,
                        vec![stamp],
                        vec![stamp],
                    );
                    rec.record_round(1, 8);
                    lamport = recv;
                }
                rec.flush_phase(Duration::from_millis(2));
                rec.finish()
            })
            .collect();
        Trace::from_parties(latency, parties)
    }

    #[test]
    fn chrome_trace_emits_one_flow_pair_per_message() {
        let json = chrome_trace_json(&causal_sample_trace());
        // 2 parties * 2 rounds = 4 matched messages → 4 s/f pairs.
        assert_eq!(json.matches("\"ph\":\"s\"").count(), 4);
        assert_eq!(json.matches("\"ph\":\"f\"").count(), 4);
        assert_eq!(json.matches("\"bp\":\"e\"").count(), 4);
        // Each flow id appears exactly twice: once on the sender track,
        // once on the receiver track.
        for id in 0..4 {
            assert_eq!(json.matches(&format!("\"id\":{id},")).count(), 2, "{id}");
        }
        assert!(!json.contains(",]") && !json.contains(",}"));
    }

    #[test]
    fn chrome_trace_has_no_flow_events_without_causal_stamps() {
        let json = chrome_trace_json(&sample_trace());
        assert_eq!(json.matches("\"ph\":\"s\"").count(), 0);
        assert_eq!(json.matches("\"ph\":\"f\"").count(), 0);
    }

    #[test]
    fn jsonl_includes_causal_lines() {
        let mut buf = Vec::new();
        write_jsonl(&causal_sample_trace(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let causal_lines: Vec<&str> = text
            .lines()
            .filter(|l| l.contains("\"type\":\"causal\""))
            .collect();
        assert_eq!(causal_lines.len(), 4);
        assert!(causal_lines[0].contains("\"lamport_send\":1"));
        assert!(causal_lines[0].ends_with('}'));
    }

    #[test]
    fn html_report_gains_critical_path_section_with_causal_stamps() {
        let html = html_report("causal run", &causal_sample_trace(), None, None);
        assert!(html.contains("Critical path"));
        assert!(html.contains("idle (waiting)"));
        // Still self-contained.
        assert!(!html.contains("<script") && !html.contains("<link"));
        // And absent without stamps.
        let plain = html_report("plain run", &sample_trace(), None, None);
        assert!(!plain.contains("Critical path"));
    }

    #[test]
    fn writer_variant_matches_string_variant() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_chrome_trace(&t, &mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), chrome_trace_json(&t));
    }

    #[test]
    fn html_report_is_self_contained_and_renders_all_sections() {
        let trace = sample_trace();
        let html = html_report("covariance run", &trace, None, None);
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("<svg") && html.contains("</svg>"));
        // Waterfall: one rect per span (2 parties * 2 spans).
        assert_eq!(html.matches("<rect").count(), 4);
        // Per-phase summary and per-party table are present.
        assert!(html.contains("Per-phase summary"));
        assert!(html.contains("Per-party traffic"));
        assert!(html.contains("party 0") && html.contains("party 1"));
        assert!(html.contains("input") && html.contains("open"));
        // Self-contained: no external fetches of any kind.
        assert!(!html.contains("http://") && !html.contains("https://"));
        assert!(!html.contains("<script") && !html.contains("<link"));
    }

    #[test]
    fn html_report_includes_ledger_and_metrics_when_given() {
        use crate::ledger::PrivacyLedger;
        let mut ledger = PrivacyLedger::new(4, 1e-5);
        ledger.record(
            "covariance",
            16,
            18.0,
            1e6,
            sqm_accounting::skellam::Sensitivity::from_l2_for_dim(330.0, 16),
        );
        let report = ledger.report();
        let mut snap = crate::metrics::MetricsSnapshot::default();
        snap.counters.insert("mpc.rounds".to_string(), 7);
        let html = html_report("with ledger", &sample_trace(), Some(&report), Some(&snap));
        assert!(html.contains("Privacy ledger"));
        assert!(html.contains("covariance"));
        assert!(html.contains("Counters"));
        assert!(html.contains("mpc.rounds"));
    }

    #[test]
    fn html_report_renders_serving_slo_section_when_given() {
        use crate::span::{SloBucket, SloSnapshot};
        let slo = SloSnapshot {
            buckets: vec![
                SloBucket {
                    index: 3,
                    requests: 10,
                    releases: 4,
                    refusals: 1,
                    failures: 0,
                    total_ns: 5_000_000,
                    max_ns: 900_000,
                },
                SloBucket {
                    index: 5,
                    requests: 2,
                    releases: 1,
                    refusals: 0,
                    failures: 1,
                    total_ns: 4_000_000,
                    max_ns: 3_000_000,
                },
            ],
            bucket_width: Duration::from_secs(1),
            total_requests: 12,
            total_releases: 5,
            total_refusals: 1,
            total_failures: 1,
            slow_retained: 3,
            slow_dropped: 0,
            threshold_ns: 1_000_000,
        };
        let html = html_report_with_slo("slo run", &sample_trace(), None, None, Some(&slo));
        assert!(html.contains("Serving SLO"));
        assert!(html.contains("12 request(s)"));
        assert!(html.contains("3 slow request(s) retained"));
        // Bucket offsets are relative to the first occupied bucket.
        assert!(html.contains("+0ns") || html.contains("+0.0"));
        // Plain html_report stays SLO-free.
        assert!(!html_report("plain", &sample_trace(), None, None).contains("Serving SLO"));
    }

    #[test]
    fn html_report_renders_cost_profile_section_when_given() {
        use crate::prof::{BatchingReport, NodeAgg, ProfSnapshot};
        let mut nodes = std::collections::BTreeMap::new();
        nodes.insert(
            "engine;compute;reduce_degree".to_string(),
            NodeAgg {
                calls: 1,
                work: 1830,
                ..NodeAgg::default()
            },
        );
        let snap = ProfSnapshot {
            seed: 5,
            dir: PathBuf::new(),
            nodes,
            batching: Some(BatchingReport::from_level_widths(vec![16], 4)),
        };
        let html = html_report_full("prof run", &sample_trace(), None, None, None, Some(&snap));
        assert!(html.contains("Cost profile (flamegraph)"));
        assert!(html.contains("x16.0 reduction"));
        assert!(!html.contains("<script") && !html.contains("http://"));
        let standalone = flamegraph_html("prof", &snap);
        assert!(standalone.starts_with("<!DOCTYPE html>"));
        assert!(standalone.contains("<svg"));
        assert!(!standalone.contains("<script") && !standalone.contains("http://"));
        // Plain reports stay profile-free.
        assert!(!html_report("plain", &sample_trace(), None, None).contains("Cost profile"));
    }

    #[test]
    fn atomic_write_creates_dirs_and_replaces_whole_files() {
        let dir = std::env::temp_dir().join(format!("sqm_atomic_write_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested/deep/artifact.jsonl");
        atomic_write_str(&path, "{\"a\":1}\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"a\":1}\n");
        // Overwrite is whole-file: a shorter second write leaves no tail of
        // the first behind.
        atomic_write_str(&path, "{}\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{}\n");
        // No temporary siblings survive a successful write.
        let leftovers: Vec<_> = std::fs::read_dir(path.parent().unwrap())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn html_escapes_hostile_phase_names() {
        let latency = Duration::from_millis(1);
        let mut r = PartyRecorder::new(0, latency);
        r.set_phase("<script>alert(1)</script>");
        r.record_round(1, 8);
        r.flush_phase(Duration::from_millis(1));
        let trace = Trace::from_parties(latency, vec![r.finish()]);
        let html = html_report("x & <y>", &trace, None, None);
        assert!(!html.contains("<script>alert"));
        assert!(html.contains("&lt;script&gt;"));
    }
}
