//! A minimal std-only HTTP/1.1 server shared by every in-process endpoint.
//!
//! Extracted from `obs::live` so the live-telemetry `/metrics` endpoint and
//! the `sqm-serve` request/response protocol share one listener, one parser
//! and one shutdown path instead of each growing a hand-rolled copy. The
//! scope is deliberately small: HTTP/1.1, `Connection: close`, GET and POST
//! with a `Content-Length` body, one request per connection, requests
//! handled serially on the accept thread. That is exactly what a
//! scrape-or-curl observability endpoint and a loopback serving protocol
//! need — it is not a general web server.
//!
//! Shutdown is graceful: [`HttpServer::shutdown`] stops accepting, lets the
//! request currently being handled drain, and joins the accept thread, so
//! no response is ever cut off mid-write.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Largest accepted request (request line + headers + body).
const MAX_REQUEST_BYTES: usize = 1 << 20;

/// One parsed request.
#[derive(Clone, Debug)]
pub struct HttpRequest {
    /// Upper-case method (`GET`, `POST`, ...).
    pub method: String,
    /// Request target as sent (path + optional query).
    pub path: String,
    /// Body bytes (empty unless a `Content-Length` was supplied).
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// Body decoded as UTF-8 (lossy).
    pub fn body_str(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// The response a handler produces.
#[derive(Clone, Debug)]
pub struct HttpResponse {
    pub status: u16,
    pub content_type: String,
    pub body: String,
}

impl HttpResponse {
    pub fn new(status: u16, content_type: &str, body: String) -> Self {
        HttpResponse {
            status,
            content_type: content_type.to_string(),
            body,
        }
    }

    /// `text/plain` response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Self::new(status, "text/plain", body.into())
    }

    /// `application/json` response (caller provides serialized JSON).
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Self::new(status, "application/json", body.into())
    }

    /// Prometheus text exposition format.
    pub fn prometheus(body: impl Into<String>) -> Self {
        Self::new(200, "text/plain; version=0.0.4; charset=utf-8", body.into())
    }

    pub fn not_found() -> Self {
        Self::text(404, "not found\n")
    }

    pub fn method_not_allowed() -> Self {
        Self::text(405, "method not allowed\n")
    }

    pub fn bad_request(detail: &str) -> Self {
        Self::text(400, format!("bad request: {detail}\n"))
    }
}

fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Status",
    }
}

/// Request handler: pure function from request to response. Handlers run on
/// the accept thread, one at a time, so they may mutate shared state behind
/// ordinary locks without re-entrancy concerns.
pub type Handler = dyn Fn(&HttpRequest) -> HttpResponse + Send + Sync;

/// A running listener. Dropping it shuts it down gracefully.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl HttpServer {
    /// Bind `addr` (use port 0 for an ephemeral port) and serve `handler`
    /// on a named background thread until [`HttpServer::shutdown`].
    pub fn bind(addr: &str, thread_name: &str, handler: Arc<Handler>) -> io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let bound = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_thread = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name(thread_name.to_string())
            .spawn(move || {
                while !stop_thread.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let _ = handle_connection(stream, handler.as_ref());
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(10));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(10)),
                    }
                }
            })?;
        Ok(HttpServer {
            addr: bound,
            stop,
            thread: Some(thread),
        })
    }

    /// The address the listener is bound to.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, drain the in-flight request (handling is serial on
    /// the accept thread, so joining it *is* the drain) and join. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Read one request (headers, then `Content-Length` body bytes), run the
/// handler, write the response. Any malformed framing gets a 400 rather
/// than a dropped connection so misbehaving clients see why.
fn handle_connection(mut stream: TcpStream, handler: &Handler) -> io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;

    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let header_end = loop {
        if let Some(pos) = find_header_end(&buf) {
            break Some(pos);
        }
        if buf.len() > MAX_REQUEST_BYTES {
            break None;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break None,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => break None,
        }
    };

    let response = match header_end {
        None => HttpResponse::bad_request("unterminated or oversized header"),
        Some(pos) => {
            let head = String::from_utf8_lossy(&buf[..pos]).into_owned();
            match parse_head(&head) {
                Err(detail) => HttpResponse::bad_request(detail),
                Ok((method, path, content_length)) => {
                    let body_start = pos + 4;
                    if content_length > MAX_REQUEST_BYTES {
                        HttpResponse::bad_request("body too large")
                    } else {
                        let mut body: Vec<u8> = buf[body_start.min(buf.len())..].to_vec();
                        while body.len() < content_length {
                            match stream.read(&mut chunk) {
                                Ok(0) => break,
                                Ok(n) => body.extend_from_slice(&chunk[..n]),
                                Err(_) => break,
                            }
                        }
                        if body.len() < content_length {
                            HttpResponse::bad_request("truncated body")
                        } else {
                            body.truncate(content_length);
                            handler(&HttpRequest { method, path, body })
                        }
                    }
                }
            }
        }
    };

    let reply = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        response.status,
        status_reason(response.status),
        response.content_type,
        response.body.len(),
        response.body
    );
    stream.write_all(reply.as_bytes())?;
    stream.flush()
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Parse the request line and the single header we honor (`Content-Length`).
fn parse_head(head: &str) -> Result<(String, String, usize), &'static str> {
    let mut lines = head.lines();
    let request_line = lines.next().ok_or("empty request")?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or("missing method")?.to_string();
    let path = parts.next().ok_or("missing path")?.to_string();
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| "unparseable content-length")?;
            }
        }
    }
    Ok((method, path, content_length))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fetch(addr: SocketAddr, request: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(request.as_bytes()).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    fn echo_server() -> HttpServer {
        HttpServer::bind(
            "127.0.0.1:0",
            "httpd-test",
            Arc::new(
                |req: &HttpRequest| match (req.method.as_str(), req.path.as_str()) {
                    ("GET", "/hello") => HttpResponse::text(200, "hi\n"),
                    ("POST", "/echo") => HttpResponse::json(200, req.body_str()),
                    ("GET", _) => HttpResponse::not_found(),
                    _ => HttpResponse::method_not_allowed(),
                },
            ),
        )
        .unwrap()
    }

    #[test]
    fn routes_get_post_404_and_405() {
        let mut server = echo_server();
        let addr = server.local_addr();
        let got = fetch(addr, "GET /hello HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(got.starts_with("HTTP/1.1 200 OK"), "{got}");
        assert!(got.ends_with("hi\n"), "{got}");

        let body = "{\"k\":1}";
        let got = fetch(
            addr,
            &format!(
                "POST /echo HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            ),
        );
        assert!(got.starts_with("HTTP/1.1 200 OK"), "{got}");
        assert!(got.contains("application/json"), "{got}");
        assert!(got.ends_with(body), "{got}");

        let got = fetch(addr, "GET /nope HTTP/1.1\r\n\r\n");
        assert!(got.starts_with("HTTP/1.1 404"), "{got}");

        let got = fetch(addr, "DELETE /hello HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
        assert!(got.starts_with("HTTP/1.1 405"), "{got}");
        server.shutdown();
    }

    #[test]
    fn body_split_across_reads_is_reassembled() {
        let mut server = echo_server();
        let addr = server.local_addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        let body = "x".repeat(5000);
        stream
            .write_all(
                format!(
                    "POST /echo HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                    body.len()
                )
                .as_bytes(),
            )
            .unwrap();
        stream.flush().unwrap();
        // Body arrives in a separate segment after a pause.
        std::thread::sleep(Duration::from_millis(50));
        stream.write_all(body.as_bytes()).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 200 OK"), "{out}");
        assert!(out.ends_with(&body));
        server.shutdown();
    }

    #[test]
    fn malformed_length_is_a_400_not_a_hang() {
        let mut server = echo_server();
        let got = fetch(
            server.local_addr(),
            "POST /echo HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
        );
        assert!(got.starts_with("HTTP/1.1 400"), "{got}");
        server.shutdown();
    }

    #[test]
    fn oversized_header_is_rejected_with_400_not_a_hang() {
        let mut server = echo_server();
        let addr = server.local_addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        // A request line that never terminates its headers and exceeds the
        // cap by exactly one byte, so the server consumes every byte before
        // replying (a close with unread bytes would RST the client).
        stream.write_all(b"GET /").unwrap();
        let filler = vec![b'a'; MAX_REQUEST_BYTES + 1 - 5];
        stream.write_all(&filler).unwrap();
        stream.flush().unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        assert!(
            out.starts_with("HTTP/1.1 400"),
            "{}",
            &out[..out.len().min(200)]
        );
        assert!(out.contains("oversized"), "{}", &out[..out.len().min(200)]);
        server.shutdown();
    }

    #[test]
    fn oversized_declared_body_is_rejected_with_400() {
        let mut server = echo_server();
        let got = fetch(
            server.local_addr(),
            &format!(
                "POST /echo HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                MAX_REQUEST_BYTES + 1
            ),
        );
        assert!(got.starts_with("HTTP/1.1 400"), "{got}");
        assert!(got.contains("body too large"), "{got}");
        server.shutdown();
    }

    #[test]
    fn drain_completes_inflight_responses_for_concurrent_clients() {
        use std::sync::atomic::AtomicUsize;

        let entered = Arc::new(AtomicUsize::new(0));
        let entered_h = Arc::clone(&entered);
        let body = "drain-payload ".repeat(4096);
        let body_h = body.clone();
        let mut server = HttpServer::bind(
            "127.0.0.1:0",
            "httpd-drain",
            Arc::new(move |req: &HttpRequest| {
                if req.path == "/slow" {
                    entered_h.fetch_add(1, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(100));
                    HttpResponse::text(200, body_h.clone())
                } else {
                    HttpResponse::not_found()
                }
            }),
        )
        .unwrap();
        let addr = server.local_addr();
        let clients: Vec<_> = (0..2)
            .map(|_| std::thread::spawn(move || fetch(addr, "GET /slow HTTP/1.1\r\n\r\n")))
            .collect();
        // Wait until the second request is inside its (slow) handler, then
        // initiate shutdown while it is still running: the drain must let
        // the in-flight response finish rather than cutting it off.
        while entered.load(Ordering::SeqCst) < 2 {
            std::thread::sleep(Duration::from_millis(5));
        }
        server.shutdown();
        for client in clients {
            let got = client.join().unwrap();
            assert!(
                got.starts_with("HTTP/1.1 200 OK"),
                "{}",
                &got[..got.len().min(200)]
            );
            assert!(got.ends_with(&body), "response truncated");
        }
    }

    #[test]
    fn shutdown_is_idempotent_and_port_is_released() {
        let mut server = echo_server();
        let addr = server.local_addr();
        server.shutdown();
        server.shutdown();
        // The port can be rebound after shutdown.
        let _rebound = TcpListener::bind(addr).unwrap();
    }
}
