//! Deterministic hierarchical cost profiler.
//!
//! `RunStats` says *how much* a run cost per phase; this module says
//! *where* inside a phase the cost lives: which circuit layers, gate
//! kinds, degree reductions, field-op bulks, and sampler draws. Paths are
//! `;`-separated frames (`engine;compute;reduce_degree;field_mul`), the
//! same collapsed-stack convention flamegraph tooling consumes, and every
//! aggregate is keyed in a `BTreeMap` so rendering is byte-deterministic.
//!
//! Two disciplines are load-bearing:
//!
//! * **Passive**: when profiling is off, every hook is a single relaxed
//!   atomic load ([`is_active`]). Hooks only *observe* — they never touch
//!   an engine RNG, mutate stats, or change message contents, so protocol
//!   bits and `RunStats` are identical profiling-on vs off.
//! * **Deterministic artifacts**: wall time is collected (for interactive
//!   attribution summaries) but never written to the folded, JSON, or
//!   flamegraph artifacts — those carry structure and deterministic
//!   counters only, so two same-seed runs dump byte-identical files
//!   (flight-recorder discipline).
//!
//! The batching-opportunity analyzer ([`BatchingReport`]) quantifies what
//! ROADMAP item 1 (width-parallel round batching) would buy: given the
//! per-mul-round independent-multiplication widths of a workload, it
//! predicts the message-count reduction from batching each round's
//! multiplications into one exchange (`n_mul × n(n-1)` messages down to
//! `depth × n(n-1)`).

use std::collections::BTreeMap;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use crate::export::atomic_write_str;

/// Configuration for the profiler, carried as `Option<ProfConfig>` on
/// `MpcConfig` / `VflConfig` (mirroring `LiveConfig`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProfConfig {
    /// Directory the deterministic artifacts (`prof_<seed>.json`,
    /// `prof_<seed>.folded`, `prof_<seed>.html`) are dumped into.
    pub dir: PathBuf,
}

impl Default for ProfConfig {
    fn default() -> Self {
        ProfConfig {
            dir: PathBuf::from("results"),
        }
    }
}

impl ProfConfig {
    pub fn with_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.dir = dir.into();
        self
    }
}

/// One profile tree node's aggregate counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NodeAgg {
    /// Times this path was recorded.
    pub calls: u64,
    /// Deterministic work units (elements, op counts, bytes — whatever the
    /// recording site attributes). This is the folded/flamegraph weight;
    /// nodes recorded with zero work weigh their call count instead.
    pub work: u64,
    /// Messages sent (exchange-round nodes only).
    pub messages: u64,
    /// Payload bytes sent (exchange-round nodes only).
    pub bytes: u64,
    /// Measured wall time. Kept in memory for attribution summaries,
    /// **never** written to the deterministic artifacts.
    pub wall_ns: u64,
}

impl NodeAgg {
    /// The deterministic weight used by the folded and flamegraph
    /// renderers.
    pub fn weight(&self) -> u64 {
        if self.work > 0 {
            self.work
        } else {
            self.calls
        }
    }
}

/// The batching-opportunity analysis: per-mul-round independent
/// multiplication widths and the message-count reduction round-batched
/// frames (ROADMAP item 1) would achieve.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchingReport {
    /// Parties in the mesh the prediction is computed for.
    pub n_parties: usize,
    /// Independent-mul width of each sequential mul round, in round order.
    pub level_widths: Vec<usize>,
    /// Histogram over `level_widths`: `(width, number of rounds with that
    /// width)`, ascending by width.
    pub width_histogram: Vec<(usize, usize)>,
    /// Total secure multiplications (`== level_widths.iter().sum()`).
    pub n_mul_gates: usize,
    /// Sequential mul rounds (`== level_widths.len()`).
    pub mul_depth: usize,
    /// Degree-reduction messages if every multiplication paid its own
    /// round: `n_mul_gates × n(n-1)`.
    pub messages_unbatched: u64,
    /// Degree-reduction messages with one batched frame per mul round:
    /// `mul_depth × n(n-1)`.
    pub messages_batched: u64,
}

impl BatchingReport {
    /// Build the report from the per-round width list.
    pub fn from_level_widths(level_widths: Vec<usize>, n_parties: usize) -> BatchingReport {
        let n_mul_gates: usize = level_widths.iter().sum();
        let mul_depth = level_widths.len();
        let mut hist: BTreeMap<usize, usize> = BTreeMap::new();
        for &w in &level_widths {
            *hist.entry(w).or_default() += 1;
        }
        let per_round = (n_parties * n_parties.saturating_sub(1)) as u64;
        BatchingReport {
            n_parties,
            width_histogram: hist.into_iter().collect(),
            n_mul_gates,
            mul_depth,
            messages_unbatched: n_mul_gates as u64 * per_round,
            messages_batched: mul_depth as u64 * per_round,
            level_widths,
        }
    }

    /// Predicted message-count reduction factor (`unbatched / batched`);
    /// 1.0 when there is nothing to batch.
    pub fn reduction_factor(&self) -> f64 {
        if self.messages_batched == 0 {
            1.0
        } else {
            self.messages_unbatched as f64 / self.messages_batched as f64
        }
    }
}

/// A point-in-time copy of the profile tree.
#[derive(Clone, Debug, Default)]
pub struct ProfSnapshot {
    /// Seed of the last installed run (names the artifact files).
    pub seed: u64,
    /// Artifact directory.
    pub dir: PathBuf,
    /// All recorded paths, key-sorted.
    pub nodes: BTreeMap<String, NodeAgg>,
    /// The batching-opportunity analysis, when a workload reported one.
    pub batching: Option<BatchingReport>,
}

struct ProfState {
    seed: u64,
    dir: PathBuf,
    nodes: BTreeMap<String, NodeAgg>,
    batching: Option<BatchingReport>,
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static STATE: Mutex<Option<ProfState>> = Mutex::new(None);

fn lock() -> MutexGuard<'static, Option<ProfState>> {
    // A panicking party thread mid-record must not disable profiling for
    // the rest of the process (same recovery as the metrics registry).
    STATE.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Is the profiler collecting? When `false` — the default — every hook in
/// the engines' hot paths is exactly this one relaxed atomic load.
pub fn is_active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Install (or re-target) the process-global profiler. Idempotent;
/// aggregates survive across engine runs so multi-run workloads profile
/// cumulatively. The seed and dir of the most recent install name the
/// dump artifacts.
pub fn install(config: &ProfConfig, seed: u64) {
    let mut guard = lock();
    match guard.as_mut() {
        Some(state) => {
            state.seed = seed;
            state.dir = config.dir.clone();
        }
        None => {
            *guard = Some(ProfState {
                seed,
                dir: config.dir.clone(),
                nodes: BTreeMap::new(),
                batching: None,
            });
        }
    }
    drop(guard);
    ACTIVE.store(true, Ordering::Relaxed);
}

/// Stop collecting (hooks return to the single-load fast path). The
/// aggregates stay readable via [`snapshot`] until [`reset`].
pub fn deactivate() {
    ACTIVE.store(false, Ordering::Relaxed);
}

/// Clear all aggregates and the batching report (dir/seed are kept).
pub fn reset() {
    if let Some(state) = lock().as_mut() {
        state.nodes.clear();
        state.batching = None;
    }
}

/// Record `calls` invocations carrying `work` deterministic work units
/// against `path`. No-op unless [`is_active`].
pub fn record(path: &str, calls: u64, work: u64) {
    if !is_active() {
        return;
    }
    if let Some(state) = lock().as_mut() {
        let node = state.nodes.entry(path.to_string()).or_default();
        node.calls += calls;
        node.work += work;
    }
}

/// Record one exchange round against `path`: traffic counters are
/// deterministic (and double as the node's weight); `wall_ns` is kept for
/// in-memory summaries only. No-op unless [`is_active`].
pub fn record_round(path: &str, messages: u64, bytes: u64, wall_ns: u64) {
    if !is_active() {
        return;
    }
    if let Some(state) = lock().as_mut() {
        let node = state.nodes.entry(path.to_string()).or_default();
        node.calls += 1;
        node.work += bytes;
        node.messages += messages;
        node.bytes += bytes;
        node.wall_ns += wall_ns;
    }
}

/// Attach the batching-opportunity analysis of the profiled workload.
/// Party threads report identical values; the last write wins. No-op
/// unless [`is_active`].
pub fn set_batching_report(report: BatchingReport) {
    if !is_active() {
        return;
    }
    if let Some(state) = lock().as_mut() {
        state.batching = Some(report);
    }
}

/// Copy out the current profile tree (readable even after
/// [`deactivate`]); `None` if the profiler was never installed.
pub fn snapshot() -> Option<ProfSnapshot> {
    lock().as_ref().map(|state| ProfSnapshot {
        seed: state.seed,
        dir: state.dir.clone(),
        nodes: state.nodes.clone(),
        batching: state.batching.clone(),
    })
}

/// Render the collapsed-stack folded format (`path weight` per line,
/// key-sorted — byte-deterministic for a given counter state; wall time
/// never appears).
pub fn render_folded(snap: &ProfSnapshot) -> String {
    let mut out = String::with_capacity(64 * snap.nodes.len());
    for (path, node) in &snap.nodes {
        out.push_str(path);
        out.push(' ');
        out.push_str(&node.weight().to_string());
        out.push('\n');
    }
    out
}

/// Render the deterministic JSON artifact: schema version, seed, the full
/// node table (calls/work/messages/bytes — **no wall time**), and the
/// batching report when present. Key-sorted, byte-deterministic.
pub fn render_json(snap: &ProfSnapshot) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"schema_version\":1,\"seed\":");
    out.push_str(&snap.seed.to_string());
    out.push_str(",\"nodes\":[");
    for (i, (path, node)) in snap.nodes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"path\":");
        serde::json::write_str(&mut out, path);
        out.push_str(&format!(
            ",\"calls\":{},\"work\":{},\"messages\":{},\"bytes\":{}}}",
            node.calls, node.work, node.messages, node.bytes
        ));
    }
    out.push_str("],\"batching\":");
    match &snap.batching {
        None => out.push_str("null"),
        Some(b) => {
            out.push_str(&format!(
                "{{\"n_parties\":{},\"n_mul_gates\":{},\"mul_depth\":{},\"level_widths\":[",
                b.n_parties, b.n_mul_gates, b.mul_depth
            ));
            for (i, w) in b.level_widths.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&w.to_string());
            }
            out.push_str("],\"width_histogram\":[");
            for (i, (w, c)) in b.width_histogram.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{w},{c}]"));
            }
            out.push_str(&format!(
                "],\"messages_unbatched\":{},\"messages_batched\":{}}}",
                b.messages_unbatched, b.messages_batched
            ));
        }
    }
    out.push_str("}\n");
    out
}

// ---------------------------------------------------------------------------
// Flamegraph SVG
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Frame {
    self_weight: u64,
    children: BTreeMap<String, Frame>,
}

impl Frame {
    fn subtotal(&self) -> u64 {
        self.self_weight + self.children.values().map(Frame::subtotal).sum::<u64>()
    }

    fn depth(&self) -> usize {
        1 + self.children.values().map(Frame::depth).max().unwrap_or(0)
    }
}

fn build_tree(snap: &ProfSnapshot) -> Frame {
    let mut root = Frame::default();
    for (path, node) in &snap.nodes {
        let mut cur = &mut root;
        for frame in path.split(';') {
            cur = cur.children.entry(frame.to_string()).or_default();
        }
        cur.self_weight += node.weight();
    }
    root
}

fn xml_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            _ => out.push(c),
        }
    }
    out
}

/// Render the profile tree as a self-contained inline SVG flamegraph
/// (no scripts, no external references; deterministic layout and colors).
pub fn render_flamegraph_svg(snap: &ProfSnapshot) -> String {
    const W: f64 = 960.0;
    const ROW: f64 = 18.0;
    let root = build_tree(snap);
    let total = root.subtotal();
    let depth = root.depth().saturating_sub(1).max(1);
    let height = depth as f64 * ROW + 4.0;
    let mut out = String::with_capacity(16 * 1024);
    out.push_str(&format!(
        "<svg width=\"{W}\" height=\"{height}\" viewBox=\"0 0 {W} {height}\" \
         font-family=\"monospace\" font-size=\"11\">\n"
    ));
    if total == 0 {
        out.push_str("<text x=\"4\" y=\"14\">(empty profile)</text>\n</svg>\n");
        return out;
    }
    let scale = W / total as f64;
    // Deterministic DFS in key order; x advances by subtree weight.
    fn emit(
        name: &str,
        path: &str,
        frame: &Frame,
        x: f64,
        level: usize,
        scale: f64,
        out: &mut String,
    ) {
        let sub = frame.subtotal();
        let w = sub as f64 * scale;
        if w >= 0.5 {
            let y = level as f64 * 18.0 + 2.0;
            let color = crate::export::phase_color(name);
            out.push_str(&format!(
                "<g><title>{} ({sub})</title>\
                 <rect x=\"{x:.2}\" y=\"{y:.1}\" width=\"{w:.2}\" height=\"16\" \
                 fill=\"{color}\" stroke=\"#fff\" stroke-width=\"0.5\"/>",
                xml_escape(path)
            ));
            let max_chars = (w / 7.0) as usize;
            if max_chars >= 3 {
                let label: String = name.chars().take(max_chars).collect();
                out.push_str(&format!(
                    "<text x=\"{:.2}\" y=\"{:.1}\" fill=\"#fff\">{}</text>",
                    x + 2.0,
                    y + 12.0,
                    xml_escape(&label)
                ));
            }
            out.push_str("</g>\n");
        }
        let mut cx = x;
        for (child_name, child) in &frame.children {
            let child_path = format!("{path};{child_name}");
            emit(child_name, &child_path, child, cx, level + 1, scale, out);
            cx += child.subtotal() as f64 * scale;
        }
    }
    let mut x = 0.0;
    for (name, frame) in &root.children {
        emit(name, name, frame, x, 0, scale, &mut out);
        x += frame.subtotal() as f64 * scale;
    }
    out.push_str("</svg>\n");
    out
}

/// Render a human-readable attribution summary (top `limit` nodes by
/// weight) for stdout. Includes wall time, so this is for interactive use
/// only — never an artifact.
pub fn render_summary(snap: &ProfSnapshot, limit: usize) -> String {
    let mut rows: Vec<(&String, &NodeAgg)> = snap.nodes.iter().collect();
    rows.sort_by(|a, b| b.1.weight().cmp(&a.1.weight()).then(a.0.cmp(b.0)));
    let mut out = String::new();
    for (path, node) in rows.into_iter().take(limit) {
        out.push_str(&format!(
            "  {:>12} work  {:>8} calls  {:>10} msgs  {:>12} B  {:>9.3} ms  {path}\n",
            node.work,
            node.calls,
            node.messages,
            node.bytes,
            node.wall_ns as f64 / 1e6,
        ));
    }
    if let Some(b) = &snap.batching {
        out.push_str(&format!(
            "  batching: {} muls over {} rounds -> {} vs {} reduce-degree messages (x{:.1} reduction)\n",
            b.n_mul_gates,
            b.mul_depth,
            b.messages_unbatched,
            b.messages_batched,
            b.reduction_factor(),
        ));
    }
    out
}

/// Write the three deterministic artifacts (`prof_<seed>.folded`,
/// `prof_<seed>.json`, `prof_<seed>.html`) into the installed dir and
/// return their paths. No-op (empty vec) when the profiler was never
/// installed or holds no data.
pub fn dump_if_active() -> io::Result<Vec<PathBuf>> {
    let Some(snap) = snapshot() else {
        return Ok(Vec::new());
    };
    if snap.nodes.is_empty() {
        return Ok(Vec::new());
    }
    std::fs::create_dir_all(&snap.dir)?;
    let stem = format!("prof_{}", snap.seed);
    let folded = snap.dir.join(format!("{stem}.folded"));
    let json = snap.dir.join(format!("{stem}.json"));
    let html = snap.dir.join(format!("{stem}.html"));
    atomic_write_str(&folded, &render_folded(&snap))?;
    atomic_write_str(&json, &render_json(&snap))?;
    atomic_write_str(
        &html,
        &crate::export::flamegraph_html("SQM cost profile", &snap),
    )?;
    Ok(vec![folded, json, html])
}

#[cfg(test)]
pub(crate) fn test_lock() -> MutexGuard<'static, ()> {
    static TEST_LOCK: Mutex<()> = Mutex::new(());
    TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh(seed: u64) {
        install(&ProfConfig::default(), seed);
        reset();
    }

    #[test]
    fn records_only_when_active_and_renders_deterministically() {
        let _guard = test_lock();
        fresh(7);
        deactivate();
        record("engine;input;exchange", 1, 100);
        assert!(snapshot().unwrap().nodes.is_empty(), "inactive must no-op");

        install(&ProfConfig::default(), 7);
        let run = || {
            record("engine;compute;reduce_degree;field_mul", 1, 4000);
            record("engine;compute;reduce_degree", 1, 50);
            record_round("engine;input;exchange", 12, 960, 1234);
            record_round("engine;input;exchange", 12, 960, 9999);
            set_batching_report(BatchingReport::from_level_widths(vec![3, 1, 3], 4));
        };
        run();
        let first = snapshot().unwrap();
        let (folded1, json1) = (render_folded(&first), render_json(&first));
        reset();
        run();
        let second = snapshot().unwrap();
        // Byte-identical across two identical runs even though wall time
        // differed (1234 vs 9999 on the first run's two rounds).
        assert_eq!(folded1, render_folded(&second));
        assert_eq!(json1, render_json(&second));
        // Wall never leaks into the deterministic artifacts.
        assert!(!json1.contains("wall"));
        assert!(!folded1.contains("1234") && !folded1.contains("9999"));
        // Folded lines are key-sorted `path weight`.
        assert_eq!(
            folded1,
            "engine;compute;reduce_degree 50\n\
             engine;compute;reduce_degree;field_mul 4000\n\
             engine;input;exchange 1920\n"
        );
        assert!(json1.contains("\"messages\":24"));
        assert!(json1.contains("\"level_widths\":[3,1,3]"));
        assert!(json1.contains("\"width_histogram\":[[1,1],[3,2]]"));
        deactivate();
        reset();
    }

    #[test]
    fn batching_report_totals_and_prediction() {
        let report = BatchingReport::from_level_widths(vec![8, 4, 2, 1], 4);
        assert_eq!(report.n_mul_gates, 15);
        assert_eq!(report.mul_depth, 4);
        assert_eq!(report.width_histogram, vec![(1, 1), (2, 1), (4, 1), (8, 1)]);
        // 4 parties -> 12 messages per reduce-degree round.
        assert_eq!(report.messages_unbatched, 15 * 12);
        assert_eq!(report.messages_batched, 4 * 12);
        assert!((report.reduction_factor() - 3.75).abs() < 1e-12);
        // Degenerate cases stay finite.
        let empty = BatchingReport::from_level_widths(vec![], 4);
        assert_eq!(empty.reduction_factor(), 1.0);
        assert_eq!(empty.messages_unbatched, 0);
    }

    #[test]
    fn flamegraph_is_self_contained_and_weighted() {
        let _guard = test_lock();
        fresh(9);
        record("engine;compute;reduce_degree;field_mul", 1, 900);
        record("engine;open;exchange", 1, 100);
        let snap = snapshot().unwrap();
        let svg = render_flamegraph_svg(&snap);
        for banned in ["<script", "<link", "http://", "https://"] {
            assert!(
                !svg.contains(banned),
                "flamegraph must not contain {banned}"
            );
        }
        assert!(svg.contains("<svg"));
        // The heavier subtree gets the (proportionally) wider rect: the
        // engine root frame spans the full width, compute 90% of it.
        assert!(svg.contains("reduce_degree;field_mul (900)"));
        assert!(svg.contains("width=\"864.00\""), "{svg}");
        // Hostile frame names are escaped.
        record("engine;<b>evil</b>;x", 1, 5);
        let svg = render_flamegraph_svg(&snapshot().unwrap());
        assert!(!svg.contains("<b>evil</b>"));
        assert!(svg.contains("&lt;b&gt;evil&lt;/b&gt;"));
        deactivate();
        reset();
    }

    #[test]
    fn dump_writes_three_deterministic_artifacts() {
        let _guard = test_lock();
        let dir = std::env::temp_dir().join(format!("sqm_prof_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        install(&ProfConfig::default().with_dir(&dir), 21);
        reset();
        record("vfl;dp_noise;skellam_draw", 1, 1830);
        record_round("engine;open;exchange", 6, 480, 555);
        let paths = dump_if_active().unwrap();
        assert_eq!(paths.len(), 3);
        let folded = std::fs::read_to_string(dir.join("prof_21.folded")).unwrap();
        assert!(folded.contains("vfl;dp_noise;skellam_draw 1830"));
        let json = std::fs::read_to_string(dir.join("prof_21.json")).unwrap();
        assert!(json.contains("\"seed\":21"));
        let html = std::fs::read_to_string(dir.join("prof_21.html")).unwrap();
        assert!(html.contains("<svg") && !html.contains("<script"));
        // Re-dump after identical re-collection is byte-identical.
        reset();
        record("vfl;dp_noise;skellam_draw", 1, 1830);
        record_round("engine;open;exchange", 6, 480, 777);
        dump_if_active().unwrap();
        assert_eq!(
            folded,
            std::fs::read_to_string(dir.join("prof_21.folded")).unwrap()
        );
        assert_eq!(
            json,
            std::fs::read_to_string(dir.join("prof_21.json")).unwrap()
        );
        deactivate();
        reset();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
