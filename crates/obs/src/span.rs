//! Request-scoped tracing for the serving layer.
//!
//! Engine-level tracing ([`crate::trace`], [`crate::causal`]) is
//! *run*-scoped: it explains one MPC execution, but nothing connects an
//! HTTP request to the MPC rounds it caused. This module adds that
//! missing edge. A [`RequestContext`] is minted when a request is
//! admitted into the serving scheduler and travels with the job through
//! its whole life: the queue wait, the odometer admission gate, the MPC
//! release, and the reply encoding each record one [`Span`] into it.
//! The MPC child span links to the engine run through the causal run id
//! and carries the reconstructed message DAG's critical-path breakdown
//! ([`CriticalSummary`]), so "why was this request slow" decomposes all
//! the way down to the straggler party.
//!
//! ## Invariants
//!
//! * The root span's duration is **defined** as the scheduler's measured
//!   `queue_wait + exec`, so the span tree's end-to-end time always
//!   equals the sum of its top-level phases exactly (`assert_eq`-tested
//!   in the serve crate — no epsilon).
//! * The MPC child span's [`CriticalSummary::total`] is the causal
//!   critical path of the release's trace, which equals
//!   `RunStats::simulated_time()` exactly on SPMD runs (the engines'
//!   exactness contract, see [`crate::causal`]).
//! * Collection is passive: span recording never feeds back into
//!   protocol execution, so results are bit-identical with request
//!   tracing on or off (asserted in the serve crate).
//!
//! ## Determinism
//!
//! The slow-request dump ([`SpanCollector::render_slow_dump`]) follows
//! the flight-recorder discipline ([`crate::live`]): only deterministic
//! fields — tenant, per-tenant sequence number, request kind, outcome,
//! span-tree structure, protocol counters, per-party round/message
//! counts — ever reach the JSONL. Measured wall durations (span
//! durations, critical-path times, idle/compute splits) stay in memory
//! for the live endpoints and the HTML report, but are *never* written,
//! so two runs of the same seeded workload dump byte-identical files.
//! Request ids are `(tenant, per-tenant seq)` rather than a global
//! counter: per-tenant FIFO makes them deterministic under any worker
//! interleaving, where a global counter would not be.

use std::collections::VecDeque;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

use crate::causal::MessageDag;
use crate::export::atomic_write_str;

/// Index of the root `"request"` span in every [`RequestContext`].
pub const ROOT: usize = 0;
/// Index of the `"queue"` child span (scheduler queue wait).
pub const QUEUE: usize = 1;
/// Index of the `"exec"` child span (worker execution).
pub const EXEC: usize = 2;

/// How many recent request durations the adaptive slow threshold ranks.
const ADAPTIVE_WINDOW: usize = 128;

/// One node of a request's span tree.
#[derive(Clone, Debug)]
pub struct Span {
    /// Phase name (`"request"`, `"queue"`, `"exec"`, `"admit"`, `"mpc"`,
    /// `"encode"`).
    pub name: &'static str,
    /// Parent span index within the same tree; `None` for the root.
    pub parent: Option<usize>,
    /// Measured wall duration. In-memory only — never dumped (see the
    /// module docs on determinism).
    pub duration: Duration,
    /// Causal link: the MPC run id (the session seed) this span covers.
    pub run_id: Option<u64>,
    /// Deterministic protocol counters (zero for non-MPC spans).
    pub rounds: u64,
    pub messages: u64,
    pub bytes: u64,
    /// Critical-path breakdown of the linked run's message DAG.
    pub critical: Option<CriticalSummary>,
}

impl Span {
    fn new(name: &'static str, parent: Option<usize>) -> Span {
        Span {
            name,
            parent,
            duration: Duration::ZERO,
            run_id: None,
            rounds: 0,
            messages: 0,
            bytes: 0,
            critical: None,
        }
    }
}

/// One party's share of a linked MPC run. `rounds`/`messages` are
/// deterministic; `idle`/`compute` are wall-derived attribution and stay
/// out of dumps.
#[derive(Clone, Debug)]
pub struct PartyCost {
    pub party: usize,
    pub rounds: u64,
    pub messages: u64,
    pub idle: Duration,
    pub compute: Duration,
}

/// The causal self-time breakdown attached to an MPC span.
#[derive(Clone, Debug)]
pub struct CriticalSummary {
    /// Critical-path length — equals `RunStats::simulated_time()` exactly
    /// on SPMD runs. Wall-derived at zero configured latency, so not
    /// dumped.
    pub total: Duration,
    /// Cross-party hops on the walked path (wall-dependent attribution).
    pub cross_hops: u64,
    /// DAG health: all three are zero on a fault-free completed run.
    pub unmatched_sends: usize,
    pub unmatched_recvs: usize,
    pub lamport_violations: usize,
    /// Per-party breakdown, sorted by party id.
    pub parties: Vec<PartyCost>,
}

impl CriticalSummary {
    /// Summarize a reconstructed message DAG (critical path + health).
    pub fn build(dag: &MessageDag<'_>) -> CriticalSummary {
        let cp = dag.critical_path();
        CriticalSummary {
            total: cp.total,
            cross_hops: cp.cross_hops,
            unmatched_sends: dag.unmatched_sends(),
            unmatched_recvs: dag.unmatched_recvs(),
            lamport_violations: dag.lamport_violations(),
            parties: cp
                .parties
                .iter()
                .map(|p| PartyCost {
                    party: p.party,
                    rounds: p.rounds,
                    messages: p.messages,
                    idle: p.idle,
                    compute: p.compute,
                })
                .collect(),
        }
    }
}

/// A request's span tree while the request is in flight.
///
/// Minted at admission with three pre-allocated spans ([`ROOT`],
/// [`QUEUE`], [`EXEC`]) whose durations the scheduler fills in; deeper
/// layers append children under [`EXEC`] as the request passes through
/// them.
#[derive(Clone, Debug)]
pub struct RequestContext {
    pub tenant: String,
    /// Per-tenant sequence number (deterministic under per-tenant FIFO).
    pub seq: u64,
    /// `"ingest"` or `"release"`.
    pub kind: &'static str,
    spans: Vec<Span>,
}

impl RequestContext {
    pub fn new(tenant: &str, seq: u64, kind: &'static str) -> RequestContext {
        RequestContext {
            tenant: tenant.to_string(),
            seq,
            kind,
            spans: vec![
                Span::new("request", None),
                Span::new("queue", Some(ROOT)),
                Span::new("exec", Some(ROOT)),
            ],
        }
    }

    /// Append a child span with a measured duration; returns its index.
    pub fn add_child(&mut self, parent: usize, name: &'static str, duration: Duration) -> usize {
        assert!(parent < self.spans.len(), "parent span out of range");
        let mut span = Span::new(name, Some(parent));
        span.duration = duration;
        self.spans.push(span);
        self.spans.len() - 1
    }

    pub fn set_duration(&mut self, id: usize, duration: Duration) {
        self.spans[id].duration = duration;
    }

    pub fn span_mut(&mut self, id: usize) -> &mut Span {
        &mut self.spans[id]
    }

    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// The root span's duration (the scheduler sets it to its measured
    /// `queue_wait + exec`).
    pub fn end_to_end(&self) -> Duration {
        self.spans[ROOT].duration
    }
}

/// What became of a finished request (deterministic for seeded loads).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RequestOutcome {
    /// Executed and replied.
    Ok,
    /// Refused by the privacy odometer (costs nothing).
    Refused,
    /// The tenant's session is poisoned (party crash).
    Failed,
    /// Any other typed error.
    Error,
}

impl RequestOutcome {
    pub fn as_str(self) -> &'static str {
        match self {
            RequestOutcome::Ok => "ok",
            RequestOutcome::Refused => "refused",
            RequestOutcome::Failed => "failed",
            RequestOutcome::Error => "error",
        }
    }
}

/// A completed request as retained by the collector.
#[derive(Clone, Debug)]
pub struct FinishedRequest {
    pub tenant: String,
    pub seq: u64,
    pub kind: &'static str,
    pub outcome: RequestOutcome,
    pub spans: Vec<Span>,
}

impl FinishedRequest {
    pub fn duration(&self) -> Duration {
        self.spans[ROOT].duration
    }

    /// First span with the given name, if any.
    pub fn span(&self, name: &str) -> Option<&Span> {
        self.spans.iter().find(|s| s.name == name)
    }
}

/// Collector knobs.
#[derive(Clone, Debug)]
pub struct SpanConfig {
    /// Fixed slow threshold override. `None` selects the adaptive rule:
    /// `slow_factor x` the rolling median request duration, floored at
    /// `slow_min` — mirroring the live watchdog's stall rule. Tests and
    /// the smoke binary pin `Some(Duration::ZERO)` to retain every
    /// request (the dump is then the full deterministic request log).
    pub slow_threshold: Option<Duration>,
    pub slow_factor: f64,
    pub slow_min: Duration,
    /// Most slow requests retained (beyond it, `slow_dropped` counts).
    pub retain_cap: usize,
    /// Time-bucketed SLO history ring: bucket count and width.
    pub history_buckets: usize,
    pub bucket_width: Duration,
}

impl Default for SpanConfig {
    fn default() -> Self {
        SpanConfig {
            slow_threshold: None,
            slow_factor: 8.0,
            slow_min: Duration::from_millis(1),
            retain_cap: 4096,
            history_buckets: 64,
            bucket_width: Duration::from_secs(1),
        }
    }
}

impl SpanConfig {
    /// Retain every finished request (deterministic full dump).
    pub fn dump_all() -> SpanConfig {
        SpanConfig {
            slow_threshold: Some(Duration::ZERO),
            ..SpanConfig::default()
        }
    }
}

/// One bucket of the SLO history ring.
#[derive(Clone, Copy, Debug, Default)]
pub struct SloBucket {
    /// Absolute bucket number since the collector started.
    pub index: u64,
    pub requests: u64,
    pub releases: u64,
    pub refusals: u64,
    pub failures: u64,
    /// Sum / max of request durations in the bucket, nanoseconds.
    pub total_ns: u64,
    pub max_ns: u64,
}

/// Point-in-time SLO view (feeds `/snapshot` and the HTML report).
#[derive(Clone, Debug, Default)]
pub struct SloSnapshot {
    /// Occupied history buckets in ascending index order.
    pub buckets: Vec<SloBucket>,
    pub bucket_width: Duration,
    pub total_requests: u64,
    pub total_releases: u64,
    pub total_refusals: u64,
    pub total_failures: u64,
    /// Slow requests currently retained / dropped past the cap.
    pub slow_retained: usize,
    pub slow_dropped: u64,
    /// The slow threshold currently in force, nanoseconds.
    pub threshold_ns: u64,
}

struct CollectorState {
    /// Rolling recent request durations for the adaptive threshold.
    window_ns: VecDeque<u64>,
    slow: Vec<FinishedRequest>,
    slow_dropped: u64,
    /// Ring of `history_buckets` slots; a slot is live iff `requests > 0`
    /// and its `index` matches the current wrap.
    buckets: Vec<SloBucket>,
    total_requests: u64,
    total_releases: u64,
    total_refusals: u64,
    total_failures: u64,
}

/// The per-server span collector. Owned by the serving scheduler (not
/// process-global like [`crate::metrics`]), so concurrent servers — and
/// concurrent tests — never share request state.
pub struct SpanCollector {
    config: SpanConfig,
    started: Instant,
    state: Mutex<CollectorState>,
}

impl SpanCollector {
    pub fn new(config: SpanConfig) -> SpanCollector {
        assert!(
            config.history_buckets > 0,
            "history_buckets must be positive"
        );
        assert!(
            config.bucket_width > Duration::ZERO,
            "bucket_width must be positive"
        );
        assert!(config.slow_factor > 0.0, "slow_factor must be positive");
        SpanCollector {
            started: Instant::now(),
            state: Mutex::new(CollectorState {
                window_ns: VecDeque::with_capacity(ADAPTIVE_WINDOW),
                slow: Vec::new(),
                slow_dropped: 0,
                buckets: vec![SloBucket::default(); config.history_buckets],
                total_requests: 0,
                total_releases: 0,
                total_refusals: 0,
                total_failures: 0,
            }),
            config,
        }
    }

    pub fn config(&self) -> &SpanConfig {
        &self.config
    }

    /// Recover from poisoning like the metrics registry: a worker that
    /// died mid-record costs at most one observation.
    fn lock(&self) -> MutexGuard<'_, CollectorState> {
        match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// The slow threshold in force given the current rolling window.
    fn threshold_ns(&self, state: &CollectorState) -> u64 {
        if let Some(fixed) = self.config.slow_threshold {
            return fixed.as_nanos() as u64;
        }
        let mut sorted: Vec<u64> = state.window_ns.iter().copied().collect();
        if sorted.is_empty() {
            return self.config.slow_min.as_nanos() as u64;
        }
        sorted.sort_unstable();
        let median = sorted[crate::metrics::nearest_rank_index(sorted.len(), 0.50)];
        let adaptive = (median as f64 * self.config.slow_factor) as u64;
        adaptive.max(self.config.slow_min.as_nanos() as u64)
    }

    /// Absorb one finished request: SLO history, adaptive window, and —
    /// past the threshold — slow-request retention.
    pub fn finish(&self, ctx: RequestContext, outcome: RequestOutcome) {
        let duration_ns = ctx.end_to_end().as_nanos() as u64;
        let bucket_index =
            (self.started.elapsed().as_nanos() / self.config.bucket_width.as_nanos().max(1)) as u64;
        let mut state = self.lock();
        // Threshold first: the request being absorbed must not move its
        // own bar.
        let threshold_ns = self.threshold_ns(&state);

        let slot = bucket_index as usize % self.config.history_buckets;
        let bucket = &mut state.buckets[slot];
        if bucket.requests == 0 || bucket.index != bucket_index {
            *bucket = SloBucket {
                index: bucket_index,
                ..SloBucket::default()
            };
        }
        bucket.requests += 1;
        bucket.total_ns += duration_ns;
        bucket.max_ns = bucket.max_ns.max(duration_ns);
        state.total_requests += 1;
        match outcome {
            RequestOutcome::Ok if ctx.kind == "release" => {
                state.buckets[slot].releases += 1;
                state.total_releases += 1;
            }
            RequestOutcome::Ok => {}
            RequestOutcome::Refused => {
                state.buckets[slot].refusals += 1;
                state.total_refusals += 1;
            }
            RequestOutcome::Failed | RequestOutcome::Error => {
                state.buckets[slot].failures += 1;
                state.total_failures += 1;
            }
        }

        if state.window_ns.len() == ADAPTIVE_WINDOW {
            state.window_ns.pop_front();
        }
        state.window_ns.push_back(duration_ns);

        if duration_ns >= threshold_ns {
            if state.slow.len() < self.config.retain_cap {
                let RequestContext {
                    tenant,
                    seq,
                    kind,
                    spans,
                } = ctx;
                state.slow.push(FinishedRequest {
                    tenant,
                    seq,
                    kind,
                    outcome,
                    spans,
                });
            } else {
                state.slow_dropped += 1;
            }
        }
    }

    /// Clones of every retained slow request (tests and exporters).
    pub fn slow_requests(&self) -> Vec<FinishedRequest> {
        self.lock().slow.clone()
    }

    /// Point-in-time SLO view.
    pub fn snapshot(&self) -> SloSnapshot {
        let state = self.lock();
        let mut buckets: Vec<SloBucket> = state
            .buckets
            .iter()
            .filter(|b| b.requests > 0)
            .copied()
            .collect();
        buckets.sort_by_key(|b| b.index);
        SloSnapshot {
            buckets,
            bucket_width: self.config.bucket_width,
            total_requests: state.total_requests,
            total_releases: state.total_releases,
            total_refusals: state.total_refusals,
            total_failures: state.total_failures,
            slow_retained: state.slow.len(),
            slow_dropped: state.slow_dropped,
            threshold_ns: self.threshold_ns(&state),
        }
    }

    /// Render the slow-request dump: a meta header line, then one JSONL
    /// line per retained request sorted by `(tenant, seq)`. Only
    /// deterministic fields appear (module docs); byte-identical across
    /// runs of the same seeded workload.
    pub fn render_slow_dump(&self, seed: u64) -> String {
        let state = self.lock();
        let mut retained: Vec<&FinishedRequest> = state.slow.iter().collect();
        retained.sort_by(|a, b| (&a.tenant, a.seq).cmp(&(&b.tenant, b.seq)));
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"type\":\"slowreq_meta\",\"version\":1,\"seed\":{seed},\"requests\":{},\
             \"threshold\":\"{}\"}}\n",
            retained.len(),
            if self.config.slow_threshold.is_some() {
                "fixed"
            } else {
                "adaptive"
            },
        ));
        for req in retained {
            out.push_str(&format!(
                "{{\"type\":\"slowreq\",\"tenant\":\"{}\",\"seq\":{},\"kind\":\"{}\",\
                 \"outcome\":\"{}\",\"spans\":[",
                req.tenant,
                req.seq,
                req.kind,
                req.outcome.as_str(),
            ));
            for (i, span) in req.spans.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{{\"name\":\"{}\",\"parent\":", span.name));
                match span.parent {
                    Some(p) => out.push_str(&p.to_string()),
                    None => out.push_str("null"),
                }
                if let Some(run_id) = span.run_id {
                    out.push_str(&format!(
                        ",\"run_id\":{run_id},\"rounds\":{},\"messages\":{},\"bytes\":{}",
                        span.rounds, span.messages, span.bytes
                    ));
                }
                if let Some(critical) = &span.critical {
                    out.push_str(&format!(
                        ",\"critical\":{{\"unmatched_sends\":{},\"unmatched_recvs\":{},\
                         \"lamport_violations\":{},\"parties\":[",
                        critical.unmatched_sends,
                        critical.unmatched_recvs,
                        critical.lamport_violations
                    ));
                    for (k, p) in critical.parties.iter().enumerate() {
                        if k > 0 {
                            out.push(',');
                        }
                        out.push_str(&format!(
                            "{{\"party\":{},\"rounds\":{},\"messages\":{}}}",
                            p.party, p.rounds, p.messages
                        ));
                    }
                    out.push_str("]}");
                }
                out.push('}');
            }
            out.push_str("]}\n");
        }
        out
    }

    /// Write the dump as `<dir>/slowreq_<seed>.jsonl` (atomic: temp file
    /// + rename, like the flight recorder).
    pub fn write_slow_dump(&self, dir: &Path, seed: u64) -> io::Result<PathBuf> {
        let path = dir.join(format!("slowreq_{seed}.jsonl"));
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        atomic_write_str(&path, &self.render_slow_dump(seed))?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(tenant: &str, seq: u64, kind: &'static str, total_ms: u64) -> RequestContext {
        let mut c = RequestContext::new(tenant, seq, kind);
        c.set_duration(QUEUE, Duration::from_millis(total_ms / 4));
        c.set_duration(EXEC, Duration::from_millis(total_ms - total_ms / 4));
        c.set_duration(ROOT, Duration::from_millis(total_ms));
        c
    }

    #[test]
    fn context_tree_is_rooted_and_sums() {
        let mut c = ctx("t", 0, "release", 8);
        let admit = c.add_child(EXEC, "admit", Duration::from_millis(1));
        let mpc = c.add_child(EXEC, "mpc", Duration::from_millis(5));
        assert_eq!(c.spans()[admit].parent, Some(EXEC));
        assert_eq!(c.spans()[mpc].parent, Some(EXEC));
        assert_eq!(c.spans()[QUEUE].parent, Some(ROOT));
        assert_eq!(c.spans()[ROOT].parent, None);
        assert_eq!(
            c.end_to_end(),
            c.spans()[QUEUE].duration + c.spans()[EXEC].duration
        );
    }

    #[test]
    fn adaptive_threshold_tracks_the_median_with_a_floor() {
        let collector = SpanCollector::new(SpanConfig {
            slow_factor: 4.0,
            slow_min: Duration::from_millis(2),
            ..SpanConfig::default()
        });
        // Empty window: the floor is in force.
        assert_eq!(collector.snapshot().threshold_ns, 2_000_000);
        for i in 0..10 {
            collector.finish(ctx("t", i, "ingest", 10), RequestOutcome::Ok);
        }
        // Median 10 ms, factor 4 -> 40 ms.
        assert_eq!(collector.snapshot().threshold_ns, 40_000_000);
        // Only the 10 ms requests cleared the bar in force when they
        // finished (2 ms floor first, then 40 ms): the first did, the
        // rest were under 8x-median.
        assert_eq!(collector.slow_requests().len(), 1);
    }

    #[test]
    fn fixed_zero_threshold_retains_everything() {
        let collector = SpanCollector::new(SpanConfig::dump_all());
        collector.finish(ctx("b", 0, "ingest", 1), RequestOutcome::Ok);
        collector.finish(ctx("a", 0, "release", 3), RequestOutcome::Ok);
        collector.finish(ctx("a", 1, "release", 2), RequestOutcome::Refused);
        let snap = collector.snapshot();
        assert_eq!(snap.total_requests, 3);
        assert_eq!(snap.total_releases, 1);
        assert_eq!(snap.total_refusals, 1);
        assert_eq!(snap.slow_retained, 3);
        assert_eq!(snap.threshold_ns, 0);
        assert!(!snap.buckets.is_empty());
        assert_eq!(snap.buckets.iter().map(|b| b.requests).sum::<u64>(), 3);
    }

    #[test]
    fn dump_is_sorted_deterministic_and_wall_free() {
        let build = || {
            let collector = SpanCollector::new(SpanConfig::dump_all());
            // Finish out of (tenant, seq) order on purpose.
            collector.finish(ctx("b", 0, "ingest", 7), RequestOutcome::Ok);
            let mut rel = ctx("a", 1, "release", 13);
            let mpc = rel.add_child(EXEC, "mpc", Duration::from_millis(9));
            let span = rel.span_mut(mpc);
            span.run_id = Some(42);
            span.rounds = 5;
            span.messages = 60;
            span.bytes = 480;
            collector.finish(rel, RequestOutcome::Ok);
            collector.finish(ctx("a", 0, "ingest", 11), RequestOutcome::Ok);
            collector.render_slow_dump(42)
        };
        let first = build();
        let second = build();
        assert_eq!(first, second, "dump must be byte-deterministic");
        // Sorted by (tenant, seq): a/0, a/1, b/0.
        let lines: Vec<&str> = first.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("\"slowreq_meta\""));
        assert!(lines[1].contains("\"tenant\":\"a\"") && lines[1].contains("\"seq\":0"));
        assert!(lines[2].contains("\"tenant\":\"a\"") && lines[2].contains("\"seq\":1"));
        assert!(lines[3].contains("\"tenant\":\"b\""));
        // The MPC span carries its causal link and counters...
        assert!(lines[2].contains("\"run_id\":42"));
        assert!(lines[2].contains("\"messages\":60"));
        // ...and no measured wall time leaks into the dump.
        assert!(!first.contains("wall") && !first.contains("duration"));
        // Every line parses as standalone JSON.
        for line in &lines {
            crate::json::parse(line).expect("dump line must be valid JSON");
        }
    }

    #[test]
    fn retention_cap_counts_drops() {
        let collector = SpanCollector::new(SpanConfig {
            retain_cap: 2,
            ..SpanConfig::dump_all()
        });
        for i in 0..5 {
            collector.finish(ctx("t", i, "ingest", 1), RequestOutcome::Ok);
        }
        let snap = collector.snapshot();
        assert_eq!(snap.slow_retained, 2);
        assert_eq!(snap.slow_dropped, 3);
        assert_eq!(snap.total_requests, 5);
    }
}
