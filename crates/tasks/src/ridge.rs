//! Differentially private ridge regression — a third SQM instantiation
//! (the paper's "extension" direction: any learning task whose sufficient
//! statistics are polynomials fits the framework).
//!
//! Ridge regression needs exactly two polynomial statistics of the joint
//! record `(x, y)`: the Gram matrix `X^T X` and the cross-moments `X^T y`.
//! Both are entries of the `(d+1) x (d+1)` covariance of the augmented
//! matrix `[X | y]` — so SQM-Ridge is *one* call to the secure noisy
//! covariance protocol (Section V-A machinery, sensitivity from Lemma 5
//! with the augmented norm bound `c' = sqrt(c^2 + y_max^2)`), followed by
//! solving the regularized normal equations in the clear.

use rand::Rng;
use sqm_accounting::analytic_gaussian::analytic_gaussian_sigma;
use sqm_accounting::calibration::{calibrate_skellam_mu, CalibrationTarget};
use sqm_core::baseline::local_dp_release;
use sqm_core::sensitivity::pca_sensitivity;
use sqm_datasets::RegressionDataset;
use sqm_linalg::solve::solve_ridge;
use sqm_linalg::Matrix;
use sqm_sampling::gaussian::sample_normal;
use sqm_vfl::covariance::{covariance_skellam, covariance_skellam_plaintext};
use sqm_vfl::{ColumnPartition, VflConfig};

/// Execution backend for SQM-Ridge.
#[derive(Clone, Debug)]
// The Mpc variant carries the whole VflConfig (transport backend
// included); backends are built once per task, so the size gap is fine.
#[allow(clippy::large_enum_variant)]
pub enum RidgeBackend {
    /// Output-equivalent plaintext simulation.
    Plaintext,
    /// Full BGW execution.
    Mpc(VflConfig),
}

/// SQM instantiated on ridge regression.
#[derive(Clone, Debug)]
pub struct SqmRidge {
    /// Regularization strength (applied to the *normalized* Gram matrix).
    pub lambda: f64,
    /// Quantization scale.
    pub gamma: f64,
    /// Server-observed `(eps, delta)` target.
    pub target: CalibrationTarget,
    /// Number of clients contributing noise shares.
    pub n_clients: usize,
    /// *Public* bound on the augmented record norm `||(x, y)||_2`
    /// (default `sqrt(2)`: unit-ball features plus `|y| <= 1`). The noise
    /// is calibrated to this bound, never to the private data.
    pub norm_bound: f64,
    pub backend: RidgeBackend,
}

impl SqmRidge {
    pub fn new(lambda: f64, gamma: f64, eps: f64, delta: f64) -> Self {
        assert!(lambda >= 0.0);
        SqmRidge {
            lambda,
            gamma,
            target: CalibrationTarget::new(eps, delta),
            n_clients: 4,
            norm_bound: (2.0f64).sqrt(),
            backend: RidgeBackend::Plaintext,
        }
    }

    pub fn with_backend(mut self, backend: RidgeBackend) -> Self {
        self.backend = backend;
        self
    }

    pub fn with_clients(mut self, n: usize) -> Self {
        self.n_clients = n;
        self
    }

    /// The calibrated Skellam parameter for the augmented covariance
    /// release (`d + 1` columns, augmented record norm bound `c_aug`).
    pub fn calibrated_mu(&self, c_aug: f64, n_cols: usize) -> f64 {
        let sens = pca_sensitivity(self.gamma, c_aug, n_cols);
        calibrate_skellam_mu(self.target, sens, 1, 1.0)
    }

    /// Fit: returns the `d`-dimensional weight vector.
    pub fn fit<R: Rng + ?Sized>(&self, rng: &mut R, train: &RegressionDataset) -> Vec<f64> {
        let d = train.features.cols();
        let m = train.len();
        let aug = train.as_vfl_matrix(); // m x (d+1), target last
        let c_aug = self.norm_bound;
        assert!(
            aug.max_row_norm() <= c_aug * (1.0 + 1e-9),
            "an augmented record exceeds the public bound {c_aug}; clip the data first"
        );
        let n_cols = d + 1;
        let mu = self.calibrated_mu(c_aug, n_cols);

        let c_hat = match &self.backend {
            RidgeBackend::Plaintext => {
                covariance_skellam_plaintext(rng, &aug, self.gamma, mu, self.n_clients)
            }
            RidgeBackend::Mpc(cfg) => {
                let partition = ColumnPartition::even(n_cols, cfg.n_clients);
                covariance_skellam(&aug, &partition, self.gamma, mu, cfg).c_hat
            }
        };
        let scale = 1.0 / (self.gamma * self.gamma * m as f64);
        solve_from_noisy_covariance(&c_hat.scaled(scale), d, self.lambda)
    }
}

/// Extract `(G, r)` from a noisy augmented covariance and solve the ridge
/// system `(G + lambda I) w = r`.
fn solve_from_noisy_covariance(c: &Matrix, d: usize, lambda: f64) -> Vec<f64> {
    let mut g = Matrix::zeros(d, d);
    let mut r = vec![0.0; d];
    for i in 0..d {
        for j in 0..d {
            g[(i, j)] = c[(i, j)];
        }
        r[i] = c[(i, d)];
    }
    solve_ridge(&g, &r, lambda)
}

/// Central-DP baseline: Gaussian perturbation of the augmented covariance
/// (Analyze-Gauss style) then solve.
#[derive(Clone, Debug)]
pub struct GaussianRidge {
    pub lambda: f64,
    pub eps: f64,
    pub delta: f64,
    /// Public augmented-record norm bound.
    pub norm_bound: f64,
}

impl GaussianRidge {
    pub fn new(lambda: f64, eps: f64, delta: f64) -> Self {
        GaussianRidge {
            lambda,
            eps,
            delta,
            norm_bound: (2.0f64).sqrt(),
        }
    }

    pub fn fit<R: Rng + ?Sized>(&self, rng: &mut R, train: &RegressionDataset) -> Vec<f64> {
        let d = train.features.cols();
        let m = train.len();
        let aug = train.as_vfl_matrix();
        let c_aug = self.norm_bound;
        assert!(
            aug.max_row_norm() <= c_aug * (1.0 + 1e-9),
            "record exceeds public bound"
        );
        let sigma = analytic_gaussian_sigma(self.eps, self.delta, c_aug * c_aug);
        let mut cov = aug.gram();
        let n_cols = d + 1;
        for i in 0..n_cols {
            for j in i..n_cols {
                let z = sample_normal(rng, 0.0, sigma);
                cov[(i, j)] += z;
                if i != j {
                    cov[(j, i)] += z;
                }
            }
        }
        solve_from_noisy_covariance(&cov.scaled(1.0 / m as f64), d, self.lambda)
    }
}

/// Local-DP baseline: Algorithm 4 on the augmented matrix, then ordinary
/// ridge on the perturbed data.
#[derive(Clone, Debug)]
pub struct LocalDpRidge {
    pub lambda: f64,
    pub eps: f64,
    pub delta: f64,
    /// Public augmented-record norm bound.
    pub norm_bound: f64,
}

impl LocalDpRidge {
    pub fn new(lambda: f64, eps: f64, delta: f64) -> Self {
        LocalDpRidge {
            lambda,
            eps,
            delta,
            norm_bound: (2.0f64).sqrt(),
        }
    }

    pub fn fit<R: Rng + ?Sized>(&self, rng: &mut R, train: &RegressionDataset) -> Vec<f64> {
        let d = train.features.cols();
        let m = train.len();
        let aug = train.as_vfl_matrix();
        let c_aug = self.norm_bound;
        assert!(
            aug.max_row_norm() <= c_aug * (1.0 + 1e-9),
            "record exceeds public bound"
        );
        let noisy = local_dp_release(rng, &aug, self.eps, self.delta, c_aug);
        solve_from_noisy_covariance(&noisy.gram().scaled(1.0 / m as f64), d, self.lambda)
    }
}

/// Non-private ridge: the error floor.
#[derive(Clone, Debug)]
pub struct NonPrivateRidge {
    pub lambda: f64,
}

impl NonPrivateRidge {
    pub fn new(lambda: f64) -> Self {
        NonPrivateRidge { lambda }
    }

    pub fn fit(&self, train: &RegressionDataset) -> Vec<f64> {
        let d = train.features.cols();
        let m = train.len();
        let aug = train.as_vfl_matrix();
        solve_from_noisy_covariance(&aug.gram().scaled(1.0 / m as f64), d, self.lambda)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sqm_datasets::RegressionSpec;

    fn dataset() -> (RegressionDataset, RegressionDataset) {
        RegressionSpec::new(4000, 10)
            .with_seed(1)
            .generate()
            .split(0.8, 0)
    }

    #[test]
    fn non_private_recovers_planted_model() {
        let (train, test) = dataset();
        let w = NonPrivateRidge::new(1e-4).fit(&train);
        let mse = test.mse(&w);
        let floor = test.mse(&test.true_weights);
        assert!(mse < floor * 1.5 + 1e-4, "mse {mse} vs floor {floor}");
    }

    #[test]
    fn sqm_tracks_central_and_beats_local() {
        let (train, test) = dataset();
        let mut rng = StdRng::seed_from_u64(2);
        let (eps, delta, lambda) = (2.0, 1e-5, 1e-3);
        let reps = 5;
        let (mut e_sqm, mut e_central, mut e_local) = (0.0, 0.0, 0.0);
        for _ in 0..reps {
            e_sqm += test.mse(&SqmRidge::new(lambda, 4096.0, eps, delta).fit(&mut rng, &train));
            e_central += test.mse(&GaussianRidge::new(lambda, eps, delta).fit(&mut rng, &train));
            e_local += test.mse(&LocalDpRidge::new(lambda, eps, delta).fit(&mut rng, &train));
        }
        let (e_sqm, e_central, e_local) = (
            e_sqm / reps as f64,
            e_central / reps as f64,
            e_local / reps as f64,
        );
        assert!(e_sqm < e_local, "SQM mse {e_sqm} must beat local {e_local}");
        assert!(
            e_sqm < e_central * 2.0 + 1e-3,
            "SQM mse {e_sqm} should track central {e_central}"
        );
    }

    #[test]
    fn error_improves_with_gamma() {
        // The quantization overhead n/(gamma^2 c^2) only matters at coarse
        // gamma; compare a genuinely coarse scale against a fine one under
        // a tight budget where the extra noise is visible.
        let (train, test) = dataset();
        let mut rng = StdRng::seed_from_u64(3);
        let mut errs = Vec::new();
        for gamma in [2.0, 8192.0] {
            let mut acc = 0.0;
            for _ in 0..8 {
                acc += test.mse(&SqmRidge::new(1e-3, gamma, 0.25, 1e-5).fit(&mut rng, &train));
            }
            errs.push(acc / 8.0);
        }
        assert!(errs[1] < errs[0], "gamma trend violated: {errs:?}");
    }

    #[test]
    fn mpc_backend_produces_useful_model() {
        let (train, test) = RegressionSpec::new(200, 5)
            .with_seed(4)
            .generate()
            .split(0.8, 1);
        let mut rng = StdRng::seed_from_u64(5);
        let w = SqmRidge::new(1e-3, 4096.0, 8.0, 1e-5)
            .with_backend(RidgeBackend::Mpc(VflConfig::fast(3)))
            .fit(&mut rng, &train);
        let mse = w.len(); // shape check first
        assert_eq!(mse, 5);
        let mse = test.mse(&w);
        let zero = test.mse(&[0.0; 5]);
        assert!(mse < zero, "mse {mse} should beat the zero model {zero}");
    }

    #[test]
    fn stronger_regularization_shrinks_weights() {
        let (train, _) = dataset();
        let w_small = NonPrivateRidge::new(1e-6).fit(&train);
        let w_big = NonPrivateRidge::new(10.0).fit(&train);
        let norm = |w: &[f64]| w.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(norm(&w_big) < norm(&w_small) / 2.0);
    }
}
