//! The paper's task instantiations and every baseline its evaluation
//! compares against (Section V / VI).
//!
//! **PCA** ([`pca`]):
//! * [`pca::SqmPca`] — SQM: quantize, secure noisy covariance, eigensolve.
//! * [`pca::AnalyzeGaussPca`] — the central-DP upper bound \[65\].
//! * [`pca::LocalDpPca`] — the VFL local-DP baseline (Algorithm 4).
//! * [`pca::NonPrivatePca`] — utility ceiling.
//!
//! **Ridge regression** ([`ridge`]) — an extension instantiation showing the
//! framework generalizes: the sufficient statistics `X^T X` and `X^T y` are
//! one augmented-covariance release.
//!
//! **Logistic regression** ([`logreg`]):
//! * [`logreg::SqmLogReg`] — SQM with the degree-1 Taylor gradient (Eq. 9),
//!   subsampled Skellam accounting (Lemma 7).
//! * [`logreg::DpSgd`] — central DPSGD \[54\] with exact sigmoid gradients.
//! * [`logreg::ApproxPolyLogReg`] — central Gaussian + polynomial gradient
//!   (Figure 5's "Approx-Poly").
//! * [`logreg::LocalDpLogReg`] — train on an Algorithm-4-perturbed dataset.
//! * [`logreg::NonPrivateLogReg`] — accuracy ceiling.

pub mod histogram;
pub mod logreg;
pub mod pca;
pub mod ridge;
pub mod stats;

pub use histogram::{Categorical, GaussianHistogram, SqmContingency, SqmHistogram};
pub use logreg::{ApproxPolyLogReg, DpSgd, LocalDpLogReg, LrConfig, NonPrivateLogReg, SqmLogReg};
pub use pca::{AnalyzeGaussPca, LocalDpPca, NonPrivatePca, PcaBackend, SqmPca};
pub use ridge::{GaussianRidge, LocalDpRidge, NonPrivateRidge, RidgeBackend, SqmRidge};
pub use stats::{GaussianMean, LocalDpMean, MeanBackend, SqmMean};
