//! Differentially private logistic regression: SQM and its comparators
//! (Section V-B, Figures 3 and 5).
//!
//! All private variants release `rounds` noisy gradient sums over Poisson
//! subsampled batches (rate `q`), account with subsampled RDP (Lemma 11)
//! composed over rounds (Lemma 10), and convert to `(eps, delta)`
//! (Lemma 9). The weight vector is clipped to the unit ball after every
//! update, as the paper prescribes.

use rand::Rng;
use sqm_accounting::calibration::{
    calibrate_gaussian_sigma, calibrate_skellam_mu, CalibrationTarget,
};
use sqm_core::baseline::local_dp_release;
use sqm_core::sensitivity::lr_sensitivity;
use sqm_datasets::ClassificationDataset;
use sqm_linalg::vector::{clip_norm, dot};
use sqm_sampling::gaussian::sample_normal;
use sqm_vfl::gradient::{gradient_sum_skellam, gradient_sum_skellam_plaintext};
use sqm_vfl::{ColumnPartition, VflConfig};

/// Shared SGD hyper-parameters.
#[derive(Clone, Debug)]
pub struct LrConfig {
    /// Number of gradient rounds `R`.
    pub rounds: u32,
    /// Poisson subsampling rate `q` (each record joins a batch
    /// independently with probability `q`).
    pub q: f64,
    /// Learning rate applied to the *mean* batch gradient.
    pub lr: f64,
    /// Seed for batch sampling and initialization.
    pub seed: u64,
}

impl LrConfig {
    pub fn new(rounds: u32, q: f64) -> Self {
        assert!(rounds >= 1);
        assert!(q > 0.0 && q <= 1.0);
        LrConfig {
            rounds,
            q,
            lr: 1.0,
            seed: 0,
        }
    }

    pub fn with_lr(mut self, lr: f64) -> Self {
        self.lr = lr;
        self
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The paper specifies epochs at subsampling rate `q`; one epoch is
    /// `1/q` expected passes-worth of rounds.
    pub fn from_epochs(epochs: u32, q: f64) -> Self {
        let rounds = ((epochs as f64 / q).round() as u32).max(1);
        Self::new(rounds, q)
    }
}

fn sigmoid(u: f64) -> f64 {
    1.0 / (1.0 + (-u).exp())
}

/// Classification accuracy of weights `w` on a dataset.
pub fn accuracy(w: &[f64], ds: &ClassificationDataset) -> f64 {
    let m = ds.len();
    assert!(m > 0, "empty evaluation set");
    let correct = (0..m)
        .filter(|&i| {
            let margin = dot(w, ds.features.row(i));
            (margin > 0.0) == (ds.labels[i] == 1)
        })
        .count();
    correct as f64 / m as f64
}

/// Exact per-record gradient of the cross-entropy loss.
fn exact_gradient(w: &[f64], x: &[f64], y: f64) -> Vec<f64> {
    let p = sigmoid(dot(w, x));
    x.iter().map(|&xi| (p - y) * xi).collect()
}

/// Degree-1 Taylor (polynomial) per-record gradient, Eq. 9.
fn poly_gradient(w: &[f64], x: &[f64], y: f64) -> Vec<f64> {
    let wx = dot(w, x);
    x.iter().map(|&xi| (0.5 + wx / 4.0 - y) * xi).collect()
}

/// Poisson-sample a batch: each index joins independently w.p. `q`.
fn sample_batch<R: Rng + ?Sized>(rng: &mut R, m: usize, q: f64) -> Vec<usize> {
    (0..m).filter(|_| rng.gen::<f64>() < q).collect()
}

/// One projected-SGD update: `w <- clip_1(w - lr * grad_sum / |B|)`.
fn apply_update(w: &mut [f64], grad_sum: &[f64], batch_len: usize, lr: f64) {
    let scale = lr / batch_len.max(1) as f64;
    for (wi, g) in w.iter_mut().zip(grad_sum) {
        *wi -= scale * g;
    }
    clip_norm(w, 1.0);
}

/// Generic SGD loop over noisy gradient-sum oracles.
fn sgd_loop<R, G>(rng: &mut R, m: usize, d: usize, cfg: &LrConfig, mut grad_sum: G) -> Vec<f64>
where
    R: Rng + ?Sized,
    G: FnMut(&mut R, &[f64], &[usize]) -> Vec<f64>,
{
    // Random init inside the unit ball (the paper initializes randomly and
    // clips).
    let mut w: Vec<f64> = (0..d).map(|_| (rng.gen::<f64>() - 0.5) * 0.1).collect();
    clip_norm(&mut w, 1.0);
    for _ in 0..cfg.rounds {
        let batch = sample_batch(rng, m, cfg.q);
        if batch.is_empty() {
            continue;
        }
        let g = grad_sum(rng, &w, &batch);
        apply_update(&mut w, &g, batch.len(), cfg.lr);
    }
    w
}

/// Which execution backend SQM-LR uses.
#[derive(Clone, Debug)]
// The Mpc variant carries the whole VflConfig (transport backend
// included); backends are built once per task, so the size gap is fine.
#[allow(clippy::large_enum_variant)]
pub enum LrBackend {
    /// Output-equivalent plaintext simulation.
    Plaintext,
    /// Full BGW execution.
    Mpc(VflConfig),
}

/// SQM instantiated on logistic regression.
#[derive(Clone, Debug)]
pub struct SqmLogReg {
    pub cfg: LrConfig,
    /// Quantization scale.
    pub gamma: f64,
    /// Server-observed `(eps, delta)` target; `mu` is calibrated via
    /// Lemma 7 (Lemma 1 + subsampling + composition).
    pub target: CalibrationTarget,
    /// Clients simulating the distributed noise.
    pub n_clients: usize,
    pub backend: LrBackend,
}

impl SqmLogReg {
    pub fn new(cfg: LrConfig, gamma: f64, eps: f64, delta: f64) -> Self {
        SqmLogReg {
            cfg,
            gamma,
            target: CalibrationTarget::new(eps, delta),
            n_clients: 4,
            backend: LrBackend::Plaintext,
        }
    }

    pub fn with_backend(mut self, backend: LrBackend) -> Self {
        self.backend = backend;
        self
    }

    pub fn with_clients(mut self, n: usize) -> Self {
        self.n_clients = n;
        self
    }

    /// The calibrated Skellam parameter for feature dimension `d`.
    pub fn calibrated_mu(&self, d: usize) -> f64 {
        let sens = lr_sensitivity(self.gamma, d);
        calibrate_skellam_mu(self.target, sens, self.cfg.rounds, self.cfg.q)
    }

    /// The *client-observed* epsilon after all rounds (Lemma 7's
    /// tau_client): no subsampling amplification — each client knows the
    /// batch membership — composed linearly over the `R` rounds, with her
    /// own noise share discounted.
    pub fn achieved_client_epsilon(&self, d: usize) -> f64 {
        use sqm_accounting::skellam::skellam_rdp_client_observed;
        use sqm_accounting::{default_alpha_grid, rdp_to_dp};
        let sens = lr_sensitivity(self.gamma, d);
        let mu = self.calibrated_mu(d);
        let rounds = self.cfg.rounds as f64;
        default_alpha_grid()
            .into_iter()
            .map(|a| {
                rdp_to_dp(
                    a as f64,
                    rounds * skellam_rdp_client_observed(a, sens, mu, self.n_clients),
                    self.target.delta,
                )
            })
            .fold(f64::INFINITY, f64::min)
    }

    pub fn fit<R: Rng + ?Sized>(&self, rng: &mut R, train: &ClassificationDataset) -> Vec<f64> {
        let d = train.features.cols();
        let m = train.len();
        let mu = self.calibrated_mu(d);
        let data = train.as_vfl_matrix();
        let seed = self.cfg.seed;
        match &self.backend {
            LrBackend::Plaintext => {
                let n_clients = self.n_clients;
                let gamma = self.gamma;
                sgd_loop(rng, m, d, &self.cfg, |rng, w, batch| {
                    gradient_sum_skellam_plaintext(rng, &data, batch, w, gamma, mu, n_clients, seed)
                })
            }
            LrBackend::Mpc(cfg) => {
                let partition = ColumnPartition::even(d + 1, cfg.n_clients);
                let gamma = self.gamma;
                let mut round = 0u64;
                sgd_loop(rng, m, d, &self.cfg, |_rng, w, batch| {
                    round += 1;
                    let step_cfg = cfg.clone().with_seed(cfg.seed ^ round);
                    gradient_sum_skellam(&data, &partition, batch, w, gamma, mu, &step_cfg).grad_sum
                })
            }
        }
    }
}

/// Central DPSGD \[54\]: exact gradients, per-record clipping to `clip`,
/// Gaussian noise on the batch sum.
#[derive(Clone, Debug)]
pub struct DpSgd {
    pub cfg: LrConfig,
    pub target: CalibrationTarget,
    /// Per-record gradient clip norm (the sensitivity of the sum).
    pub clip: f64,
}

impl DpSgd {
    pub fn new(cfg: LrConfig, eps: f64, delta: f64) -> Self {
        DpSgd {
            cfg,
            target: CalibrationTarget::new(eps, delta),
            clip: 1.0,
        }
    }

    pub fn calibrated_sigma(&self) -> f64 {
        calibrate_gaussian_sigma(self.target, self.clip, self.cfg.rounds, self.cfg.q)
    }

    pub fn fit<R: Rng + ?Sized>(&self, rng: &mut R, train: &ClassificationDataset) -> Vec<f64> {
        self.fit_with_gradient(rng, train, exact_gradient)
    }

    fn fit_with_gradient<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        train: &ClassificationDataset,
        per_record: fn(&[f64], &[f64], f64) -> Vec<f64>,
    ) -> Vec<f64> {
        let d = train.features.cols();
        let m = train.len();
        let sigma = self.calibrated_sigma();
        let clip = self.clip;
        sgd_loop(rng, m, d, &self.cfg, |rng, w, batch| {
            let mut sum = vec![0.0; d];
            for &i in batch {
                let mut g = per_record(w, train.features.row(i), train.labels[i] as f64);
                clip_norm(&mut g, clip);
                for (s, gi) in sum.iter_mut().zip(&g) {
                    *s += gi;
                }
            }
            for s in sum.iter_mut() {
                *s += sample_normal(rng, 0.0, sigma);
            }
            sum
        })
    }
}

/// Figure 5's "Approx-Poly": central Gaussian mechanism with the
/// *polynomial* gradient (Eq. 9) — isolates the cost of the Taylor
/// approximation from the cost of quantization.
#[derive(Clone, Debug)]
pub struct ApproxPolyLogReg {
    pub inner: DpSgd,
}

impl ApproxPolyLogReg {
    pub fn new(cfg: LrConfig, eps: f64, delta: f64) -> Self {
        ApproxPolyLogReg {
            inner: DpSgd::new(cfg, eps, delta),
        }
    }

    pub fn fit<R: Rng + ?Sized>(&self, rng: &mut R, train: &ClassificationDataset) -> Vec<f64> {
        self.inner.fit_with_gradient(rng, train, poly_gradient)
    }
}

/// The VFL local-DP baseline: Algorithm 4 on features *and* label, then
/// non-private training on the perturbed data until convergence.
#[derive(Clone, Debug)]
pub struct LocalDpLogReg {
    pub eps: f64,
    pub delta: f64,
    /// Non-private training rounds on the perturbed data.
    pub train_rounds: u32,
}

impl LocalDpLogReg {
    pub fn new(eps: f64, delta: f64) -> Self {
        LocalDpLogReg {
            eps,
            delta,
            train_rounds: 300,
        }
    }

    pub fn fit<R: Rng + ?Sized>(&self, rng: &mut R, train: &ClassificationDataset) -> Vec<f64> {
        let d = train.features.cols();
        let m = train.len();
        // Record = (features, label): L2 norm <= sqrt(1 + 1).
        let c = (2.0f64).sqrt();
        let noisy = local_dp_release(rng, &train.as_vfl_matrix(), self.eps, self.delta, c);
        // Full-batch gradient descent on the noisy data (post-processing).
        let mut w = vec![0.0; d];
        for _ in 0..self.train_rounds {
            let mut grad = vec![0.0; d];
            for i in 0..m {
                let row = noisy.row(i);
                let g = exact_gradient(&w, &row[..d], row[d]);
                for (a, b) in grad.iter_mut().zip(&g) {
                    *a += b;
                }
            }
            apply_update(&mut w, &grad, m, 1.0);
        }
        w
    }
}

/// Non-private SGD: the accuracy ceiling.
#[derive(Clone, Debug)]
pub struct NonPrivateLogReg {
    pub cfg: LrConfig,
}

impl NonPrivateLogReg {
    pub fn new(cfg: LrConfig) -> Self {
        NonPrivateLogReg { cfg }
    }

    pub fn fit<R: Rng + ?Sized>(&self, rng: &mut R, train: &ClassificationDataset) -> Vec<f64> {
        let d = train.features.cols();
        let m = train.len();
        sgd_loop(rng, m, d, &self.cfg, |_rng, w, batch| {
            let mut sum = vec![0.0; d];
            for &i in batch {
                let g = exact_gradient(w, train.features.row(i), train.labels[i] as f64);
                for (s, gi) in sum.iter_mut().zip(&g) {
                    *s += gi;
                }
            }
            sum
        })
    }
}

/// The noise standard deviation SQM injects into the *normalized* gradient
/// sum (Figure 4, right: `sqrt(2 mu) / gamma^3` versus DPSGD's sigma).
pub fn sqm_normalized_noise_std(gamma: f64, mu: f64) -> f64 {
    (2.0 * mu).sqrt() / gamma.powi(3)
}

#[allow(unused_imports)]
pub use LrBackend::*;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sqm_datasets::ClassificationSpec;

    fn dataset() -> (ClassificationDataset, ClassificationDataset) {
        ClassificationSpec::new(3000, 12)
            .with_seed(1)
            .generate()
            .split(0.8, 0)
    }

    fn cfg() -> LrConfig {
        LrConfig::new(150, 0.05).with_lr(2.0).with_seed(9)
    }

    #[test]
    fn non_private_learns() {
        let (train, test) = dataset();
        let mut rng = StdRng::seed_from_u64(2);
        let w = NonPrivateLogReg::new(cfg()).fit(&mut rng, &train);
        let acc = accuracy(&w, &test);
        assert!(acc > 0.80, "accuracy {acc}");
    }

    #[test]
    fn dpsgd_learns_at_moderate_eps() {
        let (train, test) = dataset();
        let mut rng = StdRng::seed_from_u64(3);
        let w = DpSgd::new(cfg(), 4.0, 1e-5).fit(&mut rng, &train);
        let acc = accuracy(&w, &test);
        assert!(acc > 0.72, "accuracy {acc}");
    }

    #[test]
    fn sqm_close_to_dpsgd_and_beats_local() {
        let (train, test) = dataset();
        let mut rng = StdRng::seed_from_u64(4);
        let reps = 3;
        let (mut a_sqm, mut a_dpsgd, mut a_local) = (0.0, 0.0, 0.0);
        for r in 0..reps {
            let c = cfg().with_seed(100 + r);
            a_sqm += accuracy(
                &SqmLogReg::new(c.clone(), 8192.0, 4.0, 1e-5).fit(&mut rng, &train),
                &test,
            );
            a_dpsgd += accuracy(
                &DpSgd::new(c.clone(), 4.0, 1e-5).fit(&mut rng, &train),
                &test,
            );
            a_local += accuracy(&LocalDpLogReg::new(4.0, 1e-5).fit(&mut rng, &train), &test);
        }
        let (a_sqm, a_dpsgd, a_local) = (
            a_sqm / reps as f64,
            a_dpsgd / reps as f64,
            a_local / reps as f64,
        );
        assert!(a_sqm > a_local + 0.03, "SQM {a_sqm} vs local {a_local}");
        assert!(a_sqm > a_dpsgd - 0.08, "SQM {a_sqm} vs DPSGD {a_dpsgd}");
    }

    #[test]
    fn approx_poly_close_to_exact_dpsgd() {
        // Figure 5: the Taylor approximation costs almost nothing.
        let (train, test) = dataset();
        let mut rng = StdRng::seed_from_u64(5);
        let a_exact = accuracy(&DpSgd::new(cfg(), 4.0, 1e-5).fit(&mut rng, &train), &test);
        let a_poly = accuracy(
            &ApproxPolyLogReg::new(cfg(), 4.0, 1e-5).fit(&mut rng, &train),
            &test,
        );
        assert!(
            (a_exact - a_poly).abs() < 0.08,
            "exact {a_exact} poly {a_poly}"
        );
    }

    #[test]
    fn epochs_to_rounds() {
        let c = LrConfig::from_epochs(5, 0.001);
        assert_eq!(c.rounds, 5000);
    }

    #[test]
    fn gradient_definitions_match_at_zero_weights() {
        // At w = 0: sigmoid(0) = 1/2 and the Taylor term vanishes, so both
        // gradients equal (1/2 - y) x exactly.
        let x = vec![0.3, -0.4];
        let w = vec![0.0, 0.0];
        assert_eq!(exact_gradient(&w, &x, 1.0), poly_gradient(&w, &x, 1.0));
    }

    #[test]
    fn weights_stay_in_unit_ball() {
        let (train, _) = dataset();
        let mut rng = StdRng::seed_from_u64(7);
        let w = NonPrivateLogReg::new(cfg()).fit(&mut rng, &train);
        let norm = w.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(norm <= 1.0 + 1e-9, "norm {norm}");
    }

    #[test]
    fn mpc_backend_produces_learning_model() {
        // Small instance; checks the full BGW gradient path trains.
        let (train, test) = ClassificationSpec::new(300, 5)
            .with_seed(8)
            .generate()
            .split(0.8, 1);
        let mut rng = StdRng::seed_from_u64(9);
        let c = LrConfig::new(25, 0.2).with_lr(2.0).with_seed(3);
        let w = SqmLogReg::new(c, 4096.0, 8.0, 1e-5)
            .with_backend(LrBackend::Mpc(VflConfig::fast(3)))
            .fit(&mut rng, &train);
        let acc = accuracy(&w, &test);
        assert!(acc > 0.6, "accuracy {acc}");
    }

    #[test]
    fn client_observed_epsilon_exceeds_server_target() {
        let mech = SqmLogReg::new(LrConfig::new(50, 0.05), 4096.0, 1.0, 1e-5).with_clients(8);
        let client = mech.achieved_client_epsilon(20);
        // Server-observed is calibrated to 1.0; client-observed loses the
        // subsampling amplification entirely, so it is much larger.
        assert!(client > 1.0, "client-observed eps {client}");
        assert!(client.is_finite());
    }

    #[test]
    fn noise_std_decreases_with_gamma_at_fixed_privacy() {
        // Figure 4 (right): the normalized Skellam noise approaches the
        // Gaussian noise level as gamma grows.
        let target = CalibrationTarget::new(1.0, 1e-5);
        let d = 100;
        let (rounds, q) = (100, 0.01);
        let sigma_gauss = calibrate_gaussian_sigma(target, 0.75, rounds, q);
        let mut last = f64::INFINITY;
        for gamma in [64.0, 512.0, 8192.0] {
            let mu = calibrate_skellam_mu(target, lr_sensitivity(gamma, d), rounds, q);
            let std = sqm_normalized_noise_std(gamma, mu);
            assert!(std < last, "gamma {gamma}");
            last = std;
        }
        assert!(
            last / sigma_gauss < 1.15,
            "normalized SQM noise {last} should approach Gaussian {sigma_gauss}"
        );
    }
}
