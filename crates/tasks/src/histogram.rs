//! Differentially private frequency estimation over vertically partitioned
//! categorical data.
//!
//! * **Histogram** (one attribute): counts are column sums of the one-hot
//!   encoding — Algorithm 1 with `lambda = 1`.
//! * **Contingency table** (two attributes held by *different* clients):
//!   the joint count matrix is the cross block of the covariance of the
//!   concatenated one-hot encodings `[A | B]` — a degree-2 polynomial, the
//!   same machinery as PCA. This is the canonical "two organizations want
//!   a joint frequency table without sharing raw data" workload
//!   (frequency estimation under multiparty DP, \[11\]).

use rand::Rng;
use sqm_accounting::analytic_gaussian::analytic_gaussian_sigma;
use sqm_accounting::calibration::{calibrate_skellam_mu, CalibrationTarget};
use sqm_accounting::skellam::Sensitivity;
use sqm_core::sensitivity::pca_sensitivity;
use sqm_linalg::Matrix;
use sqm_sampling::gaussian::sample_normal;
use sqm_vfl::covariance::covariance_skellam_plaintext;
use sqm_vfl::mean::column_sums_skellam_plaintext;

/// A categorical attribute: one value in `0..n_categories` per record.
#[derive(Clone, Debug)]
pub struct Categorical {
    values: Vec<usize>,
    n_categories: usize,
}

impl Categorical {
    pub fn new(values: Vec<usize>, n_categories: usize) -> Self {
        assert!(n_categories >= 1, "need at least one category");
        assert!(
            values.iter().all(|&v| v < n_categories),
            "category value out of range"
        );
        Categorical {
            values,
            n_categories,
        }
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    pub fn n_categories(&self) -> usize {
        self.n_categories
    }

    /// One-hot encoding: `m x k` matrix with a single 1 per row.
    pub fn one_hot(&self) -> Matrix {
        let mut x = Matrix::zeros(self.values.len(), self.n_categories);
        for (i, &v) in self.values.iter().enumerate() {
            x[(i, v)] = 1.0;
        }
        x
    }

    /// Exact counts.
    pub fn exact_counts(&self) -> Vec<f64> {
        let mut c = vec![0.0; self.n_categories];
        for &v in &self.values {
            c[v] += 1.0;
        }
        c
    }
}

/// Exact joint counts of two aligned attributes (`ka x kb`).
pub fn exact_contingency(a: &Categorical, b: &Categorical) -> Matrix {
    assert_eq!(a.len(), b.len(), "attributes must be aligned");
    let mut t = Matrix::zeros(a.n_categories, b.n_categories);
    for (&va, &vb) in a.values.iter().zip(&b.values) {
        t[(va, vb)] += 1.0;
    }
    t
}

/// SQM histogram release (degree-1, distributed Skellam).
#[derive(Clone, Debug)]
pub struct SqmHistogram {
    pub gamma: f64,
    pub target: CalibrationTarget,
    pub n_clients: usize,
}

impl SqmHistogram {
    pub fn new(gamma: f64, eps: f64, delta: f64) -> Self {
        SqmHistogram {
            gamma,
            target: CalibrationTarget::new(eps, delta),
            n_clients: 4,
        }
    }

    /// A record's one-hot row has L2 norm exactly 1; quantized,
    /// `gamma + sqrt(k)` with the rounding slack.
    pub fn calibrated_mu(&self, k: usize) -> f64 {
        let sens = Sensitivity::from_l2_for_dim(self.gamma + (k as f64).sqrt(), k);
        calibrate_skellam_mu(self.target, sens, 1, 1.0)
    }

    /// Estimate the counts.
    pub fn estimate<R: Rng + ?Sized>(&self, rng: &mut R, data: &Categorical) -> Vec<f64> {
        let k = data.n_categories();
        let mu = self.calibrated_mu(k);
        let one_hot = data.one_hot();
        column_sums_skellam_plaintext(rng, &one_hot, self.gamma, mu, self.n_clients)
            .into_iter()
            .map(|s| s / self.gamma)
            .collect()
    }
}

/// SQM contingency-table release (degree-2, via the joint one-hot
/// covariance).
#[derive(Clone, Debug)]
pub struct SqmContingency {
    pub gamma: f64,
    pub target: CalibrationTarget,
    pub n_clients: usize,
}

impl SqmContingency {
    pub fn new(gamma: f64, eps: f64, delta: f64) -> Self {
        SqmContingency {
            gamma,
            target: CalibrationTarget::new(eps, delta),
            n_clients: 2,
        }
    }

    /// Estimate the `ka x kb` joint counts of two attributes held by
    /// different clients.
    pub fn estimate<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        a: &Categorical,
        b: &Categorical,
    ) -> Matrix {
        assert_eq!(a.len(), b.len(), "attributes must be aligned");
        let (ka, kb) = (a.n_categories(), b.n_categories());
        // Concatenated one-hot record has norm sqrt(2).
        let n_cols = ka + kb;
        let sens = pca_sensitivity(self.gamma, (2.0f64).sqrt(), n_cols);
        let mu = calibrate_skellam_mu(self.target, sens, 1, 1.0);

        let m = a.len();
        let mut joint = Matrix::zeros(m, n_cols);
        for i in 0..m {
            joint[(i, a.values[i])] = 1.0;
            joint[(i, ka + b.values[i])] = 1.0;
        }
        let cov = covariance_skellam_plaintext(rng, &joint, self.gamma, mu, self.n_clients);
        // The A^T B block, down-scaled, is the contingency table.
        let mut t = Matrix::zeros(ka, kb);
        for i in 0..ka {
            for j in 0..kb {
                t[(i, j)] = cov[(i, ka + j)] / (self.gamma * self.gamma);
            }
        }
        t
    }
}

/// Central-DP baseline: Gaussian noise straight on the exact counts.
#[derive(Clone, Debug)]
pub struct GaussianHistogram {
    pub eps: f64,
    pub delta: f64,
}

impl GaussianHistogram {
    pub fn new(eps: f64, delta: f64) -> Self {
        GaussianHistogram { eps, delta }
    }

    pub fn estimate<R: Rng + ?Sized>(&self, rng: &mut R, data: &Categorical) -> Vec<f64> {
        // One record changes one count by 1: L2 sensitivity 1.
        let sigma = analytic_gaussian_sigma(self.eps, self.delta, 1.0);
        data.exact_counts()
            .into_iter()
            .map(|c| c + sample_normal(rng, 0.0, sigma))
            .collect()
    }
}

/// L1 distance between two count vectors.
pub fn l1_error(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

/// Total-variation distance between the *normalized* count vectors.
pub fn tv_distance(a: &[f64], b: &[f64]) -> f64 {
    let sa: f64 = a.iter().sum();
    let sb: f64 = b.iter().sum();
    assert!(sa > 0.0 && sb > 0.0, "cannot normalize empty histograms");
    0.5 * a
        .iter()
        .zip(b)
        .map(|(x, y)| (x / sa - y / sb).abs())
        .sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn zipfish(m: usize, k: usize, seed: u64) -> Categorical {
        let mut rng = StdRng::seed_from_u64(seed);
        let values = (0..m)
            .map(|_| {
                // Skewed categories: heavier mass on low indices.
                let u: f64 = rng.gen();
                ((u * u) * k as f64) as usize % k
            })
            .collect();
        Categorical::new(values, k)
    }

    #[test]
    fn one_hot_and_exact_counts() {
        let c = Categorical::new(vec![0, 2, 2, 1], 3);
        assert_eq!(c.exact_counts(), vec![1.0, 1.0, 2.0]);
        let oh = c.one_hot();
        assert_eq!(oh[(1, 2)], 1.0);
        assert_eq!(oh[(1, 0)], 0.0);
        assert_eq!(oh.max_row_norm(), 1.0);
    }

    #[test]
    fn sqm_histogram_is_accurate() {
        let data = zipfish(20_000, 8, 1);
        let truth = data.exact_counts();
        let mut rng = StdRng::seed_from_u64(2);
        let est = SqmHistogram::new(4096.0, 1.0, 1e-5).estimate(&mut rng, &data);
        // Counts are in the thousands; noise std is O(10).
        assert!(
            tv_distance(&est, &truth) < 0.01,
            "tv {}",
            tv_distance(&est, &truth)
        );
    }

    #[test]
    fn sqm_tracks_central_histogram() {
        let data = zipfish(5_000, 10, 3);
        let truth = data.exact_counts();
        let mut rng = StdRng::seed_from_u64(4);
        let reps = 20;
        let (mut e_sqm, mut e_central) = (0.0, 0.0);
        for _ in 0..reps {
            e_sqm += l1_error(
                &SqmHistogram::new(8192.0, 1.0, 1e-5).estimate(&mut rng, &data),
                &truth,
            );
            e_central += l1_error(
                &GaussianHistogram::new(1.0, 1e-5).estimate(&mut rng, &data),
                &truth,
            );
        }
        // SQM calibrates against the conservative bound gamma + sqrt(k);
        // within 2x of central is the "comparable" regime.
        assert!(
            e_sqm < 2.0 * e_central,
            "SQM {e_sqm} vs central {e_central}"
        );
    }

    #[test]
    fn contingency_matches_exact_at_loose_privacy() {
        let a = zipfish(10_000, 4, 5);
        let b = zipfish(10_000, 3, 6);
        let truth = exact_contingency(&a, &b);
        let mut rng = StdRng::seed_from_u64(7);
        let est = SqmContingency::new(4096.0, 8.0, 1e-5).estimate(&mut rng, &a, &b);
        let rel = est.sub(&truth).frobenius_norm() / truth.frobenius_norm();
        assert!(rel < 0.02, "relative error {rel}");
    }

    #[test]
    fn contingency_marginals_match_histograms() {
        let a = zipfish(8_000, 5, 8);
        let b = zipfish(8_000, 4, 9);
        let mut rng = StdRng::seed_from_u64(10);
        let t = SqmContingency::new(4096.0, 8.0, 1e-5).estimate(&mut rng, &a, &b);
        // Row sums of the joint table ~ histogram of A.
        let truth_a = a.exact_counts();
        for i in 0..5 {
            let row_sum: f64 = (0..4).map(|j| t[(i, j)]).sum();
            assert!(
                (row_sum - truth_a[i]).abs() < 0.02 * a.len() as f64 / 5.0 + 20.0,
                "marginal {i}: {row_sum} vs {}",
                truth_a[i]
            );
        }
    }

    #[test]
    fn error_grows_as_eps_shrinks() {
        let data = zipfish(5_000, 6, 11);
        let truth = data.exact_counts();
        let mut rng = StdRng::seed_from_u64(12);
        let reps = 10;
        let err_at = |eps: f64, rng: &mut StdRng| {
            (0..reps)
                .map(|_| {
                    l1_error(
                        &SqmHistogram::new(4096.0, eps, 1e-5).estimate(rng, &data),
                        &truth,
                    )
                })
                .sum::<f64>()
                / reps as f64
        };
        let tight = err_at(0.25, &mut rng);
        let loose = err_at(8.0, &mut rng);
        assert!(loose < tight, "loose {loose} vs tight {tight}");
    }

    #[test]
    fn tv_distance_properties() {
        assert_eq!(tv_distance(&[1.0, 1.0], &[2.0, 2.0]), 0.0);
        assert!((tv_distance(&[1.0, 0.0], &[0.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_category() {
        Categorical::new(vec![0, 5], 3);
    }
}
