//! Differentially private mean release — the degree-1 instantiation.
//!
//! Estimating the per-attribute mean of a vertically partitioned database
//! is Algorithm 1 with `lambda = 1` applied to each column. It is the
//! cleanest illustration of the framework: quantize, add distributed
//! Skellam calibrated to the record norm, open, rescale.

use rand::Rng;
use sqm_accounting::analytic_gaussian::analytic_gaussian_sigma;
use sqm_accounting::calibration::{calibrate_skellam_mu, CalibrationTarget};
use sqm_accounting::skellam::Sensitivity;
use sqm_core::baseline::local_dp_release;
use sqm_linalg::Matrix;
use sqm_sampling::gaussian::sample_normal;
use sqm_vfl::mean::{column_sums_skellam, column_sums_skellam_plaintext};
use sqm_vfl::{ColumnPartition, VflConfig};

/// Execution backend for SQM-Mean.
#[derive(Clone, Debug)]
// The Mpc variant carries the whole VflConfig (transport backend
// included); backends are built once per task, so the size gap is fine.
#[allow(clippy::large_enum_variant)]
pub enum MeanBackend {
    Plaintext,
    Mpc(VflConfig),
}

/// SQM instantiated on per-attribute means.
#[derive(Clone, Debug)]
pub struct SqmMean {
    pub gamma: f64,
    pub target: CalibrationTarget,
    pub n_clients: usize,
    /// *Public* record-norm bound `c`; noise is calibrated to it, never to
    /// the private data.
    pub norm_bound: f64,
    pub backend: MeanBackend,
}

impl SqmMean {
    pub fn new(gamma: f64, eps: f64, delta: f64) -> Self {
        SqmMean {
            gamma,
            target: CalibrationTarget::new(eps, delta),
            n_clients: 4,
            norm_bound: 1.0,
            backend: MeanBackend::Plaintext,
        }
    }

    pub fn with_backend(mut self, backend: MeanBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Sensitivity of the quantized column-sum release: one record
    /// contributes its quantized row, `||hat x||_2 <= gamma c + sqrt(n)`.
    pub fn sensitivity(&self, c: f64, n: usize) -> Sensitivity {
        Sensitivity::from_l2_for_dim(self.gamma * c + (n as f64).sqrt(), n)
    }

    /// The calibrated Skellam parameter.
    pub fn calibrated_mu(&self, c: f64, n: usize) -> f64 {
        calibrate_skellam_mu(self.target, self.sensitivity(c, n), 1, 1.0)
    }

    /// Estimate the per-column means.
    pub fn estimate<R: Rng + ?Sized>(&self, rng: &mut R, data: &Matrix) -> Vec<f64> {
        let n = data.cols();
        let m = data.rows().max(1);
        let c = self.norm_bound;
        assert!(
            data.max_row_norm() <= c * (1.0 + 1e-9),
            "a record exceeds the public norm bound c = {c}"
        );
        let mu = self.calibrated_mu(c, n);
        let sums = match &self.backend {
            MeanBackend::Plaintext => {
                column_sums_skellam_plaintext(rng, data, self.gamma, mu, self.n_clients)
            }
            MeanBackend::Mpc(cfg) => {
                let partition = ColumnPartition::even(n, cfg.n_clients);
                column_sums_skellam(data, &partition, self.gamma, mu, cfg).sums_hat
            }
        };
        sums.into_iter()
            .map(|s| s / (self.gamma * m as f64))
            .collect()
    }
}

/// Central-DP baseline: perturb the exact sums with calibrated Gaussian.
#[derive(Clone, Debug)]
pub struct GaussianMean {
    pub eps: f64,
    pub delta: f64,
    /// Public record-norm bound `c`.
    pub norm_bound: f64,
}

impl GaussianMean {
    pub fn new(eps: f64, delta: f64) -> Self {
        GaussianMean {
            eps,
            delta,
            norm_bound: 1.0,
        }
    }

    pub fn estimate<R: Rng + ?Sized>(&self, rng: &mut R, data: &Matrix) -> Vec<f64> {
        let n = data.cols();
        let m = data.rows().max(1);
        let c = self.norm_bound;
        assert!(
            data.max_row_norm() <= c * (1.0 + 1e-9),
            "record exceeds public bound"
        );
        let sigma = analytic_gaussian_sigma(self.eps, self.delta, c);
        (0..n)
            .map(|j| {
                let s: f64 = data.col(j).iter().sum();
                (s + sample_normal(rng, 0.0, sigma)) / m as f64
            })
            .collect()
    }
}

/// Local-DP baseline: Algorithm 4 then average the noisy data.
#[derive(Clone, Debug)]
pub struct LocalDpMean {
    pub eps: f64,
    pub delta: f64,
    /// Public record-norm bound `c`.
    pub norm_bound: f64,
}

impl LocalDpMean {
    pub fn new(eps: f64, delta: f64) -> Self {
        LocalDpMean {
            eps,
            delta,
            norm_bound: 1.0,
        }
    }

    pub fn estimate<R: Rng + ?Sized>(&self, rng: &mut R, data: &Matrix) -> Vec<f64> {
        let c = self.norm_bound;
        assert!(
            data.max_row_norm() <= c * (1.0 + 1e-9),
            "record exceeds public bound"
        );
        let noisy = local_dp_release(rng, data, self.eps, self.delta, c);
        let m = noisy.rows().max(1);
        (0..noisy.cols())
            .map(|j| noisy.col(j).iter().sum::<f64>() / m as f64)
            .collect()
    }
}

/// Exact means (no privacy).
pub fn exact_means(data: &Matrix) -> Vec<f64> {
    let m = data.rows().max(1);
    (0..data.cols())
        .map(|j| data.col(j).iter().sum::<f64>() / m as f64)
        .collect()
}

/// L2 error between two mean vectors.
pub fn mean_l2_error(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).powi(2))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sqm_datasets::SpectralSpec;

    fn data() -> Matrix {
        SpectralSpec::new(2000, 8).with_seed(9).generate()
    }

    #[test]
    fn error_ordering_sqm_between_central_and_local() {
        let x = data();
        let truth = exact_means(&x);
        let mut rng = StdRng::seed_from_u64(1);
        let (eps, delta) = (1.0, 1e-5);
        let reps = 20;
        let (mut e_sqm, mut e_central, mut e_local) = (0.0, 0.0, 0.0);
        for _ in 0..reps {
            e_sqm += mean_l2_error(
                &SqmMean::new(4096.0, eps, delta).estimate(&mut rng, &x),
                &truth,
            );
            e_central += mean_l2_error(
                &GaussianMean::new(eps, delta).estimate(&mut rng, &x),
                &truth,
            );
            e_local += mean_l2_error(&LocalDpMean::new(eps, delta).estimate(&mut rng, &x), &truth);
        }
        let (e_sqm, e_central, e_local) = (
            e_sqm / reps as f64,
            e_central / reps as f64,
            e_local / reps as f64,
        );
        assert!(e_sqm < e_local, "SQM {e_sqm} must beat local {e_local}");
        assert!(
            e_sqm < e_central * 1.5,
            "SQM {e_sqm} should track central {e_central}"
        );
    }

    #[test]
    fn sqm_mean_is_accurate_at_loose_privacy() {
        let x = data();
        let truth = exact_means(&x);
        let mut rng = StdRng::seed_from_u64(2);
        let est = SqmMean::new(8192.0, 8.0, 1e-5).estimate(&mut rng, &x);
        let err = mean_l2_error(&est, &truth);
        // Means of 2000 records with sigma ~ sensitivity/eps/m are tiny.
        assert!(err < 0.01, "err {err}");
    }

    #[test]
    fn mpc_backend_agrees() {
        let x = SpectralSpec::new(100, 4).with_seed(10).generate();
        let truth = exact_means(&x);
        let mut rng = StdRng::seed_from_u64(3);
        let est = SqmMean::new(8192.0, 8.0, 1e-5)
            .with_backend(MeanBackend::Mpc(VflConfig::fast(2)))
            .estimate(&mut rng, &x);
        let err = mean_l2_error(&est, &truth);
        assert!(err < 0.05, "err {err}");
    }

    #[test]
    fn sensitivity_shrinks_relative_to_gamma() {
        let m1 = SqmMean::new(64.0, 1.0, 1e-5);
        let m2 = SqmMean::new(65536.0, 1.0, 1e-5);
        let r1 = m1.sensitivity(1.0, 100).l2 / 64.0;
        let r2 = m2.sensitivity(1.0, 100).l2 / 65536.0;
        assert!(r2 < r1, "relative sensitivity should shrink: {r1} -> {r2}");
        assert!((r2 - 1.0).abs() < 0.01);
    }
}
