//! Differentially private PCA: SQM and its comparators (Section V-A,
//! Figure 2).
//!
//! All variants release a rank-`k` subspace of the covariance `X^T X`;
//! utility is `||X V||_F^2`, the variance the subspace captures.

use rand::Rng;
use sqm_accounting::calibration::{calibrate_skellam_mu, skellam_epsilon, CalibrationTarget};
use sqm_core::baseline::local_dp_release;
use sqm_core::sensitivity::pca_sensitivity;
use sqm_linalg::eigen::{captured_variance, top_k_eigenvectors_with_sweeps};
use sqm_linalg::Matrix;
use sqm_sampling::gaussian::sample_normal;
use sqm_vfl::covariance::{covariance_skellam, covariance_skellam_plaintext};
use sqm_vfl::{ColumnPartition, VflConfig};

/// Top-k eigenvectors, reporting eigensolver work to the metrics registry
/// (`eigen.sweeps` histogram) when observability is enabled.
fn top_k_eigenvectors(a: &Matrix, k: usize) -> Matrix {
    let (v, sweeps) = top_k_eigenvectors_with_sweeps(a, k);
    if let Some(sweeps) = sweeps {
        sqm_obs::metrics::histogram_record("eigen.sweeps", sweeps as f64);
    }
    v
}

/// Which execution backend SQM-PCA runs on.
#[derive(Clone, Debug)]
// The Mpc variant carries the whole VflConfig (transport backend
// included); backends are built once per task, so the size gap is fine.
#[allow(clippy::large_enum_variant)]
pub enum PcaBackend {
    /// Output-equivalent plaintext simulation — fast, for statistical
    /// experiments.
    Plaintext,
    /// Full BGW execution across `VflConfig::n_clients` parties.
    Mpc(VflConfig),
}

/// SQM instantiated on PCA.
#[derive(Clone, Debug)]
pub struct SqmPca {
    /// Rank of the released subspace.
    pub k: usize,
    /// Quantization scale.
    pub gamma: f64,
    /// Server-observed `(eps, delta)` target; the Skellam `mu` is calibrated
    /// from Lemma 5 + Lemma 1 + Lemma 9.
    pub target: CalibrationTarget,
    /// Number of clients (used for the distributed noise simulation; the
    /// privacy-utility trade-off does not depend on it — Section V-C).
    pub n_clients: usize,
    /// *Public* record-norm bound `c` (the paper's `||x||_2 <= c`
    /// assumption). Sensitivity is calibrated to this bound — never to the
    /// private data — so it must be fixed independently of the dataset;
    /// records exceeding it are rejected at fit time.
    pub norm_bound: f64,
    /// Execution backend.
    pub backend: PcaBackend,
}

impl SqmPca {
    pub fn new(k: usize, gamma: f64, eps: f64, delta: f64) -> Self {
        SqmPca {
            k,
            gamma,
            target: CalibrationTarget::new(eps, delta),
            n_clients: 4,
            norm_bound: 1.0,
            backend: PcaBackend::Plaintext,
        }
    }

    pub fn with_clients(mut self, n: usize) -> Self {
        self.n_clients = n;
        self
    }

    /// Override the public record-norm bound `c`.
    pub fn with_norm_bound(mut self, c: f64) -> Self {
        assert!(c > 0.0, "norm bound must be positive");
        self.norm_bound = c;
        self
    }

    pub fn with_backend(mut self, backend: PcaBackend) -> Self {
        self.backend = backend;
        self
    }

    /// The Skellam noise parameter this configuration calibrates to, given
    /// the record-norm bound `c` and data dimension `n`.
    pub fn calibrated_mu(&self, c: f64, n: usize) -> f64 {
        let sens = pca_sensitivity(self.gamma, c, n);
        calibrate_skellam_mu(self.target, sens, 1, 1.0)
    }

    /// Fit: returns the rank-`k` subspace (`n x k`). Panics if any record
    /// exceeds the public norm bound (calibrating to the empirical maximum
    /// would leak it).
    pub fn fit<R: Rng + ?Sized>(&self, rng: &mut R, data: &Matrix) -> Matrix {
        let n = data.cols();
        assert!(self.k <= n, "k={} exceeds dimension {n}", self.k);
        let c = self.norm_bound;
        assert!(
            data.max_row_norm() <= c * (1.0 + 1e-9),
            "a record exceeds the public norm bound c = {c}; clip the data first"
        );
        let mu = self.calibrated_mu(c, n);
        let c_hat = match &self.backend {
            PcaBackend::Plaintext => {
                covariance_skellam_plaintext(rng, data, self.gamma, mu, self.n_clients)
            }
            PcaBackend::Mpc(cfg) => {
                let partition = ColumnPartition::even(n, cfg.n_clients);
                covariance_skellam(data, &partition, self.gamma, mu, cfg).c_hat
            }
        };
        let c_tilde = c_hat.scaled(1.0 / (self.gamma * self.gamma));
        top_k_eigenvectors(&c_tilde, self.k)
    }

    /// The server-observed epsilon actually achieved (for reporting).
    pub fn achieved_epsilon(&self, c: f64, n: usize) -> f64 {
        let sens = pca_sensitivity(self.gamma, c, n);
        let mu = self.calibrated_mu(c, n);
        skellam_epsilon(sens, mu, 1, 1.0, self.target.delta).0
    }

    /// The *client-observed* epsilon (Eq. 4): a curious client knows her own
    /// noise share, so the effective noise is `Sk((P-1)/P mu)` and the
    /// replacement sensitivity doubles (Lemma 5's tau_client). Always weaker
    /// than the server-observed guarantee; converges to roughly twice it as
    /// the client count grows (Section V-C).
    pub fn achieved_client_epsilon(&self, c: f64, n: usize) -> f64 {
        use sqm_accounting::skellam::skellam_rdp_client_observed;
        use sqm_accounting::{default_alpha_grid, rdp_to_dp};
        let sens = pca_sensitivity(self.gamma, c, n);
        let mu = self.calibrated_mu(c, n);
        default_alpha_grid()
            .into_iter()
            .map(|a| {
                rdp_to_dp(
                    a as f64,
                    skellam_rdp_client_observed(a, sens, mu, self.n_clients),
                    self.target.delta,
                )
            })
            .fold(f64::INFINITY, f64::min)
    }
}

/// The central-DP baseline: Analyze Gauss (Dwork et al. \[65\]) — perturb
/// the covariance with a symmetric Gaussian matrix calibrated to the
/// `c^2` Frobenius sensitivity.
#[derive(Clone, Debug)]
pub struct AnalyzeGaussPca {
    pub k: usize,
    pub eps: f64,
    pub delta: f64,
    /// Public record-norm bound `c`.
    pub norm_bound: f64,
}

impl AnalyzeGaussPca {
    pub fn new(k: usize, eps: f64, delta: f64) -> Self {
        AnalyzeGaussPca {
            k,
            eps,
            delta,
            norm_bound: 1.0,
        }
    }

    pub fn fit<R: Rng + ?Sized>(&self, rng: &mut R, data: &Matrix) -> Matrix {
        let n = data.cols();
        assert!(self.k <= n);
        let c = self.norm_bound;
        assert!(
            data.max_row_norm() <= c * (1.0 + 1e-9),
            "a record exceeds the public norm bound c = {c}"
        );
        let sigma =
            sqm_accounting::analytic_gaussian::analytic_gaussian_sigma(self.eps, self.delta, c * c);
        let mut cov = data.gram();
        for j in 0..n {
            for k2 in j..n {
                let z = sample_normal(rng, 0.0, sigma);
                cov[(j, k2)] += z;
                if k2 != j {
                    cov[(k2, j)] += z;
                }
            }
        }
        top_k_eigenvectors(&cov, self.k)
    }
}

/// The VFL local-DP baseline: Algorithm 4 then non-private PCA on the
/// perturbed data.
#[derive(Clone, Debug)]
pub struct LocalDpPca {
    pub k: usize,
    pub eps: f64,
    pub delta: f64,
    /// Public record-norm bound `c`.
    pub norm_bound: f64,
}

impl LocalDpPca {
    pub fn new(k: usize, eps: f64, delta: f64) -> Self {
        LocalDpPca {
            k,
            eps,
            delta,
            norm_bound: 1.0,
        }
    }

    pub fn fit<R: Rng + ?Sized>(&self, rng: &mut R, data: &Matrix) -> Matrix {
        assert!(self.k <= data.cols());
        let c = self.norm_bound;
        assert!(
            data.max_row_norm() <= c * (1.0 + 1e-9),
            "a record exceeds the public norm bound c = {c}"
        );
        let noisy = local_dp_release(rng, data, self.eps, self.delta, c);
        top_k_eigenvectors(&noisy.gram(), self.k)
    }
}

/// Non-private PCA: the utility ceiling.
#[derive(Clone, Debug)]
pub struct NonPrivatePca {
    pub k: usize,
}

impl NonPrivatePca {
    pub fn new(k: usize) -> Self {
        NonPrivatePca { k }
    }

    pub fn fit(&self, data: &Matrix) -> Matrix {
        top_k_eigenvectors(&data.gram(), self.k)
    }
}

/// Figure 2's utility metric for any fitted subspace.
pub fn pca_utility(data: &Matrix, subspace: &Matrix) -> f64 {
    captured_variance(data, subspace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sqm_datasets::SpectralSpec;

    fn data() -> Matrix {
        SpectralSpec::new(800, 12)
            .with_decay(1.0)
            .with_seed(3)
            .generate()
    }

    #[test]
    fn sqm_beats_local_dp_and_tracks_central() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = data();
        let k = 3;
        let (eps, delta) = (2.0, 1e-5);

        let ceiling = pca_utility(&x, &NonPrivatePca::new(k).fit(&x));
        let mut sqm_u = 0.0;
        let mut central_u = 0.0;
        let mut local_u = 0.0;
        let reps = 5;
        for _ in 0..reps {
            sqm_u += pca_utility(&x, &SqmPca::new(k, 4096.0, eps, delta).fit(&mut rng, &x));
            central_u += pca_utility(&x, &AnalyzeGaussPca::new(k, eps, delta).fit(&mut rng, &x));
            local_u += pca_utility(&x, &LocalDpPca::new(k, eps, delta).fit(&mut rng, &x));
        }
        let (sqm_u, central_u, local_u) = (
            sqm_u / reps as f64,
            central_u / reps as f64,
            local_u / reps as f64,
        );
        assert!(sqm_u > local_u, "SQM {sqm_u} must beat local-DP {local_u}");
        assert!(
            sqm_u > 0.8 * central_u,
            "SQM {sqm_u} should approach central {central_u}"
        );
        assert!(sqm_u <= ceiling * (1.0 + 1e-9));
    }

    #[test]
    fn utility_improves_with_gamma() {
        // Figure 2's gamma trend: finer quantization => higher utility,
        // because the sensitivity overhead n/(gamma^2 c^2) shrinks.
        let mut rng = StdRng::seed_from_u64(2);
        let x = data();
        let k = 3;
        let mut utilities = Vec::new();
        for gamma in [8.0, 64.0, 2048.0] {
            let mut acc = 0.0;
            for _ in 0..5 {
                acc += pca_utility(&x, &SqmPca::new(k, gamma, 1.0, 1e-5).fit(&mut rng, &x));
            }
            utilities.push(acc / 5.0);
        }
        assert!(
            utilities[2] > utilities[0],
            "gamma trend violated: {utilities:?}"
        );
    }

    #[test]
    fn calibration_meets_target_epsilon() {
        let x = data();
        let mech = SqmPca::new(3, 1024.0, 1.0, 1e-5);
        let achieved = mech.achieved_epsilon(x.max_row_norm(), x.cols());
        assert!(achieved <= 1.0 + 1e-6, "achieved {achieved}");
        assert!(achieved > 0.9, "calibration too conservative: {achieved}");
    }

    #[test]
    fn mpc_backend_agrees_with_plaintext() {
        let x = SpectralSpec::new(60, 6).with_seed(4).generate();
        let k = 2;
        let mut rng = StdRng::seed_from_u64(5);
        let plain = SqmPca::new(k, 2048.0, 8.0, 1e-5).fit(&mut rng, &x);
        let mpc = SqmPca::new(k, 2048.0, 8.0, 1e-5)
            .with_backend(PcaBackend::Mpc(VflConfig::fast(3)))
            .fit(&mut rng, &x);
        // Independent noise draws => different subspaces, but both useful.
        let u_plain = pca_utility(&x, &plain);
        let u_mpc = pca_utility(&x, &mpc);
        let ceiling = pca_utility(&x, &NonPrivatePca::new(k).fit(&x));
        assert!(u_plain > 0.5 * ceiling, "{u_plain} vs {ceiling}");
        assert!(u_mpc > 0.5 * ceiling, "{u_mpc} vs {ceiling}");
    }

    #[test]
    fn subspace_shape_and_orthonormality() {
        let mut rng = StdRng::seed_from_u64(6);
        let x = data();
        let v = SqmPca::new(4, 1024.0, 4.0, 1e-5).fit(&mut rng, &x);
        assert_eq!((v.rows(), v.cols()), (12, 4));
        let vtv = v.transpose().matmul(&v);
        assert!(
            vtv.sub(&Matrix::identity(4)).frobenius_norm() < 1e-8,
            "columns not orthonormal"
        );
    }

    #[test]
    fn client_observed_epsilon_is_weaker_but_bounded() {
        let x = data();
        let mech = SqmPca::new(3, 1024.0, 1.0, 1e-5).with_clients(16);
        let server = mech.achieved_epsilon(x.max_row_norm(), x.cols());
        let client = mech.achieved_client_epsilon(x.max_row_norm(), x.cols());
        assert!(
            client > server,
            "client {client} must exceed server {server}"
        );
        // With many clients the degradation is dominated by sensitivity
        // doubling: roughly 2x epsilon in the Gaussian regime.
        assert!(client < 4.0 * server, "client {client} vs server {server}");
    }

    #[test]
    fn tighter_privacy_means_lower_utility() {
        let mut rng = StdRng::seed_from_u64(7);
        let x = data();
        let mut u_tight = 0.0;
        let mut u_loose = 0.0;
        for _ in 0..5 {
            u_tight += pca_utility(&x, &SqmPca::new(3, 1024.0, 0.25, 1e-5).fit(&mut rng, &x));
            u_loose += pca_utility(&x, &SqmPca::new(3, 1024.0, 8.0, 1e-5).fit(&mut rng, &x));
        }
        assert!(u_loose > u_tight, "loose {u_loose} vs tight {u_tight}");
    }
}
