//! Acceptance tests for request-scoped tracing and SLO observability.
//!
//! Three contracts, per the serving layer's design:
//!
//! 1. **Exactness.** A traced request's span tree is *defined* by the
//!    scheduler's own measurements: root == queue_wait + exec with
//!    `assert_eq` (no epsilon), and the MPC child span's critical-path
//!    total equals `RunStats::simulated_time()` through the causal link.
//! 2. **Passivity.** Tracing never perturbs results: released covariance
//!    bits, protocol counters, and the load digest are bit-identical with
//!    tracing on vs off.
//! 3. **Determinism.** The slow-request dump contains only deterministic
//!    fields, so two runs of the same seeded workload dump byte-identical
//!    JSONL.

use std::sync::Arc;
use std::time::Duration;

use sqm_obs::span::{RequestOutcome, SpanConfig, EXEC, QUEUE, ROOT};
use sqm_serve::{run_load, LoadSpec, Reply, Request, Server, ServerConfig, Tenant, TenantConfig};

fn records(n: usize, cols: usize, salt: u64) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            (0..cols)
                .map(|j| {
                    ((i * cols + j) as f64 * 0.31 + salt as f64 * 0.17).sin() / (cols as f64).sqrt()
                })
                .collect()
        })
        .collect()
}

fn traced_tenant_cfg(name: &str, seed: u64) -> TenantConfig {
    let mut cfg = TenantConfig::new(name);
    cfg.seed = seed;
    cfg.mu = 200.0;
    cfg.budget_eps = f64::INFINITY;
    cfg.request_tracing = true;
    cfg
}

fn traced_server() -> Arc<Server> {
    Server::start(ServerConfig {
        tracing: Some(SpanConfig::dump_all()),
        ..ServerConfig::default()
    })
}

#[test]
fn span_tree_end_to_end_equals_queue_wait_plus_exec_exactly() {
    let server = traced_server();
    server.add_tenant(traced_tenant_cfg("acme", 21)).unwrap();
    server
        .call(
            "acme",
            Request::Ingest {
                records: records(5, 3, 1),
            },
        )
        .unwrap();
    let reply = match server.call("acme", Request::Release).unwrap() {
        Reply::Released(rel) => rel,
        other => panic!("expected release, got {other:?}"),
    };

    let collector = server.spans().expect("tracing configured");
    let finished = collector.slow_requests();
    assert_eq!(finished.len(), 2, "ingest + release both retained");
    for req in &finished {
        // The exactness contract: the root span is defined as the
        // scheduler's queue_wait + exec, so the tree sums with no epsilon.
        assert_eq!(
            req.spans[ROOT].duration,
            req.spans[QUEUE].duration + req.spans[EXEC].duration,
            "request {}/{} span tree must sum exactly",
            req.tenant,
            req.seq
        );
        assert_eq!(req.outcome, RequestOutcome::Ok);
        assert_eq!(req.spans[QUEUE].parent, Some(ROOT));
        assert_eq!(req.spans[EXEC].parent, Some(ROOT));
    }

    // The release's MPC child span links to the causal run id and its
    // critical-path total equals the engine-reported simulated time —
    // the same exactness the causal layer guarantees engine-side.
    let release = finished.iter().find(|r| r.kind == "release").unwrap();
    let mpc = release.span("mpc").expect("release must have an MPC span");
    assert_eq!(mpc.parent, Some(EXEC));
    assert_eq!(mpc.run_id, Some(21), "causal link is the session seed");
    assert_eq!(mpc.rounds, reply.stats.total.rounds);
    assert_eq!(mpc.messages, reply.stats.total.messages);
    assert_eq!(mpc.bytes, reply.stats.total.bytes);
    let critical = mpc
        .critical
        .as_ref()
        .expect("request_tracing attaches the critical path");
    assert_eq!(critical.total, reply.stats.simulated_time());
    assert_eq!(critical.unmatched_sends, 0);
    assert_eq!(critical.unmatched_recvs, 0);
    assert_eq!(critical.lamport_violations, 0);
    assert!(!critical.parties.is_empty());
    assert_eq!(
        critical.parties.iter().map(|p| p.messages).sum::<u64>(),
        reply.stats.total.messages,
        "per-party breakdown must cover every message"
    );
    // Admit and encode phases also appear under exec.
    assert!(release.span("admit").is_some());
    assert!(release.span("encode").is_some());

    server.shutdown();
}

#[test]
fn tracing_is_passive_results_bit_identical_on_vs_off() {
    // Direct tenant comparison: same seed/plan, tracing on vs off.
    let run = |tracing: bool| {
        let mut cfg = traced_tenant_cfg("bits", 77);
        cfg.request_tracing = tracing;
        let mut t = Tenant::create(cfg).unwrap();
        t.ingest(&records(6, 3, 9)).unwrap();
        let a = t.release().unwrap();
        t.ingest(&records(3, 3, 10)).unwrap();
        let b = t.release().unwrap();
        (
            a.covariance.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            b.covariance.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            (
                a.stats.total.rounds,
                a.stats.total.messages,
                a.stats.total.bytes,
            ),
            (
                b.stats.total.rounds,
                b.stats.total.messages,
                b.stats.total.bytes,
            ),
        )
    };
    assert_eq!(run(true), run(false), "tracing must not perturb results");

    // Whole-stack comparison: the load digest with a traced server and
    // traced tenants vs a plain server.
    let load = |tracing: bool| {
        let server = if tracing {
            traced_server()
        } else {
            Server::start(ServerConfig::default())
        };
        let spec = LoadSpec {
            tracing,
            ..LoadSpec::smoke()
        };
        let report = run_load(&server, &spec);
        server.shutdown();
        (
            report.digest(),
            report.releases_admitted(),
            report.budget_refusals(),
        )
    };
    assert_eq!(load(true), load(false), "load digest must match on vs off");
}

#[test]
fn slow_request_dump_is_byte_deterministic_and_wall_free() {
    let run = || {
        let server = traced_server();
        let spec = LoadSpec {
            tracing: true,
            ..LoadSpec::smoke()
        };
        run_load(&server, &spec);
        let dump = server
            .spans()
            .unwrap()
            .render_slow_dump(LoadSpec::smoke().seed);
        server.shutdown();
        dump
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "seeded dump must be byte-identical");

    let spec = LoadSpec::smoke();
    let lines: Vec<&str> = first.lines().collect();
    // Meta header + one line per request (every request retained under
    // the pinned zero threshold): tenants * rounds * (ingest + release).
    assert_eq!(lines.len(), 1 + spec.tenants * spec.rounds * 2);
    assert!(lines[0].contains("\"slowreq_meta\""));
    assert!(lines[0].contains("\"threshold\":\"fixed\""));
    // No measured wall time may leak into the dump.
    assert!(!first.contains("wall"));
    assert!(!first.contains("duration"));
    // Admitted releases carry the causal link; refused ones carry their
    // outcome. Every line parses as standalone JSON.
    assert!(first.contains("\"run_id\":"));
    assert!(first.contains("\"outcome\":\"refused\""));
    assert!(first.contains("\"critical\":"));
    for line in &lines {
        sqm_obs::json::parse(line).expect("dump line must be valid JSON");
    }

    // The SLO snapshot accounts for every request.
    let server = traced_server();
    let report = run_load(
        &server,
        &LoadSpec {
            tracing: true,
            ..LoadSpec::smoke()
        },
    );
    let snap = server.spans().unwrap().snapshot();
    assert_eq!(
        snap.total_requests as usize,
        spec.tenants * spec.rounds * 2,
        "every ingest and release is one finished request"
    );
    assert_eq!(snap.total_releases as usize, report.releases_admitted());
    assert_eq!(snap.total_refusals as usize, report.budget_refusals());
    assert_eq!(snap.total_failures, 0);
    assert!(snap.bucket_width >= Duration::from_millis(1));
    assert_eq!(
        snap.buckets.iter().map(|b| b.requests).sum::<u64>(),
        snap.total_requests
    );
    server.shutdown();
}
