//! One tenant: a long-lived streaming covariance session with an enforced
//! privacy budget.
//!
//! Every release goes through [`PrivacyOdometer::admit`] *before* any MPC
//! round runs; a refusal is the typed [`ServeError::BudgetExhausted`] and
//! costs nothing. Admitted releases are recorded in both the odometer and
//! the obs [`PrivacyLedger`], and the two accounts are cross-checked after
//! every release ([`Tenant::budget_consistent_with_ledger`]).

use sqm_accounting::{default_alpha_grid, skellam_rdp, Admission, PrivacyOdometer, RdpCurve};
use sqm_core::sensitivity::pca_sensitivity;
use sqm_linalg::Matrix;
use sqm_mpc::{FaultSpec, RunStats};
use sqm_obs::causal::MessageDag;
use sqm_obs::ledger::PrivacyLedger;
use sqm_obs::metrics;
use sqm_obs::span::{CriticalSummary, RequestContext, EXEC};
use sqm_vfl::{ColumnPartition, StreamCov, VflConfig};

use std::time::Instant;

use crate::error::ServeError;

/// Static description of a tenant's session, fixed at creation.
#[derive(Clone, Debug)]
pub struct TenantConfig {
    /// Unique tenant name (the protocol's routing key).
    pub name: String,
    /// Feature columns, split evenly across the MPC clients.
    pub n_cols: usize,
    /// MPC parties (>= 2; >= 3 for actual inter-client secrecy).
    pub n_clients: usize,
    /// Quantization scale.
    pub gamma: f64,
    /// Skellam parameter per release (mu > 0 for a finite budget).
    pub mu: f64,
    /// Overall server-observed epsilon budget for the session's lifetime.
    pub budget_eps: f64,
    /// Delta the budget and ledger epsilons are reported at.
    pub delta: f64,
    /// Seed for the session's quantization/noise/share streams.
    pub seed: u64,
    /// Declared envelope: most records the session may ever ingest.
    pub max_rows: usize,
    /// Declared envelope: largest per-record l2 norm.
    pub max_row_norm: f64,
    /// Optional deterministic fault injection on the tenant's transports
    /// (tests use this to crash a party mid-session).
    pub faults: Option<FaultSpec>,
    /// Capture engine traces on every release so the request's MPC span
    /// links to the causal message DAG (critical-path breakdown). Tracing
    /// is passive — results are bit-identical with it on or off.
    pub request_tracing: bool,
}

impl TenantConfig {
    /// A small default workload shape; callers override fields as needed.
    pub fn new(name: &str) -> TenantConfig {
        TenantConfig {
            name: name.to_string(),
            n_cols: 3,
            n_clients: 3,
            gamma: 256.0,
            mu: 100.0,
            budget_eps: 10.0,
            delta: 1e-5,
            seed: 7,
            max_rows: 10_000,
            max_row_norm: 1.0,
            faults: None,
            request_tracing: false,
        }
    }

    fn validate(&self) -> Result<(), ServeError> {
        let bad = |detail: &str| {
            Err(ServeError::BadRequest {
                detail: detail.to_string(),
            })
        };
        if self.name.is_empty() {
            return bad("tenant name must be non-empty");
        }
        if self.n_cols == 0 {
            return bad("n_cols must be positive");
        }
        if self.n_clients < 2 || self.n_clients > self.n_cols.max(2) {
            return bad("n_clients must be in 2..=n_cols");
        }
        if self.gamma <= 0.0 || self.gamma.is_nan() {
            return bad("gamma must be positive");
        }
        if self.mu < 0.0 {
            return bad("mu must be non-negative");
        }
        if self.budget_eps <= 0.0 || self.budget_eps.is_nan() {
            return bad("budget_eps must be positive");
        }
        if !(self.delta > 0.0 && self.delta < 1.0) {
            return bad("delta must be in (0,1)");
        }
        if self.max_rows == 0 {
            return bad("max_rows must be positive");
        }
        Ok(())
    }
}

/// One successful release as the server hands it back.
#[derive(Clone, Debug)]
pub struct ReleaseReply {
    /// The down-scaled noisy covariance (row-major `n_cols * n_cols`).
    pub covariance: Vec<f64>,
    pub n_cols: usize,
    /// Rows covered by this release (everything ingested so far).
    pub rows_covered: usize,
    /// This tenant's release counter after this release.
    pub release_index: usize,
    /// Server-observed epsilon of this release alone.
    pub release_epsilon: f64,
    /// Composed epsilon spent after this release.
    pub spent_epsilon: f64,
    /// Budget headroom left.
    pub remaining_epsilon: f64,
    /// MPC accounting for this release.
    pub stats: RunStats,
}

/// Point-in-time budget/session numbers for `/status`.
#[derive(Clone, Debug)]
pub struct TenantReport {
    pub name: String,
    pub releases: usize,
    pub refusals: u64,
    pub rows_ingested: usize,
    pub pending_rows: usize,
    pub spent_epsilon: f64,
    pub remaining_epsilon: f64,
    pub budget_eps: f64,
    pub failed: bool,
}

/// A live tenant session.
pub struct Tenant {
    config: TenantConfig,
    stream: StreamCov,
    odometer: PrivacyOdometer,
    ledger: PrivacyLedger,
    refusals: u64,
}

impl Tenant {
    /// Create the session: build the partition, mesh the parties, open the
    /// streaming accumulator. Fails fast on invalid config.
    pub fn create(config: TenantConfig) -> Result<Tenant, ServeError> {
        config.validate()?;
        let partition = ColumnPartition::even(config.n_cols, config.n_clients);
        let mut cfg = VflConfig::fast(config.n_clients)
            .with_seed(config.seed)
            .with_trace(config.request_tracing);
        cfg.faults = config.faults.clone();
        let stream = StreamCov::new(
            partition,
            config.gamma,
            config.mu,
            &cfg,
            config.max_rows,
            config.max_row_norm,
        )
        .map_err(|error| ServeError::SessionFailed {
            tenant: config.name.clone(),
            error,
        })?;
        let odometer = PrivacyOdometer::new(config.budget_eps, config.delta);
        let ledger = PrivacyLedger::new(config.n_clients, config.delta);
        Ok(Tenant {
            config,
            stream,
            odometer,
            ledger,
            refusals: 0,
        })
    }

    pub fn config(&self) -> &TenantConfig {
        &self.config
    }

    /// Queue records for the next release. Cheap (no MPC).
    pub fn ingest(&mut self, records: &[Vec<f64>]) -> Result<usize, ServeError> {
        if let Some(error) = self.stream.failure() {
            return Err(ServeError::SessionFailed {
                tenant: self.config.name.clone(),
                error: error.clone(),
            });
        }
        if records.is_empty() {
            return Err(ServeError::BadRequest {
                detail: "empty batch".to_string(),
            });
        }
        for r in records {
            if r.len() != self.config.n_cols {
                return Err(ServeError::BadRequest {
                    detail: format!("record width {} != n_cols {}", r.len(), self.config.n_cols),
                });
            }
            let norm = r.iter().map(|v| v * v).sum::<f64>().sqrt();
            if norm > self.config.max_row_norm * (1.0 + 1e-12) {
                return Err(ServeError::BadRequest {
                    detail: format!(
                        "record norm {norm:.4} exceeds envelope {}",
                        self.config.max_row_norm
                    ),
                });
            }
        }
        let total = self.stream.rows_ingested() + self.stream.pending_rows() + records.len();
        if total > self.config.max_rows {
            return Err(ServeError::BadRequest {
                detail: format!(
                    "session would exceed {}-record envelope",
                    self.config.max_rows
                ),
            });
        }
        let batch = Matrix::from_rows(records);
        self.stream.ingest(&batch);
        Ok(self.stream.pending_rows())
    }

    /// The per-release server-observed RDP curve (pinned by the session's
    /// gamma/mu/envelope, so every release costs the same).
    fn release_curve(&self) -> RdpCurve {
        let sens = pca_sensitivity(
            self.config.gamma,
            self.config.max_row_norm.max(1e-9),
            self.config.n_cols,
        );
        let mu = self.config.mu;
        RdpCurve::from_fn(&default_alpha_grid(), |a| skellam_rdp(a, sens, mu))
    }

    /// One DP release: odometer admission first, MPC second, ledger third.
    pub fn release(&mut self) -> Result<ReleaseReply, ServeError> {
        self.release_spanned(None)
    }

    /// The budget gate alone, before any MPC round. Returns the admitted
    /// release's standalone epsilon.
    fn admit_release(&mut self) -> Result<f64, ServeError> {
        if self.config.mu <= 0.0 {
            // An unperturbed release is infinite epsilon: always refused
            // on a (necessarily finite) serving budget.
            return Err(self.refuse());
        }
        let curve = self.release_curve();
        let release_epsilon = curve.to_epsilon(self.config.delta).0;
        match self.odometer.admit(&curve) {
            Admission::Admitted => Ok(release_epsilon),
            Admission::Rejected => Err(self.refuse()),
        }
    }

    fn refuse(&mut self) -> ServeError {
        self.refusals += 1;
        metrics::counter_add("serve.budget_refusals", 1);
        metrics::counter_add(&format!("serve.budget_refusals.{}", self.config.name), 1);
        ServeError::BudgetExhausted {
            tenant: self.config.name.clone(),
            spent: self.odometer.spent_epsilon(),
            budget: self.config.budget_eps,
        }
    }

    /// [`Tenant::release`] with request-scoped tracing: the admit / MPC /
    /// encode phases each record a child span under the request's exec
    /// span and a per-tenant phase-latency histogram, and the MPC span
    /// links to the causal run id (the session seed), carrying the
    /// reconstructed message DAG's critical-path breakdown when the
    /// session captures engine traces ([`TenantConfig::request_tracing`]).
    pub fn release_spanned(
        &mut self,
        mut ctx: Option<&mut RequestContext>,
    ) -> Result<ReleaseReply, ServeError> {
        if let Some(error) = self.stream.failure() {
            return Err(ServeError::SessionFailed {
                tenant: self.config.name.clone(),
                error: error.clone(),
            });
        }
        // --- budget gate, before any MPC round -------------------------
        let admit_started = Instant::now();
        let admitted = self.admit_release();
        let admit_wall = admit_started.elapsed();
        metrics::histogram_record(
            &format!("serve.request_phase_ns.admit.{}", self.config.name),
            admit_wall.as_nanos() as f64,
        );
        if let Some(c) = ctx.as_deref_mut() {
            c.add_child(EXEC, "admit", admit_wall);
        }
        let release_epsilon = admitted?;
        // --- MPC over the reused mesh -----------------------------------
        let mpc_started = Instant::now();
        let out = self.stream.release().map_err(|error| {
            metrics::counter_add("serve.sessions_failed", 1);
            ServeError::SessionFailed {
                tenant: self.config.name.clone(),
                error,
            }
        });
        let mpc_wall = mpc_started.elapsed();
        metrics::histogram_record(
            &format!("serve.request_phase_ns.mpc.{}", self.config.name),
            mpc_wall.as_nanos() as f64,
        );
        if let Some(c) = ctx.as_deref_mut() {
            let id = c.add_child(EXEC, "mpc", mpc_wall);
            if let Ok(out) = &out {
                let span = c.span_mut(id);
                // The causal run id is the session seed: the engines stamp
                // it on every message, so this link resolves into the
                // flight recorder / chrome-trace artifacts of the same run.
                span.run_id = Some(self.config.seed);
                span.rounds = out.stats.total.rounds;
                span.messages = out.stats.total.messages;
                span.bytes = out.stats.total.bytes;
                if let Some(trace) = &out.trace {
                    span.critical = Some(CriticalSummary::build(&MessageDag::build(trace)));
                }
            }
        }
        let out = out?;
        // --- ledger cross-account, reply encoding -----------------------
        let encode_started = Instant::now();
        let sens = pca_sensitivity(
            self.config.gamma,
            self.config.max_row_norm.max(1e-9),
            self.config.n_cols,
        );
        self.ledger.record(
            "covariance",
            self.config.n_cols * self.config.n_cols,
            self.config.gamma,
            self.config.mu,
            sens,
        );
        debug_assert!(
            self.budget_consistent_with_ledger(),
            "odometer and ledger disagree for tenant {}",
            self.config.name
        );
        metrics::counter_add("serve.releases_admitted", 1);
        let gamma2 = self.config.gamma * self.config.gamma;
        let reply = ReleaseReply {
            covariance: out.c_hat.as_slice().iter().map(|v| v / gamma2).collect(),
            n_cols: self.config.n_cols,
            rows_covered: self.stream.rows_ingested(),
            release_index: self.stream.releases(),
            release_epsilon,
            spent_epsilon: self.odometer.spent_epsilon(),
            remaining_epsilon: self.odometer.remaining_epsilon(),
            stats: out.stats,
        };
        let encode_wall = encode_started.elapsed();
        metrics::histogram_record(
            &format!("serve.request_phase_ns.encode.{}", self.config.name),
            encode_wall.as_nanos() as f64,
        );
        if let Some(c) = ctx {
            c.add_child(EXEC, "encode", encode_wall);
        }
        Ok(reply)
    }

    /// Cross-check: the odometer's recorded spend must agree with the obs
    /// ledger's composed server curve (both are fed the same per-release
    /// curves).
    pub fn budget_consistent_with_ledger(&self) -> bool {
        if self.ledger.is_empty() {
            return self.odometer.releases() == 0;
        }
        let ledger_eps = self.ledger.server_epsilon();
        if !ledger_eps.is_finite() {
            return false; // serving never admits unbounded releases
        }
        let spent = self.odometer.spent_epsilon();
        (spent - ledger_eps).abs() <= 1e-9 * ledger_eps.max(1.0)
    }

    /// The obs privacy ledger (one entry per admitted release).
    pub fn ledger(&self) -> &PrivacyLedger {
        &self.ledger
    }

    /// The odometer enforcing the budget.
    pub fn odometer(&self) -> &PrivacyOdometer {
        &self.odometer
    }

    pub fn report(&self) -> TenantReport {
        TenantReport {
            name: self.config.name.clone(),
            releases: self.stream.releases(),
            refusals: self.refusals,
            rows_ingested: self.stream.rows_ingested(),
            pending_rows: self.stream.pending_rows(),
            spent_epsilon: self.odometer.spent_epsilon(),
            remaining_epsilon: self.odometer.remaining_epsilon(),
            budget_eps: self.config.budget_eps,
            failed: self.stream.failure().is_some(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn records(n: usize, cols: usize, scale: f64) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                (0..cols)
                    .map(|j| scale * ((i * cols + j) as f64 * 0.37).sin() / (cols as f64).sqrt())
                    .collect()
            })
            .collect()
    }

    #[test]
    fn releases_until_budget_exhausted_then_typed_refusal() {
        // Measure one release's epsilon on an unlimited probe tenant, then
        // budget the real tenant for about two and a half of them.
        let mut cfg = TenantConfig::new("probe");
        cfg.mu = 1e8;
        cfg.gamma = 64.0;
        cfg.budget_eps = f64::INFINITY;
        let mut probe = Tenant::create(cfg.clone()).unwrap();
        probe.ingest(&records(4, 3, 0.9)).unwrap();
        let one = probe.release().unwrap().release_epsilon;
        assert!(one.is_finite() && one > 0.0);

        cfg.name = "acme".to_string();
        cfg.budget_eps = 2.5 * one;
        let budget = cfg.budget_eps;
        let mut tenant = Tenant::create(cfg).unwrap();
        tenant.ingest(&records(4, 3, 0.9)).unwrap();
        let mut admitted = 0;
        let err = loop {
            match tenant.release() {
                Ok(reply) => {
                    admitted += 1;
                    assert!(reply.spent_epsilon <= budget * (1.0 + 1e-9));
                    assert_eq!(reply.rows_covered, 4);
                }
                Err(e) => break e,
            }
            assert!(admitted < 100, "refusal never fired");
        };
        // RDP composition is sublinear in epsilon, so a 2.5x budget admits
        // at least two releases — and must eventually refuse.
        assert!(admitted >= 2, "budget admits at least two releases");
        match &err {
            ServeError::BudgetExhausted {
                tenant: name,
                spent,
                budget,
            } => {
                assert_eq!(name, "acme");
                assert!(*spent <= *budget);
            }
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
        assert_eq!(err.http_status(), 403);
        // Refusal costs nothing: release count unchanged, accounts agree.
        let report = tenant.report();
        assert_eq!(report.releases, admitted);
        assert_eq!(report.refusals, 1);
        assert!(tenant.budget_consistent_with_ledger());
        assert_eq!(tenant.ledger().len(), admitted);
    }

    #[test]
    fn mu_zero_release_is_always_refused() {
        let mut cfg = TenantConfig::new("nonoise");
        cfg.mu = 0.0;
        let mut tenant = Tenant::create(cfg).unwrap();
        tenant.ingest(&records(2, 3, 0.5)).unwrap();
        let err = tenant.release().unwrap_err();
        assert!(matches!(err, ServeError::BudgetExhausted { .. }));
        assert_eq!(tenant.report().releases, 0);
    }

    #[test]
    fn ingest_validates_width_norm_and_envelope() {
        let mut cfg = TenantConfig::new("v");
        cfg.max_rows = 3;
        let mut tenant = Tenant::create(cfg).unwrap();
        assert!(matches!(
            tenant.ingest(&[vec![0.1, 0.2]]).unwrap_err(),
            ServeError::BadRequest { .. }
        ));
        assert!(matches!(
            tenant.ingest(&[vec![5.0, 0.0, 0.0]]).unwrap_err(),
            ServeError::BadRequest { .. }
        ));
        tenant.ingest(&records(3, 3, 0.5)).unwrap();
        assert!(matches!(
            tenant.ingest(&records(1, 3, 0.5)).unwrap_err(),
            ServeError::BadRequest { .. }
        ));
    }

    #[test]
    fn replies_are_deterministic_for_a_fixed_seed() {
        let run = || {
            let mut cfg = TenantConfig::new("det");
            cfg.seed = 99;
            cfg.mu = 400.0;
            cfg.budget_eps = f64::INFINITY;
            let mut t = Tenant::create(cfg).unwrap();
            t.ingest(&records(5, 3, 0.8)).unwrap();
            let a = t.release().unwrap();
            t.ingest(&records(2, 3, 0.8)).unwrap();
            let b = t.release().unwrap();
            (a.covariance, b.covariance)
        };
        assert_eq!(run(), run());
    }
}
