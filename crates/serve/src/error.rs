//! Typed serving errors, each with an HTTP status for the wire protocol.

use sqm_mpc::TransportError;
use std::fmt;

/// Everything that can go wrong serving a request. Every variant is typed
/// and scoped: an error names the tenant or resource it concerns, and a
/// failure inside one session never takes the server down.
#[derive(Clone, Debug, PartialEq)]
pub enum ServeError {
    /// The admission queue is at its bound; the request was refused
    /// *without* being enqueued (backpressure, never unbounded growth).
    Overloaded {
        /// Requests queued when the refusal fired.
        queued: usize,
        /// The configured bound.
        bound: usize,
    },
    /// The tenant's privacy odometer refused the release: admitting it
    /// would push the composed server-observed epsilon past the budget.
    /// Refused before any MPC round runs.
    BudgetExhausted {
        tenant: String,
        /// Epsilon already spent by admitted releases.
        spent: f64,
        /// The tenant's overall epsilon budget.
        budget: f64,
    },
    /// No tenant with this name exists.
    UnknownTenant { tenant: String },
    /// A tenant with this name already exists.
    TenantExists { tenant: String },
    /// The tenant's MPC session died (party crash, transport failure).
    /// The session is poisoned; other tenants are unaffected.
    SessionFailed {
        tenant: String,
        error: TransportError,
    },
    /// The server is draining; no new work is admitted.
    ShuttingDown,
    /// Malformed request (bad JSON, wrong record width, bad parameters).
    BadRequest { detail: String },
}

impl ServeError {
    /// The HTTP status the protocol layer maps this error to.
    pub fn http_status(&self) -> u16 {
        match self {
            ServeError::Overloaded { .. } => 429,
            ServeError::BudgetExhausted { .. } => 403,
            ServeError::UnknownTenant { .. } => 404,
            ServeError::TenantExists { .. } => 409,
            ServeError::SessionFailed { .. } => 500,
            ServeError::ShuttingDown => 503,
            ServeError::BadRequest { .. } => 400,
        }
    }

    /// Short machine-readable error code for the wire protocol.
    pub fn code(&self) -> &'static str {
        match self {
            ServeError::Overloaded { .. } => "overloaded",
            ServeError::BudgetExhausted { .. } => "budget_exhausted",
            ServeError::UnknownTenant { .. } => "unknown_tenant",
            ServeError::TenantExists { .. } => "tenant_exists",
            ServeError::SessionFailed { .. } => "session_failed",
            ServeError::ShuttingDown => "shutting_down",
            ServeError::BadRequest { .. } => "bad_request",
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { queued, bound } => {
                write!(f, "overloaded: {queued} requests queued (bound {bound})")
            }
            ServeError::BudgetExhausted {
                tenant,
                spent,
                budget,
            } => write!(
                f,
                "privacy budget exhausted for tenant {tenant:?}: \
                 spent eps={spent:.4} of budget {budget:.4}"
            ),
            ServeError::UnknownTenant { tenant } => write!(f, "unknown tenant {tenant:?}"),
            ServeError::TenantExists { tenant } => write!(f, "tenant {tenant:?} already exists"),
            ServeError::SessionFailed { tenant, error } => {
                write!(f, "session failed for tenant {tenant:?}: {error}")
            }
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::BadRequest { detail } => write!(f, "bad request: {detail}"),
        }
    }
}

impl std::error::Error for ServeError {}
