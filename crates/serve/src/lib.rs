//! # sqm-serve — multi-tenant VFL serving with enforced privacy budgets
//!
//! A long-lived service that multiplexes many concurrent vertical-FL
//! sessions over shared party transports:
//!
//! - [`scheduler`] — bounded-admission session scheduler: a fixed worker
//!   pool, a global queue bound with typed backpressure
//!   ([`ServeError::Overloaded`]), strict per-tenant FIFO (so interleaved
//!   execution is bit-identical to serial), and drain shutdown.
//! - [`tenant`] — one tenant's session: a streaming mini-batch covariance
//!   accumulator (`sqm_vfl::StreamCov`) over a *reused* MPC mesh, gated by
//!   a `PrivacyOdometer` so every release is admitted against the tenant's
//!   epsilon budget *before* any MPC round runs
//!   ([`ServeError::BudgetExhausted`]), and cross-checked against the obs
//!   privacy ledger after every release.
//! - [`proto`] — the JSON-over-HTTP wire protocol on the shared
//!   `sqm_obs::httpd` listener (`/v1/tenant`, `/v1/ingest`,
//!   `/v1/release`, `/status`, `/metrics`).
//! - [`loadgen`] — a seeded closed-loop load generator; the serve bench
//!   suite and the CI smoke test drive the server with it.
//! - [`error`] — the typed [`ServeError`] with per-variant HTTP statuses.
//!
//! ## Request tracing and SLOs
//!
//! With [`ServerConfig::tracing`] set, every admitted request carries an
//! `sqm_obs::span::RequestContext` through its whole life: the scheduler
//! records queue-wait and exec spans (defining the root as their exact
//! sum), the tenant adds admit / MPC / encode children, and — when the
//! tenant has [`TenantConfig::request_tracing`] on — the MPC span links to
//! the engine run's causal message DAG, attaching its critical-path
//! breakdown. The per-server `sqm_obs::span::SpanCollector` keeps a
//! time-bucketed SLO history and a slow-request recorder whose
//! `slowreq_<seed>.jsonl` dump is byte-deterministic. Per-tenant SLO
//! metrics (phase-latency histograms, epsilon burn-rate and
//! remaining-budget gauges, refusal/overload counters, queue saturation)
//! land in the global registry and surface on `/metrics`. Tracing is
//! passive: results are bit-identical with it on or off.

pub mod error;
pub mod loadgen;
pub mod proto;
pub mod scheduler;
pub mod tenant;

pub use error::ServeError;
pub use loadgen::{load_tenant_config, run_load, LoadReport, LoadSpec, TenantLoadReport};
pub use proto::ServeHttp;
pub use scheduler::{Reply, Request, Server, ServerConfig, Ticket};
pub use tenant::{ReleaseReply, Tenant, TenantConfig, TenantReport};
