//! Seeded closed-loop load generator.
//!
//! Drives a [`Server`] the way the smoke test and the bench suite need:
//! one closed-loop driver thread per tenant, each running a fixed number
//! of ingest+release rounds. Everything is derived from [`LoadSpec::seed`],
//! so two runs against equal servers produce bit-identical release
//! checksums — which is how the bench gate catches scheduler regressions.

use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::ServeError;
use crate::scheduler::{Reply, Request, Server};
use crate::tenant::TenantConfig;

/// Shape of one load run.
#[derive(Clone, Debug)]
pub struct LoadSpec {
    /// Concurrent tenant sessions (driver threads).
    pub tenants: usize,
    /// Ingest+release rounds per tenant.
    pub rounds: usize,
    /// Records per ingest batch.
    pub rows_per_batch: usize,
    /// Feature columns per tenant.
    pub n_cols: usize,
    /// MPC parties per tenant session.
    pub n_clients: usize,
    /// Skellam parameter per release.
    pub mu: f64,
    /// Per-tenant epsilon budget. Size it below `rounds` releases' worth
    /// to exercise budget refusals (the smoke test asserts at least one).
    pub budget_eps: f64,
    /// Master seed; tenant `i` derives its data and session streams from
    /// `seed + i`.
    pub seed: u64,
    /// Create tenants with [`TenantConfig::request_tracing`] on, so every
    /// release's MPC span carries its causal critical-path breakdown.
    pub tracing: bool,
}

impl LoadSpec {
    /// A small deterministic workload that finishes in well under a
    /// second and still exercises at least one budget refusal.
    pub fn smoke() -> LoadSpec {
        LoadSpec {
            tenants: 3,
            rounds: 4,
            rows_per_batch: 4,
            n_cols: 3,
            n_clients: 3,
            mu: 6e6,
            budget_eps: 2.0,
            seed: 20_250_808,
            tracing: false,
        }
    }
}

/// One driver thread's account of its tenant.
#[derive(Clone, Debug)]
pub struct TenantLoadReport {
    pub tenant: String,
    /// One checksum per admitted release: the released covariance's bits
    /// folded into a `u64`. Deterministic for a fixed spec.
    pub checksums: Vec<u64>,
    pub releases_admitted: usize,
    pub budget_refusals: usize,
    pub overloaded: usize,
    /// Client-observed wall time of each admitted release (submit→reply).
    pub release_wall_ns: Vec<u64>,
    /// Spent epsilon after the run.
    pub spent_epsilon: f64,
}

/// The whole run's account.
#[derive(Clone, Debug)]
pub struct LoadReport {
    pub per_tenant: Vec<TenantLoadReport>,
    pub wall: Duration,
    /// Completed ingest+release rounds across all tenants.
    pub rounds_completed: usize,
}

impl LoadReport {
    pub fn releases_admitted(&self) -> usize {
        self.per_tenant.iter().map(|t| t.releases_admitted).sum()
    }

    pub fn budget_refusals(&self) -> usize {
        self.per_tenant.iter().map(|t| t.budget_refusals).sum()
    }

    /// Closed-loop throughput: session rounds completed per second.
    pub fn sessions_per_sec(&self) -> f64 {
        self.rounds_completed as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Nearest-rank p99 of client-observed release latency, in ns.
    pub fn p99_release_ns(&self) -> u64 {
        let mut all: Vec<u64> = self
            .per_tenant
            .iter()
            .flat_map(|t| t.release_wall_ns.iter().copied())
            .collect();
        if all.is_empty() {
            return 0;
        }
        all.sort_unstable();
        all[sqm_obs::metrics::nearest_rank_index(all.len(), 0.99)]
    }

    /// Order-independent digest of every tenant's release checksums
    /// (tenant names fix the pairing, so equal digests mean bit-identical
    /// releases regardless of scheduling).
    pub fn digest(&self) -> u64 {
        let mut d = 0u64;
        for t in &self.per_tenant {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in t.tenant.as_bytes() {
                h = (h ^ *b as u64).wrapping_mul(0x1000_0000_01b3);
            }
            for c in &t.checksums {
                h = (h ^ *c).wrapping_mul(0x1000_0000_01b3);
            }
            d ^= h;
        }
        d
    }
}

/// The tenant config a load-generated tenant `i` runs with.
pub fn load_tenant_config(spec: &LoadSpec, i: usize) -> TenantConfig {
    let mut cfg = TenantConfig::new(&format!("load-{i}"));
    cfg.n_cols = spec.n_cols;
    cfg.n_clients = spec.n_clients;
    // Modest quantization keeps the per-release epsilon near 1 for the
    // spec's mu range, so budget refusals are reachable in a short run.
    cfg.gamma = 32.0;
    cfg.mu = spec.mu;
    cfg.budget_eps = spec.budget_eps;
    cfg.seed = spec.seed.wrapping_add(i as u64);
    cfg.max_rows = spec.rounds * spec.rows_per_batch + 1;
    cfg.request_tracing = spec.tracing;
    cfg
}

fn batch(rng: &mut StdRng, rows: usize, cols: usize, max_norm: f64) -> Vec<Vec<f64>> {
    (0..rows)
        .map(|_| {
            let mut r: Vec<f64> = (0..cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let norm = r.iter().map(|v| v * v).sum::<f64>().sqrt();
            if norm > max_norm {
                for v in &mut r {
                    *v *= max_norm / norm * 0.999;
                }
            }
            r
        })
        .collect()
}

fn fold_bits(values: &[f64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in values {
        h = (h ^ v.to_bits()).wrapping_mul(0x1000_0000_01b3);
    }
    h
}

fn drive_tenant(server: &Server, spec: &LoadSpec, i: usize) -> TenantLoadReport {
    let name = format!("load-{i}");
    let max_norm = load_tenant_config(spec, i).max_row_norm;
    let mut rng = StdRng::seed_from_u64(spec.seed.wrapping_add(0xB0AD_0000 + i as u64));
    let mut report = TenantLoadReport {
        tenant: name.clone(),
        checksums: Vec::new(),
        releases_admitted: 0,
        budget_refusals: 0,
        overloaded: 0,
        release_wall_ns: Vec::new(),
        spent_epsilon: 0.0,
    };
    for _ in 0..spec.rounds {
        let records = batch(&mut rng, spec.rows_per_batch, spec.n_cols, max_norm);
        // Closed loop: retry typed backpressure, never skip a round.
        loop {
            match server.call(
                &name,
                Request::Ingest {
                    records: records.clone(),
                },
            ) {
                Ok(_) => break,
                Err(ServeError::Overloaded { .. }) => {
                    report.overloaded += 1;
                    thread::sleep(Duration::from_millis(1));
                }
                Err(e) => panic!("load ingest failed for {name}: {e}"),
            }
        }
        let started = Instant::now();
        loop {
            match server.call(&name, Request::Release) {
                Ok(Reply::Released(rel)) => {
                    report
                        .release_wall_ns
                        .push(started.elapsed().as_nanos() as u64);
                    report.checksums.push(fold_bits(&rel.covariance));
                    report.releases_admitted += 1;
                    report.spent_epsilon = rel.spent_epsilon;
                    break;
                }
                Ok(other) => panic!("expected release reply, got {other:?}"),
                Err(ServeError::Overloaded { .. }) => {
                    report.overloaded += 1;
                    thread::sleep(Duration::from_millis(1));
                }
                Err(ServeError::BudgetExhausted { .. }) => {
                    // The odometer said no; the round still completes
                    // (this is the refusal path the smoke test asserts).
                    report.budget_refusals += 1;
                    break;
                }
                Err(e) => panic!("load release failed for {name}: {e}"),
            }
        }
    }
    report
}

/// Create `spec.tenants` sessions on `server` and drive them to
/// completion, one closed-loop thread per tenant.
pub fn run_load(server: &Arc<Server>, spec: &LoadSpec) -> LoadReport {
    for i in 0..spec.tenants {
        server
            .add_tenant(load_tenant_config(spec, i))
            .expect("load tenant creation");
    }
    let started = Instant::now();
    let handles: Vec<_> = (0..spec.tenants)
        .map(|i| {
            let server = Arc::clone(server);
            let spec = spec.clone();
            thread::Builder::new()
                .name(format!("sqm-loadgen-{i}"))
                .spawn(move || drive_tenant(&server, &spec, i))
                .expect("spawn load driver")
        })
        .collect();
    let per_tenant: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let wall = started.elapsed();
    LoadReport {
        rounds_completed: spec.tenants * spec.rounds,
        per_tenant,
        wall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::ServerConfig;

    #[test]
    fn smoke_load_is_deterministic_and_exercises_refusals() {
        let run = || {
            let server = Server::start(ServerConfig {
                queue_bound: 32,
                workers: 4,
                tracing: None,
            });
            let report = run_load(&server, &LoadSpec::smoke());
            server.shutdown();
            report
        };
        let a = run();
        let b = run();
        assert!(a.releases_admitted() >= 1);
        assert!(
            a.budget_refusals() >= 1,
            "smoke spec must exhaust at least one tenant's budget"
        );
        assert_eq!(
            a.releases_admitted() + a.budget_refusals(),
            LoadSpec::smoke().tenants * LoadSpec::smoke().rounds
        );
        assert_eq!(a.digest(), b.digest(), "same spec, same releases");
        assert!(a.sessions_per_sec() > 0.0);
        assert!(a.p99_release_ns() > 0);
    }

    #[test]
    fn interleaving_does_not_change_the_digest() {
        let spec = LoadSpec {
            budget_eps: 1e6,
            ..LoadSpec::smoke()
        };
        let serial = {
            let server = Server::start(ServerConfig {
                queue_bound: 32,
                workers: 1,
                tracing: None,
            });
            let r = run_load(&server, &spec);
            server.shutdown();
            r
        };
        let parallel = {
            let server = Server::start(ServerConfig {
                queue_bound: 32,
                workers: 4,
                tracing: None,
            });
            let r = run_load(&server, &spec);
            server.shutdown();
            r
        };
        assert_eq!(serial.digest(), parallel.digest());
        assert_eq!(serial.budget_refusals(), 0);
    }

    #[test]
    fn p99_uses_the_canonical_nearest_rank_method() {
        let report = LoadReport {
            per_tenant: vec![TenantLoadReport {
                tenant: "t".to_string(),
                checksums: Vec::new(),
                releases_admitted: 67,
                budget_refusals: 0,
                overloaded: 0,
                release_wall_ns: (0..67).collect(),
                spent_epsilon: 0.0,
            }],
            wall: Duration::from_secs(1),
            rounds_completed: 67,
        };
        // 67 samples 0..=66: round((67 - 1) * 0.99) = 65 — one below the
        // max, exactly where the old `ceil(len * p)` rank method returned
        // the max (66). Pinned at a length where the two methods differ,
        // so loadgen can never drift from `bench::perf`'s quantiles again.
        assert_eq!(report.p99_release_ns(), 65);
        assert_eq!(sqm_obs::metrics::nearest_rank_index(67, 0.99), 65);
    }
}
