//! The wire protocol: a small JSON-over-HTTP surface on the shared
//! `sqm_obs::httpd` listener.
//!
//! Routes:
//!
//! | method | path          | body                                   |
//! |--------|---------------|----------------------------------------|
//! | GET    | `/`           | — (index text)                         |
//! | GET    | `/metrics`    | — (Prometheus text)                    |
//! | GET    | `/status`     | — (JSON tenant reports)                |
//! | POST   | `/v1/tenant`  | tenant config JSON                     |
//! | POST   | `/v1/ingest`  | `{"tenant": ..., "records": [[..]]}`   |
//! | POST   | `/v1/release` | `{"tenant": ...}`                      |
//!
//! Errors map to their [`ServeError::http_status`] with a JSON body
//! `{"error": <code>, "detail": <display>}`.

use std::io;
use std::net::SocketAddr;
use std::sync::Arc;

use serde::json::{write_f64, write_str};
use sqm_obs::httpd::{HttpRequest, HttpResponse, HttpServer};
use sqm_obs::json::{self, JsonValue};
use sqm_obs::live::render_metrics_prometheus;
use sqm_obs::metrics;

use crate::error::ServeError;
use crate::scheduler::{Reply, Request, Server};
use crate::tenant::{ReleaseReply, TenantConfig, TenantReport};

/// The serving endpoint: the scheduler plus its HTTP listener.
pub struct ServeHttp {
    server: Arc<Server>,
    http: HttpServer,
}

impl ServeHttp {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`) and start answering requests
    /// against `server`.
    pub fn bind(server: Arc<Server>, addr: &str) -> io::Result<ServeHttp> {
        let routed = Arc::clone(&server);
        let http = HttpServer::bind(
            addr,
            "sqm-serve-http",
            Arc::new(move |req: &HttpRequest| route(&routed, req)),
        )?;
        Ok(ServeHttp { server, http })
    }

    pub fn local_addr(&self) -> SocketAddr {
        self.http.local_addr()
    }

    pub fn server(&self) -> &Arc<Server> {
        &self.server
    }

    /// Stop the listener, then drain the scheduler.
    pub fn shutdown(mut self) {
        self.http.shutdown();
        self.server.shutdown();
    }
}

fn error_response(err: &ServeError) -> HttpResponse {
    let mut body = String::from("{\"error\": ");
    write_str(&mut body, err.code());
    body.push_str(", \"detail\": ");
    write_str(&mut body, &err.to_string());
    if let ServeError::BudgetExhausted { spent, budget, .. } = err {
        body.push_str(", \"spent_epsilon\": ");
        write_f64(&mut body, *spent);
        body.push_str(", \"budget_epsilon\": ");
        write_f64(&mut body, *budget);
    }
    body.push_str("}\n");
    HttpResponse::json(err.http_status(), body)
}

fn bad_request(detail: &str) -> HttpResponse {
    error_response(&ServeError::BadRequest {
        detail: detail.to_string(),
    })
}

fn json_body(req: &HttpRequest) -> Result<JsonValue, HttpResponse> {
    let text = req.body_str();
    json::parse(&text).map_err(|e| bad_request(&format!("invalid JSON: {e:?}")))
}

fn require_str(v: &JsonValue, key: &str) -> Result<String, HttpResponse> {
    v.get(key)
        .and_then(JsonValue::as_str)
        .map(str::to_string)
        .ok_or_else(|| bad_request(&format!("missing string field {key:?}")))
}

/// Build a [`TenantConfig`] from a JSON object, starting from the
/// defaults of [`TenantConfig::new`] so requests only name what they
/// override.
fn tenant_config_from_json(v: &JsonValue) -> Result<TenantConfig, HttpResponse> {
    let name = require_str(v, "name")?;
    let mut cfg = TenantConfig::new(&name);
    let num = |key: &str, slot: &mut f64| {
        if let Some(x) = v.get(key).and_then(JsonValue::as_f64) {
            *slot = x;
        }
    };
    let uint = |key: &str, slot: &mut usize| {
        if let Some(x) = v.get(key).and_then(JsonValue::as_u64) {
            *slot = x as usize;
        }
    };
    uint("n_cols", &mut cfg.n_cols);
    uint("n_clients", &mut cfg.n_clients);
    num("gamma", &mut cfg.gamma);
    num("mu", &mut cfg.mu);
    num("budget_eps", &mut cfg.budget_eps);
    num("delta", &mut cfg.delta);
    if let Some(seed) = v.get("seed").and_then(JsonValue::as_u64) {
        cfg.seed = seed;
    }
    uint("max_rows", &mut cfg.max_rows);
    num("max_row_norm", &mut cfg.max_row_norm);
    if let Some(tracing) = v.get("request_tracing").and_then(JsonValue::as_bool) {
        cfg.request_tracing = tracing;
    }
    Ok(cfg)
}

fn records_from_json(v: &JsonValue) -> Result<Vec<Vec<f64>>, HttpResponse> {
    let rows = v
        .get("records")
        .and_then(JsonValue::as_arr)
        .ok_or_else(|| bad_request("missing array field \"records\""))?;
    rows.iter()
        .map(|row| {
            row.as_arr()
                .ok_or_else(|| bad_request("records must be arrays of numbers"))?
                .iter()
                .map(|x| {
                    x.as_f64()
                        .ok_or_else(|| bad_request("records must be arrays of numbers"))
                })
                .collect()
        })
        .collect()
}

fn write_release_reply(out: &mut String, rel: &ReleaseReply) {
    out.push_str("{\"n_cols\": ");
    out.push_str(&rel.n_cols.to_string());
    out.push_str(", \"rows_covered\": ");
    out.push_str(&rel.rows_covered.to_string());
    out.push_str(", \"release_index\": ");
    out.push_str(&rel.release_index.to_string());
    out.push_str(", \"release_epsilon\": ");
    write_f64(out, rel.release_epsilon);
    out.push_str(", \"spent_epsilon\": ");
    write_f64(out, rel.spent_epsilon);
    out.push_str(", \"remaining_epsilon\": ");
    write_f64(out, rel.remaining_epsilon);
    out.push_str(", \"covariance\": [");
    for (i, v) in rel.covariance.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write_f64(out, *v);
    }
    out.push_str("]}\n");
}

fn write_report(out: &mut String, r: &TenantReport, queue_depth: usize) {
    out.push_str("{\"name\": ");
    write_str(out, &r.name);
    out.push_str(", \"releases\": ");
    out.push_str(&r.releases.to_string());
    out.push_str(", \"refusals\": ");
    out.push_str(&r.refusals.to_string());
    out.push_str(", \"rows_ingested\": ");
    out.push_str(&r.rows_ingested.to_string());
    out.push_str(", \"pending_rows\": ");
    out.push_str(&r.pending_rows.to_string());
    out.push_str(", \"queue_depth\": ");
    out.push_str(&queue_depth.to_string());
    out.push_str(", \"spent_epsilon\": ");
    write_f64(out, r.spent_epsilon);
    out.push_str(", \"remaining_epsilon\": ");
    write_f64(out, r.remaining_epsilon);
    out.push_str(", \"budget_eps\": ");
    write_f64(out, r.budget_eps);
    out.push_str(", \"failed\": ");
    out.push_str(if r.failed { "true" } else { "false" });
    out.push('}');
}

fn status_json(server: &Server) -> String {
    let reports = server.status();
    let depths = server.tenant_queue_depths();
    let mut out = String::from("{\"uptime_secs\": ");
    write_f64(&mut out, server.uptime_secs());
    out.push_str(", \"queue_depth\": ");
    out.push_str(&server.queue_depth().to_string());
    out.push_str(", \"queue_bound\": ");
    out.push_str(&server.config().queue_bound.to_string());
    out.push_str(", \"tenants\": [");
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write_report(&mut out, r, depths.get(&r.name).copied().unwrap_or(0));
    }
    out.push_str("]}\n");
    out
}

const INDEX: &str = "sqm-serve: multi-tenant VFL serving\n\
    GET  /metrics     Prometheus metrics\n\
    GET  /status      tenant reports (JSON)\n\
    POST /v1/tenant   create a tenant session\n\
    POST /v1/ingest   queue records for a tenant\n\
    POST /v1/release  run one DP covariance release\n";

fn route(server: &Arc<Server>, req: &HttpRequest) -> HttpResponse {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/") => HttpResponse::text(200, INDEX),
        ("GET", "/metrics") => {
            HttpResponse::prometheus(render_metrics_prometheus(&metrics::snapshot()))
        }
        ("GET", "/status") => HttpResponse::json(200, status_json(server)),
        ("POST", "/v1/tenant") => match handle_tenant(server, req) {
            Ok(resp) | Err(resp) => resp,
        },
        ("POST", "/v1/ingest") => match handle_ingest(server, req) {
            Ok(resp) | Err(resp) => resp,
        },
        ("POST", "/v1/release") => match handle_release(server, req) {
            Ok(resp) | Err(resp) => resp,
        },
        ("GET" | "POST", _) => HttpResponse::not_found(),
        _ => HttpResponse::method_not_allowed(),
    }
}

fn handle_tenant(server: &Server, req: &HttpRequest) -> Result<HttpResponse, HttpResponse> {
    let body = json_body(req)?;
    let cfg = tenant_config_from_json(&body)?;
    let name = cfg.name.clone();
    match server.add_tenant(cfg) {
        Ok(()) => {
            let mut out = String::from("{\"created\": ");
            write_str(&mut out, &name);
            out.push_str("}\n");
            Ok(HttpResponse::json(200, out))
        }
        Err(e) => Ok(error_response(&e)),
    }
}

fn handle_ingest(server: &Server, req: &HttpRequest) -> Result<HttpResponse, HttpResponse> {
    let body = json_body(req)?;
    let tenant = require_str(&body, "tenant")?;
    let records = records_from_json(&body)?;
    match server.call(&tenant, Request::Ingest { records }) {
        Ok(Reply::Ingested { pending_rows }) => {
            let mut out = String::from("{\"pending_rows\": ");
            out.push_str(&pending_rows.to_string());
            out.push_str("}\n");
            Ok(HttpResponse::json(200, out))
        }
        Ok(other) => Err(bad_request(&format!("unexpected reply {other:?}"))),
        Err(e) => Ok(error_response(&e)),
    }
}

fn handle_release(server: &Server, req: &HttpRequest) -> Result<HttpResponse, HttpResponse> {
    let body = json_body(req)?;
    let tenant = require_str(&body, "tenant")?;
    match server.call(&tenant, Request::Release) {
        Ok(Reply::Released(rel)) => {
            let mut out = String::new();
            write_release_reply(&mut out, &rel);
            Ok(HttpResponse::json(200, out))
        }
        Ok(other) => Err(bad_request(&format!("unexpected reply {other:?}"))),
        Err(e) => Ok(error_response(&e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::ServerConfig;
    use std::io::{Read, Write};
    use std::net::TcpStream;

    fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        let req = format!(
            "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(req.as_bytes()).unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        let status: u16 = raw
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap();
        let payload = raw
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, payload)
    }

    #[test]
    fn full_protocol_round_trip_with_budget_refusal() {
        metrics::set_enabled(true);
        let server = Server::start(ServerConfig::default());
        let endpoint = ServeHttp::bind(server, "127.0.0.1:0").unwrap();
        let addr = endpoint.local_addr();

        let (st, _) = http(
            addr,
            "POST",
            "/v1/tenant",
            r#"{"name": "acme", "n_cols": 3, "n_clients": 3,
                "gamma": 32.0, "mu": 1e8, "budget_eps": 1.2,
                "seed": 42, "max_rows": 100}"#,
        );
        assert_eq!(st, 200);
        // Duplicate creation is a typed conflict.
        let (st, body) = http(addr, "POST", "/v1/tenant", r#"{"name": "acme"}"#);
        assert_eq!(st, 409);
        assert!(body.contains("tenant_exists"));

        let (st, body) = http(
            addr,
            "POST",
            "/v1/ingest",
            r#"{"tenant": "acme", "records": [[0.5, 0.1, 0.2], [0.1, 0.4, 0.3]]}"#,
        );
        assert_eq!(st, 200, "{body}");
        assert!(body.contains("\"pending_rows\": 2"));

        let (st, body) = http(addr, "POST", "/v1/release", r#"{"tenant": "acme"}"#);
        assert_eq!(st, 200, "{body}");
        assert!(body.contains("\"covariance\""));
        assert!(body.contains("\"spent_epsilon\""));

        // Budget eps=1.2 covers roughly one release at mu=1e8/gamma=32;
        // keep releasing until the odometer refuses with a 403.
        let mut refused = false;
        for _ in 0..50 {
            let (st, body) = http(addr, "POST", "/v1/release", r#"{"tenant": "acme"}"#);
            if st == 403 {
                assert!(body.contains("budget_exhausted"), "{body}");
                refused = true;
                break;
            }
            assert_eq!(st, 200, "{body}");
        }
        assert!(refused, "odometer never refused");

        let (st, body) = http(addr, "GET", "/status", "");
        assert_eq!(st, 200);
        assert!(body.contains("\"name\": \"acme\""));
        assert!(body.contains("\"refusals\": 1"));

        let (st, body) = http(addr, "GET", "/metrics", "");
        assert_eq!(st, 200);
        assert!(body.contains("sqm_serve_budget_refusals"), "{body}");

        let (st, body) = http(addr, "POST", "/v1/release", r#"{"tenant": "ghost"}"#);
        assert_eq!(st, 404);
        assert!(body.contains("unknown_tenant"));

        let (st, _) = http(addr, "POST", "/v1/ingest", "{not json");
        assert_eq!(st, 400);

        endpoint.shutdown();
    }

    #[test]
    fn status_json_reports_per_tenant_depth_and_budget() {
        use crate::tenant::TenantConfig;

        let server = Server::start(ServerConfig::default());
        let mut cfg = TenantConfig::new("shape");
        cfg.mu = 1e8;
        cfg.gamma = 32.0;
        cfg.seed = 17;
        server.add_tenant(cfg).unwrap();
        server
            .call(
                "shape",
                Request::Ingest {
                    records: vec![vec![0.2, 0.1, 0.3]],
                },
            )
            .unwrap();
        server.call("shape", Request::Release).unwrap();

        let body = status_json(&server);
        let v = json::parse(&body).expect("status must be valid JSON");
        assert!(v.get("uptime_secs").and_then(JsonValue::as_f64).is_some());
        assert!(v.get("queue_depth").and_then(JsonValue::as_u64).is_some());
        assert_eq!(v.get("queue_bound").and_then(JsonValue::as_u64), Some(64));
        let tenants = v.get("tenants").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(tenants.len(), 1);
        let t = &tenants[0];
        assert_eq!(t.get("name").and_then(JsonValue::as_str), Some("shape"));
        // Satellite shape: per-tenant queue depth and budget accounting.
        assert_eq!(t.get("queue_depth").and_then(JsonValue::as_u64), Some(0));
        let spent = t.get("spent_epsilon").and_then(JsonValue::as_f64).unwrap();
        let remaining = t
            .get("remaining_epsilon")
            .and_then(JsonValue::as_f64)
            .unwrap();
        let budget = t.get("budget_eps").and_then(JsonValue::as_f64).unwrap();
        assert!(spent > 0.0, "one admitted release must have spent epsilon");
        assert!(remaining > 0.0 && remaining < budget);
        assert!(
            (spent + remaining - budget).abs() <= 1e-9 * budget,
            "spent {spent} + remaining {remaining} must equal budget {budget}"
        );
        assert_eq!(t.get("failed").and_then(JsonValue::as_bool), Some(false));
        server.shutdown();
    }
}
