//! Session scheduler: bounded admission, per-tenant FIFO, worker pool.
//!
//! The server multiplexes many tenant sessions over a small pool of worker
//! threads. Three invariants drive the design:
//!
//! 1. **Bounded admission.** The total number of queued requests never
//!    exceeds `queue_bound`; a submit over the bound is refused with the
//!    typed [`ServeError::Overloaded`] *without* being enqueued, so memory
//!    use is bounded regardless of offered load.
//! 2. **Per-tenant serialization.** A tenant's requests run strictly in
//!    submission order and never concurrently with each other: the worker
//!    takes the [`Tenant`] out of its slot for the duration of one request.
//!    Because every MPC seed stream lives inside the tenant, N interleaved
//!    sessions produce bit-identical releases to the same sessions run
//!    serially (the scheduler adds no nondeterminism to results).
//! 3. **Failure isolation.** A party crash poisons only that tenant's
//!    session ([`ServeError::SessionFailed`]); the worker survives and the
//!    server keeps serving every other tenant.
//!
//! Shutdown is a drain: already-queued requests complete, new submits get
//! [`ServeError::ShuttingDown`], then workers exit.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Instant;

use sqm_obs::metrics;
use sqm_obs::span::{RequestContext, RequestOutcome, SpanCollector, SpanConfig, EXEC, QUEUE, ROOT};

use crate::error::ServeError;
use crate::tenant::{ReleaseReply, Tenant, TenantConfig, TenantReport};

/// A request against one tenant's session.
#[derive(Clone, Debug)]
pub enum Request {
    /// Queue records for the next release (no MPC, cheap).
    Ingest { records: Vec<Vec<f64>> },
    /// One DP release over everything ingested so far.
    Release,
}

/// The successful half of a response.
#[derive(Clone, Debug)]
pub enum Reply {
    Ingested { pending_rows: usize },
    Released(ReleaseReply),
}

/// What a ticket resolves to.
pub type Response = Result<Reply, ServeError>;

/// A oneshot handle for an admitted request; `wait()` blocks until a
/// worker has executed it.
#[derive(Debug)]
pub struct Ticket {
    cell: Arc<(Mutex<Option<Response>>, Condvar)>,
}

impl Ticket {
    fn new() -> (Ticket, Ticket) {
        let cell = Arc::new((Mutex::new(None), Condvar::new()));
        (
            Ticket {
                cell: Arc::clone(&cell),
            },
            Ticket { cell },
        )
    }

    fn fulfill(&self, response: Response) {
        let (lock, cvar) = &*self.cell;
        *lock.lock().unwrap() = Some(response);
        cvar.notify_all();
    }

    /// Block until the request has been executed.
    pub fn wait(self) -> Response {
        let (lock, cvar) = &*self.cell;
        let mut slot = lock.lock().unwrap();
        loop {
            if let Some(response) = slot.take() {
                return response;
            }
            slot = cvar.wait(slot).unwrap();
        }
    }
}

/// Scheduler knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Hard cap on requests queued across all tenants.
    pub queue_bound: usize,
    /// Worker threads executing tenant requests.
    pub workers: usize,
    /// Request-scoped tracing: `Some` gives the server its own
    /// [`SpanCollector`] and every admitted request a span tree. `None`
    /// (the default) records nothing and costs nothing per request.
    pub tracing: Option<SpanConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            queue_bound: 64,
            workers: 4,
            tracing: None,
        }
    }
}

struct Job {
    request: Request,
    ticket: Ticket,
    /// Span tree for this request; `Some` iff the server traces.
    ctx: Option<RequestContext>,
    /// When `submit` admitted the job (the queue-wait span's start).
    enqueued: Instant,
}

#[derive(Clone, Copy, PartialEq)]
enum SlotState {
    /// No queued work; tenant is in the slot.
    Idle,
    /// Queued work; tenant name is in the ready queue.
    Ready,
    /// A worker holds the tenant and is executing one request.
    Busy,
}

struct TenantSlot {
    /// `None` exactly while a worker is executing (state == Busy).
    tenant: Option<Tenant>,
    queue: VecDeque<Job>,
    state: SlotState,
    /// Report as of the last time the tenant was in the slot, so
    /// `/status` never blocks on a busy tenant.
    last_report: TenantReport,
    /// Next request sequence number for this tenant. Per-tenant (not
    /// global) so ids are deterministic under per-tenant FIFO no matter
    /// how workers interleave tenants.
    next_seq: u64,
}

struct State {
    tenants: BTreeMap<String, TenantSlot>,
    /// Tenant names with queued work and no worker on them, FIFO.
    ready: VecDeque<String>,
    /// Jobs queued across all tenants (excludes the one a worker holds).
    queued_total: usize,
    /// High-water mark of `queued_total` (scheduler-invariant tests).
    max_queued_observed: usize,
    shutting_down: bool,
}

/// The multi-tenant serving scheduler.
pub struct Server {
    config: ServerConfig,
    state: Mutex<State>,
    /// Signals workers when the ready queue or the shutdown flag changes.
    work: Condvar,
    workers: Mutex<Vec<thread::JoinHandle<()>>>,
    started: Instant,
    /// Per-server span collector; `Some` iff `config.tracing` is set.
    spans: Option<Arc<SpanCollector>>,
}

impl Server {
    /// Start the worker pool. The returned server is shared behind `Arc`
    /// so the HTTP layer and tests can submit from many threads.
    pub fn start(config: ServerConfig) -> Arc<Server> {
        assert!(config.queue_bound > 0, "queue_bound must be positive");
        assert!(config.workers > 0, "workers must be positive");
        let server = Arc::new(Server {
            config: config.clone(),
            state: Mutex::new(State {
                tenants: BTreeMap::new(),
                ready: VecDeque::new(),
                queued_total: 0,
                max_queued_observed: 0,
                shutting_down: false,
            }),
            work: Condvar::new(),
            workers: Mutex::new(Vec::new()),
            started: Instant::now(),
            spans: config
                .tracing
                .clone()
                .map(|cfg| Arc::new(SpanCollector::new(cfg))),
        });
        let mut handles = server.workers.lock().unwrap();
        for i in 0..config.workers {
            let s = Arc::clone(&server);
            handles.push(
                thread::Builder::new()
                    .name(format!("sqm-serve-worker-{i}"))
                    .spawn(move || s.worker_loop())
                    .expect("spawn serve worker"),
            );
        }
        drop(handles);
        server
    }

    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The span collector, when request tracing is configured.
    pub fn spans(&self) -> Option<Arc<SpanCollector>> {
        self.spans.clone()
    }

    /// Seconds since the server started (for `/status`).
    pub fn uptime_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Create a tenant session (meshes its parties immediately).
    pub fn add_tenant(&self, config: TenantConfig) -> Result<(), ServeError> {
        let name = config.name.clone();
        {
            let state = self.state.lock().unwrap();
            if state.shutting_down {
                return Err(ServeError::ShuttingDown);
            }
            if state.tenants.contains_key(&name) {
                return Err(ServeError::TenantExists { tenant: name });
            }
        }
        // Mesh outside the lock; creation is per-tenant work and must not
        // stall workers. The re-check below closes the create/create race.
        let tenant = Tenant::create(config)?;
        let mut state = self.state.lock().unwrap();
        if state.shutting_down {
            return Err(ServeError::ShuttingDown);
        }
        if state.tenants.contains_key(&name) {
            return Err(ServeError::TenantExists { tenant: name });
        }
        let last_report = tenant.report();
        state.tenants.insert(
            name,
            TenantSlot {
                tenant: Some(tenant),
                queue: VecDeque::new(),
                state: SlotState::Idle,
                last_report,
                next_seq: 0,
            },
        );
        Ok(())
    }

    /// Admit one request, or refuse it with typed backpressure. Never
    /// blocks on MPC work; the returned [`Ticket`] does.
    pub fn submit(&self, tenant: &str, request: Request) -> Result<Ticket, ServeError> {
        let mut state = self.state.lock().unwrap();
        if state.shutting_down {
            return Err(ServeError::ShuttingDown);
        }
        if !state.tenants.contains_key(tenant) {
            return Err(ServeError::UnknownTenant {
                tenant: tenant.to_string(),
            });
        }
        if state.queued_total >= self.config.queue_bound {
            metrics::counter_add("serve.overloaded_rejections", 1);
            metrics::counter_add(&format!("serve.overloaded_rejections.{tenant}"), 1);
            return Err(ServeError::Overloaded {
                queued: state.queued_total,
                bound: self.config.queue_bound,
            });
        }
        let (mine, theirs) = Ticket::new();
        let slot = state.tenants.get_mut(tenant).unwrap();
        let ctx = self.spans.as_ref().map(|_| {
            let seq = slot.next_seq;
            slot.next_seq += 1;
            let kind = match &request {
                Request::Ingest { .. } => "ingest",
                Request::Release => "release",
            };
            RequestContext::new(tenant, seq, kind)
        });
        slot.queue.push_back(Job {
            request,
            ticket: theirs,
            ctx,
            enqueued: Instant::now(),
        });
        metrics::gauge_set(
            &format!("serve.tenant_queue_depth.{tenant}"),
            slot.queue.len() as f64,
        );
        if slot.state == SlotState::Idle {
            slot.state = SlotState::Ready;
            state.ready.push_back(tenant.to_string());
        }
        state.queued_total += 1;
        state.max_queued_observed = state.max_queued_observed.max(state.queued_total);
        metrics::gauge_set("serve.queue_depth", state.queued_total as f64);
        metrics::gauge_set(
            "serve.queue_saturation",
            state.queued_total as f64 / self.config.queue_bound as f64,
        );
        drop(state);
        self.work.notify_one();
        Ok(mine)
    }

    /// Submit and wait: the synchronous request path the protocol uses.
    pub fn call(&self, tenant: &str, request: Request) -> Response {
        self.submit(tenant, request)?.wait()
    }

    /// Reports for every tenant, in name order. Busy tenants report their
    /// state as of their last completed request.
    pub fn status(&self) -> Vec<TenantReport> {
        let state = self.state.lock().unwrap();
        state
            .tenants
            .values()
            .map(|slot| match &slot.tenant {
                Some(t) => t.report(),
                None => slot.last_report.clone(),
            })
            .collect()
    }

    /// Current queued-request count across all tenants.
    pub fn queue_depth(&self) -> usize {
        self.state.lock().unwrap().queued_total
    }

    /// Per-tenant queued-request counts, in name order (for `/status`).
    pub fn tenant_queue_depths(&self) -> BTreeMap<String, usize> {
        let state = self.state.lock().unwrap();
        state
            .tenants
            .iter()
            .map(|(name, slot)| (name.clone(), slot.queue.len()))
            .collect()
    }

    /// High-water mark of the admission queue since start.
    pub fn max_queued_observed(&self) -> usize {
        self.state.lock().unwrap().max_queued_observed
    }

    /// Drain: refuse new work, finish everything queued, join workers.
    /// Idempotent.
    pub fn shutdown(&self) {
        {
            let mut state = self.state.lock().unwrap();
            state.shutting_down = true;
        }
        self.work.notify_all();
        let mut handles = self.workers.lock().unwrap();
        for h in handles.drain(..) {
            let _ = h.join();
        }
    }

    fn worker_loop(&self) {
        loop {
            let (name, tenant, job) = {
                let mut state = self.state.lock().unwrap();
                loop {
                    if let Some(name) = state.ready.pop_front() {
                        let slot = state.tenants.get_mut(&name).unwrap();
                        debug_assert!(slot.state == SlotState::Ready);
                        let job = slot.queue.pop_front().expect("ready tenant has a job");
                        let tenant = slot.tenant.take().expect("ready tenant is in its slot");
                        slot.state = SlotState::Busy;
                        state.queued_total -= 1;
                        metrics::gauge_set("serve.queue_depth", state.queued_total as f64);
                        break (name, tenant, job);
                    }
                    if state.shutting_down {
                        // Ready queue is empty. Any remaining queued jobs
                        // belong to busy tenants; their workers will
                        // re-ready them, so wait unless fully drained.
                        if state.queued_total == 0 {
                            return;
                        }
                    }
                    state = self.work.wait(state).unwrap();
                }
            };
            let mut tenant = tenant;
            // Measure the two top-level phases once and define the span
            // tree from them: root := queue_wait + exec, so the tree's
            // end-to-end duration equals the scheduler's measurement
            // *exactly* (assert_eq'd in tests — no epsilon).
            let queue_wait = job.enqueued.elapsed();
            let mut ctx = job.ctx;
            let started = Instant::now();
            let response = Self::execute(&mut tenant, job.request, ctx.as_mut());
            let exec = started.elapsed();
            if matches!(response, Ok(Reply::Released(_))) {
                metrics::histogram_record("serve.release_wall_ns", exec.as_nanos() as f64);
            }
            metrics::histogram_record(
                &format!("serve.request_duration_ns.{name}"),
                (queue_wait + exec).as_nanos() as f64,
            );
            metrics::histogram_record(
                &format!("serve.request_phase_ns.queue.{name}"),
                queue_wait.as_nanos() as f64,
            );
            {
                let mut state = self.state.lock().unwrap();
                let slot = state.tenants.get_mut(&name).unwrap();
                slot.last_report = tenant.report();
                slot.tenant = Some(tenant);
                let report = &slot.last_report;
                metrics::gauge_set(
                    &format!("serve.tenant_spent_epsilon.{name}"),
                    report.spent_epsilon,
                );
                metrics::gauge_set(
                    &format!("serve.tenant_remaining_epsilon.{name}"),
                    report.remaining_epsilon,
                );
                let uptime = self.started.elapsed().as_secs_f64();
                if uptime > 0.0 {
                    metrics::gauge_set(
                        &format!("serve.tenant_eps_burn_per_s.{name}"),
                        report.spent_epsilon / uptime,
                    );
                }
                metrics::gauge_set(
                    &format!("serve.tenant_queue_depth.{name}"),
                    slot.queue.len() as f64,
                );
                if slot.queue.is_empty() {
                    slot.state = SlotState::Idle;
                } else {
                    slot.state = SlotState::Ready;
                    state.ready.push_back(name);
                }
            }
            if let (Some(collector), Some(mut ctx)) = (self.spans.as_ref(), ctx) {
                ctx.set_duration(QUEUE, queue_wait);
                ctx.set_duration(EXEC, exec);
                ctx.set_duration(ROOT, queue_wait + exec);
                let outcome = match &response {
                    Ok(_) => RequestOutcome::Ok,
                    Err(ServeError::BudgetExhausted { .. }) => RequestOutcome::Refused,
                    Err(ServeError::SessionFailed { .. }) => RequestOutcome::Failed,
                    Err(_) => RequestOutcome::Error,
                };
                collector.finish(ctx, outcome);
            }
            // Wake a peer for the re-readied tenant, and — during a drain —
            // let blocked workers re-check the exit condition.
            self.work.notify_all();
            job.ticket.fulfill(response);
        }
    }

    fn execute(
        tenant: &mut Tenant,
        request: Request,
        ctx: Option<&mut RequestContext>,
    ) -> Response {
        match request {
            Request::Ingest { records } => tenant
                .ingest(&records)
                .map(|pending_rows| Reply::Ingested { pending_rows }),
            Request::Release => tenant.release_spanned(ctx).map(Reply::Released),
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqm_mpc::FaultSpec;

    fn records(n: usize, cols: usize, salt: u64) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                (0..cols)
                    .map(|j| {
                        ((i * cols + j) as f64 * 0.29 + salt as f64 * 0.11).sin()
                            / (cols as f64).sqrt()
                    })
                    .collect()
            })
            .collect()
    }

    fn tenant_cfg(name: &str, seed: u64) -> TenantConfig {
        let mut cfg = TenantConfig::new(name);
        cfg.seed = seed;
        cfg.mu = 200.0;
        // Scheduler tests exercise scheduling, not budgets.
        cfg.budget_eps = f64::INFINITY;
        cfg
    }

    /// Checksum of one tenant's full run: every release's covariance bits.
    fn run_tenant_plan(server: &Server, name: &str, seed: u64, rounds: usize) -> Vec<Vec<u64>> {
        let mut sums = Vec::new();
        for r in 0..rounds {
            let reply = server
                .call(
                    name,
                    Request::Ingest {
                        records: records(3 + r, 3, seed.wrapping_add(r as u64)),
                    },
                )
                .unwrap();
            assert!(matches!(reply, Reply::Ingested { .. }));
            match server.call(name, Request::Release).unwrap() {
                Reply::Released(rel) => {
                    sums.push(rel.covariance.iter().map(|v| v.to_bits()).collect())
                }
                other => panic!("expected release, got {other:?}"),
            }
        }
        sums
    }

    #[test]
    fn interleaved_sessions_are_bit_identical_to_serial() {
        let tenants = ["alpha", "beta", "gamma"];
        // Serial: one worker, one tenant at a time, sequential calls.
        let serial = {
            let server = Server::start(ServerConfig {
                queue_bound: 64,
                workers: 1,
                tracing: None,
            });
            let mut out = Vec::new();
            for (i, name) in tenants.iter().enumerate() {
                server.add_tenant(tenant_cfg(name, 40 + i as u64)).unwrap();
                out.push(run_tenant_plan(&server, name, 40 + i as u64, 3));
            }
            server.shutdown();
            out
        };
        // Interleaved: four workers, all tenants driven concurrently.
        let interleaved = {
            let server = Server::start(ServerConfig {
                queue_bound: 64,
                workers: 4,
                tracing: None,
            });
            for (i, name) in tenants.iter().enumerate() {
                server.add_tenant(tenant_cfg(name, 40 + i as u64)).unwrap();
            }
            let handles: Vec<_> = tenants
                .iter()
                .enumerate()
                .map(|(i, name)| {
                    let server = Arc::clone(&server);
                    let name = name.to_string();
                    thread::spawn(move || run_tenant_plan(&server, &name, 40 + i as u64, 3))
                })
                .collect();
            let out: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            server.shutdown();
            out
        };
        assert_eq!(serial, interleaved);
    }

    #[test]
    fn queue_never_exceeds_bound_and_overload_is_typed() {
        let server = Server::start(ServerConfig {
            queue_bound: 2,
            workers: 1,
            tracing: None,
        });
        server.add_tenant(tenant_cfg("t", 7)).unwrap();
        // Flood from many threads; some must be refused, none may queue
        // past the bound.
        let handles: Vec<_> = (0..16)
            .map(|i| {
                let server = Arc::clone(&server);
                thread::spawn(move || {
                    server.submit(
                        "t",
                        Request::Ingest {
                            records: records(2, 3, i),
                        },
                    )
                })
            })
            .collect();
        let mut admitted = 0;
        let mut overloaded = 0;
        for h in handles {
            match h.join().unwrap() {
                Ok(ticket) => {
                    admitted += 1;
                    ticket.wait().unwrap();
                }
                Err(ServeError::Overloaded { queued, bound }) => {
                    overloaded += 1;
                    assert_eq!(bound, 2);
                    assert!(queued >= bound);
                }
                Err(other) => panic!("unexpected error {other:?}"),
            }
        }
        assert!(admitted >= 1);
        assert!(overloaded >= 1, "flood of 16 over bound 2 must overload");
        assert!(
            server.max_queued_observed() <= 2,
            "queue exceeded its bound: {}",
            server.max_queued_observed()
        );
        server.shutdown();
    }

    #[test]
    fn party_crash_fails_only_that_tenant() {
        let server = Server::start(ServerConfig::default());
        let mut doomed = tenant_cfg("doomed", 11);
        // Crash party 1 early in the first release's MPC rounds.
        doomed.faults = Some(FaultSpec::seeded(5).with_crash(1, 2));
        server.add_tenant(doomed).unwrap();
        server.add_tenant(tenant_cfg("healthy", 12)).unwrap();

        server
            .call(
                "doomed",
                Request::Ingest {
                    records: records(3, 3, 1),
                },
            )
            .unwrap();
        let err = server.call("doomed", Request::Release).unwrap_err();
        match &err {
            ServeError::SessionFailed { tenant, .. } => assert_eq!(tenant, "doomed"),
            other => panic!("expected SessionFailed, got {other:?}"),
        }
        // The poisoned session stays failed...
        assert!(matches!(
            server.call("doomed", Request::Release).unwrap_err(),
            ServeError::SessionFailed { .. }
        ));
        // ...while other tenants (and new ones) keep working.
        let sums = run_tenant_plan(&server, "healthy", 12, 2);
        assert_eq!(sums.len(), 2);
        server.add_tenant(tenant_cfg("late", 13)).unwrap();
        assert_eq!(run_tenant_plan(&server, "late", 13, 1).len(), 1);
        let reports = server.status();
        assert!(reports.iter().any(|r| r.name == "doomed" && r.failed));
        assert!(reports.iter().any(|r| r.name == "healthy" && !r.failed));
        server.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_work_then_refuses() {
        let server = Server::start(ServerConfig {
            queue_bound: 8,
            workers: 2,
            tracing: None,
        });
        server.add_tenant(tenant_cfg("d", 3)).unwrap();
        let tickets: Vec<_> = (0..4)
            .map(|i| {
                server
                    .submit(
                        "d",
                        Request::Ingest {
                            records: records(1, 3, i),
                        },
                    )
                    .unwrap()
            })
            .collect();
        server.shutdown();
        // Everything admitted before shutdown completed.
        for t in tickets {
            t.wait().unwrap();
        }
        assert!(matches!(
            server.submit("d", Request::Release).unwrap_err(),
            ServeError::ShuttingDown
        ));
        assert!(matches!(
            server.add_tenant(tenant_cfg("late", 4)).unwrap_err(),
            ServeError::ShuttingDown
        ));
    }

    #[test]
    fn unknown_and_duplicate_tenants_are_typed() {
        let server = Server::start(ServerConfig::default());
        assert!(matches!(
            server.submit("ghost", Request::Release).unwrap_err(),
            ServeError::UnknownTenant { .. }
        ));
        server.add_tenant(tenant_cfg("a", 1)).unwrap();
        assert!(matches!(
            server.add_tenant(tenant_cfg("a", 2)).unwrap_err(),
            ServeError::TenantExists { .. }
        ));
        server.shutdown();
    }
}
