//! Integration tests for the `BENCH_*.json` artifact schema: serde
//! round-trip, schema-version enforcement, and a golden-file gate check.
//!
//! The golden file (`tests/golden/BENCH_golden.json`) is committed
//! pretty-printed and hand-edited — deliberately *not* byte-identical to
//! what our serializer emits — so these tests pin the schema itself, not
//! one serializer's formatting.

use serde::Serialize;
use sqm_bench::json::{self, JsonValue};
use sqm_bench::perf::{measure, BenchArtifact, RunCost, Tier, SCHEMA_VERSION};
use sqm_bench::{compare, GateConfig};

const GOLDEN: &str = include_str!("golden/BENCH_golden.json");

fn golden() -> BenchArtifact {
    BenchArtifact::from_json(&json::parse(GOLDEN).expect("golden file parses"))
        .expect("golden file matches the schema")
}

#[test]
fn golden_file_decodes_with_every_field() {
    let artifact = golden();
    assert_eq!(artifact.schema_version, SCHEMA_VERSION);
    assert_eq!(artifact.suite, "golden");
    assert_eq!(artifact.tier, "small");
    assert_eq!(artifact.commit.len(), 40);
    assert_eq!(artifact.created_unix_s, 1_754_000_000);
    assert_eq!(artifact.peak_rss_bytes, 100 << 20);
    assert_eq!(artifact.entries.len(), 2);
    let mpc = artifact.entry("bgw_grr_mul_p4_len256_r4").unwrap();
    assert_eq!(
        (mpc.rounds, mpc.messages, mpc.bytes),
        (7, 312, 159_744),
        "deterministic counters survive the round-trip exactly"
    );
    assert_eq!(mpc.simulated_s, 0.712);
    let micro = artifact.entry("m61_mul_x16384").unwrap();
    assert_eq!((micro.rounds, micro.messages), (0, 0));
}

#[test]
fn serialize_then_parse_is_identity() {
    // A freshly measured artifact through to_json -> parse -> from_json
    // must reproduce every field.
    let original = {
        let entry = measure("roundtrip", Tier::Small, || RunCost {
            rounds: 4,
            messages: 24,
            bytes: 4096,
            simulated: std::time::Duration::from_millis(400),
            critical_path: std::time::Duration::from_millis(450),
        });
        let mut artifact = golden();
        artifact.suite = "roundtrip".to_string();
        artifact.entries = vec![entry];
        artifact
    };
    let back =
        BenchArtifact::from_json(&json::parse(&original.to_json()).unwrap()).expect("round-trip");
    assert_eq!(back.suite, original.suite);
    assert_eq!(back.commit, original.commit);
    assert_eq!(back.created_unix_s, original.created_unix_s);
    assert_eq!(back.entries.len(), 1);
    let (a, b) = (&original.entries[0], &back.entries[0]);
    assert_eq!(a.name, b.name);
    assert_eq!(a.median_ns, b.median_ns);
    assert_eq!(a.p95_ns, b.p95_ns);
    assert_eq!((a.repeats, a.warmup), (b.repeats, b.warmup));
    assert_eq!(
        (a.rounds, a.messages, a.bytes),
        (b.rounds, b.messages, b.bytes)
    );
    assert_eq!(a.simulated_s, b.simulated_s);
    assert_eq!(a.critical_path_s, b.critical_path_s);
    assert_eq!(a.critical_path_s, 0.45);
}

#[test]
fn golden_file_without_critical_path_defaults_to_zero() {
    // Pre-causal baselines were written before `critical_path_s` existed;
    // they must keep parsing (the gate skips the metric when either side
    // is zero).
    let artifact = golden();
    for entry in &artifact.entries {
        assert_eq!(entry.critical_path_s, 0.0);
    }
}

#[test]
fn wrong_schema_version_is_rejected() {
    let bumped = GOLDEN.replace("\"schema_version\": 1", "\"schema_version\": 2");
    let err = BenchArtifact::from_json(&json::parse(&bumped).unwrap()).unwrap_err();
    assert!(err.contains("schema_version"), "unhelpful error: {err}");
}

#[test]
fn missing_fields_are_rejected_not_defaulted() {
    for field in ["suite", "commit", "median_ns", "rounds", "simulated_s"] {
        let JsonValue::Obj(mut doc) = json::parse(GOLDEN).unwrap() else {
            panic!("golden file is an object");
        };
        // Remove the field wherever it lives (top level or inside entries).
        doc.remove(field);
        if let Some(JsonValue::Arr(entries)) = doc.get_mut("entries") {
            for entry in entries {
                if let JsonValue::Obj(map) = entry {
                    map.remove(field);
                }
            }
        }
        let err = BenchArtifact::from_json(&JsonValue::Obj(doc)).unwrap_err();
        assert!(err.contains(field), "dropping {field:?} gave: {err}");
    }
}

#[test]
fn golden_gate_accepts_identical_and_rejects_slowdown() {
    let baseline = golden();
    let cfg = GateConfig::default();
    assert!(compare(&baseline, &baseline, &cfg).passed());

    // 2x median on the gated entry: fail.
    let mut slow = baseline.clone();
    let entry = slow
        .entries
        .iter_mut()
        .find(|e| e.name == "bgw_grr_mul_p4_len256_r4")
        .unwrap();
    entry.median_ns *= 2;
    let report = compare(&baseline, &slow, &cfg);
    assert!(!report.passed());
    assert!(report
        .failures()
        .any(|f| f.metric == "median_ns" && f.entry == "bgw_grr_mul_p4_len256_r4"));

    // One extra protocol round: fail even with identical wall-clock.
    let mut chattier = baseline.clone();
    chattier.entries[1].rounds += 1;
    let report = compare(&baseline, &chattier, &cfg);
    assert!(report.failures().any(|f| f.metric == "rounds"));
}
