//! Golden-file test for Chrome-trace flow events.
//!
//! A causally-stamped trace round-trips through `write_chrome_trace` and
//! back through our own JSON parser: every stamped message must surface
//! as exactly one `ph:"s"` / `ph:"f"` pair whose flow ids match, with the
//! start on the sender's track and the finish on the receiver's.
//!
//! The golden file (`tests/golden/chrome_flow_golden.json`) pins the
//! serialized byte stream, so any accidental change to flow-event layout
//! (field order, id assignment, timestamp units) shows up as a diff, not
//! as a silently different Perfetto rendering. Regenerate with
//! `BLESS=1 cargo test -p sqm-bench --test chrome_flow`.

use std::time::Duration;

use sqm::obs::trace::{MsgStamp, PartyRecorder, Trace};
use sqm::obs::write_chrome_trace;
use sqm_bench::json::{self, JsonValue};

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/chrome_flow_golden.json"
);

/// Two parties, two causally-stamped rounds each — the engines' recording
/// order (causal context, then the round, then one flush per phase), with
/// every wall-clock duration pinned so the serialization is byte-stable.
fn golden_trace() -> Trace {
    let latency = Duration::from_millis(100);
    let parties = (0..2usize)
        .map(|me| {
            let peer = 1 - me;
            let mut rec = PartyRecorder::new(me, latency);
            rec.set_phase("compute");
            let mut lamport = 0u64;
            for k in 0..2u64 {
                let send = lamport + 1;
                let recv = send + 1;
                let stamp = MsgStamp {
                    peer,
                    link_seq: k,
                    lamport: send,
                    round: k,
                };
                rec.record_causal_round(
                    Duration::from_millis(k),
                    Duration::from_millis(k),
                    send,
                    recv,
                    vec![stamp],
                    vec![stamp],
                );
                rec.record_round(1, 8);
                lamport = recv;
            }
            rec.flush_phase(Duration::from_millis(2));
            rec.finish()
        })
        .collect();
    Trace::from_parties(latency, parties)
}

fn rendered() -> String {
    let mut buf = Vec::new();
    write_chrome_trace(&golden_trace(), &mut buf).unwrap();
    String::from_utf8(buf).unwrap()
}

#[test]
fn flow_events_match_golden_file_byte_for_byte() {
    let json = rendered();
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(GOLDEN_PATH, &json).unwrap();
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH).expect("golden file exists");
    assert_eq!(
        json, golden,
        "chrome trace drifted from tests/golden/chrome_flow_golden.json \
         (re-bless with BLESS=1 if the change is intentional)"
    );
}

#[test]
fn flow_events_parse_back_with_matching_ids() {
    let doc = json::parse(&rendered()).expect("chrome trace is valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_arr)
        .expect("traceEvents array");

    let phase = |e: &JsonValue| e.get("ph").and_then(JsonValue::as_str).map(str::to_owned);
    let field = |e: &JsonValue, k: &str| e.get(k).and_then(JsonValue::as_u64).unwrap();
    let ts = |e: &JsonValue| e.get("ts").and_then(JsonValue::as_f64).unwrap();

    let starts: Vec<&JsonValue> = events
        .iter()
        .filter(|e| phase(e).as_deref() == Some("s"))
        .collect();
    let finishes: Vec<&JsonValue> = events
        .iter()
        .filter(|e| phase(e).as_deref() == Some("f"))
        .collect();

    // 2 parties * 2 rounds = 4 stamped messages → one flow pair each.
    assert_eq!(starts.len(), 4);
    assert_eq!(finishes.len(), 4);

    for s in &starts {
        let id = field(s, "id");
        let matching: Vec<&&JsonValue> = finishes.iter().filter(|f| field(f, "id") == id).collect();
        assert_eq!(
            matching.len(),
            1,
            "flow id {id} must have exactly one finish"
        );
        let f = matching[0];
        // Start sits on the sender's track, finish on the receiver's.
        assert_ne!(field(s, "tid"), field(f, "tid"), "flow id {id}");
        // The arrow spans exactly the 100 ms simulated hop.
        let hop_us = ts(f) - ts(s);
        assert!((hop_us - 100_000.0).abs() < 1e-6, "flow id {id}: {hop_us}");
        // Binding point on the enclosing slice, flow category + name.
        assert_eq!(f.get("bp").and_then(JsonValue::as_str), Some("e"));
        for e in [s, f] {
            assert_eq!(e.get("cat").and_then(JsonValue::as_str), Some("flow"));
            assert_eq!(e.get("name").and_then(JsonValue::as_str), Some("msg"));
        }
    }

    // Flow ids are dense and deterministic: 0..edges.
    let mut ids: Vec<u64> = starts.iter().map(|s| field(s, "id")).collect();
    ids.sort_unstable();
    assert_eq!(ids, vec![0, 1, 2, 3]);
}
