//! Golden-file test for the privacy-ledger JSONL export.
//!
//! The ledger is the repo's audit trail of DP releases; downstream
//! consumers (`jq` pipelines, the audit harness, dashboards) key on its
//! field names and line structure. The golden file
//! (`tests/golden/ledger_jsonl_golden.jsonl`) pins the serialized byte
//! stream of a fixed two-release account, so any schema drift — renamed
//! field, reordered field, changed float formatting — shows up as a test
//! diff, not as a silently broken consumer. Regenerate with
//! `BLESS=1 cargo test -p sqm-bench --test ledger_jsonl`.

use sqm::accounting::skellam::Sensitivity;
use sqm::obs::{write_ledger_jsonl, PrivacyLedger};
use sqm_bench::json::{self, JsonValue};

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/ledger_jsonl_golden.jsonl"
);

/// A fixed two-release account: the PCA covariance then a column-sum
/// release, with every parameter pinned so the export is byte-stable
/// (the ledger itself is deterministic — no sampling involved).
fn golden_ledger() -> PrivacyLedger {
    let mut ledger = PrivacyLedger::new(4, 1e-5);
    ledger.record(
        "covariance",
        16,
        18.0,
        1e6,
        Sensitivity::from_l2_for_dim(330.0, 16),
    );
    ledger.record(
        "column_sums",
        4,
        32.0,
        1e4,
        Sensitivity::from_l2_for_dim(40.0, 4),
    );
    ledger
}

fn rendered() -> String {
    let mut buf = Vec::new();
    write_ledger_jsonl(&golden_ledger().report(), &mut buf).unwrap();
    String::from_utf8(buf).unwrap()
}

#[test]
fn ledger_export_matches_golden_file_byte_for_byte() {
    let text = rendered();
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(GOLDEN_PATH, &text).unwrap();
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH).expect("golden file exists");
    assert_eq!(
        text, golden,
        "ledger JSONL drifted from tests/golden/ledger_jsonl_golden.jsonl \
         (re-bless with BLESS=1 if the schema change is intentional)"
    );
}

#[test]
fn ledger_export_parses_back_with_stable_schema() {
    let text = rendered();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3, "meta line + one line per release");

    let meta = json::parse(lines[0]).expect("meta line is valid JSON");
    assert_eq!(
        meta.get("type").and_then(JsonValue::as_str),
        Some("ledger_meta")
    );
    assert_eq!(meta.get("n_clients").and_then(JsonValue::as_u64), Some(4));
    assert_eq!(meta.get("releases").and_then(JsonValue::as_u64), Some(2));
    let server_total = meta
        .get("server_epsilon_total")
        .and_then(JsonValue::as_f64)
        .expect("composed server epsilon");
    assert!(server_total.is_finite() && server_total > 0.0);

    // Every release line carries the full pinned schema.
    const RELEASE_FIELDS: [&str; 12] = [
        "type",
        "index",
        "kind",
        "dims",
        "gamma",
        "mu",
        "sensitivity_l1",
        "sensitivity_l2",
        "server_epsilon",
        "client_epsilon",
        "server_epsilon_total",
        "client_epsilon_total",
    ];
    for (i, line) in lines[1..].iter().enumerate() {
        let release = json::parse(line).expect("release line is valid JSON");
        for field in RELEASE_FIELDS {
            assert!(
                release.get(field).is_some(),
                "release line {i} is missing {field:?}: {line}"
            );
        }
        assert_eq!(
            release.get("type").and_then(JsonValue::as_str),
            Some("release")
        );
        assert_eq!(
            release.get("index").and_then(JsonValue::as_u64),
            Some(i as u64)
        );
        // Client view is strictly weaker than the server view (Eq. 4).
        let server = release
            .get("server_epsilon")
            .and_then(JsonValue::as_f64)
            .unwrap();
        let client = release
            .get("client_epsilon")
            .and_then(JsonValue::as_f64)
            .unwrap();
        assert!(
            client > server,
            "line {i}: client {client} <= server {server}"
        );
    }

    // The last release's running total equals the meta line's total.
    let last = json::parse(lines[2]).unwrap();
    let last_total = last
        .get("server_epsilon_total")
        .and_then(JsonValue::as_f64)
        .unwrap();
    assert_eq!(last_total, server_total);
}
