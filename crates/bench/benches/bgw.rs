//! BGW protocol throughput: batched multiplications, inner products, and
//! the full engine round trip.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sqm::field::{PrimeField, M61};
use sqm::mpc::{MpcConfig, MpcEngine};
use std::time::Duration;

fn engine(n: usize) -> MpcEngine {
    MpcEngine::new(MpcConfig::semi_honest(n).with_latency(Duration::ZERO))
}

fn bench_bgw(c: &mut Criterion) {
    let mut g = c.benchmark_group("bgw_batched_mul");
    g.sample_size(20);
    for &batch in &[64usize, 1024] {
        g.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |bch, &batch| {
            let eng = engine(4);
            bch.iter(|| {
                let run = eng.run::<M61, _, _>(|ctx| {
                    let a = ctx.share_input(
                        0,
                        (ctx.id == 0)
                            .then(|| vec![M61::from_u64(3); batch])
                            .as_deref(),
                        batch,
                    );
                    let b = ctx.share_input(
                        1,
                        (ctx.id == 1)
                            .then(|| vec![M61::from_u64(5); batch])
                            .as_deref(),
                        batch,
                    );
                    let p = ctx.mul(&a, &b);
                    ctx.open(&p)
                });
                black_box(run.outputs)
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("bgw_inner_product");
    g.sample_size(20);
    for &len in &[1024usize, 16384] {
        g.bench_with_input(BenchmarkId::from_parameter(len), &len, |bch, &len| {
            let eng = engine(4);
            bch.iter(|| {
                let run = eng.run::<M61, _, _>(|ctx| {
                    let a = ctx.share_input(
                        0,
                        (ctx.id == 0)
                            .then(|| vec![M61::from_u64(2); len])
                            .as_deref(),
                        len,
                    );
                    let b = ctx.share_input(
                        1,
                        (ctx.id == 1)
                            .then(|| vec![M61::from_u64(7); len])
                            .as_deref(),
                        len,
                    );
                    let ip = ctx.inner_product(&a, &b);
                    ctx.open(&[ip])
                });
                black_box(run.outputs)
            })
        });
    }
    g.finish();
}

fn bench_additive(c: &mut Criterion) {
    use sqm::mpc::AdditiveEngine;
    let mut g = c.benchmark_group("backend_mul_batch256");
    g.sample_size(20);
    g.bench_function("bgw_grr", |bch| {
        let eng = engine(4);
        bch.iter(|| {
            let run = eng.run::<M61, _, _>(|ctx| {
                let x = ctx.share_input(
                    0,
                    (ctx.id == 0)
                        .then(|| vec![M61::from_u64(3); 256])
                        .as_deref(),
                    256,
                );
                let y = ctx.share_input(
                    1,
                    (ctx.id == 1)
                        .then(|| vec![M61::from_u64(5); 256])
                        .as_deref(),
                    256,
                );
                let z = ctx.mul(&x, &y);
                ctx.open(&z)
            });
            black_box(run.outputs)
        })
    });
    g.bench_function("additive_beaver", |bch| {
        let eng = AdditiveEngine::new(MpcConfig::semi_honest(4).with_latency(Duration::ZERO));
        bch.iter(|| {
            let run = eng.run::<M61, _, _>(|ctx| {
                let x = ctx.share_input(
                    0,
                    (ctx.id == 0)
                        .then(|| vec![M61::from_u64(3); 256])
                        .as_deref(),
                    256,
                );
                let y = ctx.share_input(
                    1,
                    (ctx.id == 1)
                        .then(|| vec![M61::from_u64(5); 256])
                        .as_deref(),
                    256,
                );
                let triples = ctx.dealer_triples(256);
                let z = ctx.mul_beaver(&x, &y, &triples);
                ctx.open(&z)
            });
            black_box(run.outputs)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_bgw, bench_additive);
criterion_main!(benches);
