//! Sampler throughput: Poisson across its three regimes, Skellam, Gaussian,
//! stochastic rounding.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sqm::sampling::{sample_poisson, sample_skellam, sample_standard_normal, stochastic_round};

fn bench_sampling(c: &mut Criterion) {
    let mut g = c.benchmark_group("poisson");
    for mu in [1.0, 100.0, 1e9, 1e16] {
        g.bench_with_input(BenchmarkId::from_parameter(mu), &mu, |bch, &mu| {
            let mut rng = StdRng::seed_from_u64(1);
            bch.iter(|| black_box(sample_poisson(&mut rng, mu)))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("skellam");
    for mu in [100.0, 1e12, 1e22] {
        g.bench_with_input(BenchmarkId::from_parameter(mu), &mu, |bch, &mu| {
            let mut rng = StdRng::seed_from_u64(2);
            bch.iter(|| black_box(sample_skellam(&mut rng, mu)))
        });
    }
    g.finish();

    c.bench_function("standard_normal", |bch| {
        let mut rng = StdRng::seed_from_u64(3);
        bch.iter(|| black_box(sample_standard_normal(&mut rng)))
    });

    c.bench_function("stochastic_round", |bch| {
        let mut rng = StdRng::seed_from_u64(4);
        bch.iter(|| black_box(stochastic_round(&mut rng, black_box(1234.5678))))
    });
}

criterion_group!(benches, bench_sampling);
criterion_main!(benches);
