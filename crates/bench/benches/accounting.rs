//! Accounting throughput: RDP bounds, subsampling amplification, and full
//! noise calibration (the per-experiment setup cost).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sqm::accounting::calibration::{calibrate_skellam_mu, CalibrationTarget};
use sqm::accounting::skellam::{skellam_rdp, Sensitivity};
use sqm::accounting::subsampled_rdp;

fn bench_accounting(c: &mut Criterion) {
    let sens = Sensitivity::new(100.0, 50.0);

    c.bench_function("skellam_rdp_single_order", |bch| {
        bch.iter(|| black_box(skellam_rdp(black_box(16), sens, 1e8)))
    });

    c.bench_function("subsampled_rdp_alpha256", |bch| {
        bch.iter(|| black_box(subsampled_rdp(256, 0.001, |l| skellam_rdp(l, sens, 1e8))))
    });

    c.bench_function("calibrate_skellam_mu_5000_rounds", |bch| {
        let target = CalibrationTarget::new(1.0, 1e-5);
        bch.iter(|| black_box(calibrate_skellam_mu(target, sens, 5000, 0.001)))
    });
}

criterion_group!(benches, bench_accounting);
criterion_main!(benches);
