//! Shamir sharing and reconstruction throughput.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sqm::field::{PrimeField, M61};
use sqm::mpc::{reconstruct, share_secret};

fn bench_shamir(c: &mut Criterion) {
    let mut g = c.benchmark_group("share_secret");
    for &(t, n) in &[(1usize, 3usize), (4, 10), (9, 20)] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("t{t}_n{n}")),
            &(t, n),
            |bch, &(t, n)| {
                let mut rng = StdRng::seed_from_u64(1);
                let s = M61::from_u64(12345);
                bch.iter(|| black_box(share_secret(&mut rng, s, t, n)))
            },
        );
    }
    g.finish();

    c.bench_function("reconstruct_t4_n10", |bch| {
        let mut rng = StdRng::seed_from_u64(2);
        let shares = share_secret(&mut rng, M61::from_u64(999), 4, 10);
        let pairs: Vec<(usize, M61)> = shares.into_iter().enumerate().collect();
        bch.iter(|| black_box(reconstruct(&pairs)))
    });
}

criterion_group!(benches, bench_shamir);
criterion_main!(benches);
