//! Logistic-regression step benchmarks (the per-round cost behind Figure 3).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sqm::datasets::ClassificationSpec;
use sqm::vfl::gradient::gradient_sum_skellam_plaintext;

fn bench_logreg(c: &mut Criterion) {
    let ds = ClassificationSpec::new(1000, 64).with_seed(1).generate();
    let data = ds.as_vfl_matrix();
    let w = vec![0.05; 64];
    let batch: Vec<usize> = (0..100).collect();

    c.bench_function("sqm_gradient_sum_batch100_d64", |bch| {
        let mut rng = StdRng::seed_from_u64(2);
        bch.iter(|| {
            black_box(gradient_sum_skellam_plaintext(
                &mut rng, &data, &batch, &w, 8192.0, 1e6, 4, 7,
            ))
        })
    });
}

criterion_group!(benches, bench_logreg);
criterion_main!(benches);
