//! Field-arithmetic throughput: M61 vs M127 (DESIGN.md ablation #1 — the
//! cost of the wide field that PCA's magnitude bounds sometimes require).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sqm::field::{PrimeField, M127, M61};

fn bench_field(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let a61: Vec<M61> = (0..1024).map(|_| M61::random(&mut rng)).collect();
    let b61: Vec<M61> = (0..1024).map(|_| M61::random(&mut rng)).collect();
    let a127: Vec<M127> = (0..1024).map(|_| M127::random(&mut rng)).collect();
    let b127: Vec<M127> = (0..1024).map(|_| M127::random(&mut rng)).collect();

    let mut g = c.benchmark_group("field_mul_1024");
    g.bench_function(BenchmarkId::new("mul", "m61"), |bch| {
        bch.iter(|| {
            let mut acc = M61::ZERO;
            for (&x, &y) in a61.iter().zip(&b61) {
                acc += x * y;
            }
            black_box(acc)
        })
    });
    g.bench_function(BenchmarkId::new("mul", "m127"), |bch| {
        bch.iter(|| {
            let mut acc = M127::ZERO;
            for (&x, &y) in a127.iter().zip(&b127) {
                acc += x * y;
            }
            black_box(acc)
        })
    });
    g.finish();

    c.bench_function("field_inverse_m61", |bch| {
        let x = M61::from_u64(123_456_789);
        bch.iter(|| black_box(black_box(x).inverse()))
    });
}

criterion_group!(benches, bench_field);
criterion_main!(benches);
