//! Quantization throughput (Algorithm 2) and the stochastic-vs-nearest
//! rounding ablation (DESIGN.md #2).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqm::core::quantize::{quantize_polynomial, quantize_vec};
use sqm::core::Polynomial;
use sqm::sampling::rounding::nearest_round;

fn bench_quantize(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let v: Vec<f64> = (0..4096).map(|_| rng.gen::<f64>() - 0.5).collect();

    let mut g = c.benchmark_group("quantize_vec_4096");
    for gamma in [16.0, 4096.0, 1048576.0] {
        g.bench_with_input(BenchmarkId::from_parameter(gamma), &gamma, |bch, &gamma| {
            let mut rng = StdRng::seed_from_u64(2);
            bch.iter(|| black_box(quantize_vec(&mut rng, &v, gamma)))
        });
    }
    g.finish();

    c.bench_function("nearest_round_vec_4096", |bch| {
        bch.iter(|| {
            let out: Vec<i64> = v.iter().map(|&x| nearest_round(4096.0 * x)).collect();
            black_box(out)
        })
    });

    c.bench_function("quantize_covariance_polynomial_n32", |bch| {
        let p = Polynomial::covariance(32);
        let mut rng = StdRng::seed_from_u64(3);
        bch.iter(|| black_box(quantize_polynomial(&mut rng, &p, 1024.0)))
    });
}

criterion_group!(benches, bench_quantize);
criterion_main!(benches);
