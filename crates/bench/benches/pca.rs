//! End-to-end PCA pipeline benchmarks (the per-run cost behind Figure 2).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sqm::datasets::SpectralSpec;
use sqm::linalg::eigen::top_k_eigenvectors;
use sqm::tasks::pca::SqmPca;

fn bench_pca(c: &mut Criterion) {
    let data = SpectralSpec::new(500, 32).with_seed(1).generate();

    c.bench_function("eigensolve_n32", |bch| {
        let g = data.gram();
        bch.iter(|| black_box(top_k_eigenvectors(&g, 8)))
    });

    // Ablation: full Jacobi vs shifted orthogonal iteration for top-k.
    {
        use sqm::linalg::eigen::{orthogonal_iteration, symmetric_eigen};
        let big = SpectralSpec::new(300, 128).with_seed(2).generate();
        let g = big.gram();
        let mut grp = c.benchmark_group("topk_solver_n128_k8");
        grp.sample_size(10);
        grp.bench_function("jacobi_full", |bch| {
            bch.iter(|| black_box(symmetric_eigen(&g).values[0]))
        });
        grp.bench_function("orthogonal_iteration", |bch| {
            bch.iter(|| black_box(orthogonal_iteration(&g, 8, 300, 1e-10)))
        });
        grp.finish();
    }

    let mut g = c.benchmark_group("sqm_pca_fit_m500_n32");
    g.sample_size(20);
    g.bench_function("plaintext", |bch| {
        let mech = SqmPca::new(8, 1024.0, 1.0, 1e-5);
        let mut rng = StdRng::seed_from_u64(2);
        bch.iter(|| black_box(mech.fit(&mut rng, &data)))
    });
    g.finish();
}

criterion_group!(benches, bench_pca);
criterion_main!(benches);
