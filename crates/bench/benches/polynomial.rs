//! Polynomial representation and SQM mechanism throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sqm::core::mechanism::{sqm_polynomial, SqmParams};
use sqm::core::Polynomial;
use sqm::datasets::SpectralSpec;

fn bench_polynomial(c: &mut Criterion) {
    let data = SpectralSpec::new(200, 16).with_seed(1).generate();

    c.bench_function("polynomial_eval_covariance_n16_m200", |bch| {
        let p = Polynomial::covariance(16);
        bch.iter(|| black_box(p.sum_over((0..data.rows()).map(|i| data.row(i)))))
    });

    c.bench_function("sqm_mechanism_covariance_n16_m200", |bch| {
        let p = Polynomial::covariance(16);
        let mut rng = StdRng::seed_from_u64(2);
        bch.iter(|| {
            black_box(sqm_polynomial(
                &mut rng,
                &p,
                &data,
                SqmParams::new(1024.0, 100.0, 4),
            ))
        })
    });
}

criterion_group!(benches, bench_polynomial);
criterion_main!(benches);
