//! Reduced-size versions of the paper's timing tables (II, IV, V) as
//! Criterion benchmarks: the full BGW covariance and gradient protocols at
//! several dimensions / record counts / client counts (zero simulated
//! latency so only compute+messaging is measured).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sqm::datasets::SpectralSpec;
use sqm::vfl::covariance::covariance_skellam;
use sqm::vfl::gradient::gradient_sum_skellam;
use sqm::vfl::{ColumnPartition, VflConfig};

fn bench_tables(c: &mut Criterion) {
    // Table II shape: vary n.
    let mut g = c.benchmark_group("table2_pca_vs_n_m200_p4");
    g.sample_size(10);
    for &n in &[16usize, 32, 64] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, &n| {
            let data = SpectralSpec::new(200, n).with_seed(1).generate();
            let partition = ColumnPartition::even(n, 4);
            let cfg = VflConfig::fast(4);
            bch.iter(|| black_box(covariance_skellam(&data, &partition, 18.0, 100.0, &cfg)))
        });
    }
    g.finish();

    // Table IV shape: vary m.
    let mut g = c.benchmark_group("table4_lr_vs_m_n33_p4");
    g.sample_size(10);
    for &m in &[100usize, 400, 1600] {
        g.bench_with_input(BenchmarkId::from_parameter(m), &m, |bch, &m| {
            let data = SpectralSpec::new(m, 33).with_seed(2).generate();
            let partition = ColumnPartition::even(33, 4);
            let cfg = VflConfig::fast(4);
            let batch: Vec<usize> = (0..m).collect();
            let w = vec![0.01; 32];
            bch.iter(|| {
                black_box(gradient_sum_skellam(
                    &data, &partition, &batch, &w, 18.0, 100.0, &cfg,
                ))
            })
        });
    }
    g.finish();

    // Table V shape: vary P.
    let mut g = c.benchmark_group("table5_pca_vs_p_m100_n24");
    g.sample_size(10);
    for &p in &[2usize, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(p), &p, |bch, &p| {
            let data = SpectralSpec::new(100, 24).with_seed(3).generate();
            let partition = ColumnPartition::even(24, p);
            let cfg = VflConfig::fast(p);
            bch.iter(|| black_box(covariance_skellam(&data, &partition, 18.0, 100.0, &cfg)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
