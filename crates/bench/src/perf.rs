//! Deterministic wall-clock perf suites and the `BENCH_*.json` artifact
//! schema.
//!
//! Criterion benches (`benches/`) answer "how fast is this on my machine
//! right now"; this module answers "did it get slower since the committed
//! baseline". Three suites cover the paper's hot paths end to end:
//!
//! * `micro` — field arithmetic (M61 mul/inv, M127 mul), stochastic
//!   quantization, Skellam sampling. Pure compute, no MPC.
//! * `mpc` — Shamir share/open and full GRR multiplication rounds through
//!   the BGW engine (in-process mesh, zero simulated latency), with the
//!   engine's own message/byte/simulated-time accounting attached.
//! * `vfl` — one covariance release and one logistic-regression
//!   gradient-sum epoch, each on both the in-process and the loopback-TCP
//!   backend.
//! * `serve` — the multi-tenant serving layer: a full seeded load run
//!   (sessions/sec) and the steady-state per-release latency through the
//!   scheduler.
//!
//! Every workload is seeded, so byte/message/round counts are exactly
//! reproducible run to run; only wall-clock varies. Each suite run is
//! summarized as a [`BenchArtifact`] (schema in one place, versioned by
//! [`SCHEMA_VERSION`]) and written as `BENCH_<suite>.json` for the
//! regression gate ([`crate::gate`]) to diff against `bench/baseline.json`.

use std::hint::black_box;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant, SystemTime};

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use sqm::core::quantize::quantize_vec;
use sqm::datasets::SpectralSpec;
use sqm::field::{PrimeField, M127, M61};
use sqm::mpc::shamir::{reconstruct, share_secret};
use sqm::mpc::{MpcConfig, MpcEngine, RunStats};
use sqm::obs::trace::Trace;
use sqm::obs::{metrics, MessageDag, SpanConfig};
use sqm::sampling::skellam::sample_skellam_vec;
use sqm::serve::{load_tenant_config, run_load, LoadSpec, Reply, Request, Server, ServerConfig};
use sqm::vfl::{
    covariance_skellam, gradient_sum_skellam, Batching, ColumnPartition, LiveConfig, NetBackend,
    ProfConfig, VflConfig,
};

use crate::json::JsonValue;

/// Version of the `BENCH_*.json` schema; bump on any field change so the
/// gate can refuse to diff artifacts it does not understand.
pub const SCHEMA_VERSION: u64 = 1;

/// How hard to drive each workload.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Tier {
    /// CI-sized: seconds per suite.
    Small,
    /// Local: larger inputs, more repeats, tighter percentiles.
    Full,
}

impl Tier {
    pub fn name(self) -> &'static str {
        match self {
            Tier::Small => "small",
            Tier::Full => "full",
        }
    }

    /// Parse a `--suite small|full` argument value.
    pub fn parse(s: &str) -> Option<Tier> {
        match s {
            "small" => Some(Tier::Small),
            "full" => Some(Tier::Full),
            _ => None,
        }
    }

    fn warmup(self) -> usize {
        match self {
            Tier::Small => 1,
            Tier::Full => 3,
        }
    }

    fn repeats(self) -> usize {
        match self {
            Tier::Small => 7,
            Tier::Full => 15,
        }
    }
}

/// Deterministic cost counters attached to one workload execution:
/// the MPC engine's own accounting, or zero for pure-compute workloads.
#[derive(Copy, Clone, Debug, Default)]
pub struct RunCost {
    pub rounds: u64,
    pub messages: u64,
    pub bytes: u64,
    pub simulated: Duration,
    /// Latency-weighted critical path of the causal message DAG (zero for
    /// untraced or pure-compute workloads).
    pub critical_path: Duration,
}

impl RunCost {
    pub fn from_stats(stats: &RunStats) -> RunCost {
        RunCost {
            rounds: stats.total.rounds,
            messages: stats.total.messages,
            bytes: stats.total.bytes,
            simulated: stats.simulated_time(),
            critical_path: Duration::ZERO,
        }
    }

    /// Like [`RunCost::from_stats`], plus the critical path of the run's
    /// causal message DAG (requires the workload to run with tracing on).
    pub fn from_stats_and_trace(stats: &RunStats, trace: Option<&Trace>) -> RunCost {
        let mut cost = RunCost::from_stats(stats);
        if let Some(trace) = trace {
            cost.critical_path = MessageDag::build(trace).critical_path().total;
        }
        cost
    }
}

/// One benchmarked workload inside an artifact.
#[derive(Clone, Debug, Serialize)]
pub struct BenchEntry {
    pub name: String,
    /// Median wall-clock over `repeats` timed runs, nanoseconds.
    pub median_ns: u64,
    /// 95th percentile (nearest-rank) over the timed runs, nanoseconds.
    pub p95_ns: u64,
    pub repeats: u64,
    pub warmup: u64,
    /// Deterministic: synchronous protocol rounds (0 for pure compute).
    pub rounds: u64,
    /// Deterministic: total point-to-point messages (0 for pure compute).
    pub messages: u64,
    /// Deterministic: total payload bytes (0 for pure compute).
    pub bytes: u64,
    /// Simulated protocol time under the configured latency model, seconds
    /// (0 for pure compute). `wall + rounds * latency`, so the latency part
    /// is deterministic but the wall part is not — the gate compares this
    /// by ratio, while `rounds`/`messages`/`bytes` must match exactly.
    pub simulated_s: f64,
    /// Critical path of the causal message DAG, seconds (0 when the
    /// workload runs untraced). Same deterministic-latency/measured-wall
    /// mix as `simulated_s`, so the gate ratio-compares it — and only
    /// when both sides are non-zero, since older baselines predate the
    /// field.
    pub critical_path_s: f64,
}

/// One suite run: what `BENCH_<suite>.json` holds.
#[derive(Clone, Debug, Serialize)]
pub struct BenchArtifact {
    pub schema_version: u64,
    pub suite: String,
    pub tier: String,
    /// Commit hash from `SQM_COMMIT` (CI exports it); `"unknown"` locally.
    pub commit: String,
    pub created_unix_s: u64,
    /// Peak RSS of the whole process at artifact-write time (`VmHWM`);
    /// 0 where procfs is unavailable.
    pub peak_rss_bytes: u64,
    pub entries: Vec<BenchEntry>,
}

impl BenchArtifact {
    fn new(suite: &str, tier: Tier, entries: Vec<BenchEntry>) -> BenchArtifact {
        BenchArtifact {
            schema_version: SCHEMA_VERSION,
            suite: suite.to_string(),
            tier: tier.name().to_string(),
            commit: std::env::var("SQM_COMMIT").unwrap_or_else(|_| "unknown".to_string()),
            created_unix_s: SystemTime::now()
                .duration_since(SystemTime::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
            peak_rss_bytes: metrics::peak_rss_bytes().unwrap_or(0),
            entries,
        }
    }

    /// Entry lookup by workload name.
    pub fn entry(&self, name: &str) -> Option<&BenchEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Rebuild an artifact from parsed JSON (the inverse of the derived
    /// `Serialize`, which the compat serde cannot provide).
    pub fn from_json(doc: &JsonValue) -> Result<BenchArtifact, String> {
        let field = |key: &str| doc.get(key).ok_or_else(|| format!("missing field {key:?}"));
        let str_field = |key: &str| -> Result<String, String> {
            field(key)?
                .as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("field {key:?} is not a string"))
        };
        let u64_field = |doc: &JsonValue, key: &str| -> Result<u64, String> {
            doc.get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("field {key:?} is not a non-negative integer"))
        };
        let schema_version = u64_field(doc, "schema_version")?;
        if schema_version != SCHEMA_VERSION {
            return Err(format!(
                "unsupported schema_version {schema_version} (expected {SCHEMA_VERSION})"
            ));
        }
        let entries = field("entries")?
            .as_arr()
            .ok_or_else(|| "field \"entries\" is not an array".to_string())?
            .iter()
            .map(|e| -> Result<BenchEntry, String> {
                Ok(BenchEntry {
                    name: e
                        .get("name")
                        .and_then(JsonValue::as_str)
                        .ok_or_else(|| "entry missing string \"name\"".to_string())?
                        .to_string(),
                    median_ns: u64_field(e, "median_ns")?,
                    p95_ns: u64_field(e, "p95_ns")?,
                    repeats: u64_field(e, "repeats")?,
                    warmup: u64_field(e, "warmup")?,
                    rounds: u64_field(e, "rounds")?,
                    messages: u64_field(e, "messages")?,
                    bytes: u64_field(e, "bytes")?,
                    simulated_s: e
                        .get("simulated_s")
                        .and_then(JsonValue::as_f64)
                        .ok_or_else(|| "entry missing number \"simulated_s\"".to_string())?,
                    // Absent from pre-causal baselines: default 0 = "not
                    // measured", which the gate treats as non-comparable.
                    critical_path_s: e
                        .get("critical_path_s")
                        .and_then(JsonValue::as_f64)
                        .unwrap_or(0.0),
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(BenchArtifact {
            schema_version,
            suite: str_field("suite")?,
            tier: str_field("tier")?,
            commit: str_field("commit")?,
            created_unix_s: u64_field(doc, "created_unix_s")?,
            peak_rss_bytes: u64_field(doc, "peak_rss_bytes")?,
            entries,
        })
    }

    /// Write this artifact as `BENCH_<suite>.json` under `dir`
    /// (atomically: temp file + rename, so a crashed run never leaves a
    /// truncated artifact for the gate to choke on).
    pub fn write_to(&self, dir: &Path) -> std::io::Result<PathBuf> {
        let path = dir.join(format!("BENCH_{}.json", self.suite));
        let mut body = self.to_json();
        body.push('\n');
        sqm::obs::atomic_write_str(&path, &body)?;
        Ok(path)
    }
}

/// Time `work` with `warmup` discarded runs then `repeats` timed runs;
/// summarize as median + nearest-rank p95. The workload's deterministic
/// cost counters are taken from the last run (they are identical across
/// runs by construction — seeded RNGs, fixed shapes).
pub fn measure(name: &str, tier: Tier, mut work: impl FnMut() -> RunCost) -> BenchEntry {
    let (warmup, repeats) = (tier.warmup(), tier.repeats());
    let mut cost = RunCost::default();
    for _ in 0..warmup {
        cost = black_box(work());
    }
    let mut samples_ns: Vec<u64> = Vec::with_capacity(repeats);
    for _ in 0..repeats {
        let t0 = Instant::now();
        cost = black_box(work());
        samples_ns.push(t0.elapsed().as_nanos() as u64);
    }
    samples_ns.sort_unstable();
    let nearest = |p: f64| samples_ns[metrics::nearest_rank_index(samples_ns.len(), p)];
    BenchEntry {
        name: name.to_string(),
        median_ns: nearest(0.50),
        p95_ns: nearest(0.95),
        repeats: repeats as u64,
        warmup: warmup as u64,
        rounds: cost.rounds,
        messages: cost.messages,
        bytes: cost.bytes,
        simulated_s: cost.simulated.as_secs_f64(),
        critical_path_s: cost.critical_path.as_secs_f64(),
    }
}

/// `micro` suite: pure-compute kernels (no MPC, no I/O).
pub fn run_micro(tier: Tier) -> BenchArtifact {
    let n_ops = match tier {
        Tier::Small => 1 << 14,
        Tier::Full => 1 << 17,
    };
    let mut entries = Vec::new();

    entries.push(measure(&format!("m61_mul_x{n_ops}"), tier, || {
        let mut rng = StdRng::seed_from_u64(11);
        let xs: Vec<M61> = (0..n_ops).map(|_| M61::random(&mut rng)).collect();
        let mut acc = M61::ONE;
        for &x in &xs {
            acc *= x;
        }
        black_box(acc);
        RunCost::default()
    }));

    let n_inv = n_ops / 16; // inversion is ~60 squarings+muls per element
    entries.push(measure(&format!("m61_inv_x{n_inv}"), tier, || {
        let mut rng = StdRng::seed_from_u64(12);
        let xs: Vec<M61> = (0..n_inv).map(|_| M61::random(&mut rng)).collect();
        let mut acc = M61::ZERO;
        for &x in &xs {
            acc += x.inverse();
        }
        black_box(acc);
        RunCost::default()
    }));

    entries.push(measure(&format!("m127_mul_x{n_ops}"), tier, || {
        let mut rng = StdRng::seed_from_u64(13);
        let xs: Vec<M127> = (0..n_ops).map(|_| M127::random(&mut rng)).collect();
        let mut acc = M127::ONE;
        for &x in &xs {
            acc *= x;
        }
        black_box(acc);
        RunCost::default()
    }));

    entries.push(measure(&format!("quantize_x{n_ops}"), tier, || {
        let values: Vec<f64> = (0..n_ops).map(|i| (i as f64).sin()).collect();
        let mut rng = StdRng::seed_from_u64(14);
        black_box(quantize_vec(&mut rng, &values, 4096.0));
        RunCost::default()
    }));

    entries.push(measure(&format!("skellam_mu100_x{n_ops}"), tier, || {
        let mut rng = StdRng::seed_from_u64(15);
        black_box(sample_skellam_vec(&mut rng, 100.0, n_ops));
        RunCost::default()
    }));

    BenchArtifact::new("micro", tier, entries)
}

/// `mpc` suite: Shamir primitives and GRR multiplication rounds through
/// the BGW engine (in-process mesh, zero simulated latency).
pub fn run_mpc(tier: Tier) -> BenchArtifact {
    let (n_secrets, mul_len, mul_rounds) = match tier {
        Tier::Small => (1 << 10, 256, 4),
        Tier::Full => (1 << 13, 1024, 8),
    };
    let (n_parties, threshold) = (5usize, 2usize);
    let mut entries = Vec::new();

    entries.push(measure(
        &format!("shamir_share_n5_t2_x{n_secrets}"),
        tier,
        || {
            let mut rng = StdRng::seed_from_u64(21);
            let mut acc = M61::ZERO;
            for i in 0..n_secrets {
                let shares =
                    share_secret::<M61, _>(&mut rng, M61::from_u64(i), threshold, n_parties);
                acc += shares[0];
            }
            black_box(acc);
            RunCost::default()
        },
    ));

    entries.push(measure(
        &format!("shamir_open_n5_t2_x{n_secrets}"),
        tier,
        || {
            let mut rng = StdRng::seed_from_u64(22);
            let shared: Vec<Vec<M61>> = (0..n_secrets)
                .map(|i| share_secret::<M61, _>(&mut rng, M61::from_u64(i), threshold, n_parties))
                .collect();
            let mut acc = M61::ZERO;
            for shares in &shared {
                let points: Vec<(usize, M61)> =
                    shares.iter().copied().enumerate().take(2 * 2 + 1).collect();
                acc += reconstruct(&points);
            }
            black_box(acc);
            RunCost::default()
        },
    ));

    entries.push(measure(
        &format!("bgw_grr_mul_p4_len{mul_len}_r{mul_rounds}"),
        tier,
        || {
            let cfg = MpcConfig::semi_honest(4)
                .with_latency(Duration::from_millis(100))
                .with_seed(23);
            let run = MpcEngine::new(cfg).run::<M61, _, _>(|ctx| {
                let x = ctx.share_input(
                    0,
                    (ctx.id == 0)
                        .then(|| (0..mul_len as u64).map(M61::from_u64).collect::<Vec<_>>())
                        .as_deref(),
                    mul_len,
                );
                let mut y = x.clone();
                for _ in 0..mul_rounds {
                    y = ctx.mul(&y, &x);
                }
                ctx.open(&y)
            });
            black_box(&run.outputs);
            RunCost::from_stats(&run.stats)
        },
    ));

    BenchArtifact::new("mpc", tier, entries)
}

/// `vfl` suite: end-to-end covariance and LR-gradient releases over both
/// transport backends.
pub fn run_vfl(tier: Tier) -> BenchArtifact {
    let (m, n, p) = match tier {
        Tier::Small => (60, 8, 3),
        Tier::Full => (200, 16, 4),
    };
    let mut entries = Vec::new();

    for (backend_name, backend) in [
        ("inprocess", NetBackend::InProcess),
        ("tcp", NetBackend::tcp()),
    ] {
        // Traced: the engines stamp every message, so the entry carries
        // the causal critical path next to the virtual-clock total. The
        // stamps ride outside the byte accounting, so rounds/messages/
        // bytes stay identical to an untraced run.
        let cov_name = format!("covariance_{backend_name}_m{m}_n{n}_p{p}");
        let backend_cov = backend.clone();
        entries.push(measure(&cov_name, tier, || {
            let data = SpectralSpec::new(m, n).with_seed(31).generate();
            let partition = ColumnPartition::even(n, p);
            let cfg = VflConfig::new(p)
                .with_seed(32)
                .with_trace(true)
                .with_backend(backend_cov.clone());
            let out = covariance_skellam(&data, &partition, 18.0, 100.0, &cfg);
            black_box(&out.c_hat);
            RunCost::from_stats_and_trace(&out.stats, out.trace.as_ref())
        }));

        let lr_name = format!("logreg_grad_{backend_name}_m{m}_d{d}_p{p}", d = n - 1);
        entries.push(measure(&lr_name, tier, || {
            let data = SpectralSpec::new(m, n).with_seed(33).generate();
            let partition = ColumnPartition::even(n, p);
            let cfg = VflConfig::new(p)
                .with_seed(34)
                .with_trace(true)
                .with_backend(backend.clone());
            let batch: Vec<usize> = (0..m).collect();
            let w = vec![0.01; n - 1];
            let out = gradient_sum_skellam(&data, &partition, &batch, &w, 18.0, 100.0, &cfg);
            black_box(&out.grad_sum);
            RunCost::from_stats_and_trace(&out.stats, out.trace.as_ref())
        }));
    }

    // Same covariance workload with live telemetry streaming (aggregator
    // only, no HTTP endpoint): the gate's median-ratio rule on this entry
    // is the standing bound on publish-path overhead. Note the first
    // iteration installs the process-global collector, which stays active
    // for the rest of the process — deterministic counters are unaffected
    // by design (asserted in the vfl crate's bit-identity tests).
    let live_name = format!("live_overhead_covariance_m{m}_n{n}_p{p}");
    entries.push(measure(&live_name, tier, || {
        let data = SpectralSpec::new(m, n).with_seed(31).generate();
        let partition = ColumnPartition::even(n, p);
        let cfg = VflConfig::new(p)
            .with_seed(32)
            .with_trace(true)
            .with_live(Some(LiveConfig::default()));
        let out = covariance_skellam(&data, &partition, 18.0, 100.0, &cfg);
        black_box(&out.c_hat);
        RunCost::from_stats_and_trace(&out.stats, out.trace.as_ref())
    }));

    // Same covariance workload with the cost profiler attached: the gate's
    // 1.5x median rule on this entry is the standing bound on attribution
    // overhead (every exchange, degree reduction and Skellam draw records
    // into the process-global profile). The profiler is torn down after
    // the entry unless the process had it on already (`sqm-perf --prof`),
    // so later suites and the gate see the same world either way.
    let prof_name = format!("prof_overhead_covariance_m{m}_n{n}_p{p}");
    let prof_was_active = sqm::obs::prof::is_active();
    entries.push(measure(&prof_name, tier, || {
        let data = SpectralSpec::new(m, n).with_seed(31).generate();
        let partition = ColumnPartition::even(n, p);
        let cfg = VflConfig::new(p)
            .with_seed(32)
            .with_trace(true)
            .with_prof(Some(ProfConfig::default().with_dir("results/perf")));
        let out = covariance_skellam(&data, &partition, 18.0, 100.0, &cfg);
        black_box(&out.c_hat);
        RunCost::from_stats_and_trace(&out.stats, out.trace.as_ref())
    }));
    if !prof_was_active {
        sqm::obs::prof::deactivate();
        sqm::obs::prof::reset();
    }

    // Batched-vs-reference message accounting at the paper's n = 31
    // covariance shape (reduce width n(n+1)/2 = 496 at P = 4). The
    // per-element reference counts one message per field element, so the
    // exact-diffed `messages` of this entry pair pins the realized
    // batching win — a frame-codec regression that quietly splits frames
    // fails the gate even if wall-clock is unchanged. The shape is fixed
    // across tiers: it is the acceptance point, not a load knob.
    let (bm, bn, bp) = (40usize, 31usize, 4usize);
    for (mode_name, batching) in [
        ("batched", Batching::default()),
        ("unbatched", Batching::Off),
    ] {
        let name = format!("covariance_{mode_name}_m{bm}_n{bn}_p{bp}");
        entries.push(measure(&name, tier, move || {
            let data = SpectralSpec::new(bm, bn).with_seed(35).generate();
            let partition = ColumnPartition::even(bn, bp);
            let cfg = VflConfig::new(bp).with_seed(36).with_batching(batching);
            let out = covariance_skellam(&data, &partition, 18.0, 100.0, &cfg);
            black_box(&out.c_hat);
            RunCost::from_stats(&out.stats)
        }));
    }

    BenchArtifact::new("vfl", tier, entries)
}

/// The `serve` suite: the multi-tenant serving layer end to end.
///
/// * `serve_load_*` — a full seeded closed-loop load run (tenant
///   creation, concurrent drivers, budget refusals, drain shutdown) per
///   repeat; the entry's `median_ns / (tenants * rounds)` is the
///   sessions/sec figure, and the exact-diffed counters pin the admitted
///   release count (`rounds`), the admitted+refused total (`messages`)
///   and the released bytes — so a scheduler or odometer regression that
///   changes *what* was served fails the gate even if wall-clock is fine.
/// * `slo_overhead_*` — the same load workload with request tracing on
///   (span collector, traced tenants, causal DAG per release); its gate
///   pins the cost of the observability layer, and its counters must
///   equal the untraced entry's (tracing is passive).
/// * `serve_release_*` — one ingest+release round against a long-lived
///   server, so the median/p95 percentiles are per-release latency
///   through the scheduler (queueing included); counters come from the
///   release's own MPC `RunStats`.
pub fn run_serve(tier: Tier) -> BenchArtifact {
    let mut spec = LoadSpec::smoke();
    if tier == Tier::Full {
        spec.tenants = 6;
        spec.rounds = 8;
        spec.rows_per_batch = 8;
    }
    let mut entries = Vec::new();

    let load_name = format!(
        "serve_load_t{}_r{}_p{}",
        spec.tenants, spec.rounds, spec.n_clients
    );
    let load_spec = spec.clone();
    entries.push(measure(&load_name, tier, || {
        let server = Server::start(ServerConfig {
            queue_bound: 64,
            workers: 4,
            tracing: None,
        });
        let report = run_load(&server, &load_spec);
        server.shutdown();
        black_box(report.digest());
        RunCost {
            rounds: report.releases_admitted() as u64,
            messages: (report.releases_admitted() + report.budget_refusals()) as u64,
            bytes: report
                .per_tenant
                .iter()
                .map(|t| t.checksums.len() * load_spec.n_cols * load_spec.n_cols * 8)
                .sum::<usize>() as u64,
            simulated: Duration::ZERO,
            critical_path: Duration::ZERO,
        }
    }));

    // Tracing overhead: the identical load workload with request tracing
    // on end to end (span collector, traced tenants, causal DAG builds on
    // every release). Gated at the same 1.5x median rule, so "span
    // recording stays cheap" is a pinned property — and the exact-diffed
    // counters must equal the untraced load entry's, re-asserting that
    // tracing is passive on every bench run.
    let slo_name = format!(
        "slo_overhead_t{}_r{}_p{}",
        spec.tenants, spec.rounds, spec.n_clients
    );
    let slo_spec = LoadSpec {
        tracing: true,
        ..spec.clone()
    };
    entries.push(measure(&slo_name, tier, || {
        let server = Server::start(ServerConfig {
            queue_bound: 64,
            workers: 4,
            tracing: Some(SpanConfig::default()),
        });
        let report = run_load(&server, &slo_spec);
        let snap = server.spans().expect("tracing configured").snapshot();
        server.shutdown();
        black_box(report.digest());
        black_box(snap.total_requests);
        RunCost {
            rounds: report.releases_admitted() as u64,
            messages: (report.releases_admitted() + report.budget_refusals()) as u64,
            bytes: report
                .per_tenant
                .iter()
                .map(|t| t.checksums.len() * slo_spec.n_cols * slo_spec.n_cols * 8)
                .sum::<usize>() as u64,
            simulated: Duration::ZERO,
            critical_path: Duration::ZERO,
        }
    }));

    // Long-lived server: warmup + repeats all hit the same session, so
    // this measures the steady-state release path (amortized streaming
    // statistics, reused mesh), not session setup.
    let server = Server::start(ServerConfig {
        queue_bound: 64,
        workers: 2,
        tracing: None,
    });
    let mut tenant = load_tenant_config(&spec, 0);
    tenant.name = "bench-release".to_string();
    tenant.budget_eps = f64::INFINITY; // latency entry never hits the budget
    tenant.max_rows = 10_000;
    server.add_tenant(tenant).expect("bench tenant");
    let rel_name = format!("serve_release_n{}_p{}", spec.n_cols, spec.n_clients);
    let mut round = 0u64;
    entries.push(measure(&rel_name, tier, || {
        // Fresh deterministic rows each round (seeded by the round index).
        let mut rng = StdRng::seed_from_u64(0x5E54_0000 + round);
        round += 1;
        let records: Vec<Vec<f64>> = (0..spec.rows_per_batch)
            .map(|_| {
                (0..spec.n_cols)
                    .map(|_| rand::Rng::gen_range(&mut rng, -0.5..0.5))
                    .collect()
            })
            .collect();
        match server.call("bench-release", Request::Ingest { records }) {
            Ok(_) => {}
            Err(e) => panic!("bench ingest failed: {e}"),
        }
        match server.call("bench-release", Request::Release) {
            Ok(Reply::Released(rel)) => {
                black_box(&rel.covariance);
                let mut cost = RunCost::from_stats(&rel.stats);
                // The serving config runs at zero simulated latency, so
                // `simulated_time` degenerates to measured party wall
                // clock — not deterministic, not diffable. The wall-clock
                // percentiles above already carry the timing signal.
                cost.simulated = Duration::ZERO;
                cost
            }
            other => panic!("bench release failed: {other:?}"),
        }
    }));
    server.shutdown();

    BenchArtifact::new("serve", tier, entries)
}

/// Run every suite at `tier`, in a fixed order.
pub fn run_all(tier: Tier) -> Vec<BenchArtifact> {
    vec![
        run_micro(tier),
        run_mpc(tier),
        run_vfl(tier),
        run_serve(tier),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn measure_summarizes_and_keeps_costs() {
        let mut calls = 0u64;
        let entry = measure("toy", Tier::Small, || {
            calls += 1;
            std::hint::black_box((0..1000u64).sum::<u64>());
            RunCost {
                rounds: 3,
                messages: 7,
                bytes: 99,
                simulated: Duration::from_millis(250),
                critical_path: Duration::from_millis(260),
            }
        });
        assert_eq!(calls, 1 + 7); // warmup + repeats at Small
        assert_eq!(entry.repeats, 7);
        assert_eq!(entry.warmup, 1);
        assert!(entry.median_ns > 0);
        assert!(entry.p95_ns >= entry.median_ns);
        assert_eq!(entry.rounds, 3);
        assert_eq!(entry.messages, 7);
        assert_eq!(entry.bytes, 99);
        assert!((entry.simulated_s - 0.25).abs() < 1e-12);
        assert!((entry.critical_path_s - 0.26).abs() < 1e-12);
    }

    #[test]
    fn artifact_json_roundtrip() {
        let artifact = BenchArtifact::new(
            "unit",
            Tier::Small,
            vec![measure("noop", Tier::Small, RunCost::default)],
        );
        let doc = json::parse(&artifact.to_json()).unwrap();
        let back = BenchArtifact::from_json(&doc).unwrap();
        assert_eq!(back.schema_version, SCHEMA_VERSION);
        assert_eq!(back.suite, "unit");
        assert_eq!(back.tier, "small");
        assert_eq!(back.entries.len(), 1);
        assert_eq!(back.entries[0].name, "noop");
        assert_eq!(back.entries[0].median_ns, artifact.entries[0].median_ns);
    }

    #[test]
    fn batching_win_meets_the_acceptance_floor() {
        // The bench pair's exact-diffed counters must show the reduce
        // width: at n = 31, P = 4 the per-element reference sends >= 100x
        // the messages of the batched default, for identical payloads.
        let data = SpectralSpec::new(40, 31).with_seed(35).generate();
        let partition = ColumnPartition::even(31, 4);
        let run = |batching: Batching| {
            let cfg = VflConfig::fast(4).with_seed(36).with_batching(batching);
            covariance_skellam(&data, &partition, 18.0, 100.0, &cfg)
        };
        let batched = run(Batching::default());
        let reference = run(Batching::Off);
        assert_eq!(batched.c_hat, reference.c_hat);
        assert_eq!(batched.stats.total.bytes, reference.stats.total.bytes);
        assert_eq!(reference.stats.total.messages, reference.stats.total.elems);
        let ratio = reference.stats.total.messages as f64 / batched.stats.total.messages as f64;
        assert!(
            ratio >= 100.0,
            "batching win x{ratio:.0} below the 100x acceptance floor \
             ({} vs {} messages)",
            reference.stats.total.messages,
            batched.stats.total.messages
        );
    }

    #[test]
    fn mpc_suite_costs_are_deterministic_and_nonzero() {
        // GRR rounds through the real engine: accounting must be attached
        // and identical across two runs (seeded workload).
        let a = run_mpc(Tier::Small);
        let b = run_mpc(Tier::Small);
        let mul_a = a.entry("bgw_grr_mul_p4_len256_r4").unwrap();
        let mul_b = b.entry("bgw_grr_mul_p4_len256_r4").unwrap();
        assert!(mul_a.rounds > 0 && mul_a.messages > 0 && mul_a.bytes > 0);
        // The latency component dominates: 100ms per round.
        assert!(mul_a.simulated_s >= 0.1 * mul_a.rounds as f64);
        assert_eq!(mul_a.rounds, mul_b.rounds);
        assert_eq!(mul_a.messages, mul_b.messages);
        assert_eq!(mul_a.bytes, mul_b.bytes);
    }
}
