//! `sqm-bench`: Criterion microbenchmarks (under `benches/`) plus the
//! perf-tracking library behind the `sqm-perf` binary:
//!
//! * [`perf`] — deterministic wall-clock suites and the versioned
//!   `BENCH_*.json` artifact schema.
//! * [`gate`] — the regression gate diffing fresh artifacts against the
//!   committed `bench/baseline.json`, plus its own self-test.
//! * [`history`] — the append-only `history.jsonl` median trend log and
//!   its sparkline rendering for the HTML report.
//! * [`json`] — the minimal JSON reader the gate needs (the offline serde
//!   stand-in only writes).

pub mod gate;
pub mod history;
pub mod json;
pub mod perf;

pub use gate::{compare, gate_artifacts, Baseline, GateConfig, GateReport, Verdict};
pub use perf::{run_all, run_micro, run_mpc, run_serve, run_vfl, BenchArtifact, BenchEntry, Tier};
