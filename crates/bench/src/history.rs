//! Bench-median history: an append-only JSONL trend log next to the
//! `BENCH_*.json` artifacts.
//!
//! `sqm-perf --append-history` appends one line per run to
//! `results/perf/history.jsonl`; each line is a self-describing,
//! schema-versioned record of every entry's median. The file is rewritten
//! atomically on append (read + rewrite via temp-file rename), so a
//! crashed run never truncates the trend. With two or more points on
//! record, [`trends_html`] renders a per-entry sparkline section the
//! `sqm-perf --report` HTML embeds — the "did this drift over the last N
//! runs" view the single-baseline gate cannot give.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use crate::json::{self, JsonValue};
use crate::perf::BenchArtifact;

/// Version of the history-line schema; bump on any field change so old
/// readers can skip lines they do not understand.
pub const HISTORY_SCHEMA_VERSION: u64 = 1;

/// One appended run: every suite entry's median, keyed `suite/entry`.
#[derive(Clone, Debug, PartialEq)]
pub struct HistoryPoint {
    pub created_unix_s: u64,
    pub commit: String,
    /// `"<suite>/<entry>" -> median_ns`, key-sorted for determinism.
    pub medians: BTreeMap<String, u64>,
}

impl HistoryPoint {
    /// Collapse one run's artifacts into a history point.
    pub fn from_artifacts(artifacts: &[BenchArtifact]) -> HistoryPoint {
        let mut medians = BTreeMap::new();
        for artifact in artifacts {
            for entry in &artifact.entries {
                medians.insert(
                    format!("{}/{}", artifact.suite, entry.name),
                    entry.median_ns,
                );
            }
        }
        HistoryPoint {
            created_unix_s: artifacts.first().map_or(0, |a| a.created_unix_s),
            commit: artifacts
                .first()
                .map_or_else(|| "unknown".to_string(), |a| a.commit.clone()),
            medians,
        }
    }

    /// Render as one JSONL line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut out = format!(
            "{{\"schema_version\":{HISTORY_SCHEMA_VERSION},\"created_unix_s\":{},\"commit\":{},\"medians\":{{",
            self.created_unix_s,
            json_string(&self.commit),
        );
        for (i, (name, median)) in self.medians.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_string(name));
            out.push(':');
            out.push_str(&median.to_string());
        }
        out.push_str("}}");
        out
    }

    fn from_json(doc: &JsonValue) -> Option<HistoryPoint> {
        if doc.get("schema_version")?.as_u64()? != HISTORY_SCHEMA_VERSION {
            return None;
        }
        let mut medians = BTreeMap::new();
        for (key, value) in doc.get("medians")?.as_obj()? {
            medians.insert(key.clone(), value.as_u64()?);
        }
        Some(HistoryPoint {
            created_unix_s: doc.get("created_unix_s")?.as_u64()?,
            commit: doc.get("commit")?.as_str()?.to_string(),
            medians,
        })
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Load every parseable history point, oldest first. A missing file is an
/// empty history; malformed or wrong-schema lines are skipped (the log
/// outlives schema bumps).
pub fn load(path: &Path) -> Vec<HistoryPoint> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .filter_map(|l| json::parse(l).ok())
        .filter_map(|doc| HistoryPoint::from_json(&doc))
        .collect()
}

/// Append one run to the history at `path` (atomic rewrite); returns the
/// number of points now on record.
pub fn append(path: &Path, artifacts: &[BenchArtifact]) -> io::Result<usize> {
    let mut points = load(path);
    points.push(HistoryPoint::from_artifacts(artifacts));
    let mut body = String::new();
    for p in &points {
        body.push_str(&p.to_json_line());
        body.push('\n');
    }
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    sqm::obs::atomic_write_str(path, &body)?;
    Ok(points.len())
}

/// A tiny inline-SVG sparkline of the series (oldest left). Deterministic:
/// geometry only depends on the values.
pub fn sparkline_svg(values: &[u64]) -> String {
    let (w, h, pad) = (120.0f64, 24.0f64, 2.0f64);
    let lo = values.iter().copied().min().unwrap_or(0) as f64;
    let hi = values.iter().copied().max().unwrap_or(0) as f64;
    let span = if hi > lo { hi - lo } else { 1.0 };
    let step = if values.len() > 1 {
        (w - 2.0 * pad) / (values.len() - 1) as f64
    } else {
        0.0
    };
    let points: Vec<String> = values
        .iter()
        .enumerate()
        .map(|(i, &v)| {
            let x = pad + i as f64 * step;
            let y = h - pad - (v as f64 - lo) / span * (h - 2.0 * pad);
            format!("{x:.1},{y:.1}")
        })
        .collect();
    format!(
        "<svg class=\"spark\" width=\"120\" height=\"24\" viewBox=\"0 0 120 24\" \
         role=\"img\" aria-label=\"median trend\">\
         <polyline fill=\"none\" stroke=\"#4a7db8\" stroke-width=\"1.5\" points=\"{}\"/>\
         </svg>",
        points.join(" ")
    )
}

/// The per-entry trend section for the HTML report: one row per entry with
/// its median history as a sparkline. Empty unless at least two points are
/// on record (one point has no trend).
pub fn trends_html(points: &[HistoryPoint]) -> String {
    if points.len() < 2 {
        return String::new();
    }
    // Union of entry names across history, so renamed workloads keep their
    // old rows visible.
    let mut names: BTreeMap<&str, Vec<u64>> = BTreeMap::new();
    for p in points {
        for name in p.medians.keys() {
            names.entry(name).or_default();
        }
    }
    for (name, series) in names.iter_mut() {
        for p in points {
            if let Some(&v) = p.medians.get(*name) {
                series.push(v);
            }
        }
    }
    let mut out = String::from(
        "<section id=\"bench-trends\"><h2>Bench median trends</h2>\
         <table><thead><tr><th>entry</th><th>latest median</th>\
         <th>runs</th><th>trend</th></tr></thead><tbody>",
    );
    for (name, series) in &names {
        if series.is_empty() {
            continue;
        }
        let latest = *series.last().unwrap();
        out.push_str(&format!(
            "<tr><td>{name}</td><td>{:.3} ms</td><td>{}</td><td>{}</td></tr>",
            latest as f64 / 1e6,
            series.len(),
            sparkline_svg(series),
        ));
    }
    out.push_str("</tbody></table></section>");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf::{measure, RunCost, Tier};

    fn toy_artifacts(median_hint: u64) -> Vec<BenchArtifact> {
        // measure() gives real (machine-dependent) medians; for schema
        // tests we only need structure, so build via the public measure
        // path and ignore the actual numbers except through the hint name.
        let entry = measure(&format!("toy_{median_hint}"), Tier::Small, || {
            RunCost::default()
        });
        vec![BenchArtifact {
            schema_version: crate::perf::SCHEMA_VERSION,
            suite: "unit".to_string(),
            tier: "small".to_string(),
            commit: "deadbeef".to_string(),
            created_unix_s: 1000 + median_hint,
            peak_rss_bytes: 0,
            entries: vec![entry],
        }]
    }

    #[test]
    fn append_accumulates_and_roundtrips() {
        let dir = std::env::temp_dir().join(format!("sqm-hist-{}", std::process::id()));
        let path = dir.join("history.jsonl");
        let _ = std::fs::remove_file(&path);
        assert_eq!(append(&path, &toy_artifacts(1)).unwrap(), 1);
        assert_eq!(append(&path, &toy_artifacts(2)).unwrap(), 2);
        let points = load(&path);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].commit, "deadbeef");
        assert_eq!(points[0].created_unix_s, 1001);
        assert!(points[0].medians.contains_key("unit/toy_1"));
        assert!(points[1].medians.contains_key("unit/toy_2"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn wrong_schema_lines_are_skipped_not_fatal() {
        let dir = std::env::temp_dir().join(format!("sqm-hist-skip-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("history.jsonl");
        let good = HistoryPoint {
            created_unix_s: 5,
            commit: "c".to_string(),
            medians: BTreeMap::from([("s/e".to_string(), 42u64)]),
        };
        std::fs::write(
            &path,
            format!(
                "{{\"schema_version\":99}}\nnot json\n{}\n",
                good.to_json_line()
            ),
        )
        .unwrap();
        let points = load(&path);
        assert_eq!(points.len(), 1);
        assert_eq!(points[0], good);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn trends_need_two_points_and_render_sparklines() {
        let one = vec![HistoryPoint {
            created_unix_s: 1,
            commit: "a".to_string(),
            medians: BTreeMap::from([("s/e".to_string(), 10u64)]),
        }];
        assert_eq!(trends_html(&one), "");
        let mut two = one.clone();
        two.push(HistoryPoint {
            created_unix_s: 2,
            commit: "b".to_string(),
            medians: BTreeMap::from([("s/e".to_string(), 20u64)]),
        });
        let html = trends_html(&two);
        assert!(html.contains("bench-trends"));
        assert!(html.contains("s/e"));
        assert!(html.contains("<svg"));
        assert!(html.contains("polyline"));
        // Deterministic: same inputs, same bytes.
        assert_eq!(html, trends_html(&two));
        // Self-contained: no external references.
        assert!(!html.contains("http://"));
        assert!(!html.contains("https://"));
    }

    #[test]
    fn history_line_is_valid_json_with_sorted_keys() {
        let p = HistoryPoint {
            created_unix_s: 9,
            commit: "x\"y".to_string(),
            medians: BTreeMap::from([("b/later".to_string(), 2u64), ("a/first".to_string(), 1u64)]),
        };
        let line = p.to_json_line();
        let doc = crate::json::parse(&line).unwrap();
        assert_eq!(doc.get("schema_version").unwrap().as_u64(), Some(1));
        assert_eq!(doc.get("commit").unwrap().as_str(), Some("x\"y"));
        assert!(line.find("a/first").unwrap() < line.find("b/later").unwrap());
        assert_eq!(HistoryPoint::from_json(&doc), Some(p));
    }
}
