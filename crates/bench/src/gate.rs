//! The perf regression gate: diff a fresh [`BenchArtifact`] against the
//! committed baseline.
//!
//! Wall-clock metrics (`median_ns`, `p95_ns`) are compared by *ratio*
//! against per-metric thresholds chosen to ride out shared-runner noise
//! (median 1.5x, p95 3.0x by default). Only the median can *fail* the
//! gate: with few repeats the p95 is close to the max, and a single
//! thread-scheduling spike on a shared runner produces 5-10x p95
//! outliers, so p95 exceedances surface as warnings. The gate is a
//! tripwire for "the round loop got quadratically slower", not a
//! microbenchmark referee.
//! Deterministic metrics (`rounds`, `messages`, `bytes`) are compared
//! *exactly*: the workloads are seeded, so any drift there is a real
//! protocol change and fails regardless of thresholds. `simulated_s`
//! mixes a deterministic latency term with measured wall time, so it is
//! ratio-gated like the median.
//!
//! The gate never silently skips: workloads present in only one side are
//! reported as warnings, and a baseline with an unknown schema version is
//! an error, not a pass.

use std::fmt;

use crate::json::{self, JsonValue};
use crate::perf::{BenchArtifact, SCHEMA_VERSION};

/// Per-metric relative thresholds (current/baseline ratio above which a
/// wall-clock metric fails).
#[derive(Clone, Debug)]
pub struct GateConfig {
    /// Exceeding this fails the gate.
    pub median_ratio_max: f64,
    /// Exceeding this only warns (the p95 of a small sample is spiky).
    pub p95_ratio_max: f64,
    /// Ignore regressions on runs faster than this: ratios on
    /// nanosecond-scale timings are dominated by timer granularity.
    pub min_baseline_ns: u64,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig {
            median_ratio_max: 1.5,
            p95_ratio_max: 3.0,
            min_baseline_ns: 10_000,
        }
    }
}

/// Severity of one comparison result.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    Pass,
    /// Non-comparable (entry missing on one side, sub-threshold timing).
    Warn,
    Fail,
}

/// One compared metric.
#[derive(Clone, Debug)]
pub struct Finding {
    pub suite: String,
    pub entry: String,
    pub metric: &'static str,
    pub baseline: f64,
    pub current: f64,
    pub verdict: Verdict,
    pub detail: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = match self.verdict {
            Verdict::Pass => "PASS",
            Verdict::Warn => "WARN",
            Verdict::Fail => "FAIL",
        };
        write!(
            f,
            "[{tag}] {}/{} {}: {}",
            self.suite, self.entry, self.metric, self.detail
        )
    }
}

/// The gate's aggregate result.
#[derive(Clone, Debug, Default)]
pub struct GateReport {
    pub findings: Vec<Finding>,
}

impl GateReport {
    pub fn passed(&self) -> bool {
        !self.findings.iter().any(|f| f.verdict == Verdict::Fail)
    }

    pub fn failures(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.verdict == Verdict::Fail)
    }

    /// Human-readable multi-line rendering (one finding per line, PASS
    /// lines elided unless `verbose`).
    pub fn render(&self, verbose: bool) -> String {
        let mut out = String::new();
        let mut shown = 0usize;
        for finding in &self.findings {
            if !verbose && finding.verdict == Verdict::Pass {
                continue;
            }
            out.push_str(&finding.to_string());
            out.push('\n');
            shown += 1;
        }
        let fails = self.failures().count();
        out.push_str(&format!(
            "gate: {} findings ({} shown), {} failures -> {}\n",
            self.findings.len(),
            shown,
            fails,
            if self.passed() { "PASS" } else { "FAIL" }
        ));
        out
    }
}

/// Compare one fresh artifact against its baseline counterpart.
pub fn compare(baseline: &BenchArtifact, current: &BenchArtifact, cfg: &GateConfig) -> GateReport {
    let mut report = GateReport::default();
    let suite = current.suite.clone();
    let push = |report: &mut GateReport,
                entry: &str,
                metric: &'static str,
                baseline: f64,
                current: f64,
                verdict: Verdict,
                detail: String| {
        report.findings.push(Finding {
            suite: suite.clone(),
            entry: entry.to_string(),
            metric,
            baseline,
            current,
            verdict,
            detail,
        });
    };

    if baseline.tier != current.tier {
        push(
            &mut report,
            "*",
            "tier",
            0.0,
            0.0,
            Verdict::Warn,
            format!(
                "tier mismatch (baseline {:?}, current {:?}): wall-clock ratios not comparable",
                baseline.tier, current.tier
            ),
        );
    }

    for cur in &current.entries {
        let Some(base) = baseline.entry(&cur.name) else {
            push(
                &mut report,
                &cur.name,
                "presence",
                0.0,
                0.0,
                Verdict::Warn,
                "entry absent from baseline (new workload?)".to_string(),
            );
            continue;
        };

        // Wall-clock: ratio thresholds. The median gates hard; the p95 is
        // a warn-only tripwire — with few repeats it sits near the max, and
        // one scheduler spike on a shared runner produces 5-10x outliers
        // that say nothing about the code.
        for (metric, base_ns, cur_ns, max_ratio, over) in [
            (
                "median_ns",
                base.median_ns,
                cur.median_ns,
                cfg.median_ratio_max,
                Verdict::Fail,
            ),
            (
                "p95_ns",
                base.p95_ns,
                cur.p95_ns,
                cfg.p95_ratio_max,
                Verdict::Warn,
            ),
        ] {
            if base_ns < cfg.min_baseline_ns {
                push(
                    &mut report,
                    &cur.name,
                    metric,
                    base_ns as f64,
                    cur_ns as f64,
                    Verdict::Warn,
                    format!(
                        "baseline {base_ns}ns below {}ns floor, skipped",
                        cfg.min_baseline_ns
                    ),
                );
                continue;
            }
            let ratio = cur_ns as f64 / base_ns as f64;
            let verdict = if ratio <= max_ratio {
                Verdict::Pass
            } else {
                over
            };
            push(
                &mut report,
                &cur.name,
                metric,
                base_ns as f64,
                cur_ns as f64,
                verdict,
                format!("{base_ns}ns -> {cur_ns}ns (x{ratio:.2}, limit x{max_ratio:.2})"),
            );
        }

        // Deterministic counters: exact.
        for (metric, base_v, cur_v) in [
            ("rounds", base.rounds, cur.rounds),
            ("messages", base.messages, cur.messages),
            ("bytes", base.bytes, cur.bytes),
        ] {
            let verdict = if base_v == cur_v {
                Verdict::Pass
            } else {
                Verdict::Fail
            };
            push(
                &mut report,
                &cur.name,
                metric,
                base_v as f64,
                cur_v as f64,
                verdict,
                format!("{base_v} -> {cur_v} (deterministic, must match exactly)"),
            );
        }

        // Critical path: same deterministic-latency/measured-wall mix as
        // simulated_s, so the same ratio gate — but only when both sides
        // measured it (a zero means the workload ran untraced, e.g. a
        // baseline written before causal stamping existed).
        if base.critical_path_s > 0.0 && cur.critical_path_s > 0.0 {
            let ratio = cur.critical_path_s / base.critical_path_s;
            let verdict = if ratio <= cfg.median_ratio_max {
                Verdict::Pass
            } else {
                Verdict::Fail
            };
            push(
                &mut report,
                &cur.name,
                "critical_path_s",
                base.critical_path_s,
                cur.critical_path_s,
                verdict,
                format!(
                    "{:.3}s -> {:.3}s (x{ratio:.2}, limit x{:.2})",
                    base.critical_path_s, cur.critical_path_s, cfg.median_ratio_max
                ),
            );
        }

        // Simulated time: latency term is deterministic, wall term is not;
        // ratio-gate it (a changed round count already failed above).
        if base.simulated_s > 0.0 {
            let ratio = cur.simulated_s / base.simulated_s;
            let verdict = if ratio <= cfg.median_ratio_max {
                Verdict::Pass
            } else {
                Verdict::Fail
            };
            push(
                &mut report,
                &cur.name,
                "simulated_s",
                base.simulated_s,
                cur.simulated_s,
                verdict,
                format!(
                    "{:.3}s -> {:.3}s (x{ratio:.2}, limit x{:.2})",
                    base.simulated_s, cur.simulated_s, cfg.median_ratio_max
                ),
            );
        }
    }

    for base in &baseline.entries {
        if current.entry(&base.name).is_none() {
            push(
                &mut report,
                &base.name,
                "presence",
                0.0,
                0.0,
                Verdict::Warn,
                "entry in baseline but missing from this run (workload removed?)".to_string(),
            );
        }
    }

    report
}

/// The committed baseline file: a map from suite name to its reference
/// artifact (`{"schema_version":1,"suites":{"micro":{...},...}}`).
#[derive(Clone, Debug, Default)]
pub struct Baseline {
    pub suites: Vec<BenchArtifact>,
}

impl Baseline {
    pub fn from_json_str(text: &str) -> Result<Baseline, String> {
        let doc = json::parse(text).map_err(|e| e.to_string())?;
        let version = doc
            .get("schema_version")
            .and_then(JsonValue::as_u64)
            .ok_or("baseline missing schema_version")?;
        if version != SCHEMA_VERSION {
            return Err(format!(
                "baseline schema_version {version} unsupported (expected {SCHEMA_VERSION})"
            ));
        }
        let suites = doc
            .get("suites")
            .and_then(JsonValue::as_obj)
            .ok_or("baseline missing \"suites\" object")?
            .values()
            .map(BenchArtifact::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Baseline { suites })
    }

    pub fn suite(&self, name: &str) -> Option<&BenchArtifact> {
        self.suites.iter().find(|a| a.suite == name)
    }

    /// Serialize in the committed-file format.
    pub fn to_json_string(&self) -> String {
        use serde::Serialize;
        let mut out = String::new();
        out.push_str("{\"schema_version\":");
        out.push_str(&SCHEMA_VERSION.to_string());
        out.push_str(",\"suites\":{");
        for (i, artifact) in self.suites.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            serde::json::write_str(&mut out, &artifact.suite);
            out.push(':');
            artifact.write_json(&mut out);
        }
        out.push_str("}}\n");
        out
    }
}

/// Gate a set of fresh artifacts against a baseline. Suites without a
/// baseline counterpart produce a warning, not a pass.
pub fn gate_artifacts(
    baseline: &Baseline,
    artifacts: &[BenchArtifact],
    cfg: &GateConfig,
) -> GateReport {
    let mut report = GateReport::default();
    for artifact in artifacts {
        match baseline.suite(&artifact.suite) {
            Some(base) => report
                .findings
                .extend(compare(base, artifact, cfg).findings),
            None => report.findings.push(Finding {
                suite: artifact.suite.clone(),
                entry: "*".to_string(),
                metric: "presence",
                baseline: 0.0,
                current: 0.0,
                verdict: Verdict::Warn,
                detail: "suite has no baseline entry; run with --write-baseline to add it"
                    .to_string(),
            }),
        }
    }
    report
}

/// Self-test: prove the gate detects a synthetic 2x slowdown and passes
/// an identical re-run. Returns an error string on any miss so callers
/// (the `sqm-perf` binary, CI) can fail loudly.
pub fn self_test(artifact: &BenchArtifact, cfg: &GateConfig) -> Result<(), String> {
    // Identical re-run must pass.
    let identical = compare(artifact, artifact, cfg);
    if !identical.passed() {
        return Err(format!(
            "gate self-test: identical artifacts failed:\n{}",
            identical.render(false)
        ));
    }

    // A synthetic 2x wall-clock slowdown must be flagged on at least one
    // gated (above-floor) entry — and on *every* gated entry's median,
    // since 2.0 > the 1.5x default threshold.
    let mut slowed = artifact.clone();
    for entry in &mut slowed.entries {
        entry.median_ns *= 2;
        entry.p95_ns *= 4; // exceed the (warn-only) p95 threshold too
    }
    let gated_entries = artifact
        .entries
        .iter()
        .filter(|e| e.median_ns >= cfg.min_baseline_ns)
        .count();
    if gated_entries == 0 {
        return Err(
            "gate self-test: no entry exceeds the timing floor; suite too small to gate"
                .to_string(),
        );
    }
    let report = compare(artifact, &slowed, cfg);
    let median_fails = report
        .failures()
        .filter(|f| f.metric == "median_ns")
        .count();
    if median_fails != gated_entries {
        return Err(format!(
            "gate self-test: 2x slowdown flagged on {median_fails}/{gated_entries} entries:\n{}",
            report.render(false)
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf::{measure, RunCost, Tier};

    fn toy_artifact() -> BenchArtifact {
        let mut artifact = crate::perf::run_micro(Tier::Small);
        // Shrink to one synthetic, stable entry for threshold tests.
        artifact.entries = vec![measure("busy", Tier::Small, || {
            std::hint::black_box((0..20_000u64).map(|v| v.wrapping_mul(v)).sum::<u64>());
            RunCost::default()
        })];
        artifact.entries[0].median_ns = 1_000_000;
        artifact.entries[0].p95_ns = 1_200_000;
        artifact
    }

    #[test]
    fn identical_artifacts_pass() {
        let a = toy_artifact();
        let report = compare(&a, &a, &GateConfig::default());
        assert!(report.passed(), "{}", report.render(true));
    }

    #[test]
    fn synthetic_2x_slowdown_fails_and_self_test_catches_it() {
        let a = toy_artifact();
        let mut slow = a.clone();
        slow.entries[0].median_ns *= 2;
        let report = compare(&a, &slow, &GateConfig::default());
        assert!(!report.passed());
        assert!(report.failures().any(|f| f.metric == "median_ns"));
        // And the packaged self-test agrees end to end.
        self_test(&a, &GateConfig::default()).unwrap();
    }

    #[test]
    fn deterministic_counter_drift_fails_exactly() {
        let a = toy_artifact();
        let mut drifted = a.clone();
        drifted.entries[0].bytes += 1;
        let report = compare(&a, &drifted, &GateConfig::default());
        assert!(report.failures().any(|f| f.metric == "bytes"));
        // A within-threshold wall-clock wobble alone still passes.
        let mut wobble = a.clone();
        wobble.entries[0].median_ns = (wobble.entries[0].median_ns as f64 * 1.3) as u64;
        assert!(compare(&a, &wobble, &GateConfig::default()).passed());
    }

    #[test]
    fn critical_path_gated_by_ratio_only_when_both_measured() {
        let mut a = toy_artifact();
        a.entries[0].critical_path_s = 0.4;
        let mut slow = a.clone();
        slow.entries[0].critical_path_s = 1.0; // x2.5 > the 1.5x limit
        let report = compare(&a, &slow, &GateConfig::default());
        assert!(report.failures().any(|f| f.metric == "critical_path_s"));
        // An untraced side (0.0) is non-comparable, never a failure.
        let mut unmeasured = a.clone();
        unmeasured.entries[0].critical_path_s = 0.0;
        let report = compare(&unmeasured, &slow, &GateConfig::default());
        assert!(
            !report
                .findings
                .iter()
                .any(|f| f.metric == "critical_path_s"),
            "{}",
            report.render(true)
        );
    }

    #[test]
    fn missing_and_new_entries_warn_not_fail() {
        let a = toy_artifact();
        let mut renamed = a.clone();
        renamed.entries[0].name = "renamed".to_string();
        let report = compare(&a, &renamed, &GateConfig::default());
        assert!(report.passed());
        let warns: Vec<_> = report
            .findings
            .iter()
            .filter(|f| f.verdict == Verdict::Warn)
            .collect();
        assert_eq!(warns.len(), 2, "one absent-from-baseline, one removed");
    }

    #[test]
    fn p95_spike_warns_but_does_not_fail() {
        let a = toy_artifact();
        let mut spiky = a.clone();
        spiky.entries[0].p95_ns *= 10; // one scheduler hiccup, median untouched
        let report = compare(&a, &spiky, &GateConfig::default());
        assert!(report.passed(), "{}", report.render(true));
        assert!(report
            .findings
            .iter()
            .any(|f| f.metric == "p95_ns" && f.verdict == Verdict::Warn));
    }

    #[test]
    fn sub_floor_timings_are_skipped() {
        let mut a = toy_artifact();
        a.entries[0].median_ns = 100; // below the 10us floor
        a.entries[0].p95_ns = 120;
        let mut slow = a.clone();
        slow.entries[0].median_ns = 1_000; // 10x, but sub-floor
        let report = compare(&a, &slow, &GateConfig::default());
        assert!(report.passed(), "{}", report.render(true));
        assert!(report.findings.iter().any(|f| f.verdict == Verdict::Warn));
    }

    #[test]
    fn baseline_file_roundtrip_and_gate() {
        let baseline = Baseline {
            suites: vec![toy_artifact()],
        };
        let text = baseline.to_json_string();
        let back = Baseline::from_json_str(&text).unwrap();
        assert_eq!(back.suites.len(), 1);
        let report = gate_artifacts(&back, &[toy_artifact()], &GateConfig::default());
        assert!(report.passed(), "{}", report.render(true));
        // Unknown suite warns.
        let mut other = toy_artifact();
        other.suite = "unknown".to_string();
        let report = gate_artifacts(&back, &[other], &GateConfig::default());
        assert!(report.passed());
        assert!(report.findings.iter().any(|f| f.verdict == Verdict::Warn));
    }

    #[test]
    fn bad_baseline_schema_is_an_error() {
        assert!(Baseline::from_json_str("{}").is_err());
        assert!(Baseline::from_json_str("{\"schema_version\":99,\"suites\":{}}").is_err());
        assert!(Baseline::from_json_str("not json").is_err());
    }
}
