//! Re-export of the shared JSON reader, which now lives in `sqm_obs::json`
//! so HTTP-facing crates can parse request bodies without depending on the
//! bench crate. Kept as a shim so existing `sqm_bench::json::...` paths and
//! the gate's internal imports keep working.

pub use sqm::obs::json::*;
