//! Differential backend fuzzing: one release, every execution path,
//! bit-identical or a typed error.
//!
//! The MPC party threads derive **all** their randomness from documented
//! per-party streams of `VflConfig::seed`, which makes the secure
//! protocols exactly replayable in plaintext:
//! [`sqm_vfl::covariance_quantized_oracle`] predicts the opened integer
//! covariance of [`sqm_vfl::try_covariance_skellam`] bit-for-bit. The
//! fuzzer sweeps a seeded grid of `(seed, P, m, n, gamma, mu)` workloads
//! across the execution axes —
//!
//! * **in-process channels** vs **loopback TCP** (`NetBackend`),
//! * round-**batched** wire frames vs the **per-element** reference
//!   framing (`Batching`) — the oracle replay is mode-independent because
//!   both modes consume the documented RNG streams in the same order,
//! * fault-free vs **delay** / **drop-with-retransmit** / **crash**
//!   injection (`FaultSpec`),
//! * BGW vs the **additive-sharing** engine on the linear column-sum
//!   release (whose shared seed streams make the two backends
//!   bit-identical by construction),
//!
//! and asserts the invariant from the network layer's design: faults
//! perturb *timing*, never *payloads*. Every completing run must equal
//! the oracle exactly (integer outputs — no tolerance), every crashed
//! run must surface a typed [`TransportError`], and nothing may panic.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use sqm_linalg::Matrix;
use sqm_mpc::{Batching, FaultSpec, NetBackend};
use sqm_vfl::{
    column_sums_skellam, column_sums_skellam_additive, covariance_quantized_oracle,
    try_covariance_skellam, ColumnPartition, VflConfig,
};

use crate::AuditConfig;

/// One fuzzed execution.
#[derive(Clone, Debug, Serialize)]
pub struct FuzzCase {
    pub id: u64,
    pub seed: u64,
    pub workload: String,
    pub n_clients: usize,
    pub records: usize,
    pub cols: usize,
    pub gamma: f64,
    pub mu: f64,
    /// `"in_process"` or `"tcp"`.
    pub backend: String,
    /// `"batched"` (round-batched frames) or `"per_element"` (reference).
    pub batching: String,
    /// `"none"`, `"delay"`, `"drop"` or `"crash"`.
    pub fault: String,
    /// `"match"`, `"typed_error"`, `"divergence"` or `"panic"`.
    pub outcome: String,
    /// `TransportError::kind()` when a typed error surfaced.
    pub error_kind: Option<String>,
}

/// Aggregate fuzzing outcome.
#[derive(Clone, Debug, Serialize)]
pub struct FuzzSummary {
    pub cases: usize,
    pub matches: usize,
    pub typed_errors: usize,
    pub divergences: usize,
    pub panics: usize,
    pub results: Vec<FuzzCase>,
}

impl FuzzSummary {
    /// Every completing run matched the oracle, every crash surfaced as a
    /// typed error, and nothing panicked.
    pub fn passed(&self) -> bool {
        self.divergences == 0 && self.panics == 0
    }
}

fn random_data(rng: &mut StdRng, m: usize, n: usize) -> Matrix {
    let rows: Vec<Vec<f64>> = (0..m)
        .map(|_| (0..n).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect())
        .collect();
    Matrix::from_rows(&rows)
}

/// Run one covariance case and classify its outcome.
fn run_covariance_case(case: &mut FuzzCase, data: &Matrix, cfg: &VflConfig) {
    let partition = ColumnPartition::even(case.cols, case.n_clients);
    let oracle = covariance_quantized_oracle(data, &partition, case.gamma, case.mu, cfg);
    let crash_expected = case.fault == "crash";
    let result = catch_unwind(AssertUnwindSafe(|| {
        try_covariance_skellam(data, &partition, case.gamma, case.mu, cfg)
    }));
    match result {
        Err(_) => case.outcome = "panic".to_string(),
        Ok(Ok(out)) => {
            if crash_expected {
                // A crash at round 1 must never complete.
                case.outcome = "divergence".to_string();
            } else if out.c_hat == oracle {
                case.outcome = "match".to_string();
            } else {
                case.outcome = "divergence".to_string();
            }
        }
        Ok(Err(e)) => {
            case.error_kind = Some(e.kind().to_string());
            case.outcome = if crash_expected {
                "typed_error".to_string()
            } else {
                "divergence".to_string()
            };
        }
    }
}

/// Cross-engine case: the linear column-sum release on BGW vs the
/// additive-sharing engine. The two engines draw quantization and noise
/// from the same per-party seed streams, so their opened outputs must be
/// bit-identical.
fn run_cross_engine_case(case: &mut FuzzCase, data: &Matrix, cfg: &VflConfig) {
    let partition = ColumnPartition::even(case.cols, case.n_clients);
    let result = catch_unwind(AssertUnwindSafe(|| {
        let bgw = column_sums_skellam(data, &partition, case.gamma, case.mu, cfg);
        let additive = column_sums_skellam_additive(data, &partition, case.gamma, case.mu, cfg);
        bgw.sums_hat == additive.sums_hat
    }));
    case.outcome = match result {
        Err(_) => "panic".to_string(),
        Ok(true) => "match".to_string(),
        Ok(false) => "divergence".to_string(),
    };
}

/// Sweep the seeded configuration grid for the configured tier.
pub fn run_diff_fuzz(cfg: &AuditConfig) -> FuzzSummary {
    let n_cases = cfg.fuzz_cases();
    let mut gen = StdRng::seed_from_u64(cfg.seed ^ 0xF0_22_2E_11);
    let mut results = Vec::with_capacity(n_cases);

    for id in 0..n_cases as u64 {
        let n_clients = gen.gen_range(2usize..=4);
        let cols = n_clients + gen.gen_range(0usize..=2);
        let records = gen.gen_range(3usize..=6);
        let gamma = [16.0, 64.0, 256.0][gen.gen_range(0usize..3)];
        let mu = [0.0, 4.0, 100.0][gen.gen_range(0usize..3)];
        let seed = gen.gen::<u64>();
        // Cross-engine cases only make sense fault-free and in-process
        // (the additive engine shares the same transport stack, exercised
        // by the covariance cases).
        let workload = if id % 5 == 4 {
            "column_sums"
        } else {
            "covariance"
        };
        let (backend_name, backend) = if workload == "covariance" && id % 2 == 1 {
            ("tcp", NetBackend::tcp())
        } else {
            ("in_process", NetBackend::InProcess)
        };
        let fault = if workload == "covariance" {
            ["none", "delay", "drop", "crash"][(id % 4) as usize]
        } else {
            "none"
        };
        // Interleave the wire-framing axis with every other axis: the
        // oracle predicts both modes, so a divergence pins the frame
        // codec, not the protocol.
        let (batching_name, batching) = if id % 3 == 2 {
            ("per_element", Batching::Off)
        } else {
            ("batched", Batching::default())
        };

        let mut vfl_cfg = VflConfig::fast(n_clients)
            .with_seed(seed)
            .with_backend(backend)
            .with_batching(batching);
        vfl_cfg = match fault {
            "delay" => vfl_cfg.with_faults(
                FaultSpec::seeded(seed ^ 0xFA)
                    .with_delay(Duration::ZERO, Duration::from_micros(500)),
            ),
            "drop" => vfl_cfg.with_faults(
                FaultSpec::seeded(seed ^ 0xFB)
                    .with_drop(0.25)
                    .with_retransmit(Duration::from_micros(200), 10),
            ),
            "crash" => vfl_cfg.with_faults(
                FaultSpec::seeded(seed ^ 0xFC).with_crash((id % n_clients as u64) as usize, 1),
            ),
            _ => vfl_cfg,
        };

        let mut case = FuzzCase {
            id,
            seed,
            workload: workload.to_string(),
            n_clients,
            records,
            cols,
            gamma,
            mu,
            backend: backend_name.to_string(),
            batching: batching_name.to_string(),
            fault: fault.to_string(),
            outcome: String::new(),
            error_kind: None,
        };
        let data = random_data(&mut gen, records, cols);
        match workload {
            "covariance" => run_covariance_case(&mut case, &data, &vfl_cfg),
            _ => run_cross_engine_case(&mut case, &data, &vfl_cfg),
        }
        results.push(case);
    }

    let count = |outcome: &str| results.iter().filter(|c| c.outcome == outcome).count();
    FuzzSummary {
        cases: results.len(),
        matches: count("match"),
        typed_errors: count("typed_error"),
        divergences: count("divergence"),
        panics: count("panic"),
        results,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tier;

    /// The fast-tier sweep, run once and shared between tests (each case
    /// is a real MPC run; no need to pay for the sweep twice).
    fn small_sweep() -> &'static FuzzSummary {
        use std::sync::OnceLock;
        static SWEEP: OnceLock<FuzzSummary> = OnceLock::new();
        SWEEP.get_or_init(|| run_diff_fuzz(&AuditConfig::new(0xA0D1_7003, Tier::Fast)))
    }

    #[test]
    fn sweep_has_zero_divergences_and_panics() {
        let summary = small_sweep();
        assert!(summary.cases >= 50, "acceptance floor: >= 50 configs");
        let bad: Vec<&FuzzCase> = summary
            .results
            .iter()
            .filter(|c| c.outcome == "divergence" || c.outcome == "panic")
            .collect();
        assert!(bad.is_empty(), "divergent cases: {bad:?}");
        assert!(summary.passed());
        assert_eq!(
            summary.matches + summary.typed_errors,
            summary.cases,
            "every case must be accounted for"
        );
    }

    #[test]
    fn sweep_covers_every_axis() {
        let summary = small_sweep();
        let has = |f: &dyn Fn(&&FuzzCase) -> bool| summary.results.iter().any(|c| f(&c));
        assert!(has(&|c| c.backend == "tcp"));
        assert!(has(&|c| c.backend == "in_process"));
        for fault in ["none", "delay", "drop", "crash"] {
            assert!(has(&|c| c.fault == fault), "no {fault} case");
        }
        assert!(has(&|c| c.workload == "column_sums"));
        // The wire-framing axis crosses both backends and the fault axis.
        assert!(has(&|c| c.batching == "per_element"));
        assert!(has(&|c| c.batching == "batched"));
        assert!(has(&|c| c.batching == "per_element" && c.backend == "tcp"));
        assert!(has(&|c| c.batching == "per_element" && c.fault != "none"));
        // Every crash case surfaced the root-cause error.
        for c in summary.results.iter().filter(|c| c.fault == "crash") {
            assert_eq!(c.outcome, "typed_error", "{c:?}");
            assert_eq!(c.error_kind.as_deref(), Some("crashed"), "{c:?}");
        }
    }
}
