//! Empirical DP audit: a Monte-Carlo lower bound on epsilon that must sit
//! below the accountant's analytic upper bound.
//!
//! For each audited `(gamma, mu)` configuration we run the
//! server-observed covariance release (via the output-equivalent
//! plaintext simulation — the MPC protocol opens exactly this quantity)
//! on two **adjacent** datasets: `D` with a record of full norm `c = 1`,
//! and `D'` with that record zeroed — the paper's server-side adjacency
//! whose quantized L2 shift is bounded by `Delta_2 = gamma^2 c^2 + n`
//! (Lemma 5). A threshold distinguisher over the released scalar yields,
//! with conservative Hoeffding confidence margins, a certified lower
//! bound
//!
//! ```text
//! eps_emp = max_T  ln( (P[A(D) in T] - delta) / P[A(D') in T] )
//! ```
//!
//! on any `(eps, delta)`-DP claim. Soundness of the accountant then
//! requires `eps_emp <= eps_analytic`, where `eps_analytic` is the
//! RDP→DP conversion of the Skellam curve (`skellam_rdp` over the
//! default alpha grid) at the same `delta`. A mechanism bug — noise not
//! added, wrong scale, broken sampler — drives `eps_emp` above the
//! claimed bound, which is exactly what the audit exists to catch.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use sqm_accounting::conversion::best_epsilon;
use sqm_accounting::{default_alpha_grid, skellam_rdp};
use sqm_core::pca_sensitivity;
use sqm_linalg::Matrix;
use sqm_vfl::covariance::covariance_skellam_plaintext;

use crate::{AuditConfig, Tier};

/// Outcome of auditing one `(gamma, mu)` configuration.
#[derive(Clone, Debug, Serialize)]
pub struct DpAuditResult {
    pub gamma: f64,
    pub mu: f64,
    pub n_clients: usize,
    /// Monte-Carlo trials per adjacent dataset.
    pub trials: u64,
    /// The `delta` both bounds are stated at.
    pub delta: f64,
    /// Certified empirical lower bound (Hoeffding 99% margins).
    pub empirical_epsilon: f64,
    /// Analytic server-observed upper bound from the accountant.
    pub analytic_epsilon: f64,
    /// Rényi order the analytic conversion selected.
    pub best_alpha: u64,
    /// `empirical_epsilon <= analytic_epsilon`.
    pub passed: bool,
}

/// The released scalar: covariance of an `m x 1` dataset.
fn release(rng: &mut StdRng, data: &Matrix, gamma: f64, mu: f64, n_clients: usize) -> f64 {
    covariance_skellam_plaintext(rng, data, gamma, mu, n_clients)[(0, 0)]
}

/// The certified distinguisher: sweep thresholds over the pooled sample,
/// in both directions and with the datasets swapped, keeping the largest
/// lower bound that survives the confidence margins.
fn empirical_epsilon(samples_d: &[f64], samples_dp: &[f64], delta: f64) -> f64 {
    let n = samples_d.len() as f64;
    // Hoeffding two-sided 99% margin on each estimated probability.
    let margin = ((2.0f64 / 0.01).ln() / (2.0 * n)).sqrt();
    let mut thresholds: Vec<f64> = samples_d.iter().chain(samples_dp).copied().collect();
    thresholds.sort_by(f64::total_cmp);
    thresholds.dedup();

    let frac_ge = |xs: &[f64], t: f64| xs.iter().filter(|&&x| x >= t).count() as f64 / n;
    let frac_le = |xs: &[f64], t: f64| xs.iter().filter(|&&x| x <= t).count() as f64 / n;

    let mut best = 0.0f64;
    for &t in &thresholds {
        for (p_hat, q_hat) in [
            (frac_ge(samples_d, t), frac_ge(samples_dp, t)),
            (frac_le(samples_d, t), frac_le(samples_dp, t)),
            (frac_ge(samples_dp, t), frac_ge(samples_d, t)),
            (frac_le(samples_dp, t), frac_le(samples_d, t)),
        ] {
            let p_lo = p_hat - margin - delta;
            let q_hi = (q_hat + margin).max(1e-12);
            if p_lo > 0.0 {
                best = best.max((p_lo / q_hi).ln());
            }
        }
    }
    best
}

/// Audit one `(gamma, mu)` configuration.
pub fn audit_dp_config(
    cfg: &AuditConfig,
    gamma: f64,
    mu: f64,
    n_clients: usize,
    stream: u64,
) -> DpAuditResult {
    let delta = 1e-5;
    let trials = cfg.dp_trials();
    let m = 4;

    // D: four unit-norm records; D': the first record zeroed.
    let d = Matrix::from_rows(&vec![vec![1.0]; m]);
    let mut d_prime = d.clone();
    d_prime[(0, 0)] = 0.0;

    let mut rng = StdRng::seed_from_u64(cfg.seed ^ (0xD9A0_0000 + stream));
    let samples_d: Vec<f64> = (0..trials)
        .map(|_| release(&mut rng, &d, gamma, mu, n_clients))
        .collect();
    let samples_dp: Vec<f64> = (0..trials)
        .map(|_| release(&mut rng, &d_prime, gamma, mu, n_clients))
        .collect();

    let emp = empirical_epsilon(&samples_d, &samples_dp, delta);

    let sens = pca_sensitivity(gamma, 1.0, 1);
    let (analytic, best_alpha) =
        best_epsilon(|a| skellam_rdp(a, sens, mu), delta, &default_alpha_grid());

    DpAuditResult {
        gamma,
        mu,
        n_clients,
        trials: trials as u64,
        delta,
        empirical_epsilon: emp,
        analytic_epsilon: analytic,
        best_alpha,
        passed: emp <= analytic + 1e-9,
    }
}

/// The `(gamma, mu)` grid for the configured tier. Chosen so the analytic
/// epsilon spans roughly `0.5..2` — tight enough that a broken mechanism
/// overshoots it, loose enough that the Monte-Carlo bound has headroom.
pub fn run_dp_audit(cfg: &AuditConfig) -> Vec<DpAuditResult> {
    let mut grid: Vec<(f64, f64)> = vec![(4.0, 2e3), (4.0, 1e4), (8.0, 5e4), (2.0, 100.0)];
    if cfg.tier == Tier::Deep {
        grid.extend([(8.0, 2e5), (16.0, 1e6), (2.0, 400.0), (4.0, 5e4)]);
    }
    grid.iter()
        .enumerate()
        .map(|(i, &(gamma, mu))| audit_dp_config(cfg, gamma, mu, 3, i as u64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empirical_bound_is_zero_for_identical_distributions() {
        let xs: Vec<f64> = (0..500).map(|i| f64::from(i % 17)).collect();
        assert_eq!(empirical_epsilon(&xs, &xs, 1e-5), 0.0);
    }

    #[test]
    fn empirical_bound_grows_with_separation() {
        // Perfectly separated samples: the bound should approach
        // ln((1 - margin)/margin), far above 1.
        let a: Vec<f64> = vec![0.0; 1000];
        let b: Vec<f64> = vec![100.0; 1000];
        let eps = empirical_epsilon(&a, &b, 1e-5);
        assert!(eps > 2.0, "eps = {eps}");
    }

    #[test]
    fn audited_configs_sit_below_the_analytic_bound() {
        let cfg = AuditConfig::new(0xA0D1_7002, crate::Tier::Fast);
        for r in run_dp_audit(&cfg) {
            assert!(
                r.passed,
                "empirical {} exceeds analytic {} at (gamma={}, mu={})",
                r.empirical_epsilon, r.analytic_epsilon, r.gamma, r.mu
            );
            assert!(r.analytic_epsilon.is_finite() && r.analytic_epsilon > 0.0);
        }
    }

    #[test]
    fn a_noiseless_mechanism_is_flagged() {
        // mu = 0: no DP at all. The analytic accountant reports infinity
        // (never claimed), but the distinguisher must certify a large
        // epsilon, demonstrating the audit has teeth.
        let cfg = AuditConfig::new(5, crate::Tier::Fast);
        let gamma = 8.0;
        let d = Matrix::from_rows(&vec![vec![1.0]; 4]);
        let mut d_prime = d.clone();
        d_prime[(0, 0)] = 0.0;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let n = 1000;
        let samples_d: Vec<f64> = (0..n)
            .map(|_| release(&mut rng, &d, gamma, 0.0, 3))
            .collect();
        let samples_dp: Vec<f64> = (0..n)
            .map(|_| release(&mut rng, &d_prime, gamma, 0.0, 3))
            .collect();
        let eps = empirical_epsilon(&samples_d, &samples_dp, 1e-5);
        assert!(eps > 2.0, "noiseless release only certified eps = {eps}");
    }
}
