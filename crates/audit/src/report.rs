//! The aggregate audit report, serialized to `results/audit_report.json`.

use serde::Serialize;

use crate::diff_fuzz::FuzzSummary;
use crate::dp_audit::DpAuditResult;
use crate::gof::GofCheck;
use crate::AuditConfig;

/// Everything one audit run established, in one serializable object.
/// With a pinned seed the report is byte-deterministic, so CI can diff
/// two runs of the same commit.
#[derive(Clone, Debug, Serialize)]
pub struct AuditReport {
    /// Bump when the report layout changes (consumers key on this).
    pub schema_version: u32,
    pub seed: u64,
    /// `"fast"` or `"deep"`.
    pub tier: String,
    /// GOF significance level the checks were judged at.
    pub alpha: f64,
    pub gof_passed: bool,
    pub dp_passed: bool,
    pub fuzz_passed: bool,
    /// Conjunction of the three sections.
    pub passed: bool,
    pub gof: Vec<GofCheck>,
    pub dp: Vec<DpAuditResult>,
    pub fuzz: FuzzSummary,
}

impl AuditReport {
    pub fn assemble(
        cfg: &AuditConfig,
        gof: Vec<GofCheck>,
        dp: Vec<DpAuditResult>,
        fuzz: FuzzSummary,
    ) -> Self {
        let gof_passed = gof.iter().all(|c| c.passed);
        let dp_passed = dp.iter().all(|r| r.passed);
        let fuzz_passed = fuzz.passed();
        AuditReport {
            schema_version: 1,
            seed: cfg.seed,
            tier: cfg.tier.name().to_string(),
            alpha: cfg.alpha,
            gof_passed,
            dp_passed,
            fuzz_passed,
            passed: gof_passed && dp_passed && fuzz_passed,
            gof,
            dp,
            fuzz,
        }
    }

    /// A terminal-friendly summary (the full detail is in the JSON).
    pub fn summary_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("audit [{} tier, seed {}]\n", self.tier, self.seed));
        out.push_str(&format!(
            "  gof:  {:>4} checks, {} failed -> {}\n",
            self.gof.len(),
            self.gof.iter().filter(|c| !c.passed).count(),
            verdict(self.gof_passed),
        ));
        let worst = self
            .dp
            .iter()
            .map(|r| r.empirical_epsilon / r.analytic_epsilon)
            .fold(0.0f64, f64::max);
        out.push_str(&format!(
            "  dp:   {:>4} configs, worst empirical/analytic = {:.3} -> {}\n",
            self.dp.len(),
            worst,
            verdict(self.dp_passed),
        ));
        out.push_str(&format!(
            "  fuzz: {:>4} cases, {} matches, {} typed errors, {} divergences, {} panics -> {}\n",
            self.fuzz.cases,
            self.fuzz.matches,
            self.fuzz.typed_errors,
            self.fuzz.divergences,
            self.fuzz.panics,
            verdict(self.fuzz_passed),
        ));
        out.push_str(&format!("  overall: {}\n", verdict(self.passed)));
        out
    }
}

fn verdict(ok: bool) -> &'static str {
    if ok {
        "PASS"
    } else {
        "FAIL"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AuditConfig, Tier};

    fn tiny_report(passed: bool) -> AuditReport {
        let cfg = AuditConfig::new(9, Tier::Fast);
        let gof = vec![GofCheck {
            name: "skellam(mu=1)".into(),
            kind: "chi_square".into(),
            n_samples: 10,
            statistic: 1.0,
            p_value: if passed { 0.5 } else { 1e-9 },
            alpha: cfg.alpha,
            passed,
        }];
        let fuzz = FuzzSummary {
            cases: 1,
            matches: 1,
            typed_errors: 0,
            divergences: 0,
            panics: 0,
            results: vec![],
        };
        AuditReport::assemble(&cfg, gof, vec![], fuzz)
    }

    #[test]
    fn verdict_is_the_conjunction() {
        assert!(tiny_report(true).passed);
        let bad = tiny_report(false);
        assert!(!bad.gof_passed && !bad.passed);
        assert!(bad.dp_passed && bad.fuzz_passed);
    }

    #[test]
    fn report_serializes_with_pinned_top_level_schema() {
        let json = tiny_report(true).to_json();
        for key in [
            "\"schema_version\":1",
            "\"seed\":9",
            "\"tier\":\"fast\"",
            "\"gof_passed\":true",
            "\"dp_passed\":true",
            "\"fuzz_passed\":true",
            "\"passed\":true",
            "\"gof\":[",
            "\"dp\":[",
            "\"fuzz\":{",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn summary_text_names_all_sections() {
        let text = tiny_report(false).summary_text();
        assert!(text.contains("gof:"));
        assert!(text.contains("dp:"));
        assert!(text.contains("fuzz:"));
        assert!(text.contains("FAIL"));
    }
}
