//! Exact-distribution goodness-of-fit tests for the integer samplers.
//!
//! Each check draws a seeded sample from one of `sqm-sampling`'s
//! generators and compares it against the law's **exact** pmf
//! (`poisson_log_pmf`, `skellam_log_pmf`, `discrete_gaussian_log_pmf`,
//! `discrete_laplace_log_pmf` — all closed-form, no Monte-Carlo
//! reference):
//!
//! * **chi-square** over an integer support window covering all but
//!   `~1e-12` of the mass (residual tail mass is folded into the edge
//!   bins), with adjacent bins merged until every group's expected count
//!   is at least 5 — the classical validity condition;
//! * **Kolmogorov–Smirnov** on the empirical CDF, using the continuous
//!   Kolmogorov null as the reference. For discrete laws this is
//!   *conservative* (the discrete statistic is stochastically smaller),
//!   so a KS rejection is always meaningful;
//! * **moment z-tests** pinning mean and variance to their closed forms
//!   (`Sk(mu)`: mean 0, variance `2 mu`; `Pois(mu)`: both `mu`);
//! * **unbiasedness of stochastic rounding** — Algorithm 2's entire
//!   sensitivity analysis rests on `E[Q(x)] = x` with two-point support
//!   `{floor x, ceil x}`; both are tested exactly.
//!
//! All randomness derives from [`AuditConfig::seed`], so pass/fail is
//! deterministic; `alpha` only matters when re-pinning seeds.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use sqm_sampling::special::{chi_square_sf, erfc, kolmogorov_sf};
use sqm_sampling::{
    discrete_gaussian_log_pmf, discrete_laplace_log_pmf, poisson_log_pmf, sample_discrete_gaussian,
    sample_discrete_laplace, sample_poisson, sample_skellam, skellam_log_pmf, stochastic_round,
};

use crate::AuditConfig;

/// One statistical check on one sampler configuration.
#[derive(Clone, Debug, Serialize)]
pub struct GofCheck {
    /// What was tested, e.g. `"skellam(mu=10)"`.
    pub name: String,
    /// `"chi_square"`, `"ks"`, `"mean"`, `"variance"` or `"unbiasedness"`.
    pub kind: String,
    pub n_samples: u64,
    /// Test statistic (chi-square value, `sqrt(n) * D`, or |z|).
    pub statistic: f64,
    /// Approximate p-value under the null.
    pub p_value: f64,
    /// Significance level the check was judged at.
    pub alpha: f64,
    pub passed: bool,
}

/// Two-sided normal p-value for a z statistic.
fn normal_two_sided_p(z: f64) -> f64 {
    erfc(z.abs() / std::f64::consts::SQRT_2)
}

/// Chi-square GOF over integer bins with exact expected probabilities.
/// Adjacent bins are merged left-to-right until every group's expected
/// count reaches 5 (a trailing underfull group is merged backwards).
/// Returns `(statistic, degrees_of_freedom, p_value)`.
pub fn chi_square_binned(observed: &[u64], expected_probs: &[f64], n: u64) -> (f64, f64, f64) {
    assert_eq!(observed.len(), expected_probs.len());
    assert!(n > 0);
    let mut groups: Vec<(f64, f64)> = Vec::new(); // (observed, expected)
    let mut acc_obs = 0.0;
    let mut acc_exp = 0.0;
    for (&o, &p) in observed.iter().zip(expected_probs) {
        acc_obs += o as f64;
        acc_exp += p * n as f64;
        if acc_exp >= 5.0 {
            groups.push((acc_obs, acc_exp));
            acc_obs = 0.0;
            acc_exp = 0.0;
        }
    }
    if acc_exp > 0.0 || acc_obs > 0.0 {
        match groups.last_mut() {
            Some(last) => {
                last.0 += acc_obs;
                last.1 += acc_exp;
            }
            None => groups.push((acc_obs, acc_exp)),
        }
    }
    assert!(
        groups.len() >= 2,
        "support too narrow for a chi-square test"
    );
    let statistic: f64 = groups.iter().map(|&(o, e)| (o - e) * (o - e) / e).sum();
    let df = (groups.len() - 1) as f64;
    (statistic, df, chi_square_sf(statistic, df))
}

/// KS distance of an integer sample against exact bin probabilities over
/// `[lo, lo + probs.len())`; samples are assumed in-window (callers clamp).
fn ks_statistic(counts: &[u64], probs: &[f64], n: u64) -> f64 {
    let mut emp = 0.0f64;
    let mut theory = 0.0f64;
    let mut d: f64 = 0.0;
    for (&c, &p) in counts.iter().zip(probs) {
        emp += c as f64 / n as f64;
        theory += p;
        d = d.max((emp - theory).abs());
    }
    d
}

/// A sampled integer law with its exact pmf over a finite window.
struct WindowedLaw {
    name: String,
    lo: i64,
    probs: Vec<f64>,
    mean: f64,
    variance: f64,
}

impl WindowedLaw {
    /// Window covering ~all mass; residual is folded into the edge bins
    /// so `probs` sums to exactly 1.
    fn new(
        name: String,
        lo: i64,
        hi: i64,
        mean: f64,
        variance: f64,
        log_pmf: impl Fn(i64) -> f64,
    ) -> Self {
        assert!(hi > lo);
        let mut probs: Vec<f64> = (lo..=hi).map(|k| log_pmf(k).exp()).collect();
        let total: f64 = probs.iter().sum();
        let residual = (1.0 - total).max(0.0);
        let len = probs.len();
        probs[0] += residual / 2.0;
        probs[len - 1] += residual / 2.0;
        WindowedLaw {
            name,
            lo,
            probs,
            mean,
            variance,
        }
    }

    fn bin_of(&self, k: i64) -> usize {
        (k - self.lo).clamp(0, self.probs.len() as i64 - 1) as usize
    }
}

/// Run the chi-square / KS / moment battery for one law, pushing results
/// into `out`.
fn check_law(
    cfg: &AuditConfig,
    law: &WindowedLaw,
    stream: u64,
    mut draw: impl FnMut(&mut StdRng) -> i64,
    out: &mut Vec<GofCheck>,
) {
    let n = cfg.gof_samples();
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ stream);
    let mut counts = vec![0u64; law.probs.len()];
    let mut sum = 0.0f64;
    let mut sum_sq = 0.0f64;
    for _ in 0..n {
        let k = draw(&mut rng);
        counts[law.bin_of(k)] += 1;
        let x = k as f64;
        sum += x;
        sum_sq += x * x;
    }
    let nf = n as f64;
    let mean = sum / nf;
    let var = (sum_sq / nf - mean * mean).max(0.0);

    let (stat, _df, p) = chi_square_binned(&counts, &law.probs, n as u64);
    push(out, cfg, &law.name, "chi_square", n, stat, p);

    let d = ks_statistic(&counts, &law.probs, n as u64);
    let ks_stat = nf.sqrt() * d;
    push(
        out,
        cfg,
        &law.name,
        "ks",
        n,
        ks_stat,
        kolmogorov_sf(ks_stat),
    );

    // Moment z-tests. SE of the mean is sqrt(var/n); SE of the sample
    // variance is approximated by sqrt(2/n) * var, exact for the normal
    // limit and accurate for these light-tailed laws at audit sample
    // sizes.
    let z_mean = (mean - law.mean) / (law.variance / nf).sqrt();
    push(
        out,
        cfg,
        &law.name,
        "mean",
        n,
        z_mean.abs(),
        normal_two_sided_p(z_mean),
    );
    let z_var = (var - law.variance) / ((2.0 / nf).sqrt() * law.variance);
    push(
        out,
        cfg,
        &law.name,
        "variance",
        n,
        z_var.abs(),
        normal_two_sided_p(z_var),
    );
}

fn push(
    out: &mut Vec<GofCheck>,
    cfg: &AuditConfig,
    name: &str,
    kind: &str,
    n: usize,
    statistic: f64,
    p_value: f64,
) {
    out.push(GofCheck {
        name: name.to_string(),
        kind: kind.to_string(),
        n_samples: n as u64,
        statistic,
        p_value,
        alpha: cfg.alpha,
        passed: p_value >= cfg.alpha,
    });
}

/// Stochastic rounding: exact two-point chi-square on `{floor, ceil}`
/// frequencies plus the unbiasedness z-test `E[Q(x)] = x`.
fn check_rounding(cfg: &AuditConfig, x: f64, stream: u64, out: &mut Vec<GofCheck>) {
    let n = cfg.gof_samples();
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ stream);
    let floor = x.floor();
    let frac = x - floor; // P[round up]
    let name = format!("stochastic_round(x={x})");
    let mut ups = 0u64;
    let mut sum = 0.0f64;
    for _ in 0..n {
        let q = stochastic_round(&mut rng, x);
        assert!(
            q as f64 == floor || q as f64 == floor + 1.0,
            "Q({x}) = {q} escaped the two-point support"
        );
        if q as f64 > floor {
            ups += 1;
        }
        sum += q as f64;
    }
    let nf = n as f64;
    if frac > 0.0 && frac < 1.0 {
        let counts = [n as u64 - ups, ups];
        let probs = [1.0 - frac, frac];
        let (stat, _df, p) = chi_square_binned(&counts, &probs, n as u64);
        push(out, cfg, &name, "chi_square", n, stat, p);
        let z = (sum / nf - x) / (frac * (1.0 - frac) / nf).sqrt();
        push(
            out,
            cfg,
            &name,
            "unbiasedness",
            n,
            z.abs(),
            normal_two_sided_p(z),
        );
    } else {
        // Integer input: Q(x) = x surely; any deviation is an outright bug.
        let exact = sum / nf == x && (ups == 0 || ups == n as u64);
        push(
            out,
            cfg,
            &name,
            "unbiasedness",
            n,
            0.0,
            if exact { 1.0 } else { 0.0 },
        );
    }
}

/// The full goodness-of-fit battery for the configured tier.
pub fn run_gof(cfg: &AuditConfig) -> Vec<GofCheck> {
    let mut out = Vec::new();
    let deep = matches!(cfg.tier, crate::Tier::Deep);

    // Poisson.
    let mut poisson_mus: Vec<f64> = vec![0.5, 4.0, 40.0];
    if deep {
        poisson_mus.extend([1.5, 200.0]);
    }
    for (i, &mu) in poisson_mus.iter().enumerate() {
        let hi = (mu + 8.0 * mu.sqrt() + 10.0).ceil() as i64;
        let law = WindowedLaw::new(format!("poisson(mu={mu})"), 0, hi, mu, mu, |k| {
            poisson_log_pmf(k as u64, mu)
        });
        check_law(
            cfg,
            &law,
            0x6012_0000 + i as u64,
            |r| sample_poisson(r, mu),
            &mut out,
        );
    }

    // Skellam — the DP noise itself.
    let mut skellam_mus: Vec<f64> = vec![1.0, 10.0, 100.0];
    if deep {
        skellam_mus.extend([0.25, 1000.0]);
    }
    for (i, &mu) in skellam_mus.iter().enumerate() {
        let w = (8.0 * (2.0 * mu).sqrt() + 10.0).ceil() as i64;
        let law = WindowedLaw::new(format!("skellam(mu={mu})"), -w, w, 0.0, 2.0 * mu, |k| {
            skellam_log_pmf(k, mu)
        });
        check_law(
            cfg,
            &law,
            0x6013_0000 + i as u64,
            |r| sample_skellam(r, mu),
            &mut out,
        );
    }

    // Discrete Gaussian — the baseline integer noise.
    let mut sigmas: Vec<f64> = vec![0.8, 3.0, 20.0];
    if deep {
        sigmas.push(50.0);
    }
    for (i, &sigma) in sigmas.iter().enumerate() {
        let w = (8.0 * sigma + 10.0).ceil() as i64;
        // Variance of the discrete Gaussian is close to, but not exactly,
        // sigma^2; compute it from the exact pmf over the window.
        let var: f64 = (-w..=w)
            .map(|k| (k as f64).powi(2) * discrete_gaussian_log_pmf(k, sigma).exp())
            .sum();
        let law = WindowedLaw::new(
            format!("discrete_gaussian(sigma={sigma})"),
            -w,
            w,
            0.0,
            var,
            |k| discrete_gaussian_log_pmf(k, sigma),
        );
        check_law(
            cfg,
            &law,
            0x6014_0000 + i as u64,
            |r| sample_discrete_gaussian(r, sigma),
            &mut out,
        );
    }

    // Discrete Laplace — the rejection sampler's inner law.
    for (i, &t) in [1.0f64, 5.0].iter().enumerate() {
        let w = (30.0 * t + 10.0).ceil() as i64;
        let q = (-1.0f64 / t).exp();
        let var = 2.0 * q / (1.0 - q) / (1.0 - q);
        let law = WindowedLaw::new(format!("discrete_laplace(t={t})"), -w, w, 0.0, var, |k| {
            discrete_laplace_log_pmf(k, t)
        });
        check_law(
            cfg,
            &law,
            0x6015_0000 + i as u64,
            |r| sample_discrete_laplace(r, t),
            &mut out,
        );
    }

    // Stochastic rounding (Algorithm 2).
    let mut xs: Vec<f64> = vec![0.25, -1.75, 3.0, 1e6 + 0.5];
    if deep {
        xs.extend([0.001, -12345.875]);
    }
    for (i, &x) in xs.iter().enumerate() {
        check_rounding(cfg, x, 0x6016_0000 + i as u64, &mut out);
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tier;

    #[test]
    fn chi_square_binned_merges_sparse_bins() {
        // 4 bins, two of them tiny: after merging at expected >= 5, at
        // least 2 groups must remain and the p-value must be sane.
        let observed = [48u64, 3, 2, 47];
        let probs = [0.48, 0.025, 0.025, 0.47];
        let (stat, df, p) = chi_square_binned(&observed, &probs, 100);
        assert!(stat >= 0.0 && stat.is_finite());
        assert!(df >= 1.0);
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn chi_square_detects_a_wrong_law() {
        // Claim uniform over 4 bins, observe something very skewed.
        let observed = [900u64, 50, 30, 20];
        let probs = [0.25; 4];
        let (_, _, p) = chi_square_binned(&observed, &probs, 1000);
        assert!(p < 1e-10, "p = {p}");
    }

    #[test]
    fn fast_battery_passes_at_pinned_seed() {
        let cfg = AuditConfig::new(0xA0D1_7001, Tier::Fast);
        let checks = run_gof(&cfg);
        assert!(checks.len() >= 40, "got {} checks", checks.len());
        let failures: Vec<&GofCheck> = checks.iter().filter(|c| !c.passed).collect();
        assert!(failures.is_empty(), "failures: {failures:?}");
    }

    #[test]
    fn battery_is_deterministic() {
        let cfg = AuditConfig::new(7, Tier::Fast);
        let a = run_gof(&cfg);
        let b = run_gof(&cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.statistic, y.statistic, "{}/{}", x.name, x.kind);
            assert_eq!(x.p_value, y.p_value);
        }
    }

    #[test]
    fn battery_catches_a_biased_sampler() {
        // Feed the chi-square machinery a Skellam sample whose mu is off
        // by 20%: the test must reject decisively.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let cfg = AuditConfig::new(3, Tier::Fast);
        let mu = 10.0f64;
        let w = (8.0 * (2.0 * mu).sqrt() + 10.0).ceil() as i64;
        let law = WindowedLaw::new("skellam(bad)".into(), -w, w, 0.0, 2.0 * mu, |k| {
            skellam_log_pmf(k, mu)
        });
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = vec![0u64; law.probs.len()];
        for _ in 0..cfg.gof_samples() {
            counts[law.bin_of(sample_skellam(&mut rng, mu * 1.2))] += 1;
        }
        let (_, _, p) = chi_square_binned(&counts, &law.probs, cfg.gof_samples() as u64);
        assert!(p < 1e-12, "a 20% mu error must be detected, p = {p}");
    }
}
