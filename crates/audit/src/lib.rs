//! Statistical correctness and privacy auditing for SQM.
//!
//! The rest of the workspace *asserts* its guarantees — samplers match
//! their target laws, the accountant's epsilon bounds the mechanism, the
//! MPC backends compute the same function. This crate *attacks* them:
//!
//! * [`gof`] — seeded goodness-of-fit of every integer sampler
//!   (`Pois`, `Sk`, discrete Gaussian/Laplace, stochastic rounding)
//!   against its **exact** pmf: chi-square with expected-count binning,
//!   a conservative Kolmogorov–Smirnov cross-check, and moment /
//!   unbiasedness z-tests (Algorithm 2 requires `E[Q(x)] = x` exactly).
//! * [`dp_audit`] — an empirical DP audit: a Monte-Carlo threshold
//!   distinguisher over server-observed covariance releases on adjacent
//!   datasets yields a *lower* bound on epsilon, which must sit below the
//!   analytic RDP→(ε,δ) bound from `sqm-accounting` for every audited
//!   `(gamma, mu)` configuration. A broken mechanism (noise not added,
//!   wrong scale, biased sampler) drives the lower bound above the
//!   claimed epsilon.
//! * [`diff_fuzz`] — a differential backend fuzzer: the same seeded
//!   covariance release is executed by the in-process BGW engine, over
//!   loopback TCP, and under fault injection, and every completing run is
//!   compared **bit-for-bit** against [`sqm_vfl::covariance_quantized_oracle`]
//!   (a plaintext replay of the per-party randomness streams). Crash
//!   faults must surface as typed [`sqm_mpc::TransportError`]s — never a
//!   panic, never silent divergence.
//!
//! Everything is driven by one [`AuditConfig`]: a pinned seed makes the
//! whole report deterministic, and the `deep` tier raises every sample
//! budget for nightly runs (`sqm-audit --deep`). Results aggregate into a
//! serializable [`report::AuditReport`] written to
//! `results/audit_report.json` by the `sqm-audit` binary.

pub mod diff_fuzz;
pub mod dp_audit;
pub mod gof;
pub mod report;

pub use diff_fuzz::{run_diff_fuzz, FuzzCase, FuzzSummary};
pub use dp_audit::{audit_dp_config, run_dp_audit, DpAuditResult};
pub use gof::{run_gof, GofCheck};
pub use report::AuditReport;

use sqm_obs::metrics;

/// Audit tier: how much sampling effort to spend.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tier {
    /// CI smoke budget: minutes, not hours.
    Fast,
    /// Nightly budget: an order of magnitude more samples and configs.
    Deep,
}

impl Tier {
    pub fn name(self) -> &'static str {
        match self {
            Tier::Fast => "fast",
            Tier::Deep => "deep",
        }
    }
}

/// Everything the audit harness needs to run deterministically.
#[derive(Clone, Copy, Debug)]
pub struct AuditConfig {
    /// Master seed; every sub-audit derives its streams from it, so two
    /// runs with the same config produce byte-identical reports.
    pub seed: u64,
    pub tier: Tier,
    /// Significance level for the goodness-of-fit tests. With pinned
    /// seeds a pass is deterministic, so this trades detection power
    /// against the (one-time) risk of pinning an unlucky seed.
    pub alpha: f64,
}

impl AuditConfig {
    pub fn new(seed: u64, tier: Tier) -> Self {
        AuditConfig {
            seed,
            tier,
            alpha: 1e-4,
        }
    }

    /// Samples per goodness-of-fit check.
    pub fn gof_samples(&self) -> usize {
        match self.tier {
            Tier::Fast => 20_000,
            Tier::Deep => 200_000,
        }
    }

    /// Monte-Carlo trials per adjacent dataset in the DP audit.
    pub fn dp_trials(&self) -> usize {
        match self.tier {
            Tier::Fast => 3_000,
            Tier::Deep => 30_000,
        }
    }

    /// Seeded configurations the backend fuzzer sweeps.
    pub fn fuzz_cases(&self) -> usize {
        match self.tier {
            Tier::Fast => 60,
            Tier::Deep => 160,
        }
    }
}

/// Run the full audit: goodness-of-fit, empirical DP, differential
/// fuzzing. Deterministic in `cfg`.
pub fn run_all(cfg: &AuditConfig) -> AuditReport {
    let gof = run_gof(cfg);
    metrics::counter_add("audit.gof.checks", gof.len() as u64);
    metrics::counter_add(
        "audit.gof.failures",
        gof.iter().filter(|c| !c.passed).count() as u64,
    );

    let dp = run_dp_audit(cfg);
    metrics::counter_add("audit.dp.configs", dp.len() as u64);
    metrics::counter_add(
        "audit.dp.violations",
        dp.iter().filter(|r| !r.passed).count() as u64,
    );

    let fuzz = run_diff_fuzz(cfg);
    metrics::counter_add("audit.fuzz.cases", fuzz.cases as u64);
    metrics::counter_add("audit.fuzz.divergences", fuzz.divergences as u64);
    metrics::counter_add("audit.fuzz.panics", fuzz.panics as u64);

    AuditReport::assemble(cfg, gof, dp, fuzz)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_scale_with_tier() {
        let fast = AuditConfig::new(1, Tier::Fast);
        let deep = AuditConfig::new(1, Tier::Deep);
        assert!(deep.gof_samples() > fast.gof_samples());
        assert!(deep.dp_trials() > fast.dp_trials());
        assert!(deep.fuzz_cases() > fast.fuzz_cases());
        assert!(fast.fuzz_cases() >= 50, "acceptance floor: >= 50 configs");
    }
}
