//! # SQM — the Skellam Quantization Mechanism
//!
//! The paper's primary contribution: a distributed-DP mechanism for
//! evaluating polynomial functions `F(X) = sum_{x in X} f(x)` over a
//! *vertically partitioned* database, with no trusted party.
//!
//! Pipeline (Figure 1 / Algorithms 1-3):
//!
//! 1. **Data quantization** ([`quantize`], Algorithm 2) — each client scales
//!    its column by `gamma` and stochastically rounds to integers.
//! 2. **Coefficient quantization** ([`quantize::quantize_polynomial`],
//!    Algorithm 3 lines 1-3) — each monomial coefficient is scaled by
//!    `gamma^(1 + lambda - deg)` so every monomial ends up amplified by the
//!    *same* `gamma^(lambda+1)` regardless of its degree.
//! 3. **Local noise sampling** — each client draws `Sk(mu/n)`; the aggregate
//!    is `Sk(mu)` by closure under convolution.
//! 4. **Secure evaluation** — the clients run MPC (see `sqm-vfl`) to compute
//!    the quantized polynomial sum with the aggregate noise folded in; this
//!    crate's [`mechanism`] module provides the *output-equivalent plaintext
//!    simulation* used for statistical experiments (identical output law,
//!    since MPC reveals exactly the perturbed sum).
//! 5. **Post-processing** — the server divides by `gamma^(lambda+1)`
//!    (`gamma^lambda` in the monomial-only Algorithm 1).
//!
//! [`sensitivity`] carries the paper's sensitivity analysis (Lemmas 3-5, 7)
//! and [`baseline`] the local-DP baseline (Algorithm 4 / Lemma 12).

pub mod approx;
pub mod baseline;
pub mod confidence;
pub mod mechanism;
pub mod polynomial;
pub mod quantize;
pub mod sensitivity;

pub use mechanism::{sqm_monomial, sqm_polynomial, SqmParams};
pub use polynomial::{Monomial, Polynomial};
pub use quantize::{
    quantize_matrix, quantize_polynomial, quantize_value, quantize_vec, QuantizedPolynomial,
};
pub use sensitivity::{lr_sensitivity, pca_sensitivity};
