//! Algorithm 2 (data quantization) and Algorithm 3 lines 1-3 (coefficient
//! quantization).
//!
//! **Data.** Each client scales its real-valued column by `gamma` and
//! stochastically rounds every entry to a nearest integer; the result is
//! unbiased with per-entry deviation < 1, so the *relative* quantization
//! error vanishes as `gamma` grows — the key to matching central-DP utility
//! (Lemma 2 / Corollary 1).
//!
//! **Coefficients.** For a degree-`lambda` polynomial, the coefficient of a
//! degree-`deg` monomial is scaled by `gamma^(1 + lambda - deg)` and
//! rounded; combined with the `gamma^deg` data amplification every monomial
//! is amplified by the same `gamma^(lambda+1)`, which keeps the joint
//! sensitivity analyzable (Section IV-B "Main Idea"). Coefficients are
//! public, so their quantization costs no privacy.

use rand::Rng;
use sqm_linalg::Matrix;
use sqm_sampling::rounding::stochastic_round;

use crate::polynomial::Polynomial;

/// Algorithm 2 on a scalar: scale by `gamma`, stochastically round.
pub fn quantize_value<R: Rng + ?Sized>(rng: &mut R, x: f64, gamma: f64) -> i64 {
    assert!(
        gamma > 0.0 && gamma.is_finite(),
        "gamma must be positive and finite"
    );
    stochastic_round(rng, gamma * x)
}

/// Algorithm 2 on a vector (one client's column).
///
/// ```
/// use rand::SeedableRng;
/// use sqm_core::quantize::quantize_vec;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let q = quantize_vec(&mut rng, &[0.5, -0.25], 1024.0);
/// assert!((q[0] - 512).abs() <= 1);   // unbiased rounding of 512.0
/// assert!((q[1] + 256).abs() <= 1);
/// ```
pub fn quantize_vec<R: Rng + ?Sized>(rng: &mut R, v: &[f64], gamma: f64) -> Vec<i64> {
    v.iter().map(|&x| quantize_value(rng, x, gamma)).collect()
}

/// Algorithm 2 on a full matrix (every client's column, row-major output).
pub fn quantize_matrix<R: Rng + ?Sized>(rng: &mut R, x: &Matrix, gamma: f64) -> Vec<Vec<i64>> {
    (0..x.rows())
        .map(|i| quantize_vec(rng, x.row(i), gamma))
        .collect()
}

/// A monomial with quantized integer coefficient.
#[derive(Clone, Debug, PartialEq)]
pub struct QuantizedMonomial {
    /// `hat a_t[l]` — the coefficient after scaling by
    /// `gamma^(1 + lambda - deg)` and stochastic rounding.
    pub coeff: i128,
    /// Same exponent structure as the source monomial.
    pub exponents: Vec<(usize, u32)>,
}

impl QuantizedMonomial {
    /// Evaluate `coeff * prod x[v]^e` over quantized inputs in `i128`.
    pub fn eval_i128(&self, x: &[i64]) -> i128 {
        let mut acc: i128 = self.coeff;
        for &(v, e) in &self.exponents {
            for _ in 0..e {
                acc = acc
                    .checked_mul(x[v] as i128)
                    .expect("quantized monomial evaluation overflowed i128");
            }
        }
        acc
    }
}

/// A polynomial whose coefficients have been pre-processed per Algorithm 3;
/// evaluating it on `gamma`-quantized data yields values amplified by
/// `gamma^(degree+1)`.
#[derive(Clone, Debug)]
pub struct QuantizedPolynomial {
    n_vars: usize,
    degree: u32,
    gamma: f64,
    dims: Vec<Vec<QuantizedMonomial>>,
}

impl QuantizedPolynomial {
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    pub fn n_dims(&self) -> usize {
        self.dims.len()
    }

    /// The polynomial degree `lambda`.
    pub fn degree(&self) -> u32 {
        self.degree
    }

    /// The quantization scale.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// The overall amplification factor `gamma^(lambda+1)` that the server
    /// divides out in post-processing (Algorithm 3 line 11).
    pub fn amplification(&self) -> f64 {
        self.gamma.powi(self.degree as i32 + 1)
    }

    pub fn dim(&self, t: usize) -> &[QuantizedMonomial] {
        &self.dims[t]
    }

    /// Evaluate all output dimensions on one quantized record (in `i128`).
    pub fn eval_record(&self, x: &[i64]) -> Vec<i128> {
        assert_eq!(x.len(), self.n_vars, "record dimension mismatch");
        self.dims
            .iter()
            .map(|ms| {
                ms.iter().map(|m| m.eval_i128(x)).fold(0i128, |acc, v| {
                    acc.checked_add(v).expect("sum overflowed i128")
                })
            })
            .collect()
    }

    /// Evaluate the sum over a quantized dataset.
    pub fn sum_over(&self, records: &[Vec<i64>]) -> Vec<i128> {
        let mut acc = vec![0i128; self.n_dims()];
        for r in records {
            for (a, v) in acc.iter_mut().zip(self.eval_record(r)) {
                *a = a.checked_add(v).expect("dataset sum overflowed i128");
            }
        }
        acc
    }
}

/// Algorithm 3 lines 1-3: quantize every coefficient of `poly` with the
/// degree-compensating scale `gamma^(1 + lambda - deg)`.
pub fn quantize_polynomial<R: Rng + ?Sized>(
    rng: &mut R,
    poly: &Polynomial,
    gamma: f64,
) -> QuantizedPolynomial {
    assert!(gamma > 1.0, "gamma must exceed 1 (got {gamma})");
    let lambda = poly.degree();
    let dims = poly
        .dims()
        .map(|ms| {
            ms.iter()
                .map(|m| {
                    let scale = gamma.powi((1 + lambda - m.degree()) as i32);
                    let scaled = m.coeff * scale;
                    // Stochastic rounding keeps the quantized coefficient
                    // unbiased; beyond f64's exact-integer range the value
                    // is already integral in representation.
                    let coeff = if scaled.abs() <= (1u64 << 53) as f64 {
                        stochastic_round(rng, scaled) as i128
                    } else {
                        assert!(
                            scaled.abs() < 1.7e38,
                            "scaled coefficient {scaled} exceeds i128 range"
                        );
                        scaled as i128
                    };
                    QuantizedMonomial {
                        coeff,
                        exponents: m.exponents.clone(),
                    }
                })
                .collect()
        })
        .collect();
    QuantizedPolynomial {
        n_vars: poly.n_vars(),
        degree: lambda,
        gamma,
        dims,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::polynomial::Monomial;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn quantized_value_is_unbiased() {
        let mut rng = StdRng::seed_from_u64(1);
        let gamma = 64.0;
        let x = 0.1234567;
        let n = 100_000;
        let mean: f64 = (0..n)
            .map(|_| quantize_value(&mut rng, x, gamma) as f64)
            .sum::<f64>()
            / n as f64;
        assert!(
            (mean / gamma - x).abs() < 1e-3,
            "mean/gamma = {}",
            mean / gamma
        );
    }

    #[test]
    fn quantized_value_deviates_less_than_one() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x: f64 = rng.gen::<f64>() * 2.0 - 1.0;
            let q = quantize_value(&mut rng, x, 1024.0);
            assert!((q as f64 - 1024.0 * x).abs() < 1.0);
        }
    }

    #[test]
    fn matrix_quantization_shape() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = Matrix::from_rows(&[vec![0.1, 0.2], vec![0.3, 0.4], vec![0.5, 0.6]]);
        let q = quantize_matrix(&mut rng, &x, 16.0);
        assert_eq!(q.len(), 3);
        assert!(q.iter().all(|r| r.len() == 2));
    }

    #[test]
    fn coefficient_scaling_compensates_degree() {
        // f(x) = 0.5 x0^2 + 0.25 x0, lambda = 2.
        // deg-2 coefficient scaled by gamma^1, deg-1 by gamma^2.
        let p = Polynomial::one_dimensional(
            1,
            vec![
                Monomial::new(0.5, vec![(0, 2)]),
                Monomial::new(0.25, vec![(0, 1)]),
            ],
        );
        let mut rng = StdRng::seed_from_u64(4);
        let gamma = 256.0;
        let qp = quantize_polynomial(&mut rng, &p, gamma);
        assert_eq!(qp.degree(), 2);
        assert_eq!(qp.amplification(), gamma.powi(3));
        let c2 = qp.dim(0)[0].coeff as f64;
        let c1 = qp.dim(0)[1].coeff as f64;
        assert!((c2 - 0.5 * gamma).abs() <= 1.0);
        assert!((c1 - 0.25 * gamma * gamma).abs() <= 1.0);
    }

    #[test]
    fn quantized_eval_approximates_amplified_polynomial() {
        // End-to-end: evaluate the quantized polynomial on quantized data,
        // divide by gamma^(lambda+1), compare with the true value.
        let p = Polynomial::one_dimensional(
            2,
            vec![
                Monomial::new(1.0, vec![(0, 2)]),
                Monomial::new(-0.5, vec![(0, 1), (1, 1)]),
                Monomial::new(0.125, vec![(1, 1)]),
                Monomial::constant(0.75),
            ],
        );
        let mut rng = StdRng::seed_from_u64(5);
        let gamma = 4096.0;
        let qp = quantize_polynomial(&mut rng, &p, gamma);
        let x = [0.6, -0.35];
        let truth = p.eval(&x)[0];
        let qx = quantize_vec(&mut rng, &x, gamma);
        let approx = qp.eval_record(&qx)[0] as f64 / qp.amplification();
        assert!(
            (approx - truth).abs() < 0.01,
            "approx {approx} vs truth {truth}"
        );
    }

    #[test]
    fn error_shrinks_with_gamma() {
        // Corollary 1: approximation error -> 0 as gamma grows.
        let p = Polynomial::one_dimensional(1, vec![Monomial::new(1.0, vec![(0, 3)])]);
        let x = [0.7];
        let truth = p.eval(&x)[0];
        let mut errs = Vec::new();
        for gamma in [16.0, 256.0, 4096.0] {
            let mut rng = StdRng::seed_from_u64(6);
            // Average over repeats to suppress rounding randomness.
            let mut err_acc = 0.0;
            let reps = 64;
            for _ in 0..reps {
                let qp = quantize_polynomial(&mut rng, &p, gamma);
                let qx = quantize_vec(&mut rng, &x, gamma);
                let approx = qp.eval_record(&qx)[0] as f64 / qp.amplification();
                err_acc += (approx - truth).abs();
            }
            errs.push(err_acc / reps as f64);
        }
        assert!(errs[1] < errs[0] && errs[2] < errs[1], "errors {errs:?}");
        assert!(errs[2] < 1e-3);
    }

    #[test]
    fn constant_only_polynomial() {
        // Degenerate but legal: f(x) = 2. lambda = 0, amplification gamma^1.
        let p = Polynomial::one_dimensional(1, vec![Monomial::constant(2.0)]);
        let mut rng = StdRng::seed_from_u64(7);
        let qp = quantize_polynomial(&mut rng, &p, 128.0);
        assert_eq!(qp.degree(), 0);
        let out = qp.eval_record(&[55])[0] as f64 / qp.amplification();
        assert!((out - 2.0).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "gamma must exceed 1")]
    fn rejects_tiny_gamma() {
        let p = Polynomial::one_dimensional(1, vec![Monomial::linear(1.0, 0)]);
        let mut rng = StdRng::seed_from_u64(0);
        quantize_polynomial(&mut rng, &p, 0.5);
    }

    /// Algorithm 2 pin: `E[Q(gamma x)] = gamma x` exactly — the empirical
    /// mean of the quantized value must converge to the amplified input,
    /// not merely land within the +/-1 deviation band.
    #[test]
    fn quantize_value_is_unbiased_at_the_amplified_scale() {
        let mut rng = StdRng::seed_from_u64(31);
        let gamma = 37.0;
        for &x in &[0.0, 0.017, -0.49, 0.731, -1.0, 0.999] {
            let n = 400_000;
            let sum: i64 = (0..n).map(|_| quantize_value(&mut rng, x, gamma)).sum();
            let mean = sum as f64 / n as f64;
            let target = gamma * x;
            // Fractional part p has std sqrt(p(1-p)) <= 1/2 per draw; allow
            // 5 standard errors.
            let tol = 5.0 * 0.5 / (n as f64).sqrt();
            assert!(
                (mean - target).abs() < tol.max(1e-9),
                "x={x}: mean {mean} target {target}"
            );
        }
    }

    /// Algorithm 2 pin: worst-case per-coordinate quantization deviation is
    /// strictly below 1 — the unit the sensitivity lemmas (2-4) charge per
    /// coordinate.
    #[test]
    fn quantize_deviation_strictly_below_one_everywhere() {
        let mut rng = StdRng::seed_from_u64(32);
        let gamma = 1021.0;
        for i in 0..20_000 {
            let x = (i as f64 / 20_000.0) * 4.0 - 2.0;
            let q = quantize_value(&mut rng, x, gamma) as f64;
            assert!((q - gamma * x).abs() < 1.0, "x={x} q={q}");
        }
    }
}
