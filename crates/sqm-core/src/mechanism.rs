//! The SQM mechanisms — Algorithm 1 (one-dimensional monomials) and
//! Algorithm 3 (multi-dimensional polynomials) — in output-equivalent
//! plaintext simulation.
//!
//! The MPC protocol reveals exactly `sum_x hat f(hat x) + sum_j Z_j` and
//! nothing else, so simulating the mechanism by computing that sum in the
//! clear produces the *identical output distribution* (this is also how the
//! paper runs its statistical experiments). The full BGW-backed execution —
//! same arithmetic, secret-shared — lives in `sqm-vfl`, and the two are
//! cross-checked in integration tests.

use rand::Rng;
use sqm_linalg::Matrix;
use sqm_sampling::skellam::sample_skellam;

use crate::polynomial::{Monomial, Polynomial};
use crate::quantize::{quantize_matrix, quantize_polynomial};

/// Parameters of one SQM invocation.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct SqmParams {
    /// Quantization scale `gamma` (Algorithm 2). Larger is finer.
    pub gamma: f64,
    /// Total Skellam noise parameter `mu`; each of the `n_clients` samples
    /// `Sk(mu / n_clients)` locally.
    pub mu: f64,
    /// Number of participating clients (one per attribute in the paper's
    /// canonical partitioning, but any count works).
    pub n_clients: usize,
}

impl SqmParams {
    pub fn new(gamma: f64, mu: f64, n_clients: usize) -> Self {
        assert!(gamma > 1.0, "gamma must exceed 1, got {gamma}");
        assert!(mu >= 0.0, "mu must be non-negative, got {mu}");
        assert!(n_clients >= 1, "need at least one client");
        SqmParams {
            gamma,
            mu,
            n_clients,
        }
    }

    /// The aggregate Skellam noise for one output dimension: the sum of the
    /// clients' local `Sk(mu/n)` draws, which is distributed as `Sk(mu)`.
    /// Sampling the shares individually (rather than one `Sk(mu)`) keeps
    /// the simulation faithful to the distributed protocol.
    pub fn sample_aggregate_noise<R: Rng + ?Sized>(&self, rng: &mut R) -> i64 {
        if self.mu == 0.0 {
            return 0;
        }
        let local = self.mu / self.n_clients as f64;
        (0..self.n_clients)
            .map(|_| sample_skellam(rng, local))
            .sum()
    }
}

/// Algorithm 1: SQM for a one-dimensional monomial with unit coefficient.
///
/// Returns the server's estimate of `sum_x f(x)` where
/// `f(x) = prod_j x[j]^(lambda_j)`. The down-scale is `gamma^lambda`
/// (line 7) since no coefficient quantization happens.
pub fn sqm_monomial<R: Rng + ?Sized>(
    rng: &mut R,
    monomial: &Monomial,
    data: &Matrix,
    params: SqmParams,
) -> f64 {
    assert!(
        (monomial.coeff - 1.0).abs() < 1e-12,
        "Algorithm 1 assumes unit coefficient; post-process for others"
    );
    let lambda = monomial.degree();
    assert!(lambda >= 1, "Algorithm 1 requires degree >= 1");

    // Lines 1-2: quantize each column (simulated jointly; the rounding of
    // disjoint columns is independent either way).
    let qdata = quantize_matrix(rng, data, params.gamma);

    // Lines 3-4: local Skellam noise shares, aggregated.
    let noise = params.sample_aggregate_noise(rng);

    // Line 5: hat y = sum_x hat f(hat x) + sum_j Z_j.
    let mut acc: i128 = noise as i128;
    for row in &qdata {
        acc = acc
            .checked_add(monomial.eval_vars_i128(row))
            .expect("SQM accumulator overflowed i128");
    }

    // Line 7: down-scale by gamma^lambda.
    acc as f64 / params.gamma.powi(lambda as i32)
}

/// Algorithm 3: SQM for a multi-dimensional polynomial.
///
/// Returns the server's estimate of `sum_x f(x)` (one entry per output
/// dimension). Each dimension receives an independent aggregate Skellam
/// noise (lines 6-9); the down-scale is `gamma^(lambda+1)` (line 11).
pub fn sqm_polynomial<R: Rng + ?Sized>(
    rng: &mut R,
    poly: &Polynomial,
    data: &Matrix,
    params: SqmParams,
) -> Vec<f64> {
    assert_eq!(
        data.cols(),
        poly.n_vars(),
        "data/polynomial dimension mismatch"
    );

    // Lines 1-3: coefficient quantization.
    let qpoly = quantize_polynomial(rng, poly, params.gamma);
    // Lines 4-5: data quantization.
    let qdata = quantize_matrix(rng, data, params.gamma);

    // Lines 6-10: per-dimension evaluation + noise.
    let sums = qpoly.sum_over(&qdata);
    let amplification = qpoly.amplification();
    sums.into_iter()
        .map(|s| {
            let noise = params.sample_aggregate_noise(rng) as i128;
            let noisy = s.checked_add(noise).expect("noise addition overflowed");
            // Line 11: down-scale.
            noisy as f64 / amplification
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_data() -> Matrix {
        Matrix::from_rows(&[
            vec![0.5, -0.3, 0.2],
            vec![-0.1, 0.4, 0.6],
            vec![0.2, 0.2, -0.5],
            vec![0.7, 0.0, 0.1],
        ])
    }

    #[test]
    fn monomial_no_noise_is_accurate() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = Monomial::new(1.0, vec![(0, 1), (2, 1)]); // x0 * x2
        let data = toy_data();
        let truth: f64 = (0..data.rows()).map(|i| data[(i, 0)] * data[(i, 2)]).sum();
        let params = SqmParams::new(4096.0, 0.0, 3);
        let est = sqm_monomial(&mut rng, &m, &data, params);
        assert!((est - truth).abs() < 1e-3, "est {est} truth {truth}");
    }

    #[test]
    fn monomial_error_shrinks_with_gamma() {
        let m = Monomial::new(1.0, vec![(0, 2), (1, 1)]); // x0^2 x1
        let data = toy_data();
        let truth: f64 = (0..data.rows())
            .map(|i| data[(i, 0)].powi(2) * data[(i, 1)])
            .sum();
        let mut err = Vec::new();
        for gamma in [8.0, 128.0, 8192.0] {
            let mut rng = StdRng::seed_from_u64(2);
            let mut acc = 0.0;
            let reps = 50;
            for _ in 0..reps {
                let est = sqm_monomial(&mut rng, &m, &data, SqmParams::new(gamma, 0.0, 3));
                acc += (est - truth).abs();
            }
            err.push(acc / reps as f64);
        }
        assert!(err[2] < err[1] && err[1] < err[0], "{err:?}");
    }

    #[test]
    fn polynomial_no_noise_matches_truth() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = Polynomial::new(
            3,
            vec![
                vec![Monomial::new(2.0, vec![(0, 1)]), Monomial::constant(-0.5)],
                vec![Monomial::new(1.0, vec![(1, 1), (2, 1)])],
            ],
        );
        let data = toy_data();
        let truth = p.sum_over((0..data.rows()).map(|i| data.row(i)));
        let est = sqm_polynomial(&mut rng, &p, &data, SqmParams::new(8192.0, 0.0, 3));
        for (e, t) in est.iter().zip(&truth) {
            assert!((e - t).abs() < 2e-3, "est {e} truth {t}");
        }
    }

    #[test]
    fn noise_has_calibrated_scale_after_downscaling() {
        // With mu > 0 the estimate's variance should be ~ 2*mu /
        // gamma^(2(lambda+1)) per dimension.
        let p = Polynomial::one_dimensional(1, vec![Monomial::new(1.0, vec![(0, 1)])]);
        let data = Matrix::from_rows(&[vec![0.0]]); // zero data isolates noise
        let gamma = 64.0;
        let mu = 1e6;
        let mut rng = StdRng::seed_from_u64(4);
        let params = SqmParams::new(gamma, mu, 5);
        let samples: Vec<f64> = (0..4000)
            .map(|_| sqm_polynomial(&mut rng, &p, &data, params)[0])
            .collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        let expect = 2.0 * mu / gamma.powf(4.0); // lambda = 1 => scale gamma^2
        assert!(
            mean.abs() < 3.0 * (expect / 4000.0).sqrt() + 1e-6,
            "mean {mean}"
        );
        assert!(
            (var - expect).abs() / expect < 0.15,
            "var {var} expect {expect}"
        );
    }

    #[test]
    fn covariance_polynomial_end_to_end() {
        let mut rng = StdRng::seed_from_u64(5);
        let data = toy_data();
        let p = Polynomial::covariance(3);
        let est = sqm_polynomial(&mut rng, &p, &data, SqmParams::new(4096.0, 0.0, 3));
        let truth = data.gram();
        for j in 0..3 {
            for k in 0..3 {
                let e = est[j * 3 + k];
                let t = truth[(j, k)];
                assert!((e - t).abs() < 5e-3, "({j},{k}): est {e} truth {t}");
            }
        }
    }

    #[test]
    fn aggregate_noise_matches_skellam_moments() {
        let mut rng = StdRng::seed_from_u64(6);
        let params = SqmParams::new(2.0, 50.0, 7);
        let xs: Vec<i64> = (0..50_000)
            .map(|_| params.sample_aggregate_noise(&mut rng))
            .collect();
        let mean = xs.iter().map(|&x| x as f64).sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.2, "mean {mean}");
        assert!((var - 100.0).abs() / 100.0 < 0.05, "var {var}");
    }

    #[test]
    #[should_panic(expected = "unit coefficient")]
    fn monomial_rejects_non_unit_coefficient() {
        let mut rng = StdRng::seed_from_u64(0);
        let m = Monomial::new(2.0, vec![(0, 1)]);
        sqm_monomial(&mut rng, &m, &toy_data(), SqmParams::new(16.0, 0.0, 3));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn polynomial_rejects_wrong_width() {
        let mut rng = StdRng::seed_from_u64(0);
        let p = Polynomial::one_dimensional(5, vec![Monomial::linear(1.0, 4)]);
        sqm_polynomial(&mut rng, &p, &toy_data(), SqmParams::new(16.0, 0.0, 3));
    }
}
