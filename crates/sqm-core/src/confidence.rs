//! Confidence intervals for SQM releases.
//!
//! A downstream consumer of a DP estimate needs error bars, not just the
//! point value. An SQM release deviates from the true statistic by (a) the
//! down-scaled Skellam noise — `Sk(mu) / gamma^(lambda+1)`, which for
//! calibrated `mu` is extremely well approximated by
//! `N(0, 2 mu / gamma^(2 lambda + 2))` — and (b) the quantization error,
//! deterministically bounded by the mechanism's rounding analysis. The
//! interval below combines a normal-quantile bound for (a) with a
//! worst-case bound for (b); both are *public* quantities (post-processing)
//! so computing the interval costs no privacy.

use sqm_sampling::special::normal_cdf;

/// Two-sided `(1 - beta)` confidence half-width for a scalar SQM release.
///
/// * `mu` — aggregate Skellam parameter.
/// * `amplification` — the down-scale factor `gamma^(lambda+1)`
///   (`gamma^lambda` for Algorithm 1).
/// * `quantization_bound` — deterministic bound on the down-scaled
///   rounding error (0 to ignore; the mechanism's `o(1)` term).
pub fn sqm_half_width(beta: f64, mu: f64, amplification: f64, quantization_bound: f64) -> f64 {
    assert!(
        (0.0..1.0).contains(&beta) && beta > 0.0,
        "beta must be in (0,1)"
    );
    assert!(mu >= 0.0 && amplification > 0.0 && quantization_bound >= 0.0);
    let z = normal_quantile(1.0 - beta / 2.0);
    z * (2.0 * mu).sqrt() / amplification + quantization_bound
}

/// Standard normal quantile (probit), by bisection on the CDF.
///
/// Accurate to ~1e-10 over `p in (1e-12, 1 - 1e-12)`; the tails beyond that
/// are clamped (they would demand more than 7 sigma anyway).
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile needs p in (0,1), got {p}");
    let p = p.clamp(1e-12, 1.0 - 1e-12);
    let (mut lo, mut hi) = (-8.0f64, 8.0f64);
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if normal_cdf(mid) < p {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Empirical coverage check helper: does `estimate` lie within the interval
/// around `truth`?
pub fn covers(truth: f64, estimate: f64, half_width: f64) -> bool {
    (estimate - truth).abs() <= half_width
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sqm_sampling::skellam::sample_skellam;

    #[test]
    fn quantile_reference_values() {
        assert!((normal_quantile(0.5)).abs() < 1e-9);
        assert!((normal_quantile(0.975) - 1.959_963_984_540_054).abs() < 1e-6);
        assert!((normal_quantile(0.8413447460685429) - 1.0).abs() < 1e-6);
        assert!((normal_quantile(0.025) + 1.959_963_984_540_054).abs() < 1e-6);
    }

    #[test]
    fn quantile_is_monotone() {
        let mut last = f64::NEG_INFINITY;
        for i in 1..100 {
            let q = normal_quantile(i as f64 / 100.0);
            assert!(q > last);
            last = q;
        }
    }

    #[test]
    fn half_width_scales_correctly() {
        let w1 = sqm_half_width(0.05, 1e6, 1e3, 0.0);
        // 4x mu => 2x width; 2x amplification => 0.5x width.
        let w2 = sqm_half_width(0.05, 4e6, 1e3, 0.0);
        let w3 = sqm_half_width(0.05, 1e6, 2e3, 0.0);
        assert!((w2 / w1 - 2.0).abs() < 1e-9);
        assert!((w3 / w1 - 0.5).abs() < 1e-9);
        // Quantization bound adds linearly.
        assert!((sqm_half_width(0.05, 1e6, 1e3, 0.7) - w1 - 0.7).abs() < 1e-12);
    }

    #[test]
    fn empirical_coverage_matches_nominal() {
        // Sample Skellam noise, check the 95% interval covers ~95%.
        let mut rng = StdRng::seed_from_u64(3);
        let mu = 5e4;
        let amplification = 100.0;
        let hw = sqm_half_width(0.05, mu, amplification, 0.0);
        let n = 20_000;
        let covered = (0..n)
            .filter(|_| {
                let noise = sample_skellam(&mut rng, mu) as f64 / amplification;
                covers(0.0, noise, hw)
            })
            .count() as f64
            / n as f64;
        assert!((covered - 0.95).abs() < 0.01, "coverage {covered}");
    }

    #[test]
    fn tighter_beta_means_wider_interval() {
        let w95 = sqm_half_width(0.05, 1e6, 1e3, 0.0);
        let w99 = sqm_half_width(0.01, 1e6, 1e3, 0.0);
        assert!(w99 > w95);
    }

    #[test]
    #[should_panic(expected = "beta")]
    fn rejects_bad_beta() {
        sqm_half_width(1.5, 1.0, 1.0, 0.0);
    }
}
