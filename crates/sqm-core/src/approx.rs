//! Polynomial approximation of nonlinear functions.
//!
//! SQM evaluates *polynomials*; anything else must first be approximated
//! (Section V-B uses the degree-1 Taylor expansion of the sigmoid; the
//! "Extension to more complicated functions" discussion points at higher
//! degrees and other activations). This module provides:
//!
//! * Taylor coefficients of `sigmoid` and `tanh` around 0 up to a requested
//!   odd degree;
//! * least-squares (Chebyshev-sampled) polynomial fits for arbitrary
//!   activations over an interval — the approach used by MPC inference
//!   systems such as BOLT \[63\] for GELU;
//! * an evaluator and sup-norm error estimator, so callers can pick the
//!   degree/interval trade-off *before* spending privacy budget.

/// A univariate polynomial `c[0] + c[1] u + c[2] u^2 + ...`.
#[derive(Clone, Debug, PartialEq)]
pub struct UniPoly {
    /// Coefficients, constant term first.
    pub coeffs: Vec<f64>,
}

impl UniPoly {
    pub fn new(coeffs: Vec<f64>) -> Self {
        assert!(
            !coeffs.is_empty(),
            "polynomial needs at least one coefficient"
        );
        UniPoly { coeffs }
    }

    pub fn degree(&self) -> usize {
        self.coeffs.len() - 1
    }

    /// Horner evaluation.
    pub fn eval(&self, u: f64) -> f64 {
        self.coeffs.iter().rev().fold(0.0, |acc, &c| acc * u + c)
    }

    /// Sup-norm error against `f` over `[lo, hi]` (dense grid probe).
    pub fn sup_error<F: Fn(f64) -> f64>(&self, f: F, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi);
        let steps = 2000;
        (0..=steps)
            .map(|i| {
                let u = lo + (hi - lo) * i as f64 / steps as f64;
                (self.eval(u) - f(u)).abs()
            })
            .fold(0.0, f64::max)
    }
}

/// Taylor expansion of the sigmoid around 0, truncated at `degree`
/// (only odd-degree terms beyond the constant 1/2 are nonzero).
///
/// `sigmoid(u) ~ 1/2 + u/4 - u^3/48 + u^5/480 - 17 u^7 / 80640 + ...`
/// Degree 1 is exactly the paper's Eq. 9 approximation.
pub fn sigmoid_taylor(degree: usize) -> UniPoly {
    // Coefficients of the Maclaurin series of sigmoid up to degree 9.
    const COEFFS: [f64; 10] = [
        0.5,
        0.25,
        0.0,
        -1.0 / 48.0,
        0.0,
        1.0 / 480.0,
        0.0,
        -17.0 / 80640.0,
        0.0,
        31.0 / 1_451_520.0,
    ];
    assert!(
        degree < COEFFS.len(),
        "sigmoid Taylor implemented up to degree 9"
    );
    UniPoly::new(COEFFS[..=degree].to_vec())
}

/// Taylor expansion of `tanh` around 0 (`tanh(u) = 2 sigmoid(2u) - 1`).
pub fn tanh_taylor(degree: usize) -> UniPoly {
    const COEFFS: [f64; 10] = [
        0.0,
        1.0,
        0.0,
        -1.0 / 3.0,
        0.0,
        2.0 / 15.0,
        0.0,
        -17.0 / 315.0,
        0.0,
        62.0 / 2835.0,
    ];
    assert!(
        degree < COEFFS.len(),
        "tanh Taylor implemented up to degree 9"
    );
    UniPoly::new(COEFFS[..=degree].to_vec())
}

/// Least-squares polynomial fit of `f` over `[lo, hi]` at Chebyshev nodes —
/// far better than Taylor away from 0, which is what makes higher-degree
/// private inference (GELU etc.) feasible.
pub fn least_squares_fit<F: Fn(f64) -> f64>(f: F, lo: f64, hi: f64, degree: usize) -> UniPoly {
    assert!(lo < hi, "empty interval");
    let n_nodes = (4 * (degree + 1)).max(16);
    // Chebyshev nodes mapped to [lo, hi].
    let nodes: Vec<f64> = (0..n_nodes)
        .map(|i| {
            let t = ((2 * i + 1) as f64) * std::f64::consts::PI / (2.0 * n_nodes as f64);
            0.5 * (lo + hi) + 0.5 * (hi - lo) * t.cos()
        })
        .collect();
    let ys: Vec<f64> = nodes.iter().map(|&u| f(u)).collect();

    // Normal equations A^T A c = A^T y with A[i][j] = u_i^j. Degrees are
    // small (<= ~10), so a dense solve with partial pivoting is fine.
    let k = degree + 1;
    let mut ata = vec![0.0f64; k * k];
    let mut aty = vec![0.0f64; k];
    for (&u, &y) in nodes.iter().zip(&ys) {
        let mut pow = vec![1.0f64; k];
        for j in 1..k {
            pow[j] = pow[j - 1] * u;
        }
        for r in 0..k {
            aty[r] += pow[r] * y;
            for c2 in 0..k {
                ata[r * k + c2] += pow[r] * pow[c2];
            }
        }
    }
    let coeffs = solve_dense(&mut ata, &mut aty, k);
    UniPoly::new(coeffs)
}

/// Gaussian elimination with partial pivoting (k x k, k small).
fn solve_dense(a: &mut [f64], b: &mut [f64], k: usize) -> Vec<f64> {
    for col in 0..k {
        // Pivot.
        let (piv, _) = (col..k)
            .map(|r| (r, a[r * k + col].abs()))
            .max_by(|x, y| x.1.partial_cmp(&y.1).unwrap())
            .unwrap();
        if piv != col {
            for j in 0..k {
                a.swap(col * k + j, piv * k + j);
            }
            b.swap(col, piv);
        }
        let p = a[col * k + col];
        assert!(p.abs() > 1e-300, "singular normal equations");
        for r in (col + 1)..k {
            let f = a[r * k + col] / p;
            for j in col..k {
                a[r * k + j] -= f * a[col * k + j];
            }
            b[r] -= f * b[col];
        }
    }
    let mut x = vec![0.0; k];
    for col in (0..k).rev() {
        let mut s = b[col];
        for j in (col + 1)..k {
            s -= a[col * k + j] * x[j];
        }
        x[col] = s / a[col * k + col];
    }
    x
}

/// The GELU activation (exact, via erf-free tanh form used in practice).
pub fn gelu(u: f64) -> f64 {
    0.5 * u * (1.0 + ((2.0 / std::f64::consts::PI).sqrt() * (u + 0.044715 * u.powi(3))).tanh())
}

/// The exact sigmoid — the reference function the approximations above
/// are measured against.
pub fn sigmoid(u: f64) -> f64 {
    1.0 / (1.0 + (-u).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree1_matches_eq9() {
        let p = sigmoid_taylor(1);
        assert_eq!(p.coeffs, vec![0.5, 0.25]);
        assert!((p.eval(0.4) - (0.5 + 0.1)).abs() < 1e-12);
    }

    #[test]
    fn taylor_error_shrinks_with_degree_near_zero() {
        let e1 = sigmoid_taylor(1).sup_error(sigmoid, -0.5, 0.5);
        let e3 = sigmoid_taylor(3).sup_error(sigmoid, -0.5, 0.5);
        let e5 = sigmoid_taylor(5).sup_error(sigmoid, -0.5, 0.5);
        assert!(e3 < e1 && e5 < e3, "{e1} {e3} {e5}");
        assert!(e5 < 1e-4);
    }

    #[test]
    fn degree1_error_on_unit_interval_is_small() {
        // The paper's justification for H = 1: on |u| <= 1 (unit-ball
        // features and weights) the Taylor error is ~0.01.
        let e = sigmoid_taylor(1).sup_error(sigmoid, -1.0, 1.0);
        assert!(e < 0.02, "error {e}");
    }

    #[test]
    fn tanh_taylor_values() {
        let p = tanh_taylor(5);
        assert!((p.eval(0.3) - 0.3f64.tanh()).abs() < 1e-4);
        assert_eq!(p.eval(0.0), 0.0);
    }

    #[test]
    fn least_squares_beats_taylor_on_wide_intervals() {
        let taylor = sigmoid_taylor(3);
        let fitted = least_squares_fit(sigmoid, -4.0, 4.0, 3);
        let et = taylor.sup_error(sigmoid, -4.0, 4.0);
        let ef = fitted.sup_error(sigmoid, -4.0, 4.0);
        assert!(ef < et / 5.0, "fit {ef} vs taylor {et}");
        assert!(ef < 0.03, "fit error {ef}");
    }

    #[test]
    fn gelu_fit_is_accurate() {
        // BOLT-style degree-6 fit of GELU over [-3, 3].
        let fitted = least_squares_fit(gelu, -3.0, 3.0, 6);
        let e = fitted.sup_error(gelu, -3.0, 3.0);
        assert!(e < 0.05, "error {e}");
    }

    #[test]
    fn fit_recovers_exact_polynomials() {
        let truth = UniPoly::new(vec![1.0, -2.0, 0.5]);
        let fitted = least_squares_fit(|u| truth.eval(u), -1.0, 1.0, 2);
        for (a, b) in fitted.coeffs.iter().zip(&truth.coeffs) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn sup_error_zero_for_self() {
        let p = UniPoly::new(vec![2.0, 3.0]);
        assert_eq!(p.sup_error(|u| 2.0 + 3.0 * u, -1.0, 1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "degree 9")]
    fn taylor_degree_cap() {
        sigmoid_taylor(10);
    }
}
