//! Sensitivity analysis of the quantized computation (Lemmas 3, 4, 5, 7).
//!
//! All bounds are on the *integer-valued* (amplified) outputs that the MPC
//! protocol perturbs; the server's down-scaling by `gamma^(lambda+1)` is
//! post-processing and does not change privacy. The characteristic shape is
//! `Delta_2 = gamma^(lambda+1) * max||f|| + (lower-order overhead)` — the
//! overhead's *relative* size vanishes as `gamma` grows, which is Figure 4's
//! message.

use sqm_accounting::skellam::Sensitivity;

use crate::polynomial::Polynomial;

/// Lemma 5: sensitivities for the covariance computation of PCA.
///
/// Records have L2 norm at most `c`; data quantized at scale `gamma`; the
/// output is the `n x n` matrix `hatX^T hatX`, so `d = n^2` and
/// `Delta_2 = gamma^2 c^2 + n`.
pub fn pca_sensitivity(gamma: f64, c: f64, n: usize) -> Sensitivity {
    assert!(gamma > 0.0 && c > 0.0 && n > 0);
    let d2 = gamma * gamma * c * c + n as f64;
    Sensitivity::from_l2_for_dim(d2, n * n)
}

/// The relative sensitivity overhead of PCA quantization:
/// `(Delta_2 - gamma^2 c^2) / (gamma^2 c^2) = n / (gamma^2 c^2)`.
pub fn pca_sensitivity_overhead(gamma: f64, c: f64, n: usize) -> f64 {
    n as f64 / (gamma * gamma * c * c)
}

/// Lemma 7: sensitivities for one SQM logistic-regression gradient step.
///
/// Features have `||x||_2 <= 1`, the gradient polynomial (Eq. 9) has degree
/// 2 over `d` feature dimensions, and
/// `Delta_2 = sqrt((3/4 gamma^3)^2 + 9 gamma^5 d + 36 gamma^4)`.
pub fn lr_sensitivity(gamma: f64, d: usize) -> Sensitivity {
    assert!(gamma > 0.0 && d > 0);
    let g3 = gamma.powi(3);
    let d2 = ((0.75 * g3).powi(2) + 9.0 * gamma.powi(5) * d as f64 + 36.0 * gamma.powi(4)).sqrt();
    Sensitivity::from_l2_for_dim(d2, d)
}

/// The relative L2 sensitivity overhead of LR quantization versus the
/// unquantized bound `3/4`:
/// `sqrt((3/4)^2 + 9d/gamma + 36/gamma^2) - 3/4` (Figure 4, left).
pub fn lr_sensitivity_overhead(gamma: f64, d: usize) -> f64 {
    ((0.75f64).powi(2) + 9.0 * d as f64 / gamma + 36.0 / (gamma * gamma)).sqrt() - 0.75
}

/// Lemma 4 for a generic multi-dimensional polynomial.
///
/// `max_f_norm` bounds `max_{||x||_2 <= c} ||f(x)||_2` (supply an analytic
/// bound or use [`estimate_max_norm`]). The overhead term follows the
/// proof's multiplicity argument: each of the (at most `d * max_t v_t`)
/// monomials contributes a rounding deviation of `O(lambda * gamma^lambda *
/// max(c,1)^(lambda-1))` to the amplified output.
pub fn generic_sensitivity(poly: &Polynomial, gamma: f64, c: f64, max_f_norm: f64) -> Sensitivity {
    assert!(gamma > 1.0, "gamma must exceed 1");
    assert!(max_f_norm >= 0.0 && c > 0.0);
    let lambda = poly.degree() as i32;
    let d = poly.n_dims() as f64;
    let v = poly.max_monomials_per_dim() as f64;
    let max_abs_coeff = poly
        .dims()
        .flat_map(|ms| ms.iter().map(|m| m.coeff.abs()))
        .fold(0.0, f64::max);
    let main = gamma.powi(lambda + 1) * max_f_norm;
    // Rounding overhead: per monomial, the paper's Lemma 2 bound
    // 2*lambda*max(c,1)^(lambda-1)*gamma^(lambda-1) on the variable part,
    // amplified by the (quantized, up-to gamma^(1+lambda-deg)-scaled)
    // coefficient; plus 1 for the coefficient's own rounding. Summed over
    // d*v monomials via the triangle inequality.
    let per_monomial = (max_abs_coeff * gamma + 1.0)
        * (2.0
            * lambda.max(1) as f64
            * c.max(1.0).powi((lambda - 1).max(0))
            * gamma.powi((lambda - 1).max(0))
            + 1.0);
    let overhead = d.sqrt() * v * per_monomial;
    Sensitivity::from_l2_for_dim(main + overhead, poly.n_dims())
}

/// Monte-Carlo lower estimate of `max_{||x||_2 <= c} ||f(x)||_2`, inflated
/// by a small safety factor. For production use supply an analytic bound;
/// this helper is for exploratory workloads.
pub fn estimate_max_norm<R: rand::Rng + ?Sized>(
    rng: &mut R,
    poly: &Polynomial,
    c: f64,
    samples: usize,
) -> f64 {
    assert!(samples > 0);
    let n = poly.n_vars();
    let mut best = 0.0f64;
    for _ in 0..samples {
        // Random direction on the sphere of radius c (extremes of a
        // polynomial over a ball lie on the boundary for the dominating
        // homogeneous part).
        let mut x: Vec<f64> = (0..n)
            .map(|_| {
                // Rough normal via sum of uniforms (Irwin-Hall), adequate
                // for direction sampling.
                (0..6).map(|_| rng.gen::<f64>()).sum::<f64>() - 3.0
            })
            .collect();
        let norm = x.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm == 0.0 {
            continue;
        }
        for v in &mut x {
            *v *= c / norm;
        }
        let fx = poly.eval(&x);
        let fnorm = fx.iter().map(|v| v * v).sum::<f64>().sqrt();
        best = best.max(fnorm);
    }
    best * 1.05
}

/// A worst-case bound on the magnitude of any intermediate value of the
/// amplified computation over `m` records, used to choose a field that
/// cannot wrap around: `m * gamma^(lambda+1) * (max||f|| + overhead) +
/// noise_tail`, with a 12-sigma Skellam tail.
pub fn magnitude_bound(sens: Sensitivity, m: usize, mu: f64) -> f64 {
    let noise_tail = 12.0 * (2.0 * mu).sqrt();
    m as f64 * sens.l2 + noise_tail
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::polynomial::Monomial;

    #[test]
    fn pca_matches_lemma5() {
        let s = pca_sensitivity(100.0, 1.0, 50);
        assert_eq!(s.l2, 100.0 * 100.0 + 50.0);
        // Delta_1 = min(Delta_2^2, n * Delta_2) = min(1.01e8, 50*10050).
        assert_eq!(s.l1, (50.0f64 * 50.0).sqrt() * s.l2);
    }

    #[test]
    fn pca_overhead_vanishes() {
        let o1 = pca_sensitivity_overhead(64.0, 1.0, 100);
        let o2 = pca_sensitivity_overhead(4096.0, 1.0, 100);
        assert!(o2 < o1 / 1000.0);
    }

    #[test]
    fn lr_matches_lemma7() {
        let gamma = 1024.0;
        let d = 800;
        let s = lr_sensitivity(gamma, d);
        let expect =
            ((0.75 * gamma.powi(3)).powi(2) + 9.0 * gamma.powi(5) * 800.0 + 36.0 * gamma.powi(4))
                .sqrt();
        assert!((s.l2 - expect).abs() / expect < 1e-12);
    }

    #[test]
    fn lr_overhead_figure4_values() {
        // Figure 4 (left): overhead decreases toward 0 as gamma grows,
        // d = 800.
        let gammas = [64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0];
        let mut last = f64::INFINITY;
        for g in gammas {
            let o = lr_sensitivity_overhead(g, 800);
            assert!(o < last, "gamma={g}");
            last = o;
        }
        // At gamma = 65536, 9d/gamma = 0.11 => overhead ~ sqrt(0.5625+0.11)-0.75 ~ 0.07.
        let o = lr_sensitivity_overhead(65536.0, 800);
        assert!(o > 0.05 && o < 0.09, "overhead {o}");
    }

    #[test]
    fn lr_overhead_consistent_with_sensitivity() {
        let gamma = 512.0;
        let d = 100;
        let s = lr_sensitivity(gamma, d);
        let rel = s.l2 / gamma.powi(3) - 0.75;
        assert!((rel - lr_sensitivity_overhead(gamma, d)).abs() < 1e-9);
    }

    #[test]
    fn generic_dominated_by_main_term_for_large_gamma() {
        let p = Polynomial::one_dimensional(
            2,
            vec![
                Monomial::new(1.0, vec![(0, 1), (1, 1)]),
                Monomial::new(0.5, vec![(0, 1)]),
            ],
        );
        let max_f = 1.0; // |x0 x1 + 0.5 x0| <= 1 for ||x|| <= 1, roughly
        let s_small = generic_sensitivity(&p, 2f64.powi(6), 1.0, max_f);
        let s_big = generic_sensitivity(&p, 2f64.powi(16), 1.0, max_f);
        let rel_small = s_small.l2 / 2f64.powi(6 * 3) / max_f - 1.0;
        let rel_big = s_big.l2 / 2f64.powi(16 * 3) / max_f - 1.0;
        assert!(rel_big < rel_small, "{rel_big} !< {rel_small}");
        assert!(rel_big < 0.01);
    }

    #[test]
    fn estimate_max_norm_finds_scale() {
        // f(x) = x0^2 on the unit ball: max = 1.
        let p = Polynomial::one_dimensional(1, vec![Monomial::new(1.0, vec![(0, 2)])]);
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let est = estimate_max_norm(&mut rng, &p, 1.0, 500);
        assert!(est > 0.9 && est < 1.2, "estimate {est}");
    }

    #[test]
    fn magnitude_bound_grows_with_m_and_mu() {
        let s = pca_sensitivity(16.0, 1.0, 4);
        let b1 = magnitude_bound(s, 100, 1e4);
        let b2 = magnitude_bound(s, 1000, 1e4);
        let b3 = magnitude_bound(s, 100, 1e8);
        assert!(b2 > b1 && b3 > b1);
    }

    /// Pins the exact worst-case constants the privacy ledger charges
    /// (Algorithm 2's per-coordinate rounding deviation of 1, folded into
    /// Lemmas 5 and 7). Any change to these formulas silently reprices
    /// every epsilon in the ledger, so they are asserted digit-for-digit.
    #[test]
    fn ledger_sensitivity_constants_are_pinned() {
        // Lemma 5 (covariance): Delta_2 = gamma^2 c^2 + n. The `+ n` term
        // is exactly one worst-case rounding unit per output coordinate
        // touched by the replaced record's row/column.
        for (gamma, c, n) in [(18.0, 1.0, 16), (512.0, 2.0, 4), (4096.0, 0.5, 100)] {
            let s = pca_sensitivity(gamma, c, n);
            assert_eq!(s.l2, gamma * gamma * c * c + n as f64);
            // Lemma 4 packaging: Delta_1 = min(Delta_2^2, sqrt(d) Delta_2)
            // with d = n^2.
            assert_eq!(s.l1, (s.l2 * s.l2).min(n as f64 * s.l2));
        }
        // Lemma 7 (LR gradient): Delta_2 =
        // sqrt((3/4 gamma^3)^2 + 9 gamma^5 d + 36 gamma^4).
        for (gamma, d) in [(32.0, 8), (128.0, 100)] {
            let s = lr_sensitivity(gamma, d);
            let expect = ((0.75 * gamma.powi(3)).powi(2)
                + 9.0 * gamma.powi(5) * d as f64
                + 36.0 * gamma.powi(4))
            .sqrt();
            assert_eq!(s.l2, expect);
        }
    }

    /// Worst-case aggregation of Algorithm 2's deviation: a quantized
    /// record deviates from its amplified original by strictly less than
    /// `sqrt(n)` in L2 (per-coordinate deviation < 1), so its norm is
    /// strictly below `gamma c + sqrt(n)` — the constants the lemmas'
    /// sensitivity proofs charge.
    #[test]
    fn quantized_record_deviation_obeys_worst_case_aggregation() {
        use rand::Rng as _;
        use rand::SeedableRng as _;
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let gamma = 24.0;
        let c = 1.0;
        let n = 6;
        let sqrt_n = (n as f64).sqrt();
        for _ in 0..500 {
            // A record on the radius-c sphere.
            let mut x: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect();
            let norm = x.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-9);
            for v in &mut x {
                *v *= c / norm;
            }
            let q: Vec<f64> = x
                .iter()
                .map(|&v| crate::quantize::quantize_value(&mut rng, v, gamma) as f64)
                .collect();
            let dev = x
                .iter()
                .zip(&q)
                .map(|(&xi, &qi)| (qi - gamma * xi).powi(2))
                .sum::<f64>()
                .sqrt();
            assert!(dev < sqrt_n, "deviation {dev} >= sqrt(n) {sqrt_n}");
            let qnorm = q.iter().map(|v| v * v).sum::<f64>().sqrt();
            assert!(
                qnorm < gamma * c + sqrt_n,
                "norm {qnorm} >= {}",
                gamma * c + sqrt_n
            );
        }
    }
}
