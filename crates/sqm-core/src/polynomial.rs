//! Multi-dimensional polynomials over record attributes (Eq. 6 of the
//! paper).
//!
//! A [`Polynomial`] maps a record `x in R^n` to `d` outputs; each output
//! dimension `t` is a sum of [`Monomial`]s
//! `a_t[l] * prod_j x[j]^(B_t[l][j])`. Attribute `j` is owned by client `j`
//! in the VFL setting, which is why exponents are keyed by variable index.

use serde::{Deserialize, Serialize};

/// One monomial `coeff * prod_j x[j]^e_j`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Monomial {
    /// The real-valued coefficient `a_t[l]`.
    pub coeff: f64,
    /// `(variable index, exponent)` pairs; exponents are >= 1 and variable
    /// indices strictly increasing.
    pub exponents: Vec<(usize, u32)>,
}

impl Monomial {
    /// A constant term.
    pub fn constant(c: f64) -> Self {
        Monomial {
            coeff: c,
            exponents: Vec::new(),
        }
    }

    /// `coeff * x[var]`.
    pub fn linear(coeff: f64, var: usize) -> Self {
        Monomial {
            coeff,
            exponents: vec![(var, 1)],
        }
    }

    /// Build from unsorted `(var, exp)` pairs; merges duplicates, drops
    /// zero exponents.
    pub fn new(coeff: f64, mut exps: Vec<(usize, u32)>) -> Self {
        assert!(coeff.is_finite(), "coefficient must be finite");
        exps.retain(|&(_, e)| e > 0);
        exps.sort_by_key(|&(v, _)| v);
        let mut merged: Vec<(usize, u32)> = Vec::with_capacity(exps.len());
        for (v, e) in exps {
            match merged.last_mut() {
                Some((lv, le)) if *lv == v => *le += e,
                _ => merged.push((v, e)),
            }
        }
        Monomial {
            coeff,
            exponents: merged,
        }
    }

    /// Degree: total number of variable multiplications (sum of exponents).
    pub fn degree(&self) -> u32 {
        self.exponents.iter().map(|&(_, e)| e).sum()
    }

    /// Highest variable index used (None for constants).
    pub fn max_var(&self) -> Option<usize> {
        self.exponents.last().map(|&(v, _)| v)
    }

    /// Evaluate on a real-valued record.
    pub fn eval(&self, x: &[f64]) -> f64 {
        self.coeff
            * self
                .exponents
                .iter()
                .map(|&(v, e)| x[v].powi(e as i32))
                .product::<f64>()
    }

    /// Evaluate the *variable part* (without the coefficient) on an
    /// integer-valued record, in `i128`. Panics on overflow — the caller is
    /// responsible for choosing a representation with enough headroom.
    pub fn eval_vars_i128(&self, x: &[i64]) -> i128 {
        let mut acc: i128 = 1;
        for &(v, e) in &self.exponents {
            for _ in 0..e {
                acc = acc
                    .checked_mul(x[v] as i128)
                    .expect("monomial evaluation overflowed i128");
            }
        }
        acc
    }
}

/// A `d`-dimensional polynomial over `n` variables (Eq. 6).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Polynomial {
    n_vars: usize,
    /// `dims[t]` lists the monomials of output dimension `t`.
    dims: Vec<Vec<Monomial>>,
}

impl Polynomial {
    /// Build from per-dimension monomial lists; validates variable indices.
    pub fn new(n_vars: usize, dims: Vec<Vec<Monomial>>) -> Self {
        assert!(
            !dims.is_empty(),
            "polynomial needs at least one output dimension"
        );
        for (t, ms) in dims.iter().enumerate() {
            assert!(!ms.is_empty(), "dimension {t} has no monomials");
            for m in ms {
                if let Some(v) = m.max_var() {
                    assert!(
                        v < n_vars,
                        "dimension {t}: variable {v} out of range (n={n_vars})"
                    );
                }
            }
        }
        Polynomial { n_vars, dims }
    }

    /// A one-dimensional polynomial.
    pub fn one_dimensional(n_vars: usize, monomials: Vec<Monomial>) -> Self {
        Self::new(n_vars, vec![monomials])
    }

    /// The covariance polynomial `f(x) = x^T x` (`n^2` dimensions, degree 2)
    /// used by the PCA instantiation (Section V-A).
    pub fn covariance(n_vars: usize) -> Self {
        let mut dims = Vec::with_capacity(n_vars * n_vars);
        for j in 0..n_vars {
            for k in 0..n_vars {
                dims.push(vec![Monomial::new(1.0, vec![(j, 1), (k, 1)])]);
            }
        }
        Polynomial { n_vars, dims }
    }

    /// Number of variables (attributes / clients).
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// Output dimensionality `d`.
    pub fn n_dims(&self) -> usize {
        self.dims.len()
    }

    /// The monomials of output dimension `t`.
    pub fn dim(&self, t: usize) -> &[Monomial] {
        &self.dims[t]
    }

    /// Iterate over dimensions.
    pub fn dims(&self) -> impl Iterator<Item = &[Monomial]> {
        self.dims.iter().map(|v| v.as_slice())
    }

    /// Overall degree `lambda` (max over monomials of all dimensions).
    pub fn degree(&self) -> u32 {
        self.dims
            .iter()
            .flat_map(|ms| ms.iter().map(Monomial::degree))
            .max()
            .unwrap_or(0)
    }

    /// `max_t v_t` — the largest per-dimension monomial count (drives the
    /// overhead multiplicity in Lemma 4).
    pub fn max_monomials_per_dim(&self) -> usize {
        self.dims.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Evaluate `f(x)` on one record.
    pub fn eval(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n_vars, "record dimension mismatch");
        self.dims
            .iter()
            .map(|ms| ms.iter().map(|m| m.eval(x)).sum())
            .collect()
    }

    /// Evaluate `F(X) = sum_x f(x)` over rows of a record iterator.
    pub fn sum_over<'a, I: IntoIterator<Item = &'a [f64]>>(&self, records: I) -> Vec<f64> {
        let mut acc = vec![0.0; self.n_dims()];
        for x in records {
            for (a, v) in acc.iter_mut().zip(self.eval(x)) {
                *a += v;
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monomial_degree_and_eval() {
        // 1.5 * x0^3 * x2
        let m = Monomial::new(1.5, vec![(2, 1), (0, 3)]);
        assert_eq!(m.degree(), 4);
        assert_eq!(m.exponents, vec![(0, 3), (2, 1)]);
        assert_eq!(m.eval(&[2.0, 9.0, 5.0]), 1.5 * 8.0 * 5.0);
    }

    #[test]
    fn monomial_merges_duplicate_vars() {
        let m = Monomial::new(2.0, vec![(1, 1), (1, 2), (0, 0)]);
        assert_eq!(m.exponents, vec![(1, 3)]);
        assert_eq!(m.degree(), 3);
    }

    #[test]
    fn constant_monomial() {
        let m = Monomial::constant(7.0);
        assert_eq!(m.degree(), 0);
        assert_eq!(m.eval(&[1.0, 2.0]), 7.0);
        assert_eq!(m.max_var(), None);
    }

    #[test]
    fn integer_evaluation() {
        let m = Monomial::new(3.0, vec![(0, 2), (1, 1)]);
        assert_eq!(m.eval_vars_i128(&[-3, 5]), 45); // (-3)^2 * 5, no coeff
    }

    #[test]
    fn paper_example_polynomial() {
        // f(x) = x[0]^3 + 1.5 x[1] x[2] + 2 — degree 3 (Section II).
        let p = Polynomial::one_dimensional(
            3,
            vec![
                Monomial::new(1.0, vec![(0, 3)]),
                Monomial::new(1.5, vec![(1, 1), (2, 1)]),
                Monomial::constant(2.0),
            ],
        );
        assert_eq!(p.degree(), 3);
        assert_eq!(p.eval(&[2.0, 3.0, 4.0]), vec![8.0 + 18.0 + 2.0]);
    }

    #[test]
    fn covariance_polynomial() {
        let p = Polynomial::covariance(3);
        assert_eq!(p.n_dims(), 9);
        assert_eq!(p.degree(), 2);
        let x = [1.0, 2.0, 3.0];
        let out = p.eval(&x);
        // out[(j,k)] = x_j * x_k, row-major.
        for j in 0..3 {
            for k in 0..3 {
                assert_eq!(out[j * 3 + k], x[j] * x[k]);
            }
        }
    }

    #[test]
    fn sum_over_records() {
        let p = Polynomial::one_dimensional(2, vec![Monomial::new(1.0, vec![(0, 1), (1, 1)])]);
        let records: Vec<Vec<f64>> = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let total = p.sum_over(records.iter().map(|r| r.as_slice()));
        assert_eq!(total, vec![2.0 + 12.0]);
    }

    #[test]
    fn max_monomials_per_dim() {
        let p = Polynomial::new(
            2,
            vec![
                vec![Monomial::constant(1.0)],
                vec![Monomial::linear(1.0, 0), Monomial::linear(2.0, 1)],
            ],
        );
        assert_eq!(p.max_monomials_per_dim(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_variable() {
        Polynomial::one_dimensional(2, vec![Monomial::linear(1.0, 5)]);
    }

    #[test]
    #[should_panic(expected = "overflowed")]
    fn integer_eval_overflow_panics() {
        let m = Monomial::new(1.0, vec![(0, 3)]);
        m.eval_vars_i128(&[i64::MAX]);
    }
}
