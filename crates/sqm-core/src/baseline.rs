//! Algorithm 4: the local-DP baseline for VFL.
//!
//! Each client perturbs its raw column with Gaussian noise and ships it to
//! the server, which reconstructs a noisy dataset and runs *any* analysis on
//! it (post-processing). Simple and task-agnostic, but the noise needed to
//! privatize the raw data is far larger than what SQM adds to the final
//! statistic — this is the utility gap Figures 2 and 3 display.

use rand::Rng;
use sqm_accounting::analytic_gaussian::analytic_gaussian_sigma;
use sqm_linalg::Matrix;
use sqm_sampling::gaussian::sample_normal;

/// Perturb every entry of `data` with `N(0, sigma^2)` (Algorithm 4 lines
/// 1-3; simulated jointly — per-column noise is independent either way).
pub fn perturb_dataset<R: Rng + ?Sized>(rng: &mut R, data: &Matrix, sigma: f64) -> Matrix {
    assert!(sigma >= 0.0, "sigma must be non-negative");
    let mut out = data.clone();
    for v in out.as_mut_slice() {
        *v += sample_normal(rng, 0.0, sigma);
    }
    out
}

/// Calibrate Algorithm 4's noise for `(eps, delta)` server-observed DP.
///
/// Releasing the raw record (identity function) of a database whose records
/// have L2 norm at most `c` has add/remove L2 sensitivity `c`; the analytic
/// Gaussian mechanism (Lemma 8) then gives the minimal sigma.
pub fn calibrate_local_dp_sigma(eps: f64, delta: f64, c: f64) -> f64 {
    analytic_gaussian_sigma(eps, delta, c)
}

/// End-to-end local-DP release: calibrate and perturb.
pub fn local_dp_release<R: Rng + ?Sized>(
    rng: &mut R,
    data: &Matrix,
    eps: f64,
    delta: f64,
    c: f64,
) -> Matrix {
    let sigma = calibrate_local_dp_sigma(eps, delta, c);
    perturb_dataset(rng, data, sigma)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn perturbation_preserves_shape_and_scale() {
        let mut rng = StdRng::seed_from_u64(1);
        let data = Matrix::zeros(200, 50);
        let sigma = 2.0;
        let noisy = perturb_dataset(&mut rng, &data, sigma);
        assert_eq!((noisy.rows(), noisy.cols()), (200, 50));
        let var = noisy.frobenius_norm_sq() / (200.0 * 50.0);
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn zero_sigma_is_identity() {
        let mut rng = StdRng::seed_from_u64(2);
        let data = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(perturb_dataset(&mut rng, &data, 0.0), data);
    }

    #[test]
    fn calibration_shrinks_with_eps() {
        let tight = calibrate_local_dp_sigma(0.25, 1e-5, 1.0);
        let loose = calibrate_local_dp_sigma(8.0, 1e-5, 1.0);
        assert!(loose < tight / 10.0);
    }

    #[test]
    fn local_noise_dwarfs_unit_records() {
        // The crux of the baseline's weakness: at eps = 1 the per-entry
        // noise std is larger than the whole record norm (c = 1).
        let sigma = calibrate_local_dp_sigma(1.0, 1e-5, 1.0);
        assert!(sigma > 1.0, "sigma {sigma}");
    }

    #[test]
    fn release_runs_end_to_end() {
        let mut rng = StdRng::seed_from_u64(3);
        let data = Matrix::from_rows(&[vec![0.5, 0.5], vec![-0.5, 0.5]]);
        let noisy = local_dp_release(&mut rng, &data, 1.0, 1e-5, 1.0);
        assert_eq!((noisy.rows(), noisy.cols()), (2, 2));
        assert_ne!(noisy, data);
    }
}
