//! Random samplers and special functions used throughout SQM.
//!
//! * [`poisson`] — exact Poisson sampling (inversion for small means, the
//!   PTRD transformed-rejection method for large means, and a normal
//!   approximation beyond `f64` integer precision).
//! * [`skellam`] — Skellam noise `Sk(mu) = Pois(mu) - Pois(mu)`, the
//!   integer-valued DP noise at the heart of the paper (Lemma 1).
//! * [`gaussian`] — standard normal sampling (Marsaglia polar method) for the
//!   central-DP and local-DP baselines.
//! * [`discrete_gaussian`] — exact discrete Gaussian / discrete Laplace
//!   sampling (CKS 2020), the alternative integer noise of the distributed
//!   discrete Gaussian mechanism \[39\] the paper compares against.
//! * [`rounding`] — the unbiased stochastic rounding primitive of
//!   Algorithm 2.
//! * [`special`] — `erf`/`erfc`, `ln_gamma`, log-binomials and
//!   `log_sum_exp`, needed by the analytic Gaussian mechanism (Lemma 8) and
//!   subsampled-RDP accounting (Lemma 11).

pub mod discrete_gaussian;
pub mod gaussian;
pub mod poisson;
pub mod rounding;
pub mod skellam;
pub mod special;

pub use discrete_gaussian::{
    discrete_gaussian_log_pmf, discrete_laplace_log_pmf, sample_discrete_gaussian,
    sample_discrete_laplace,
};
pub use gaussian::sample_standard_normal;
pub use poisson::{poisson_log_pmf, sample_poisson};
pub use rounding::stochastic_round;
pub use skellam::{sample_skellam, sample_skellam_vec, skellam_log_pmf};
