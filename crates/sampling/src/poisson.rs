//! Poisson sampling across the full range of means SQM needs.
//!
//! Skellam noise with scale `mu = O(gamma^4)` (Lemma 5) requires Poisson
//! means up to ~`10^16`. Three regimes:
//!
//! * `mu < 10` — inversion by sequential search (exact).
//! * `10 <= mu < 2^50` — PTRD, Hörmann's transformed-rejection method with
//!   decomposition (exact up to `f64` evaluation of the acceptance test).
//! * `mu >= 2^50` — rounded normal approximation `round(N(mu, mu))`. Beyond
//!   `2^50` the relative skewness `1/sqrt(mu)` is below `3e-8` and `f64`
//!   cannot exactly represent the candidate integers anyway; the
//!   approximation error is orders of magnitude below the noise standard
//!   deviation and has no measurable effect on the DP simulation (the
//!   *accounting* never uses samples, only closed-form bounds).

use rand::Rng;

use crate::gaussian::sample_standard_normal;
use crate::special::ln_factorial;

/// Mean threshold between inversion and PTRD.
const INVERSION_MAX: f64 = 10.0;
/// Mean threshold between PTRD and the normal approximation.
const PTRD_MAX: f64 = (1u64 << 50) as f64;

/// Sample `Pois(mu)`. Panics if `mu` is negative, not finite, or so large
/// that the result would not fit an `i64` (use
/// [`crate::skellam::sample_skellam`] for huge noise scales — it samples
/// the centered difference directly and never materializes the Poisson
/// counts).
pub fn sample_poisson<R: Rng + ?Sized>(rng: &mut R, mu: f64) -> i64 {
    assert!(
        mu.is_finite() && mu >= 0.0,
        "Poisson mean must be finite and >= 0, got {mu}"
    );
    assert!(
        mu < 4.0e18,
        "Poisson mean {mu} too large for i64 counts; sample the Skellam difference directly"
    );
    if mu == 0.0 {
        0
    } else if mu < INVERSION_MAX {
        poisson_inversion(rng, mu)
    } else if mu < PTRD_MAX {
        poisson_ptrd(rng, mu)
    } else {
        let z = sample_standard_normal(rng);
        let v = mu + mu.sqrt() * z;
        v.round().max(0.0) as i64
    }
}

/// Inversion by sequential search (Knuth). Exact; O(mu) time.
fn poisson_inversion<R: Rng + ?Sized>(rng: &mut R, mu: f64) -> i64 {
    let l = (-mu).exp();
    let mut k: i64 = 0;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// PTRD: "The transformed rejection method for generating Poisson random
/// variables", W. Hörmann, 1993. Valid for `mu >= 10`.
fn poisson_ptrd<R: Rng + ?Sized>(rng: &mut R, mu: f64) -> i64 {
    let smu = mu.sqrt();
    let b = 0.931 + 2.53 * smu;
    let a = -0.059 + 0.02483 * b;
    let inv_alpha = 1.1239 + 1.1328 / (b - 3.4);
    let v_r = 0.9277 - 3.6224 / (b - 2.0);

    loop {
        let v: f64 = rng.gen();
        // Fast path: the dominating triangular region.
        if v <= 0.86 * v_r {
            let u = v / v_r - 0.43;
            let us = 0.5 - u.abs();
            return ((2.0 * a / us + b) * u + mu + 0.445).floor() as i64;
        }

        let (u, v) = if v >= v_r {
            (rng.gen::<f64>() - 0.5, v)
        } else {
            let u = v / v_r - 0.93;
            let u = 0.5f64.copysign(u) - u;
            (u, rng.gen::<f64>() * v_r)
        };

        let us = 0.5 - u.abs();
        if us < 0.013 && v > us {
            continue;
        }

        let k = ((2.0 * a / us + b) * u + mu + 0.445).floor();
        if k < 0.0 {
            continue;
        }
        let v = v * inv_alpha / (a / (us * us) + b);

        // Acceptance test: ln(v) <= ln pmf(k) = k*ln(mu) - mu - ln(k!).
        // For large k, ln(k!) uses the Stirling series (ln_factorial_f);
        // computing k*ln(mu/k) keeps the difference of large terms stable.
        let ln_pmf = if k >= 10.0 {
            (k + 0.5) * (mu / k).ln() - mu + k
                - 0.5 * mu.ln()
                - 0.5 * (2.0 * std::f64::consts::PI).ln()
                - stirling_log_correction(k)
        } else {
            k * mu.ln() - mu - ln_factorial(k as u64)
        };
        if v.ln() <= ln_pmf {
            return k as i64;
        }
    }
}

/// Exact log-pmf of `Pois(mu)`: `ln P[K = k] = k ln(mu) - mu - ln(k!)`.
///
/// The reference law the statistical audit harness tests the sampler
/// against. `mu = 0` is the point mass at 0.
pub fn poisson_log_pmf(k: u64, mu: f64) -> f64 {
    assert!(
        mu.is_finite() && mu >= 0.0,
        "Poisson mean must be finite and >= 0, got {mu}"
    );
    if mu == 0.0 {
        return if k == 0 { 0.0 } else { f64::NEG_INFINITY };
    }
    k as f64 * mu.ln() - mu - ln_factorial(k)
}

/// Stirling series correction `1/(12k) - 1/(360k^3)`.
fn stirling_log_correction(k: f64) -> f64 {
    let inv = 1.0 / k;
    (1.0 / 12.0 - inv * inv / 360.0) * inv
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_moments(mu: f64, n: usize, seed: u64) -> (f64, f64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let xs: Vec<f64> = (0..n)
            .map(|_| sample_poisson(&mut rng, mu) as f64)
            .collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        (mean, var)
    }

    #[test]
    fn zero_mean_is_zero() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            assert_eq!(sample_poisson(&mut rng, 0.0), 0);
        }
    }

    #[test]
    fn small_mean_moments() {
        let (mean, var) = sample_moments(3.5, 200_000, 1);
        assert!((mean - 3.5).abs() < 0.05, "mean {mean}");
        assert!((var - 3.5).abs() < 0.1, "var {var}");
    }

    #[test]
    fn ptrd_moments_mid() {
        let (mean, var) = sample_moments(50.0, 200_000, 2);
        assert!((mean - 50.0).abs() / 50.0 < 0.01, "mean {mean}");
        assert!((var - 50.0).abs() / 50.0 < 0.03, "var {var}");
    }

    #[test]
    fn ptrd_moments_large() {
        let (mean, var) = sample_moments(1e6, 100_000, 3);
        assert!((mean - 1e6).abs() / 1e6 < 1e-3, "mean {mean}");
        assert!((var - 1e6).abs() / 1e6 < 0.02, "var {var}");
    }

    #[test]
    fn normal_regime_moments() {
        let mu = 2f64.powi(52);
        let (mean, var) = sample_moments(mu, 20_000, 4);
        assert!((mean - mu).abs() / mu < 1e-6, "mean {mean}");
        assert!((var - mu).abs() / mu < 0.05, "var {var}");
    }

    #[test]
    fn ptrd_pmf_matches_exact_at_boundary() {
        // Chi-square style check on mu=12 against the exact pmf.
        let mu = 12.0;
        let n = 300_000usize;
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = vec![0usize; 60];
        for _ in 0..n {
            let k = sample_poisson(&mut rng, mu) as usize;
            if k < counts.len() {
                counts[k] += 1;
            }
        }
        // Compare observed frequency to pmf within 5 sigma for bins with
        // expected count >= 100.
        for (k, &c) in counts.iter().enumerate() {
            let lp = k as f64 * mu.ln() - mu - ln_factorial(k as u64);
            let p = lp.exp();
            let expect = p * n as f64;
            if expect >= 100.0 {
                let sigma = (expect * (1.0 - p)).sqrt();
                assert!(
                    ((c as f64) - expect).abs() < 5.0 * sigma,
                    "k={k}: observed {c}, expected {expect:.1} +/- {sigma:.1}"
                );
            }
        }
    }

    #[test]
    fn never_negative() {
        let mut rng = StdRng::seed_from_u64(6);
        for mu in [0.1, 1.0, 9.9, 10.0, 11.0, 1e3, 1e9] {
            for _ in 0..1000 {
                assert!(sample_poisson(&mut rng, mu) >= 0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan() {
        let mut rng = StdRng::seed_from_u64(0);
        sample_poisson(&mut rng, f64::NAN);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_negative() {
        let mut rng = StdRng::seed_from_u64(0);
        sample_poisson(&mut rng, -1.0);
    }

    #[test]
    fn log_pmf_normalizes_and_matches_point_values() {
        // P(0) = e^{-mu}; P(1) = mu e^{-mu}; the pmf sums to 1.
        for mu in [0.5, 3.0, 25.0] {
            assert!((poisson_log_pmf(0, mu) - (-mu)).abs() < 1e-12);
            assert!((poisson_log_pmf(1, mu) - (mu.ln() - mu)).abs() < 1e-12);
            let kmax = (mu + 20.0 * mu.sqrt() + 30.0) as u64;
            let total: f64 = (0..=kmax).map(|k| poisson_log_pmf(k, mu).exp()).sum();
            assert!((total - 1.0).abs() < 1e-10, "mu={mu}: total {total}");
        }
        assert_eq!(poisson_log_pmf(0, 0.0), 0.0);
        assert_eq!(poisson_log_pmf(3, 0.0), f64::NEG_INFINITY);
    }
}
