//! Gaussian sampling via the Marsaglia polar method.
//!
//! Used by the central-DP baselines (Analyze Gauss, DPSGD, Approx-Poly) and
//! the local-DP baseline (Algorithm 4). SQM itself never samples continuous
//! noise — that is the point of the paper — but the baselines it is compared
//! against do.

use rand::Rng;

/// Sample one standard normal variate (mean 0, variance 1).
pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Marsaglia polar method; ~78.5% acceptance, no trig calls.
    loop {
        let u: f64 = rng.gen::<f64>() * 2.0 - 1.0;
        let v: f64 = rng.gen::<f64>() * 2.0 - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Sample `N(mean, sigma^2)`.
pub fn sample_normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sigma: f64) -> f64 {
    assert!(sigma >= 0.0, "sigma must be non-negative");
    mean + sigma * sample_standard_normal(rng)
}

/// Fill a vector with i.i.d. `N(0, sigma^2)` noise.
pub fn sample_normal_vec<R: Rng + ?Sized>(rng: &mut R, sigma: f64, len: usize) -> Vec<f64> {
    (0..len).map(|_| sample_normal(rng, 0.0, sigma)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn moments(xs: &[f64]) -> (f64, f64) {
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let xs: Vec<f64> = (0..200_000)
            .map(|_| sample_standard_normal(&mut rng))
            .collect();
        let (mean, var) = moments(&xs);
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn scaled_normal_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let xs: Vec<f64> = (0..200_000)
            .map(|_| sample_normal(&mut rng, 3.0, 2.0))
            .collect();
        let (mean, var) = moments(&xs);
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn tail_fraction_is_plausible() {
        // P(|Z| > 1.96) ~ 0.05.
        let mut rng = StdRng::seed_from_u64(9);
        let n = 100_000;
        let tail = (0..n)
            .filter(|_| sample_standard_normal(&mut rng).abs() > 1.96)
            .count() as f64
            / n as f64;
        assert!((tail - 0.05).abs() < 0.005, "tail {tail}");
    }

    #[test]
    fn zero_sigma_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(sample_normal(&mut rng, 5.0, 0.0), 5.0);
    }

    #[test]
    fn vec_has_requested_length() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(sample_normal_vec(&mut rng, 1.0, 17).len(), 17);
    }
}
