//! Exact discrete Gaussian sampling (Canonne-Kamath-Steinke 2020).
//!
//! The discrete Gaussian `N_Z(0, sigma^2)` (probability ∝ `exp(-x^2 / (2
//! sigma^2))` on the integers) is the other integer-valued DP noise in the
//! literature — the distributed *discrete Gaussian* mechanism \[39\] is the
//! closest prior work the paper builds on. Unlike Skellam it is **not**
//! closed under summation, which is exactly why the paper prefers Skellam
//! for distributed noise generation; we implement it as a comparison
//! baseline and for the noise-choice ablation.
//!
//! Sampling is by rejection from a discrete Laplace (CKS Algorithm 3),
//! itself the difference of two geometrics — exact, no floating-point
//! distribution shaping beyond the acceptance test.

use rand::Rng;

/// Sample a geometric variate on `{0, 1, 2, ...}` with success probability
/// `p` (number of failures before the first success).
fn sample_geometric<R: Rng + ?Sized>(rng: &mut R, p: f64) -> i64 {
    assert!(p > 0.0 && p <= 1.0, "geometric p must be in (0,1], got {p}");
    if p == 1.0 {
        return 0;
    }
    // Inversion: floor(ln(U) / ln(1-p)) is exact in distribution.
    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    (u.ln() / (1.0 - p).ln()).floor() as i64
}

/// Sample a discrete Laplace with scale `t`: `P(x) ∝ exp(-|x|/t)` on the
/// integers.
pub fn sample_discrete_laplace<R: Rng + ?Sized>(rng: &mut R, t: f64) -> i64 {
    assert!(t > 0.0, "discrete Laplace scale must be positive");
    let p = 1.0 - (-1.0 / t).exp();
    sample_geometric(rng, p) - sample_geometric(rng, p)
}

/// Sample a discrete Gaussian `N_Z(0, sigma^2)` by rejection from a
/// discrete Laplace (CKS 2020, Algorithm 3 variant).
pub fn sample_discrete_gaussian<R: Rng + ?Sized>(rng: &mut R, sigma: f64) -> i64 {
    assert!(
        sigma > 0.0 && sigma.is_finite(),
        "sigma must be positive and finite"
    );
    let t = sigma.floor() + 1.0;
    let sigma_sq = sigma * sigma;
    loop {
        let y = sample_discrete_laplace(rng, t);
        let shift = (y.abs() as f64 - sigma_sq / t).powi(2);
        let accept_ln = -shift / (2.0 * sigma_sq);
        if rng.gen::<f64>() < accept_ln.exp() {
            return y;
        }
    }
}

/// Exact log-pmf of the discrete Laplace with scale `t`:
/// `P[K = k] = (1 - q) / (1 + q) * q^{|k|}` with `q = e^{-1/t}`.
pub fn discrete_laplace_log_pmf(k: i64, t: f64) -> f64 {
    assert!(t > 0.0 && t.is_finite(), "scale must be positive, got {t}");
    let q = (-1.0 / t).exp();
    ((1.0 - q) / (1.0 + q)).ln() - k.unsigned_abs() as f64 / t
}

/// Exact log-pmf of the discrete Gaussian `N_Z(0, sigma^2)`:
/// `P[K = k] = e^{-k^2 / (2 sigma^2)} / Z` with
/// `Z = sum_j e^{-j^2 / (2 sigma^2)}`.
///
/// The normalizer sum is truncated when terms drop below `1e-18 * Z`, far
/// below `f64` round-off. The reference law the statistical audit harness
/// tests [`sample_discrete_gaussian`] against.
pub fn discrete_gaussian_log_pmf(k: i64, sigma: f64) -> f64 {
    assert!(
        sigma > 0.0 && sigma.is_finite(),
        "sigma must be positive and finite"
    );
    let two_var = 2.0 * sigma * sigma;
    let mut z = 1.0f64;
    let mut j = 1.0f64;
    loop {
        let term = (-j * j / two_var).exp();
        if term < 1e-18 {
            break;
        }
        z += 2.0 * term;
        j += 1.0;
    }
    -(k as f64) * (k as f64) / two_var - z.ln()
}

/// Sample a vector of i.i.d. discrete Gaussians.
pub fn sample_discrete_gaussian_vec<R: Rng + ?Sized>(
    rng: &mut R,
    sigma: f64,
    len: usize,
) -> Vec<i64> {
    (0..len)
        .map(|_| sample_discrete_gaussian(rng, sigma))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn moments(xs: &[i64]) -> (f64, f64) {
        let n = xs.len() as f64;
        let mean = xs.iter().map(|&x| x as f64).sum::<f64>() / n;
        let var = xs.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn discrete_laplace_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = 3.0;
        let xs: Vec<i64> = (0..200_000)
            .map(|_| sample_discrete_laplace(&mut rng, t))
            .collect();
        let (mean, var) = moments(&xs);
        // Var = 2 e^{-1/t} / (1 - e^{-1/t})^2.
        let e = (-1.0f64 / t).exp();
        let expect = 2.0 * e / (1.0 - e).powi(2);
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!(
            (var - expect).abs() / expect < 0.03,
            "var {var} expect {expect}"
        );
    }

    #[test]
    fn discrete_gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(2);
        for sigma in [1.0, 4.0, 20.0] {
            let xs: Vec<i64> = (0..100_000)
                .map(|_| sample_discrete_gaussian(&mut rng, sigma))
                .collect();
            let (mean, var) = moments(&xs);
            // For sigma >~ 1 the discrete Gaussian variance is within ~1% of
            // sigma^2.
            assert!(mean.abs() < 0.05 * sigma, "sigma={sigma}: mean {mean}");
            assert!(
                (var - sigma * sigma).abs() / (sigma * sigma) < 0.05,
                "sigma={sigma}: var {var}"
            );
        }
    }

    #[test]
    fn discrete_gaussian_pmf_shape() {
        // P(0)/P(1) should match exp(1/(2 sigma^2)).
        let mut rng = StdRng::seed_from_u64(3);
        let sigma = 2.0;
        let n = 300_000;
        let mut c0 = 0usize;
        let mut c1 = 0usize;
        for _ in 0..n {
            match sample_discrete_gaussian(&mut rng, sigma) {
                0 => c0 += 1,
                1 => c1 += 1,
                _ => {}
            }
        }
        let ratio = c0 as f64 / c1 as f64;
        let expect = (1.0f64 / (2.0 * sigma * sigma)).exp();
        assert!(
            (ratio - expect).abs() / expect < 0.05,
            "ratio {ratio} expect {expect}"
        );
    }

    #[test]
    fn symmetric() {
        let mut rng = StdRng::seed_from_u64(4);
        let xs: Vec<i64> = (0..100_000)
            .map(|_| sample_discrete_gaussian(&mut rng, 3.0))
            .collect();
        let pos = xs.iter().filter(|&&x| x > 0).count() as f64;
        let neg = xs.iter().filter(|&&x| x < 0).count() as f64;
        assert!((pos - neg).abs() / (pos + neg) < 0.02);
    }

    #[test]
    fn vec_length() {
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(sample_discrete_gaussian_vec(&mut rng, 2.0, 13).len(), 13);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_sigma() {
        let mut rng = StdRng::seed_from_u64(0);
        sample_discrete_gaussian(&mut rng, 0.0);
    }

    #[test]
    fn log_pmfs_normalize() {
        for sigma in [0.8, 2.0, 10.0] {
            let kmax = (20.0 * sigma + 20.0) as i64;
            let total: f64 = (-kmax..=kmax)
                .map(|k| discrete_gaussian_log_pmf(k, sigma).exp())
                .sum();
            assert!((total - 1.0).abs() < 1e-12, "sigma={sigma}: {total}");
        }
        for t in [0.7, 3.0, 12.0] {
            let kmax = (40.0 * t + 20.0) as i64;
            let total: f64 = (-kmax..=kmax)
                .map(|k| discrete_laplace_log_pmf(k, t).exp())
                .sum();
            assert!((total - 1.0).abs() < 1e-12, "t={t}: {total}");
        }
    }

    #[test]
    fn log_pmf_ratios_match_definitions() {
        // Discrete Gaussian: P(0)/P(k) = exp(k^2 / (2 sigma^2)).
        let sigma = 3.0;
        for k in [1i64, 2, 5] {
            let ratio = discrete_gaussian_log_pmf(0, sigma) - discrete_gaussian_log_pmf(k, sigma);
            let expect = (k * k) as f64 / (2.0 * sigma * sigma);
            assert!((ratio - expect).abs() < 1e-12);
        }
        // Discrete Laplace: P(k)/P(k+1) = e^{1/t} for k >= 0.
        let t = 2.5;
        let ratio = discrete_laplace_log_pmf(1, t) - discrete_laplace_log_pmf(2, t);
        assert!((ratio - 1.0 / t).abs() < 1e-12);
    }
}
