//! Skellam noise: the integer-valued DP noise of the paper.
//!
//! `Z ~ Sk(mu)` is the difference of two independent `Pois(mu)` variates
//! (Section II of the paper). Key properties SQM relies on:
//!
//! * **Integer-valued** — compatible with MPC over finite fields, no
//!   floating-point privacy leaks (Mironov's attack).
//! * **Closed under summation** — `Sk(a) + Sk(b) = Sk(a+b)`, so `n` clients
//!   each sampling `Sk(mu/n)` produce an aggregate `Sk(mu)` without any
//!   party knowing the total noise.
//! * **Mean 0, variance `2*mu`** — calibrated against the sensitivity by
//!   Lemma 1's RDP bound (implemented in `sqm-accounting`).

use rand::Rng;

use crate::gaussian::sample_standard_normal;
use crate::poisson::sample_poisson;

/// Above this `mu`, `Sk(mu)` is sampled as its centered normal limit
/// `round(N(0, 2 mu))`. The Poisson counts themselves would exceed `f64`
/// integer precision (and `i64`) long before this matters statistically:
/// at `mu = 2^49` the Skellam's total-variation distance to the rounded
/// normal is far below `2^-20`.
const DIRECT_DIFFERENCE_MAX: f64 = (1u64 << 49) as f64;

/// Sample one `Sk(mu)` variate. Panics if `2 mu` is so large that the
/// *difference* would overflow `i64` (`mu > ~4e36`), far beyond any
/// calibrated noise scale.
pub fn sample_skellam<R: Rng + ?Sized>(rng: &mut R, mu: f64) -> i64 {
    assert!(
        mu.is_finite() && mu >= 0.0,
        "Skellam parameter must be finite and >= 0, got {mu}"
    );
    if mu < DIRECT_DIFFERENCE_MAX {
        sample_poisson(rng, mu) - sample_poisson(rng, mu)
    } else {
        let std = (2.0 * mu).sqrt();
        assert!(std < 4.0e18, "Skellam scale {mu} overflows i64");
        (std * sample_standard_normal(rng)).round() as i64
    }
}

/// Sample a vector of `len` i.i.d. `Sk(mu)` variates.
///
/// ```
/// use rand::SeedableRng;
/// use sqm_sampling::skellam::sample_skellam_vec;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let noise = sample_skellam_vec(&mut rng, 50.0, 1000);
/// let mean: f64 = noise.iter().map(|&z| z as f64).sum::<f64>() / 1000.0;
/// assert!(mean.abs() < 2.0); // mean 0, variance 2*mu = 100
/// ```
pub fn sample_skellam_vec<R: Rng + ?Sized>(rng: &mut R, mu: f64, len: usize) -> Vec<i64> {
    (0..len).map(|_| sample_skellam(rng, mu)).collect()
}

/// The standard deviation of `Sk(mu)`: `sqrt(2*mu)`.
pub fn skellam_std(mu: f64) -> f64 {
    (2.0 * mu).sqrt()
}

/// Exact log-pmf of `Sk(mu)`:
/// `P[K = k] = e^{-2 mu} I_{|k|}(2 mu)`, evaluated as the convolution sum
/// `sum_j Pois(j + |k|; mu) * Pois(j; mu)` in log space.
///
/// The summation window is centered on the dominating term and padded by
/// many standard deviations, so the truncation error is far below `f64`
/// round-off for every `mu <= 1e8` (asserted; the audit suites stay well
/// under that). The reference law the statistical audit harness tests
/// [`sample_skellam`] against.
pub fn skellam_log_pmf(k: i64, mu: f64) -> f64 {
    assert!(
        mu.is_finite() && mu >= 0.0,
        "Skellam parameter must be finite and >= 0, got {mu}"
    );
    assert!(
        mu <= 1e8,
        "exact Skellam pmf evaluation supports mu <= 1e8, got {mu}"
    );
    if mu == 0.0 {
        return if k == 0 { 0.0 } else { f64::NEG_INFINITY };
    }
    let a = k.unsigned_abs();
    // Term j: -2 mu + (2j + a) ln(mu) - ln(j!) - ln((j+a)!), maximized near
    // j* = (-a + sqrt(a^2 + 4 mu^2)) / 2 (where the term ratio crosses 1).
    let af = a as f64;
    let j_star = 0.5 * (-af + (af * af + 4.0 * mu * mu).sqrt());
    let width = 12.0 * (j_star + 1.0).sqrt() + 40.0;
    let j_lo = (j_star - width).max(0.0) as u64;
    let j_hi = (j_star + width) as u64;
    let ln_mu = mu.ln();
    let terms: Vec<f64> = (j_lo..=j_hi)
        .map(|j| {
            (2 * j + a) as f64 * ln_mu
                - 2.0 * mu
                - crate::special::ln_factorial(j)
                - crate::special::ln_factorial(j + a)
        })
        .collect();
    crate::special::log_sum_exp(&terms)
}

/// A symmetric `n x n` matrix of Skellam noise: entries on and above the
/// diagonal are i.i.d. `Sk(mu)`, mirrored below. Used to perturb covariance
/// matrices for PCA (the matrix must stay symmetric so that eigenvectors are
/// real; see Lemma 13's construction of the noise matrix `N`).
pub fn sample_skellam_symmetric<R: Rng + ?Sized>(rng: &mut R, mu: f64, n: usize) -> Vec<i64> {
    let mut m = vec![0i64; n * n];
    for i in 0..n {
        for j in i..n {
            let z = sample_skellam(rng, mu);
            m[i * n + j] = z;
            m[j * n + i] = z;
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn moments(xs: &[i64]) -> (f64, f64) {
        let n = xs.len() as f64;
        let mean = xs.iter().map(|&x| x as f64).sum::<f64>() / n;
        let var = xs.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn moments_match_theory() {
        let mut rng = StdRng::seed_from_u64(11);
        let mu = 20.0;
        let xs = sample_skellam_vec(&mut rng, mu, 200_000);
        let (mean, var) = moments(&xs);
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 2.0 * mu).abs() / (2.0 * mu) < 0.03, "var {var}");
    }

    #[test]
    fn symmetric_about_zero() {
        let mut rng = StdRng::seed_from_u64(12);
        let xs = sample_skellam_vec(&mut rng, 5.0, 100_000);
        let pos = xs.iter().filter(|&&x| x > 0).count() as f64;
        let neg = xs.iter().filter(|&&x| x < 0).count() as f64;
        assert!((pos - neg).abs() / (pos + neg) < 0.02);
    }

    #[test]
    fn closure_under_summation() {
        // Sum of n Sk(mu/n) has the same first two moments as Sk(mu);
        // (the distributions are identical by the convolution property of
        // Poisson differences — we verify moments and tail mass).
        let mut rng = StdRng::seed_from_u64(13);
        let mu = 30.0;
        let n_clients = 10;
        let agg: Vec<i64> = (0..100_000)
            .map(|_| {
                (0..n_clients)
                    .map(|_| sample_skellam(&mut rng, mu / n_clients as f64))
                    .sum()
            })
            .collect();
        let direct = sample_skellam_vec(&mut rng, mu, 100_000);
        let (m1, v1) = moments(&agg);
        let (m2, v2) = moments(&direct);
        assert!((m1 - m2).abs() < 0.15, "means {m1} vs {m2}");
        assert!((v1 - v2).abs() / v2 < 0.05, "vars {v1} vs {v2}");
    }

    #[test]
    fn skellam_std_formula() {
        assert_eq!(skellam_std(0.0), 0.0);
        assert!((skellam_std(8.0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn symmetric_matrix_is_symmetric() {
        let mut rng = StdRng::seed_from_u64(14);
        let n = 9;
        let m = sample_skellam_symmetric(&mut rng, 7.0, n);
        for i in 0..n {
            for j in 0..n {
                assert_eq!(m[i * n + j], m[j * n + i]);
            }
        }
        // Not all zero (mu is large enough that this would be astronomically
        // unlikely).
        assert!(m.iter().any(|&x| x != 0));
    }

    #[test]
    fn huge_mu_regression_no_silent_saturation() {
        // mu ~ 1e22 once silently saturated the Poisson counts to i64::MAX
        // and returned zero noise; the direct-difference path must produce
        // noise with the correct variance.
        let mut rng = StdRng::seed_from_u64(99);
        let mu = 3.9e22;
        let xs: Vec<i64> = (0..20_000).map(|_| sample_skellam(&mut rng, mu)).collect();
        assert!(xs.iter().any(|&x| x != 0), "noise silently vanished");
        let (mean, var) = moments(&xs);
        let expect = 2.0 * mu;
        assert!(mean.abs() < 4.0 * (expect / 20_000.0).sqrt(), "mean {mean}");
        assert!((var - expect).abs() / expect < 0.05, "var {var}");
    }

    #[test]
    fn zero_mu_is_zero_noise() {
        let mut rng = StdRng::seed_from_u64(15);
        for _ in 0..100 {
            assert_eq!(sample_skellam(&mut rng, 0.0), 0);
        }
    }

    #[test]
    fn log_pmf_is_symmetric_and_normalizes() {
        for mu in [0.3, 2.0, 40.0, 400.0] {
            // Symmetry: Sk(mu) = Pois - Pois of equal means.
            for k in [0i64, 1, 3, 17] {
                let p = skellam_log_pmf(k, mu);
                let m = skellam_log_pmf(-k, mu);
                assert!((p - m).abs() < 1e-12, "mu={mu} k={k}: {p} vs {m}");
            }
            let kmax = (20.0 * (2.0 * mu).sqrt() + 40.0) as i64;
            let total: f64 = (-kmax..=kmax).map(|k| skellam_log_pmf(k, mu).exp()).sum();
            assert!((total - 1.0).abs() < 1e-9, "mu={mu}: total {total}");
        }
    }

    #[test]
    fn log_pmf_matches_direct_convolution() {
        // Brute-force convolution of two Poisson pmfs at small mu.
        let mu = 4.0;
        for k in -6i64..=6 {
            let mut acc = 0.0f64;
            for j in 0..200u64 {
                let jk = j as i64 + k;
                if jk < 0 {
                    continue;
                }
                acc += (crate::poisson::poisson_log_pmf(jk as u64, mu)
                    + crate::poisson::poisson_log_pmf(j, mu))
                .exp();
            }
            let exact = skellam_log_pmf(k, mu).exp();
            assert!(
                (acc - exact).abs() / exact < 1e-10,
                "k={k}: {acc} vs {exact}"
            );
        }
    }

    #[test]
    fn log_pmf_zero_mu_is_point_mass() {
        assert_eq!(skellam_log_pmf(0, 0.0), 0.0);
        assert_eq!(skellam_log_pmf(2, 0.0), f64::NEG_INFINITY);
    }
}
