//! Special functions: `erf`/`erfc`, `ln_gamma`, log-binomial coefficients,
//! and numerically stable `log_sum_exp`.
//!
//! These are implemented in-repo (no external math crates) with accuracy
//! sufficient for DP accounting: `erfc` has relative error below `1.2e-7`
//! (Numerical Recipes Chebyshev fit), `ln_gamma` uses the Lanczos
//! approximation with `g = 7` (absolute error below `1e-13`).

/// `ln(sqrt(2*pi))`.
pub const LN_SQRT_2PI: f64 = 0.918_938_533_204_672_8;

/// Complementary error function `erfc(x) = 1 - erf(x)`.
///
/// Uses the Chebyshev-fit rational approximation of Numerical Recipes
/// (fractional error everywhere below `1.2e-7`), which is accurate in the
/// deep tail because the error is *relative*.
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 2.0 / (2.0 + z);
    let ty = 4.0 * t - 2.0;
    // Chebyshev coefficients (Numerical Recipes, 3rd ed., erfc).
    const COF: [f64; 28] = [
        -1.3026537197817094,
        6.419_697_923_564_902e-1,
        1.9476473204185836e-2,
        -9.561_514_786_808_63e-3,
        -9.46595344482036e-4,
        3.66839497852761e-4,
        4.2523324806907e-5,
        -2.0278578112534e-5,
        -1.624290004647e-6,
        1.303655835580e-6,
        1.5626441722e-8,
        -8.5238095915e-8,
        6.529054439e-9,
        5.059343495e-9,
        -9.91364156e-10,
        -2.27365122e-10,
        9.6467911e-11,
        2.394038e-12,
        -6.886027e-12,
        8.94487e-13,
        3.13092e-13,
        -1.12708e-13,
        3.81e-16,
        7.106e-15,
        -1.523e-15,
        -9.4e-17,
        1.21e-16,
        -2.8e-17,
    ];
    let mut d = 0.0f64;
    let mut dd = 0.0f64;
    for &c in COF.iter().skip(1).rev() {
        let tmp = d;
        d = ty * d - dd + c;
        dd = tmp;
    }
    let ans = t * (-z * z + 0.5 * (COF[0] + ty * d) - dd).exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Error function `erf(x)`.
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// Standard normal cumulative distribution function.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Natural log of the gamma function, Lanczos approximation (`g = 7`).
///
/// Valid for `x > 0`.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    LN_SQRT_2PI + (x + 0.5) * t.ln() - t + a.ln()
}

/// `ln(n!)` with a cached table for small `n`.
pub fn ln_factorial(n: u64) -> f64 {
    const TABLE_LEN: usize = 128;
    static TABLE: std::sync::OnceLock<[f64; TABLE_LEN]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0.0; TABLE_LEN];
        let mut acc = 0.0f64;
        for (i, slot) in t.iter_mut().enumerate() {
            if i > 0 {
                acc += (i as f64).ln();
            }
            *slot = acc;
        }
        t
    });
    if (n as usize) < TABLE_LEN {
        table[n as usize]
    } else {
        ln_gamma(n as f64 + 1.0)
    }
}

/// `ln(C(n, k))` — log binomial coefficient.
pub fn ln_binomial(n: u64, k: u64) -> f64 {
    assert!(k <= n, "ln_binomial: k={k} > n={n}");
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Regularized lower incomplete gamma function `P(s, x)`.
///
/// `P(s, x) = gamma(s, x) / Gamma(s)`, computed by the power series for
/// `x < s + 1` and via the continued fraction for `Q = 1 - P` otherwise
/// (Numerical Recipes `gammp`/`gammq`). Relative error is below `1e-10`
/// across the range the audit harness uses (chi-square tail probabilities
/// with up to a few hundred degrees of freedom).
pub fn regularized_gamma_p(s: f64, x: f64) -> f64 {
    assert!(s > 0.0 && s.is_finite(), "shape must be positive, got {s}");
    assert!(x >= 0.0, "argument must be non-negative, got {x}");
    if x == 0.0 {
        0.0
    } else if x < s + 1.0 {
        lower_gamma_series(s, x)
    } else {
        1.0 - upper_gamma_cf(s, x)
    }
}

/// Regularized upper incomplete gamma function `Q(s, x) = 1 - P(s, x)`.
pub fn regularized_gamma_q(s: f64, x: f64) -> f64 {
    assert!(s > 0.0 && s.is_finite(), "shape must be positive, got {s}");
    assert!(x >= 0.0, "argument must be non-negative, got {x}");
    if x == 0.0 {
        1.0
    } else if x < s + 1.0 {
        1.0 - lower_gamma_series(s, x)
    } else {
        upper_gamma_cf(s, x)
    }
}

/// Power series for `P(s, x)`, convergent (and used) for `x < s + 1`.
fn lower_gamma_series(s: f64, x: f64) -> f64 {
    let mut term = 1.0 / s;
    let mut sum = term;
    let mut a = s;
    for _ in 0..500 {
        a += 1.0;
        term *= x / a;
        sum += term;
        if term.abs() < sum.abs() * 1e-16 {
            break;
        }
    }
    (sum.ln() + s * x.ln() - x - ln_gamma(s)).exp()
}

/// Modified Lentz continued fraction for `Q(s, x)`, used for `x >= s + 1`.
fn upper_gamma_cf(s: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - s;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - s);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < 1e-16 {
            break;
        }
    }
    (s * x.ln() - x - ln_gamma(s)).exp() * h
}

/// Survival function of the chi-square distribution with `df` degrees of
/// freedom: `P[X > x]` for `X ~ chi^2(df)`.
pub fn chi_square_sf(x: f64, df: f64) -> f64 {
    assert!(df > 0.0, "degrees of freedom must be positive, got {df}");
    if x <= 0.0 {
        return 1.0;
    }
    regularized_gamma_q(df / 2.0, x / 2.0)
}

/// Survival function of the Kolmogorov distribution,
/// `Q_KS(t) = 2 sum_{j>=1} (-1)^(j-1) exp(-2 j^2 t^2)`.
///
/// `P[sqrt(n) * D_n > t] -> Q_KS(t)` for the empirical-CDF sup-distance
/// `D_n` of a *continuous* law; for discrete laws the same threshold is
/// strictly conservative (true p-values are smaller), which is the safe
/// direction for a correctness gate.
pub fn kolmogorov_sf(t: f64) -> f64 {
    assert!(t >= 0.0, "KS statistic must be non-negative, got {t}");
    if t < 1e-9 {
        return 1.0;
    }
    let mut sum = 0.0f64;
    for j in 1..200u32 {
        let term = (-2.0 * (j as f64).powi(2) * t * t).exp();
        if term < 1e-18 {
            break;
        }
        sum += if j % 2 == 1 { term } else { -term };
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

/// Numerically stable `ln(sum_i exp(xs[i]))`.
///
/// Returns `f64::NEG_INFINITY` for an empty slice.
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    let m = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if m == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    let s: f64 = xs.iter().map(|&x| (x - m).exp()).sum();
    m + s.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, rel: f64) {
        let scale = a.abs().max(b.abs()).max(1e-300);
        assert!(
            (a - b).abs() / scale < rel,
            "expected {a} ~ {b} (rel {rel})"
        );
    }

    #[test]
    fn erfc_reference_values() {
        // Reference values from standard tables / mpmath.
        close(erfc(0.0), 1.0, 1e-12);
        close(erfc(0.5), 0.4795001221869535, 1e-6);
        close(erfc(1.0), 0.15729920705028513, 1e-6);
        close(erfc(2.0), 0.004677734981063127, 1e-6);
        close(erfc(3.0), 2.209_049_699_858_544e-5, 1e-6);
        close(erfc(5.0), 1.5374597944280347e-12, 1e-6);
        close(erfc(-1.0), 1.8427007929497148, 1e-6);
    }

    #[test]
    fn erf_symmetry() {
        for x in [0.1, 0.7, 1.3, 2.9] {
            close(erf(-x), -erf(x), 1e-6);
        }
    }

    #[test]
    fn normal_cdf_values() {
        close(normal_cdf(0.0), 0.5, 1e-12);
        close(normal_cdf(1.959963984540054), 0.975, 1e-6);
        close(normal_cdf(-1.2815515655446004), 0.1, 1e-6);
    }

    #[test]
    fn ln_gamma_reference_values() {
        close(ln_gamma(1.0), 0.0, 1e-10);
        close(ln_gamma(2.0), 0.0, 1e-10);
        close(ln_gamma(0.5), 0.5723649429247001, 1e-10); // ln(sqrt(pi))
        close(ln_gamma(10.0), 12.801827480081469, 1e-10); // ln(9!)
                                                          // Cross-checked via ln_gamma(0.5) + sum_{k=0}^{99} ln(k + 0.5).
        close(ln_gamma(100.5), 361.4355404678, 1e-10);
    }

    #[test]
    fn ln_factorial_matches_products() {
        close(ln_factorial(0), 0.0, 1e-12);
        close(ln_factorial(5), (120f64).ln(), 1e-12);
        close(ln_factorial(20), 42.335616460753485, 1e-10);
        close(ln_factorial(200), ln_gamma(201.0), 1e-12);
    }

    #[test]
    fn ln_binomial_values() {
        close(ln_binomial(10, 3), (120f64).ln(), 1e-10);
        close(ln_binomial(5, 0), 0.0, 1e-12);
        close(ln_binomial(5, 5), 0.0, 1e-12);
        close(ln_binomial(52, 5), (2_598_960f64).ln(), 1e-10);
    }

    #[test]
    fn log_sum_exp_stability() {
        close(log_sum_exp(&[0.0, 0.0]), (2f64).ln(), 1e-12);
        // Huge offsets must not overflow.
        close(log_sum_exp(&[1000.0, 1000.0]), 1000.0 + (2f64).ln(), 1e-12);
        close(log_sum_exp(&[-1e9, 0.0]), 0.0, 1e-12);
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn regularized_gamma_reference_values() {
        // P(1, x) = 1 - e^{-x} (exponential CDF).
        for x in [0.1, 1.0, 3.0, 10.0] {
            close(regularized_gamma_p(1.0, x), 1.0 - (-x).exp(), 1e-12);
            close(regularized_gamma_q(1.0, x), (-x).exp(), 1e-10);
        }
        // P(1/2, x) = erf(sqrt(x)).
        for x in [0.2, 1.0, 4.0] {
            close(regularized_gamma_p(0.5, x), erf(x.sqrt()), 1e-6);
        }
        // Complementarity across both branches.
        for (s, x) in [(3.0, 1.0), (3.0, 10.0), (50.0, 40.0), (50.0, 80.0)] {
            close(
                regularized_gamma_p(s, x) + regularized_gamma_q(s, x),
                1.0,
                1e-12,
            );
        }
        assert_eq!(regularized_gamma_p(2.0, 0.0), 0.0);
        assert_eq!(regularized_gamma_q(2.0, 0.0), 1.0);
    }

    #[test]
    fn chi_square_sf_reference_values() {
        // chi^2(1): SF(x) = 2 * (1 - Phi(sqrt(x))).
        close(chi_square_sf(3.841458820694124, 1.0), 0.05, 1e-6);
        // chi^2(2) is Exp(1/2): SF(x) = e^{-x/2}.
        close(chi_square_sf(4.0, 2.0), (-2.0f64).exp(), 1e-10);
        // Standard table value: chi^2_{0.95, 10} = 18.307.
        close(chi_square_sf(18.307038053275146, 10.0), 0.05, 1e-6);
        assert_eq!(chi_square_sf(0.0, 5.0), 1.0);
        assert_eq!(chi_square_sf(-1.0, 5.0), 1.0);
    }

    #[test]
    fn chi_square_sf_is_monotone_decreasing() {
        let mut last = 1.0;
        for i in 1..100 {
            let p = chi_square_sf(i as f64 * 0.5, 7.0);
            assert!(p <= last + 1e-15, "sf not monotone at {i}");
            last = p;
        }
    }

    #[test]
    fn kolmogorov_sf_reference_values() {
        // Standard asymptotic critical values: Q(1.358) ~ 0.05,
        // Q(1.2238) ~ 0.10, Q(1.6276) ~ 0.01.
        close(kolmogorov_sf(1.3581015157406195), 0.05, 1e-4);
        close(kolmogorov_sf(1.2238478702170825), 0.10, 1e-4);
        close(kolmogorov_sf(1.6276236115189503), 0.01, 1e-4);
        assert_eq!(kolmogorov_sf(0.0), 1.0);
        assert!(kolmogorov_sf(5.0) < 1e-10);
    }
}
