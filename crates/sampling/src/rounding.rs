//! Unbiased stochastic rounding — the primitive inside Algorithm 2.
//!
//! Given a real `x`, flip a coin with heads probability `x - floor(x)`;
//! on heads round up, otherwise round down. The result is an integer whose
//! expectation is exactly `x`, and whose deviation from `x` is strictly less
//! than 1. The paper's sensitivity analysis (Lemmas 2-4) charges exactly this
//! per-coordinate deviation of at most 1.

use rand::Rng;

/// Stochastically round `x` to one of its two nearest integers, unbiased.
///
/// Panics if `x` is not finite or exceeds the exactly-representable integer
/// range of `f64` (`|x| > 2^53`), where "nearest integer" is ill-defined.
pub fn stochastic_round<R: Rng + ?Sized>(rng: &mut R, x: f64) -> i64 {
    assert!(x.is_finite(), "cannot round non-finite value {x}");
    assert!(
        x.abs() <= (1u64 << 53) as f64,
        "|x| = {x} exceeds exact f64 integer range"
    );
    let floor = x.floor();
    let frac = x - floor;
    let up = frac > 0.0 && rng.gen::<f64>() < frac;
    floor as i64 + i64::from(up)
}

/// Stochastically round each entry of a slice (Algorithm 2 without the
/// scaling step).
pub fn stochastic_round_vec<R: Rng + ?Sized>(rng: &mut R, xs: &[f64]) -> Vec<i64> {
    xs.iter().map(|&x| stochastic_round(rng, x)).collect()
}

/// Deterministic nearest rounding — the *biased* alternative used by the
/// rounding-strategy ablation (DESIGN.md decision 2).
pub fn nearest_round(x: f64) -> i64 {
    assert!(x.is_finite(), "cannot round non-finite value {x}");
    x.round() as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn integers_round_to_themselves() {
        let mut rng = StdRng::seed_from_u64(0);
        for v in [-5.0, 0.0, 3.0, 1e9] {
            for _ in 0..10 {
                assert_eq!(stochastic_round(&mut rng, v), v as i64);
            }
        }
    }

    #[test]
    fn result_is_floor_or_ceil() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rand::Rng::gen::<f64>(&mut rng) * 200.0 - 100.0;
            let r = stochastic_round(&mut rng, x);
            assert!(r == x.floor() as i64 || r == x.ceil() as i64, "x={x} r={r}");
        }
    }

    #[test]
    fn unbiasedness() {
        let mut rng = StdRng::seed_from_u64(2);
        for &x in &[0.25, -1.7, 3.5, 0.99, -0.01] {
            let n = 200_000;
            let sum: i64 = (0..n).map(|_| stochastic_round(&mut rng, x)).sum();
            let mean = sum as f64 / n as f64;
            assert!((mean - x).abs() < 0.01, "x={x} mean={mean}");
        }
    }

    #[test]
    fn negative_fractions() {
        // -1.25 must round to -2 or -1 (floor/ceil), with P(-1) = 0.75.
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let ups = (0..n)
            .filter(|_| stochastic_round(&mut rng, -1.25) == -1)
            .count() as f64;
        assert!((ups / n as f64 - 0.75).abs() < 0.01);
    }

    #[test]
    fn nearest_round_is_deterministic_and_biased_sample() {
        assert_eq!(nearest_round(0.5), 1);
        assert_eq!(nearest_round(1.4), 1);
        assert_eq!(nearest_round(-1.6), -2);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn rejects_infinity() {
        let mut rng = StdRng::seed_from_u64(0);
        stochastic_round(&mut rng, f64::INFINITY);
    }

    proptest! {
        #[test]
        fn prop_deviation_below_one(x in -1e12f64..1e12f64) {
            let mut rng = StdRng::seed_from_u64(7);
            let r = stochastic_round(&mut rng, x) as f64;
            prop_assert!((r - x).abs() < 1.0);
        }

        #[test]
        fn prop_vec_matches_scalars_in_length(xs in proptest::collection::vec(-100.0f64..100.0, 0..50)) {
            let mut rng = StdRng::seed_from_u64(8);
            prop_assert_eq!(stochastic_round_vec(&mut rng, &xs).len(), xs.len());
        }
    }
}
