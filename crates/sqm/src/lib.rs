//! # SQM: the Skellam Quantization Mechanism for Vertical Federated Learning
//!
//! A full implementation of *"Towards Learning on Vertically Partitioned
//! Data with Distributed Differential Privacy"* (ICDE 2025): distributed-DP
//! evaluation of polynomial functions over vertically partitioned data with
//! **no trusted party**, achieving privacy-utility trade-offs comparable to
//! centralized DP.
//!
//! ## How it works
//!
//! 1. Each client **quantizes** its private columns: scale by `gamma`,
//!    stochastically round to integers ([`core::quantize`]).
//! 2. Each client **locally samples** a Skellam noise share `Sk(mu/n)`
//!    ([`sampling::skellam`]); the aggregate is exactly `Sk(mu)`.
//! 3. The clients run **BGW MPC** ([`mpc`]) to evaluate the (coefficient-
//!    quantized) polynomial on the quantized data, folding the aggregate
//!    noise into the result before anything is opened ([`vfl`]).
//! 4. The untrusted server **post-processes**: divide by
//!    `gamma^(lambda+1)`.
//!
//! Privacy is accounted in Rényi DP — Skellam RDP (Lemma 1), subsampling
//! amplification (Lemma 11), composition (Lemma 10) and conversion
//! (Lemma 9) — all in [`accounting`].
//!
//! ## Quickstart
//!
//! ```
//! use rand::SeedableRng;
//! use sqm::core::{sqm_polynomial, Monomial, Polynomial, SqmParams};
//! use sqm::linalg::Matrix;
//!
//! // Three clients each own one attribute; estimate sum_x x0 * x1 with DP.
//! let data = Matrix::from_rows(&[
//!     vec![0.5, -0.2, 0.1],
//!     vec![-0.4, 0.3, 0.2],
//!     vec![0.1, 0.1, -0.5],
//! ]);
//! let f = Polynomial::one_dimensional(3, vec![Monomial::new(1.0, vec![(0, 1), (1, 1)])]);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let estimate = sqm_polynomial(&mut rng, &f, &data, SqmParams::new(4096.0, 100.0, 3));
//! assert!(estimate[0].is_finite());
//! ```
//!
//! Ready-made tasks live in [`tasks`]: [`tasks::SqmPca`] and
//! [`tasks::SqmLogReg`] with the paper's central-DP and local-DP baselines.

/// DP accounting: RDP curves, Skellam/Gaussian bounds, subsampling,
/// conversion, calibration.
pub use sqm_accounting as accounting;
/// Statistical correctness and privacy auditing: goodness-of-fit,
/// empirical-epsilon lower bounds, differential backend fuzzing.
pub use sqm_audit as audit;
/// The SQM mechanism: polynomials, quantization, sensitivity, baselines.
pub use sqm_core as core;
/// Dataset generators shaped like the paper's evaluation data, plus CSV.
pub use sqm_datasets as datasets;
/// Prime fields (Mersenne-61 / Mersenne-127) with centered encoding.
pub use sqm_field as field;
/// Dense linear algebra: Jacobi eigensolver, subspaces, norms.
pub use sqm_linalg as linalg;
/// Semi-honest BGW MPC over a simulated, latency-accounted network.
pub use sqm_mpc as mpc;
/// Pluggable party-to-party transport: in-process channels, loopback TCP,
/// deterministic fault injection.
pub use sqm_net as net;
/// Observability: structured tracing, metrics, privacy ledger, exporters.
pub use sqm_obs as obs;
/// Samplers (Poisson / Skellam / Gaussian / stochastic rounding) and
/// special functions.
pub use sqm_sampling as sampling;
/// Multi-tenant VFL serving: bounded-admission scheduler, enforced
/// per-tenant privacy budgets, streaming covariance, HTTP protocol.
pub use sqm_serve as serve;
/// PCA and logistic-regression instantiations with all baselines.
pub use sqm_tasks as tasks;
/// The VFL runtime binding SQM to the MPC engine.
pub use sqm_vfl as vfl;

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        // Touch one item from each facade module.
        use crate::field::PrimeField;
        let _ = crate::field::M61::ONE;
        let _ = crate::linalg::Matrix::zeros(1, 1);
        let _ = crate::accounting::default_alpha_grid();
        let _ = crate::core::Polynomial::covariance(2);
        let _ = crate::vfl::ColumnPartition::even(2, 2);
        let _ = crate::tasks::NonPrivatePca::new(1);
        let _ = crate::datasets::Scale::Laptop;
        let _ = crate::obs::PrivacyLedger::new(2, 1e-5);
        let _ = crate::audit::AuditConfig::new(0, crate::audit::Tier::Fast);
        let _ = crate::serve::TenantConfig::new("facade");
    }
}
