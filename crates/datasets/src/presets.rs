//! Named presets with the shapes of the paper's evaluation datasets.
//!
//! | Paper dataset | m | n | Task |
//! |---|---|---|---|
//! | KDDCUP | 195 666 | 117 | PCA |
//! | ACSIncome (CA/TX/NY/FL) | ~100 000 | ~800 | PCA + LR |
//! | CiteSeer | 2 110 | 3 703 | PCA (high-dim) |
//! | Gene | 801 | 20 531 | PCA (high-dim) |
//!
//! `Scale::Laptop` shrinks the sizes so every figure regenerates in minutes;
//! `Scale::Paper` restores the full sizes. Spectral decay constants are
//! chosen to mimic each dataset family (network traffic and census data are
//! strongly low-rank; bag-of-words and gene expression decay more slowly).

use crate::synthetic::{ClassificationDataset, ClassificationSpec, SpectralSpec};
use sqm_linalg::Matrix;

/// Experiment scale.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Shrunk sizes for fast regeneration (default for the harness).
    Laptop,
    /// The paper's full dataset sizes.
    Paper,
}

impl Scale {
    fn pick(self, laptop: (usize, usize), paper: (usize, usize)) -> (usize, usize) {
        match self {
            Scale::Laptop => laptop,
            Scale::Paper => paper,
        }
    }
}

/// KDDCUP-shaped PCA dataset (network traffic: strong spectral decay).
pub fn kddcup_like(scale: Scale, seed: u64) -> Matrix {
    let (m, n) = scale.pick((4000, 60), (195_666, 117));
    SpectralSpec::new(m, n)
        .with_decay(1.1)
        .with_seed(seed ^ 0x6BDD)
        .generate()
}

/// ACSIncome-shaped dataset for the given "state" (0 = CA, 1 = TX, 2 = NY,
/// 3 = FL). Census features: moderate decay. Returns the numeric matrix for
/// PCA use; for LR use [`acsincome_classification`].
pub fn acsincome_like(state: usize, scale: Scale, seed: u64) -> Matrix {
    assert!(state < 4, "states are 0..4 (CA, TX, NY, FL)");
    let (m, n) = scale.pick((2000, 120), (100_000, 800));
    SpectralSpec::new(m, n)
        .with_decay(0.9)
        .with_seed(seed ^ (0xACC0 + state as u64))
        .generate()
}

/// ACSIncome-shaped classification dataset (predict income > 50K).
pub fn acsincome_classification(state: usize, scale: Scale, seed: u64) -> ClassificationDataset {
    assert!(state < 4, "states are 0..4 (CA, TX, NY, FL)");
    let (m, d) = match scale {
        Scale::Laptop => (2000, 100),
        // The paper trains on a 10% sample: m ~ 10_000, d ~ 800 features.
        Scale::Paper => (10_000, 799),
    };
    ClassificationSpec::new(m, d)
        .with_seed(seed ^ (0xC1A0 + state as u64))
        .generate()
}

/// CiteSeer-shaped high-dimensional PCA dataset (bag-of-words: slower
/// decay, n >> typical).
pub fn citeseer_like(scale: Scale, seed: u64) -> Matrix {
    let (m, n) = scale.pick((400, 500), (2110, 3703));
    SpectralSpec::new(m, n)
        .with_decay(0.6)
        .with_seed(seed ^ 0xC17E)
        .generate()
}

/// Gene-expression-shaped high-dimensional PCA dataset.
pub fn gene_like(scale: Scale, seed: u64) -> Matrix {
    let (m, n) = scale.pick((200, 600), (801, 20_531));
    SpectralSpec::new(m, n)
        .with_decay(0.7)
        .with_seed(seed ^ 0x9E4E)
        .generate()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn laptop_shapes() {
        assert_eq!(kddcup_like(Scale::Laptop, 0).rows(), 4000);
        assert_eq!(acsincome_like(0, Scale::Laptop, 0).cols(), 120);
        assert_eq!(citeseer_like(Scale::Laptop, 0).cols(), 500);
        assert_eq!(gene_like(Scale::Laptop, 0).cols(), 600);
    }

    #[test]
    fn states_differ() {
        let ca = acsincome_like(0, Scale::Laptop, 0);
        let tx = acsincome_like(1, Scale::Laptop, 0);
        assert_ne!(ca, tx);
    }

    #[test]
    fn classification_preset() {
        let ds = acsincome_classification(0, Scale::Laptop, 0);
        assert_eq!(ds.len(), 2000);
        assert_eq!(ds.features.cols(), 100);
    }

    #[test]
    fn norm_bound_holds() {
        for m in [
            kddcup_like(Scale::Laptop, 1),
            citeseer_like(Scale::Laptop, 1),
        ] {
            assert!(m.max_row_norm() <= 1.0 + 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "states")]
    fn rejects_unknown_state() {
        acsincome_like(7, Scale::Laptop, 0);
    }
}
