//! Minimal CSV I/O for dropping real datasets into the harness.
//!
//! Format: one record per line, comma-separated decimal floats, no header.
//! (Real KDDCUP/ACSIncome exports in this format slot directly into the
//! experiment binaries via `--data <path>`.)

use std::fs;
use std::io::{self, Write};
use std::path::Path;

use sqm_linalg::Matrix;

/// Load a numeric matrix from a headerless CSV file.
pub fn load_matrix(path: &Path) -> io::Result<Matrix> {
    let text = fs::read_to_string(path)?;
    parse_matrix(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Parse CSV text into a matrix.
pub fn parse_matrix(text: &str) -> Result<Matrix, String> {
    let mut rows: Vec<Vec<f64>> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let row: Result<Vec<f64>, String> = line
            .split(',')
            .map(|tok| {
                tok.trim()
                    .parse::<f64>()
                    .map_err(|e| format!("line {}: bad number {tok:?}: {e}", lineno + 1))
            })
            .collect();
        let row = row?;
        if let Some(first) = rows.first() {
            if row.len() != first.len() {
                return Err(format!(
                    "line {}: {} columns, expected {}",
                    lineno + 1,
                    row.len(),
                    first.len()
                ));
            }
        }
        rows.push(row);
    }
    if rows.is_empty() {
        return Err("no data rows".to_string());
    }
    Ok(Matrix::from_rows(&rows))
}

/// Write a matrix as CSV.
pub fn save_matrix(path: &Path, m: &Matrix) -> io::Result<()> {
    let mut f = fs::File::create(path)?;
    for i in 0..m.rows() {
        let line: Vec<String> = m.row(i).iter().map(|v| format!("{v}")).collect();
        writeln!(f, "{}", line.join(","))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple() {
        let m = parse_matrix("1,2,3\n4,5,6\n").unwrap();
        assert_eq!((m.rows(), m.cols()), (2, 3));
        assert_eq!(m[(1, 2)], 6.0);
    }

    #[test]
    fn parse_skips_blank_lines_and_trims() {
        let m = parse_matrix("\n 1.5 , -2 \n\n 3 , 4 \n").unwrap();
        assert_eq!((m.rows(), m.cols()), (2, 2));
        assert_eq!(m[(0, 0)], 1.5);
        assert_eq!(m[(0, 1)], -2.0);
    }

    #[test]
    fn parse_rejects_ragged() {
        assert!(parse_matrix("1,2\n3\n").is_err());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_matrix("1,two\n").is_err());
    }

    #[test]
    fn parse_rejects_empty() {
        assert!(parse_matrix("").is_err());
    }

    #[test]
    fn roundtrip_through_file() {
        let m = Matrix::from_rows(&[vec![0.25, -1.0], vec![3.5, 2.0]]);
        let path = std::env::temp_dir().join(format!("sqm_csv_test_{}.csv", std::process::id()));
        save_matrix(&path, &m).unwrap();
        let back = load_matrix(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, m);
    }
}
